//! Delay accounting in the shape of the paper's Figure 10.
//!
//! Every measured operation is split into **local processing delay**
//! (client-side compute, scaled by the device profile) and **network
//! delay** (including server-side processing, which the paper folds into
//! the network term).

use std::fmt;
use std::ops::Add;
use std::time::Duration;

/// A Fig. 10-style delay breakdown.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DelayBreakdown {
    /// Client-side compute time (device-scaled).
    pub local_processing: Duration,
    /// Network transfer + server-side processing time.
    pub network: Duration,
}

impl DelayBreakdown {
    /// A zero breakdown.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Builds a breakdown from its parts.
    pub fn new(local_processing: Duration, network: Duration) -> Self {
        Self { local_processing, network }
    }

    /// Total delay.
    pub fn total(&self) -> Duration {
        self.local_processing + self.network
    }

    /// Adds local processing time.
    pub fn add_local(&mut self, d: Duration) {
        self.local_processing += d;
    }

    /// Adds network time.
    pub fn add_network(&mut self, d: Duration) {
        self.network += d;
    }
}

impl Add for DelayBreakdown {
    type Output = DelayBreakdown;
    fn add(self, rhs: DelayBreakdown) -> DelayBreakdown {
        DelayBreakdown {
            local_processing: self.local_processing + rhs.local_processing,
            network: self.network + rhs.network,
        }
    }
}

impl fmt::Display for DelayBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "local {:.3} ms + network {:.3} ms = {:.3} ms",
            self.local_processing.as_secs_f64() * 1e3,
            self.network.as_secs_f64() * 1e3,
            self.total().as_secs_f64() * 1e3
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let mut a = DelayBreakdown::zero();
        a.add_local(Duration::from_millis(2));
        a.add_network(Duration::from_millis(40));
        assert_eq!(a.total(), Duration::from_millis(42));
        let b = DelayBreakdown::new(Duration::from_millis(1), Duration::from_millis(1));
        let c = a + b;
        assert_eq!(c.local_processing, Duration::from_millis(3));
        assert_eq!(c.network, Duration::from_millis(41));
    }

    #[test]
    fn display_has_both_terms() {
        let d = DelayBreakdown::new(Duration::from_millis(5), Duration::from_millis(50));
        let s = d.to_string();
        assert!(s.contains("local"));
        assert!(s.contains("network"));
        assert!(s.contains("55.000"));
    }
}
