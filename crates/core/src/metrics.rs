//! Delay accounting in the shape of the paper's Figure 10, plus
//! per-endpoint service counters for the `sp-net` daemons.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Add;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A Fig. 10-style delay breakdown.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DelayBreakdown {
    /// Client-side compute time (device-scaled).
    pub local_processing: Duration,
    /// Network transfer + server-side processing time.
    pub network: Duration,
}

impl DelayBreakdown {
    /// A zero breakdown.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Builds a breakdown from its parts.
    pub fn new(local_processing: Duration, network: Duration) -> Self {
        Self { local_processing, network }
    }

    /// Total delay.
    pub fn total(&self) -> Duration {
        self.local_processing + self.network
    }

    /// Adds local processing time.
    pub fn add_local(&mut self, d: Duration) {
        self.local_processing += d;
    }

    /// Adds network time.
    pub fn add_network(&mut self, d: Duration) {
        self.network += d;
    }
}

impl Add for DelayBreakdown {
    type Output = DelayBreakdown;
    fn add(self, rhs: DelayBreakdown) -> DelayBreakdown {
        DelayBreakdown {
            local_processing: self.local_processing + rhs.local_processing,
            network: self.network + rhs.network,
        }
    }
}

impl fmt::Display for DelayBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "local {:.3} ms + network {:.3} ms = {:.3} ms",
            self.local_processing.as_secs_f64() * 1e3,
            self.network.as_secs_f64() * 1e3,
            self.total().as_secs_f64() * 1e3
        )
    }
}

/// Counters for one RPC endpoint of a daemon.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EndpointCounters {
    /// Requests handled (including ones that returned a protocol error).
    pub requests: u64,
    /// Requests that produced an error response.
    pub errors: u64,
    /// Request payload bytes received (frame payloads, excluding headers).
    pub bytes_in: u64,
    /// Response payload bytes sent.
    pub bytes_out: u64,
}

/// Per-endpoint request/byte/error counters for a running service.
///
/// Cheap to clone (shared state); safe to bump from every worker thread
/// of an `sp-net` daemon. Uses a `std` mutex so a panicking worker can
/// never take the metrics down with it — a poisoned lock is recovered,
/// counters are monotonic and remain meaningful.
#[derive(Clone, Debug, Default)]
pub struct ServiceMetrics {
    state: Arc<Mutex<BTreeMap<String, EndpointCounters>>>,
}

impl ServiceMetrics {
    /// Creates an empty metrics registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn with<R>(&self, f: impl FnOnce(&mut BTreeMap<String, EndpointCounters>) -> R) -> R {
        let mut guard = self.state.lock().unwrap_or_else(|poison| poison.into_inner());
        f(&mut guard)
    }

    /// Records one handled request on `endpoint`.
    pub fn record(&self, endpoint: &str, bytes_in: u64, bytes_out: u64, is_error: bool) {
        self.with(|map| {
            let c = map.entry(endpoint.to_owned()).or_default();
            c.requests += 1;
            c.errors += u64::from(is_error);
            c.bytes_in += bytes_in;
            c.bytes_out += bytes_out;
        });
    }

    /// Counters for one endpoint (zeros if it never saw a request).
    pub fn endpoint(&self, endpoint: &str) -> EndpointCounters {
        self.with(|map| map.get(endpoint).copied().unwrap_or_default())
    }

    /// A snapshot of every endpoint, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, EndpointCounters)> {
        self.with(|map| map.iter().map(|(k, v)| (k.clone(), *v)).collect())
    }

    /// Sums counters across all endpoints.
    pub fn totals(&self) -> EndpointCounters {
        self.with(|map| {
            map.values().fold(EndpointCounters::default(), |mut acc, c| {
                acc.requests += c.requests;
                acc.errors += c.errors;
                acc.bytes_in += c.bytes_in;
                acc.bytes_out += c.bytes_out;
                acc
            })
        })
    }
}

impl fmt::Display for ServiceMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, c) in self.snapshot() {
            writeln!(
                f,
                "{name}: {} requests ({} errors), {} B in, {} B out",
                c.requests, c.errors, c.bytes_in, c.bytes_out
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_metrics_accumulate_per_endpoint() {
        let m = ServiceMetrics::new();
        m.record("upload", 100, 8, false);
        m.record("upload", 50, 8, false);
        m.record("verify", 30, 200, true);
        assert_eq!(
            m.endpoint("upload"),
            EndpointCounters { requests: 2, errors: 0, bytes_in: 150, bytes_out: 16 }
        );
        assert_eq!(m.endpoint("verify").errors, 1);
        assert_eq!(m.endpoint("never"), EndpointCounters::default());
        let totals = m.totals();
        assert_eq!(totals.requests, 3);
        assert_eq!(totals.bytes_in, 180);
        let snap = m.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].0, "upload");
        let shown = m.to_string();
        assert!(shown.contains("upload: 2 requests"));
    }

    #[test]
    fn service_metrics_shared_across_clones_and_threads() {
        let m = ServiceMetrics::new();
        let clone = m.clone();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let mm = clone.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        mm.record("get", 1, 2, false);
                    }
                });
            }
        });
        assert_eq!(m.endpoint("get").requests, 400);
        assert_eq!(m.endpoint("get").bytes_out, 800);
    }

    #[test]
    fn service_metrics_survive_a_poisoned_lock() {
        let m = ServiceMetrics::new();
        m.record("put", 1, 1, false);
        let inner = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = inner.state.lock().unwrap();
            panic!("poison the lock on purpose");
        })
        .join();
        // Counters keep working after the poisoning panic.
        m.record("put", 1, 1, false);
        assert_eq!(m.endpoint("put").requests, 2);
    }

    #[test]
    fn arithmetic() {
        let mut a = DelayBreakdown::zero();
        a.add_local(Duration::from_millis(2));
        a.add_network(Duration::from_millis(40));
        assert_eq!(a.total(), Duration::from_millis(42));
        let b = DelayBreakdown::new(Duration::from_millis(1), Duration::from_millis(1));
        let c = a + b;
        assert_eq!(c.local_processing, Duration::from_millis(3));
        assert_eq!(c.network, Duration::from_millis(41));
    }

    #[test]
    fn display_has_both_terms() {
        let d = DelayBreakdown::new(Duration::from_millis(5), Duration::from_millis(50));
        let s = d.to_string();
        assert!(s.contains("local"));
        assert!(s.contains("network"));
        assert!(s.contains("55.000"));
    }
}
