//! Property tests over the shared `sp-testkit` strategies: arbitrary
//! `n`, `k ≤ n`, unicode answers, and intentionally-invalid raw pairs —
//! one input space for every crate instead of per-crate re-rolls.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use social_puzzles_core::construction1::{Construction1, Puzzle};
use social_puzzles_core::context::{Context, ContextPair};
use social_puzzles_core::trivial;
use social_puzzles_core::SocialPuzzleError;
use sp_testkit::strategies::{context, context_with_k, raw_pairs, scenario};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn generated_contexts_uphold_every_invariant(ctx in context()) {
        // Unique questions, nothing empty, thresholds 1..=n all valid.
        let questions: Vec<&str> = ctx.pairs().iter().map(ContextPair::question).collect();
        let unique: std::collections::HashSet<_> = questions.iter().collect();
        prop_assert_eq!(unique.len(), questions.len());
        for p in ctx.pairs() {
            prop_assert!(!p.question().is_empty());
            prop_assert!(!p.answer().is_empty());
        }
        for k in 1..=ctx.len() {
            prop_assert!(ctx.check_threshold(k).is_ok());
        }
        prop_assert!(ctx.check_threshold(0).is_err());
        prop_assert!(ctx.check_threshold(ctx.len() + 1).is_err());
    }

    #[test]
    fn raw_pairs_are_accepted_or_rejected_with_a_typed_error(pairs in raw_pairs()) {
        // `from_pairs` must never panic: either the invariants hold, or
        // a typed BadContext comes back (duplicates, empties, no pairs).
        let built = Context::from_pairs(
            pairs.iter().map(|(q, a)| ContextPair::new(q.clone(), a.clone())).collect(),
        );
        let questions: Vec<&String> = pairs.iter().map(|(q, _)| q).collect();
        let unique: std::collections::HashSet<_> = questions.iter().collect();
        let has_dup = unique.len() < questions.len();
        let has_empty = pairs.iter().any(|(q, a)| q.is_empty() || a.is_empty());
        match built {
            Ok(ctx) => {
                prop_assert!(!pairs.is_empty() && !has_dup && !has_empty);
                prop_assert_eq!(ctx.len(), pairs.len());
            }
            Err(e) => {
                prop_assert!(pairs.is_empty() || has_dup || has_empty,
                    "valid pairs rejected: {e}");
            }
        }
    }

    #[test]
    fn puzzles_roundtrip_their_wire_encoding(
        (ctx, k) in context_with_k(),
        seed in any::<u64>(),
    ) {
        let c1 = Construction1::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let up = c1.upload(b"prop-object", &ctx, k, &mut rng).unwrap();
        let decoded = Puzzle::from_bytes(&up.puzzle.to_bytes()).unwrap();
        prop_assert_eq!(&decoded, &up.puzzle);
        prop_assert_eq!(decoded.n(), ctx.len());
        prop_assert_eq!(decoded.k(), k);
    }

    #[test]
    fn construction1_decides_exactly_by_the_threshold(
        sc in scenario(),
        seed in any::<u64>(),
    ) {
        // The core access-control law, over arbitrary n, k, unicode
        // answers, and mixed correct/wrong/skipped attempts: granted
        // iff at least k answers are correct.
        let c1 = Construction1::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let object = b"prop-object";
        let up = c1.upload(object, &sc.context, sc.k, &mut rng).unwrap();
        for plan in &sc.attempts {
            let displayed = c1.display_puzzle(&up.puzzle, &mut rng);
            let answers = plan.answers(&sc.context);
            let response = c1.answer_puzzle(&displayed, &answers);
            match c1.verify(&up.puzzle, &response) {
                Ok(outcome) => {
                    prop_assert!(plan.expected_granted(sc.k),
                        "granted with {} correct < k={}", plan.correct_count(), sc.k);
                    let got = c1.access_with_key(
                        &outcome, &answers, &up.encrypted_object, Some(&displayed.puzzle_key),
                    ).unwrap();
                    prop_assert_eq!(&got[..], &object[..]);
                }
                Err(SocialPuzzleError::NotEnoughCorrectAnswers) => {
                    prop_assert!(!plan.expected_granted(sc.k),
                        "denied with {} correct >= k={}", plan.correct_count(), sc.k);
                }
                Err(e) => prop_assert!(false, "unexpected error: {e}"),
            }
        }
    }

    #[test]
    fn trivial_baseline_requires_every_answer(
        (ctx, _k) in context_with_k(),
        seed in any::<u64>(),
        wrong_at in any::<prop::sample::Index>(),
    ) {
        // The §III baseline the constructions improve on: one wrong
        // answer anywhere loses the object, whatever k the sharer meant.
        let mut rng = StdRng::seed_from_u64(seed);
        let ct = trivial::encrypt(b"prop-object", &ctx, &mut rng);
        prop_assert_eq!(trivial::decrypt(&ct, &ctx).unwrap(), b"prop-object");

        let i = wrong_at.index(ctx.len());
        let pairs = ctx.pairs().iter().enumerate().map(|(j, p)| {
            let answer = if i == j {
                format!("{}✗wrong", p.answer())
            } else {
                p.answer().to_owned()
            };
            ContextPair::new(p.question().to_owned(), answer)
        }).collect();
        let claimed = Context::from_pairs(pairs).unwrap();
        let granted = matches!(trivial::decrypt(&ct, &claimed), Ok(got) if got == b"prop-object");
        prop_assert!(!granted, "one wrong answer must deny the baseline");
    }
}
