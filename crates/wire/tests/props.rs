//! Property tests: every Writer field kind round-trips through Reader,
//! and corrupted length prefixes never panic or over-read.
//!
//! Domain-shaped inputs (contexts with unicode answers, arbitrary
//! sizes) come from the shared `sp-testkit` strategies, so the codec is
//! exercised with exactly the strings the protocol will carry.

use proptest::prelude::*;
use sp_testkit::strategies::{context, raw_pairs};
use sp_wire::{Reader, WireError, Writer};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn u8_roundtrip(v in any::<u8>()) {
        let mut w = Writer::new();
        w.u8(v);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        prop_assert_eq!(r.u8().unwrap(), v);
        prop_assert!(r.expect_end().is_ok());
    }

    #[test]
    fn u32_roundtrip(v in any::<u32>()) {
        let mut w = Writer::new();
        w.u32(v);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        prop_assert_eq!(r.u32().unwrap(), v);
        prop_assert!(r.expect_end().is_ok());
    }

    #[test]
    fn u64_roundtrip(v in any::<u64>()) {
        let mut w = Writer::new();
        w.u64(v);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        prop_assert_eq!(r.u64().unwrap(), v);
        prop_assert!(r.expect_end().is_ok());
    }

    #[test]
    fn bytes_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut w = Writer::new();
        w.bytes(&data);
        let buf = w.finish();
        prop_assert_eq!(buf.len(), 4 + data.len());
        let mut r = Reader::new(&buf);
        prop_assert_eq!(r.bytes().unwrap(), &data[..]);
        prop_assert!(r.expect_end().is_ok());
    }

    #[test]
    fn string_roundtrip(s in ".{0,64}") {
        let mut w = Writer::new();
        w.string(&s);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        prop_assert_eq!(r.string().unwrap(), s);
        prop_assert!(r.expect_end().is_ok());
    }

    #[test]
    fn raw_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..128)) {
        let mut w = Writer::new();
        w.raw(&data);
        let buf = w.finish();
        prop_assert_eq!(buf.len(), data.len());
        let mut r = Reader::new(&buf);
        prop_assert_eq!(r.raw(data.len()).unwrap(), &data[..]);
        prop_assert!(r.expect_end().is_ok());
    }

    #[test]
    fn mixed_sequence_roundtrip(
        a in any::<u8>(),
        b in any::<u32>(),
        c in any::<u64>(),
        data in proptest::collection::vec(any::<u8>(), 0..256),
        s in ".{0,32}",
    ) {
        let mut w = Writer::new();
        w.u8(a).u32(b).bytes(&data).u64(c).string(&s);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        prop_assert_eq!(r.u8().unwrap(), a);
        prop_assert_eq!(r.u32().unwrap(), b);
        prop_assert_eq!(r.bytes().unwrap(), &data[..]);
        prop_assert_eq!(r.u64().unwrap(), c);
        prop_assert_eq!(r.string().unwrap(), s);
        prop_assert!(r.expect_end().is_ok());
    }

    #[test]
    fn context_pairs_roundtrip_the_string_codec(ctx in context()) {
        // Questions and unicode-heavy answers are what the protocol
        // actually ships; they must survive the string codec verbatim.
        let mut w = Writer::new();
        w.u32(ctx.len() as u32);
        for p in ctx.pairs() {
            w.string(p.question()).string(p.answer());
        }
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        prop_assert_eq!(r.u32().unwrap() as usize, ctx.len());
        for p in ctx.pairs() {
            prop_assert_eq!(r.string().unwrap(), p.question());
            prop_assert_eq!(r.string().unwrap(), p.answer());
        }
        prop_assert!(r.expect_end().is_ok());
    }

    #[test]
    fn raw_pair_lists_roundtrip_even_when_invalid_as_contexts(pairs in raw_pairs()) {
        // The wire layer is agnostic to context validity: duplicate
        // questions and empty strings still encode and decode exactly.
        let mut w = Writer::new();
        w.u32(pairs.len() as u32);
        for (q, a) in &pairs {
            w.string(q).string(a);
        }
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        prop_assert_eq!(r.u32().unwrap() as usize, pairs.len());
        for (q, a) in &pairs {
            prop_assert_eq!(r.string().unwrap(), q);
            prop_assert_eq!(r.string().unwrap(), a);
        }
        prop_assert!(r.expect_end().is_ok());
    }

    #[test]
    fn inflated_length_prefix_is_always_bad_length(
        data in proptest::collection::vec(any::<u8>(), 0..64),
        extra in 1u32..1024,
    ) {
        // Rewrite the prefix to claim more bytes than follow: the reader
        // must reject with BadLength, never slice out of bounds.
        let claimed = data.len() as u32 + extra;
        let mut buf = claimed.to_be_bytes().to_vec();
        buf.extend_from_slice(&data);
        let mut r = Reader::new(&buf);
        prop_assert_eq!(r.bytes().unwrap_err(), WireError::BadLength);
    }

    #[test]
    fn arbitrary_garbage_never_panics(junk in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Decoding random bytes with every field kind in turn may error,
        // but must never panic or read past the buffer.
        let mut r = Reader::new(&junk);
        let _ = r.u8();
        let _ = r.u32();
        let _ = r.bytes();
        let _ = r.string();
        let _ = r.u64();
        let _ = r.raw(usize::MAX);
        prop_assert!(r.remaining() <= junk.len());
    }

    #[test]
    fn truncated_buffer_errors_cleanly(
        data in proptest::collection::vec(any::<u8>(), 1..128),
        s in ".{1,16}",
        cut in any::<prop::sample::Index>(),
    ) {
        let mut w = Writer::new();
        w.bytes(&data).string(&s).u64(7);
        let buf = w.finish();
        let cut = cut.index(buf.len() - 1); // strictly shorter than full
        let mut r = Reader::new(&buf[..cut]);
        let mut decode = || -> Result<(), WireError> {
            let _ = r.bytes()?;
            let _ = r.string()?;
            let _ = r.u64()?;
            Ok(())
        };
        prop_assert!(decode().is_err(), "truncation at {} must fail", cut);
    }
}
