//! A minimal, dependency-light binary wire format.
//!
//! Every multi-byte integer is big-endian; variable-length data is
//! length-prefixed with a `u32`. The format exists so that the simulated
//! service provider and storage host exchange *byte-accurate* payloads —
//! the paper's Figure 10 network delays are driven by exactly these sizes.
//!
//! # Example
//!
//! ```
//! use sp_wire::{Reader, Writer};
//!
//! let mut w = Writer::new();
//! w.u32(7).bytes(b"hello").string("world");
//! let buf = w.finish();
//!
//! let mut r = Reader::new(&buf);
//! assert_eq!(r.u32()?, 7);
//! assert_eq!(r.bytes()?, b"hello");
//! assert_eq!(r.string()?, "world");
//! r.expect_end()?;
//! # Ok::<(), sp_wire::WireError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

use bytes::{BufMut, Bytes, BytesMut};

/// Errors produced when decoding a wire buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The buffer ended before the expected field.
    UnexpectedEnd,
    /// A length prefix exceeded the remaining buffer.
    BadLength,
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// Trailing bytes remained after the final field.
    TrailingBytes,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnexpectedEnd => f.write_str("buffer ended before the expected field"),
            Self::BadLength => f.write_str("length prefix exceeds remaining buffer"),
            Self::BadUtf8 => f.write_str("string field holds invalid utf-8"),
            Self::TrailingBytes => f.write_str("trailing bytes after final field"),
        }
    }
}

impl Error for WireError {}

/// An append-only encoder.
#[derive(Debug, Default)]
pub struct Writer {
    buf: BytesMut,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self { buf: BytesMut::new() }
    }

    /// Creates an empty writer with `capacity` bytes pre-allocated.
    ///
    /// Encoders that know their exact output size up front (fixed-width
    /// group elements, length-prefixed fields) use this to avoid the
    /// doubling reallocations of an empty buffer.
    pub fn with_capacity(capacity: usize) -> Self {
        Self { buf: BytesMut::with_capacity(capacity) }
    }

    /// Appends a `u8`.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.put_u8(v);
        self
    }

    /// Appends a big-endian `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.put_u32(v);
        self
    }

    /// Appends a big-endian `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.put_u64(v);
        self
    }

    /// Appends length-prefixed bytes.
    ///
    /// # Panics
    ///
    /// Panics if `data` exceeds `u32::MAX` bytes.
    pub fn bytes(&mut self, data: &[u8]) -> &mut Self {
        let len = u32::try_from(data.len()).expect("field larger than 4 GiB");
        self.buf.put_u32(len);
        self.buf.put_slice(data);
        self
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn string(&mut self, s: &str) -> &mut Self {
        self.bytes(s.as_bytes())
    }

    /// Appends raw bytes with no length prefix (fixed-width fields).
    pub fn raw(&mut self, data: &[u8]) -> &mut Self {
        self.buf.put_slice(data);
        self
    }

    /// Current encoded size in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finishes and returns the encoded buffer.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// A sequential decoder over a borrowed buffer.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        // checked_add: on 32-bit targets `pos + n` could wrap for an
        // adversarial length prefix and sneak past the bounds check.
        let end = self.pos.checked_add(n).ok_or(WireError::UnexpectedEnd)?;
        if end > self.buf.len() {
            return Err(WireError::UnexpectedEnd);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Reads a `u8`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEnd`] if the buffer is exhausted.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEnd`] if the buffer is exhausted.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a big-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEnd`] if the buffer is exhausted.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads length-prefixed bytes.
    ///
    /// The length prefix is validated against the *remaining* buffer
    /// before any slice (or, in owned decoders built on this, any
    /// allocation) happens — a hostile peer cannot make a 4-byte prefix
    /// claim gigabytes it never sent.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::BadLength`] when the prefix exceeds the
    /// remaining buffer, or [`WireError::UnexpectedEnd`] when the prefix
    /// itself is truncated.
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return Err(WireError::BadLength);
        }
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::BadUtf8`] for invalid UTF-8, or a length error.
    pub fn string(&mut self) -> Result<&'a str, WireError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| WireError::BadUtf8)
    }

    /// Reads `n` raw bytes (fixed-width fields).
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEnd`] if fewer than `n` remain.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }

    /// Number of unread bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Asserts the whole buffer was consumed.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::TrailingBytes`] if bytes remain.
    pub fn expect_end(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_field_kinds() {
        let mut w = Writer::new();
        w.u8(1)
            .u32(0xdead_beef)
            .u64(u64::MAX)
            .bytes(b"")
            .bytes(b"xyz")
            .string("héllo")
            .raw(&[9, 9]);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 1);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.bytes().unwrap(), b"");
        assert_eq!(r.bytes().unwrap(), b"xyz");
        assert_eq!(r.string().unwrap(), "héllo");
        assert_eq!(r.raw(2).unwrap(), &[9, 9]);
        r.expect_end().unwrap();
    }

    #[test]
    fn error_paths() {
        let mut r = Reader::new(&[]);
        assert_eq!(r.u8().unwrap_err(), WireError::UnexpectedEnd);
        assert_eq!(Reader::new(&[0, 0]).u32().unwrap_err(), WireError::UnexpectedEnd);
        // Length prefix larger than remaining data.
        let mut w = Writer::new();
        w.u32(100);
        let buf = w.finish();
        assert_eq!(Reader::new(&buf).bytes().unwrap_err(), WireError::BadLength);
        // Invalid UTF-8.
        let mut w = Writer::new();
        w.bytes(&[0xff, 0xfe]);
        let buf = w.finish();
        assert_eq!(Reader::new(&buf).string().unwrap_err(), WireError::BadUtf8);
        // Trailing bytes.
        let mut w = Writer::new();
        w.u8(1).u8(2);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        r.u8().unwrap();
        assert_eq!(r.expect_end().unwrap_err(), WireError::TrailingBytes);
    }

    #[test]
    fn length_prefix_is_checked_against_remaining_before_any_slice() {
        // A maliciously huge prefix (u32::MAX) on a tiny buffer must be
        // rejected with BadLength — and the reader must stay usable at
        // its pre-call position semantics (prefix consumed, no panic).
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        buf.extend_from_slice(b"tiny");
        let mut r = Reader::new(&buf);
        assert_eq!(r.bytes().unwrap_err(), WireError::BadLength);

        // Exactly-fitting prefix is accepted: the boundary is `>`, not `>=`.
        let mut w = Writer::new();
        w.bytes(b"fits");
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.bytes().unwrap(), b"fits");
        r.expect_end().unwrap();

        // One byte over the boundary is rejected.
        let mut buf = Vec::new();
        buf.extend_from_slice(&5u32.to_be_bytes());
        buf.extend_from_slice(b"four");
        assert_eq!(Reader::new(&buf).bytes().unwrap_err(), WireError::BadLength);
    }

    #[test]
    fn nested_huge_prefix_after_valid_fields() {
        // The cap applies to the *remaining* buffer, not the whole one.
        let mut w = Writer::new();
        w.bytes(b"0123456789");
        let mut buf = w.finish().to_vec();
        buf.extend_from_slice(&11u32.to_be_bytes()); // claims 11, 0 remain after it
        let mut r = Reader::new(&buf);
        assert_eq!(r.bytes().unwrap(), b"0123456789");
        assert_eq!(r.bytes().unwrap_err(), WireError::BadLength);
    }

    #[test]
    fn sizes_are_exact() {
        let mut w = Writer::new();
        w.u8(0).u32(0).u64(0).bytes(b"abc").string("de");
        assert_eq!(w.len(), 1 + 4 + 8 + (4 + 3) + (4 + 2));
        assert!(!w.is_empty());
        assert!(Writer::new().is_empty());
    }

    #[test]
    fn display_errors_nonempty() {
        for e in [
            WireError::UnexpectedEnd,
            WireError::BadLength,
            WireError::BadUtf8,
            WireError::TrailingBytes,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
