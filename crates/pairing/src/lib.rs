//! Symmetric bilinear pairing in the style of PBC's *Type-A* curves.
//!
//! The CP-ABE toolkit underlying the paper's second prototype is built on
//! the PBC library's Type-A pairing: the supersingular curve
//! `E : y² = x³ + x` over `F_q` with `q ≡ 3 (mod 4)`, embedding degree 2,
//! and a prime-order-`r` subgroup with `r | q + 1`. This crate implements
//! that construction from scratch:
//!
//! * [`PairingParams`] — parameter generation (`q = h·r − 1` with the
//!   160-bit Solinas `r`), plus a process-wide cached default,
//! * [`G1`] — the order-`r` subgroup of `E(F_q)`, with hashing to the
//!   group,
//! * [`Gt`] — the order-`r` target group inside `F_{q²}^*`,
//! * [`Pairing::pair`] — the modified Tate pairing `ê(P, Q) =
//!   e(P, ψ(Q))` with distortion map `ψ(x, y) = (−x, i·y)`, computed with
//!   Miller's algorithm (denominator elimination) and a two-stage final
//!   exponentiation.
//!
//! # Example
//!
//! ```
//! use rand::SeedableRng;
//! use sp_pairing::Pairing;
//!
//! let pairing = Pairing::insecure_test_params();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let a = pairing.random_scalar(&mut rng);
//! let b = pairing.random_scalar(&mut rng);
//! let g = pairing.generator();
//! // Bilinearity: e(aG, bG) = e(G, G)^(ab)
//! let lhs = pairing.pair(&pairing.mul(g, &a), &pairing.mul(g, &b)).unwrap();
//! let rhs = pairing.pair(g, g).unwrap().pow_scalar(&a).pow_scalar(&b);
//! assert_eq!(lhs, rhs);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod curve;
mod error;
mod gt;
mod miller;
mod params;
pub mod stats;

pub use cache::LineCache;
pub use curve::{FixedBaseTable, G1};
pub use error::PairingError;
pub use gt::Gt;
pub use params::{Pairing, PairingParams, Scalar, DEFAULT_Q_BITS, TEST_Q_BITS};
pub use stats::CryptoStats;
