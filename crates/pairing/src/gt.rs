//! The target group `Gt ⊂ F_{q²}^*`.

use std::fmt;
use std::sync::Arc;

use sp_bigint::Uint;
use sp_field::{FieldCtx, Fp2};

use crate::error::PairingError;

/// An element of the order-`r` target group, written multiplicatively.
///
/// Values are produced by [`crate::Pairing::pair`] (and powers/products of
/// its results). After the final exponentiation every element lies in the
/// norm-1 subgroup of `F_{q²}^*`, so inversion is just conjugation.
#[derive(Clone, PartialEq, Eq)]
pub struct Gt {
    value: Fp2<8>,
}

impl Gt {
    pub(crate) fn from_fp2(value: Fp2<8>) -> Self {
        Self { value }
    }

    /// The group identity.
    pub fn one(fq: &Arc<FieldCtx<8>>) -> Self {
        Self { value: Fp2::one(fq) }
    }

    /// Returns `true` for the identity.
    pub fn is_one(&self) -> bool {
        self.value.is_one()
    }

    /// Group operation.
    pub fn mul(&self, other: &Self) -> Self {
        Self { value: &self.value * &other.value }
    }

    /// Exponentiation by a canonical integer.
    ///
    /// Pairing outputs live in the norm-1 subgroup of `F_{q²}^*`, where
    /// squaring collapses to two `F_q` squarings and the signed-digit
    /// (NAF) chain gets inversions for free by conjugation; that fast
    /// path is taken whenever the element's norm checks out. Elements
    /// decoded from untrusted bytes ([`Gt::from_bytes`] does not enforce
    /// subgroup membership) fall back to the generic square-and-multiply
    /// chain.
    pub fn pow<const E: usize>(&self, exp: &Uint<E>) -> Self {
        if self.value.norm().is_one() {
            crate::stats::record_cyclotomic_pow();
            Self { value: self.value.pow_norm1(exp) }
        } else {
            crate::stats::record_generic_pow();
            Self { value: self.value.pow(exp) }
        }
    }

    /// Exponentiation through the generic square-and-multiply chain,
    /// regardless of subgroup membership — the differential-test twin of
    /// the cyclotomic fast path in [`Gt::pow`].
    pub fn pow_reference<const E: usize>(&self, exp: &Uint<E>) -> Self {
        Self { value: self.value.pow(exp) }
    }

    /// Exponentiation by a scalar (element of `Z_r`).
    pub fn pow_scalar(&self, s: &crate::params::Scalar) -> Self {
        self.pow(&s.to_uint())
    }

    /// Group inverse (conjugation — elements have norm 1).
    pub fn inverse(&self) -> Self {
        Self { value: self.value.conjugate() }
    }

    /// Division: `self · other^{-1}`.
    pub fn div(&self, other: &Self) -> Self {
        self.mul(&other.inverse())
    }

    /// The underlying `F_{q²}` value (read-only).
    pub fn as_fp2(&self) -> &Fp2<8> {
        &self.value
    }

    /// Fixed-length encoding (`c0 ‖ c1`, 128 bytes).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.value.to_be_bytes()
    }

    /// Decodes an element produced by [`Gt::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`PairingError::BadGtEncoding`] for malformed encodings.
    /// Subgroup membership is *not* checked (128-byte encodings of
    /// arbitrary `F_{q²}` values decode successfully); callers that accept
    /// untrusted elements should treat them as blinding factors only.
    pub fn from_bytes(fq: &Arc<FieldCtx<8>>, bytes: &[u8]) -> Result<Self, PairingError> {
        let value = Fp2::from_be_bytes(fq, bytes).map_err(|_| PairingError::BadGtEncoding)?;
        Ok(Self { value })
    }
}

impl fmt::Debug for Gt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gt({})", self.value)
    }
}

impl fmt::Display for Gt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pairing;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cyclotomic_pow_matches_reference_on_pairing_outputs() {
        let p = Pairing::insecure_test_params();
        let mut rng = StdRng::seed_from_u64(62);
        let before = crate::stats::snapshot();
        for _ in 0..4 {
            let e = p.random_gt(&mut rng);
            assert!(e.as_fp2().norm().is_one(), "pairing outputs are norm-1");
            let s = p.random_scalar(&mut rng).to_uint();
            assert_eq!(e.pow(&s), e.pow_reference(&s));
        }
        let after = crate::stats::snapshot();
        assert!(after.cyclotomic_pow > before.cyclotomic_pow, "fast path was exercised");
    }

    #[test]
    fn generic_fallback_for_non_subgroup_elements() {
        let p = Pairing::insecure_test_params();
        // A raw field element with norm ≠ 1 (decoded bytes are unchecked).
        let mut bytes = vec![0u8; 128];
        bytes[63] = 2; // c0 = 2, c1 = 0 → norm 4
        let e = Gt::from_bytes(p.fq(), &bytes).unwrap();
        assert!(!e.as_fp2().norm().is_one());
        let before = crate::stats::snapshot();
        let s = sp_bigint::Uint::<4>::from_u64(12345);
        assert_eq!(e.pow(&s), e.pow_reference(&s));
        let after = crate::stats::snapshot();
        assert!(after.generic_pow > before.generic_pow, "fallback path was taken");
    }
}
