//! The target group `Gt ⊂ F_{q²}^*`.

use std::fmt;
use std::sync::Arc;

use sp_bigint::Uint;
use sp_field::{FieldCtx, Fp2};

use crate::error::PairingError;

/// An element of the order-`r` target group, written multiplicatively.
///
/// Values are produced by [`crate::Pairing::pair`] (and powers/products of
/// its results). After the final exponentiation every element lies in the
/// norm-1 subgroup of `F_{q²}^*`, so inversion is just conjugation.
#[derive(Clone, PartialEq, Eq)]
pub struct Gt {
    value: Fp2<8>,
}

impl Gt {
    pub(crate) fn from_fp2(value: Fp2<8>) -> Self {
        Self { value }
    }

    /// The group identity.
    pub fn one(fq: &Arc<FieldCtx<8>>) -> Self {
        Self { value: Fp2::one(fq) }
    }

    /// Returns `true` for the identity.
    pub fn is_one(&self) -> bool {
        self.value.is_one()
    }

    /// Group operation.
    pub fn mul(&self, other: &Self) -> Self {
        Self { value: &self.value * &other.value }
    }

    /// Exponentiation by a canonical integer.
    pub fn pow<const E: usize>(&self, exp: &Uint<E>) -> Self {
        Self { value: self.value.pow(exp) }
    }

    /// Exponentiation by a scalar (element of `Z_r`).
    pub fn pow_scalar(&self, s: &crate::params::Scalar) -> Self {
        self.pow(&s.to_uint())
    }

    /// Group inverse (conjugation — elements have norm 1).
    pub fn inverse(&self) -> Self {
        Self { value: self.value.conjugate() }
    }

    /// Division: `self · other^{-1}`.
    pub fn div(&self, other: &Self) -> Self {
        self.mul(&other.inverse())
    }

    /// The underlying `F_{q²}` value (read-only).
    pub fn as_fp2(&self) -> &Fp2<8> {
        &self.value
    }

    /// Fixed-length encoding (`c0 ‖ c1`, 128 bytes).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.value.to_be_bytes()
    }

    /// Decodes an element produced by [`Gt::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`PairingError::BadGtEncoding`] for malformed encodings.
    /// Subgroup membership is *not* checked (128-byte encodings of
    /// arbitrary `F_{q²}` values decode successfully); callers that accept
    /// untrusted elements should treat them as blinding factors only.
    pub fn from_bytes(fq: &Arc<FieldCtx<8>>, bytes: &[u8]) -> Result<Self, PairingError> {
        let value = Fp2::from_be_bytes(fq, bytes).map_err(|_| PairingError::BadGtEncoding)?;
        Ok(Self { value })
    }
}

impl fmt::Debug for Gt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gt({})", self.value)
    }
}

impl fmt::Display for Gt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}
