//! Error types.

use std::error::Error;
use std::fmt;

/// Errors produced by pairing-group operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum PairingError {
    /// A point encoding was malformed or not on the curve.
    BadPointEncoding,
    /// A target-group element encoding was malformed.
    BadGtEncoding,
    /// A scalar encoding was malformed.
    BadScalarEncoding,
    /// The Miller loop value vanished, so the pairing is undefined. Only
    /// reachable with operands outside the order-`r` subgroup (e.g. the
    /// 2-torsion point `(0, 0)`); valid inputs always produce a unit.
    DegeneratePairing,
}

impl fmt::Display for PairingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadPointEncoding => f.write_str("invalid curve point encoding"),
            Self::BadGtEncoding => f.write_str("invalid target-group element encoding"),
            Self::BadScalarEncoding => f.write_str("invalid scalar encoding"),
            Self::DegeneratePairing => {
                f.write_str("pairing degenerated to zero in the Miller loop")
            }
        }
    }
}

impl Error for PairingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            PairingError::BadPointEncoding,
            PairingError::BadGtEncoding,
            PairingError::BadScalarEncoding,
            PairingError::DegeneratePairing,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
