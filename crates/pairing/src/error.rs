//! Error types.

use std::error::Error;
use std::fmt;

/// Errors produced by pairing-group operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum PairingError {
    /// A point encoding was malformed or not on the curve.
    BadPointEncoding,
    /// A target-group element encoding was malformed.
    BadGtEncoding,
    /// A scalar encoding was malformed.
    BadScalarEncoding,
}

impl fmt::Display for PairingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadPointEncoding => f.write_str("invalid curve point encoding"),
            Self::BadGtEncoding => f.write_str("invalid target-group element encoding"),
            Self::BadScalarEncoding => f.write_str("invalid scalar encoding"),
        }
    }
}

impl Error for PairingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            PairingError::BadPointEncoding,
            PairingError::BadGtEncoding,
            PairingError::BadScalarEncoding,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
