//! Process-wide counters for the crypto fast paths.
//!
//! The second-wave kernels (cyclotomic final exponentiation, split-scalar
//! Straus multiplication, the Miller line-evaluation cache) each have a
//! slower generic twin they silently fall back to; these counters make the
//! fast-path coverage observable. `sp-core` folds a snapshot into
//! `ServiceMetrics` as the `crypto.cache` component, and the load/sim
//! summaries print it, so a kernel that stops being exercised shows up in
//! operational output rather than only in benchmarks.

use std::sync::atomic::{AtomicU64, Ordering};

static CYCLOTOMIC_POW: AtomicU64 = AtomicU64::new(0);
static GENERIC_POW: AtomicU64 = AtomicU64::new(0);
static SPLIT_SCALAR_MUL: AtomicU64 = AtomicU64::new(0);
static LINE_CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static LINE_CACHE_MISSES: AtomicU64 = AtomicU64::new(0);
static LINE_CACHE_INVALIDATIONS: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the fast-path counters since process start.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CryptoStats {
    /// `Gt` exponentiations that took the cyclotomic (norm-1) chain.
    pub cyclotomic_pow: u64,
    /// `Gt` exponentiations that fell back to the generic square chain
    /// (element was outside the norm-1 subgroup, e.g. decoded bytes).
    pub generic_pow: u64,
    /// Variable-base scalar multiplications that went through the
    /// half-width split + Straus interleaving path.
    pub split_scalar_mul: u64,
    /// Miller line-evaluation cache hits (warm fixed-argument entry).
    pub line_cache_hits: u64,
    /// Line-evaluation cache misses (entry computed and stored).
    pub line_cache_misses: u64,
    /// Line-evaluation cache entries dropped by invalidation.
    pub line_cache_invalidations: u64,
}

impl CryptoStats {
    /// Cache hit rate in `[0, 1]`; `0` before any lookup.
    pub fn line_cache_hit_rate(&self) -> f64 {
        let total = self.line_cache_hits + self.line_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.line_cache_hits as f64 / total as f64
        }
    }
}

/// Reads all counters (relaxed; totals may be mid-update skewed by one).
pub fn snapshot() -> CryptoStats {
    CryptoStats {
        cyclotomic_pow: CYCLOTOMIC_POW.load(Ordering::Relaxed),
        generic_pow: GENERIC_POW.load(Ordering::Relaxed),
        split_scalar_mul: SPLIT_SCALAR_MUL.load(Ordering::Relaxed),
        line_cache_hits: LINE_CACHE_HITS.load(Ordering::Relaxed),
        line_cache_misses: LINE_CACHE_MISSES.load(Ordering::Relaxed),
        line_cache_invalidations: LINE_CACHE_INVALIDATIONS.load(Ordering::Relaxed),
    }
}

pub(crate) fn record_cyclotomic_pow() {
    CYCLOTOMIC_POW.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_generic_pow() {
    GENERIC_POW.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_split_scalar_mul() {
    SPLIT_SCALAR_MUL.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_line_cache_hit() {
    LINE_CACHE_HITS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_line_cache_miss() {
    LINE_CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_line_cache_invalidation(n: u64) {
    LINE_CACHE_INVALIDATIONS.fetch_add(n, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let before = snapshot();
        record_cyclotomic_pow();
        record_generic_pow();
        record_split_scalar_mul();
        record_line_cache_hit();
        record_line_cache_miss();
        record_line_cache_invalidation(3);
        let after = snapshot();
        assert!(after.cyclotomic_pow > before.cyclotomic_pow);
        assert!(after.generic_pow > before.generic_pow);
        assert!(after.split_scalar_mul > before.split_scalar_mul);
        assert!(after.line_cache_hits > before.line_cache_hits);
        assert!(after.line_cache_misses > before.line_cache_misses);
        assert!(after.line_cache_invalidations >= before.line_cache_invalidations + 3);
    }

    #[test]
    fn hit_rate_bounds() {
        let empty = CryptoStats::default();
        assert_eq!(empty.line_cache_hit_rate(), 0.0);
        let warm = CryptoStats { line_cache_hits: 3, line_cache_misses: 1, ..empty };
        assert!((warm.line_cache_hit_rate() - 0.75).abs() < 1e-12);
    }
}
