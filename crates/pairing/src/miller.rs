//! Miller's algorithm for the modified Tate pairing on Type-A curves.
//!
//! The pairing computed is `ê(P, Q) = e_r(P, ψ(Q))^{(q²−1)/r}` where
//! `ψ(x, y) = (−x, i·y)` is the distortion map into `E(F_{q²})` and `e_r`
//! is the Tate pairing. Because the embedding degree is 2 and `ψ(Q)` has
//! its x-coordinate in the base field, all *vertical* line values lie in
//! `F_q^*` and are annihilated by the `(q−1)` factor of the final
//! exponentiation — so the Miller loop only multiplies in the non-vertical
//! line numerators (denominator elimination, BKLS).

use sp_bigint::Uint;
use sp_field::{Fp, Fp2};

use crate::curve::G1;

/// Evaluates the line through `t` (with slope `lambda`) at `ψ(Q)` for
/// `Q = (xq, yq)`.
///
/// `l(ψQ) = y_{ψQ} − y_T − λ(x_{ψQ} − x_T)` with `x_{ψQ} = −x_Q ∈ F_q`
/// and `y_{ψQ} = i·y_Q`, i.e. real part `λ(x_Q + x_T) − y_T`, imaginary
/// part `y_Q`.
fn line_value(lambda: &Fp<8>, xt: &Fp<8>, yt: &Fp<8>, xq: &Fp<8>, yq: &Fp<8>) -> Fp2<8> {
    let c0 = &(lambda * &(xq + xt)) - yt;
    Fp2::new(c0, yq.clone()).expect("base field is 3 mod 4")
}

/// Computes the modified Tate pairing `ê(P, Q)` before any [`crate::Gt`]
/// wrapping: Miller loop over the bits of `r`, then the two-stage final
/// exponentiation `f ↦ (f^{q−1})^h` with `h = (q+1)/r`.
///
/// `P` and `Q` must be non-identity points of order dividing `r` (the
/// caller handles identity operands).
///
/// # Panics
///
/// Panics if either point is the identity.
pub(crate) fn tate_pairing(p: &G1, q: &G1, r: &Uint<4>, h: &Uint<8>) -> Fp2<8> {
    final_exponentiation(&miller_loop(p, q, r), h)
}

/// The raw Miller loop value `f_{r,P}(ψQ)` (before final exponentiation);
/// exposed within the crate so products/ratios of pairings can share one
/// final exponentiation.
///
/// # Panics
///
/// Panics if either point is the identity.
pub(crate) fn miller_loop(p: &G1, q: &G1, r: &Uint<4>) -> Fp2<8> {
    let (xp, yp) = p.coords().expect("identity handled by Pairing::pair");
    let (xq, yq) = q.coords().expect("identity handled by Pairing::pair");
    let ctx = xp.ctx().clone();

    let mut f = Fp2::one(&ctx);
    let mut xt = xp.clone();
    let mut yt = yp.clone();
    let bits = r.bit_len();

    for i in (0..bits - 1).rev() {
        // Doubling step: f ← f² · l_{T,T}(ψQ); T ← 2T.
        f = f.square();
        debug_assert!(!yt.is_zero(), "odd-order point cannot hit y = 0 mid-loop");
        let lambda = {
            let x2 = xt.square();
            let num = &(&x2.double() + &x2) + &ctx.one(); // 3x² + 1
            let den = yt.double();
            &num * &den.invert().expect("2y nonzero")
        };
        f = &f * &line_value(&lambda, &xt, &yt, xq, yq);
        let x_new = &lambda.square() - &xt.double();
        let y_new = &(&lambda * &(&xt - &x_new)) - &yt;
        xt = x_new;
        yt = y_new;

        if r.bit(i) {
            // Addition step: f ← f · l_{T,P}(ψQ); T ← T + P.
            if xt == *xp {
                if yt == *yp {
                    // T == P: tangent line (only possible in malformed
                    // inputs; handle for robustness).
                    let lambda = {
                        let x2 = xt.square();
                        let num = &(&x2.double() + &x2) + &ctx.one();
                        let den = yt.double();
                        &num * &den.invert().expect("2y nonzero")
                    };
                    f = &f * &line_value(&lambda, &xt, &yt, xq, yq);
                    let x_new = &lambda.square() - &xt.double();
                    let y_new = &(&lambda * &(&xt - &x_new)) - &yt;
                    xt = x_new;
                    yt = y_new;
                } else {
                    // T == −P: vertical line, value in F_q^* — skipped by
                    // denominator elimination. T + P = ∞; this only occurs
                    // on the final iteration for points of exact order r.
                    xt = ctx.zero();
                    yt = ctx.zero();
                    // Mark T as infinity by leaving the loop; any further
                    // iterations would multiply by line values at ∞, which
                    // cannot happen for prime r (the final addition is the
                    // last step).
                    debug_assert_eq!(i, 0, "T = -P before the last bit implies order < r");
                }
            } else {
                let lambda = &(yp - &yt) * &(xp - &xt).invert().expect("xp != xt");
                f = &f * &line_value(&lambda, &xt, &yt, xq, yq);
                let x_new = &(&lambda.square() - &xt) - xp;
                let y_new = &(&lambda * &(&xt - &x_new)) - &yt;
                xt = x_new;
                yt = y_new;
            }
        }
    }

    f
}

/// Final exponentiation: `f ↦ f^((q² − 1)/r)` computed in two stages as
/// `(conj(f)/f)^h`, since `(q² − 1)/r = (q − 1)·h` and `f^q = conj(f)`
/// in `F_{q²}` with `q ≡ 3 (mod 4)`.
pub(crate) fn final_exponentiation(f: &Fp2<8>, h: &Uint<8>) -> Fp2<8> {
    let f_inv = f.invert().expect("miller value nonzero");
    let u = &f.conjugate() * &f_inv;
    u.pow(h)
}
