//! Miller's algorithm for the modified Tate pairing on Type-A curves.
//!
//! The pairing computed is `ê(P, Q) = e_r(P, ψ(Q))^{(q²−1)/r}` where
//! `ψ(x, y) = (−x, i·y)` is the distortion map into `E(F_{q²})` and `e_r`
//! is the Tate pairing. Because the embedding degree is 2 and `ψ(Q)` has
//! its x-coordinate in the base field, all *vertical* line values lie in
//! `F_q^*` and are annihilated by the `(q−1)` factor of the final
//! exponentiation — so the Miller loop only multiplies in the non-vertical
//! line numerators (denominator elimination, BKLS).

use sp_bigint::Uint;
use sp_field::{Fp, Fp2};

use crate::curve::G1;

/// Evaluates the line through `t` (with slope `lambda`) at `ψ(Q)` for
/// `Q = (xq, yq)`.
///
/// `l(ψQ) = y_{ψQ} − y_T − λ(x_{ψQ} − x_T)` with `x_{ψQ} = −x_Q ∈ F_q`
/// and `y_{ψQ} = i·y_Q`, i.e. real part `λ(x_Q + x_T) − y_T`, imaginary
/// part `y_Q`.
fn line_value(lambda: &Fp<8>, xt: &Fp<8>, yt: &Fp<8>, xq: &Fp<8>, yq: &Fp<8>) -> Fp2<8> {
    let c0 = &(lambda * &(xq + xt)) - yt;
    Fp2::new(c0, yq.clone()).expect("base field is 3 mod 4")
}

/// Computes the modified Tate pairing `ê(P, Q)` before any [`crate::Gt`]
/// wrapping: Miller loop over the bits of `r`, then the two-stage final
/// exponentiation `f ↦ (f^{q−1})^h` with `h = (q+1)/r`.
///
/// `P` and `Q` must be non-identity points of order dividing `r` (the
/// caller handles identity operands).
///
/// # Panics
///
/// Panics if either point is the identity.
pub(crate) fn tate_pairing(p: &G1, q: &G1, r: &Uint<4>, h: &Uint<8>) -> Fp2<8> {
    final_exponentiation(&miller_loop_product(&[(p, q, false)], r), h)
}

/// The affine reference pairing: the original per-step-inversion Miller
/// loop, retained as the differential-testing and benchmark baseline for
/// [`tate_pairing`].
pub(crate) fn tate_pairing_reference(p: &G1, q: &G1, r: &Uint<4>, h: &Uint<8>) -> Fp2<8> {
    final_exponentiation(&miller_loop(p, q, r), h)
}

/// Per-term Miller state for the product loop: the running point `T` in
/// Jacobian coordinates plus borrowed affine inputs. Keeping `T`
/// projective removes the per-step field inversion the affine loop pays
/// for the line slope — line values pick up extra `F_q^*` factors, which
/// the `(q − 1)` stage of the final exponentiation annihilates (the same
/// argument BKLS denominator elimination rests on).
struct TermState<'a> {
    xp: &'a Fp<8>,
    yp: &'a Fp<8>,
    xq: &'a Fp<8>,
    yq: &'a Fp<8>,
    /// Multiply the conjugate of each line value into the accumulator,
    /// yielding `ê(P, Q)^{-1}` after final exponentiation (inversion in
    /// the norm-1 subgroup is conjugation, up to an `F_q` factor).
    conjugate: bool,
    x: Fp<8>,
    y: Fp<8>,
    z: Fp<8>,
    /// `T` reached the identity (final addition `T = −P`); no further
    /// line contributions.
    done: bool,
}

impl TermState<'_> {
    /// Doubling step: returns the (projectively scaled) line value
    /// `l_{T,T}(ψQ)` and advances `T ← 2T`.
    fn double_step(&mut self) -> Option<Fp2<8>> {
        if self.done {
            return None;
        }
        if self.y.is_zero() {
            // 2-torsion: tangent is vertical (value in F_q, eliminated).
            self.done = true;
            return None;
        }
        let z2 = self.z.square();
        let m = {
            let x2 = self.x.square();
            &(&x2.double() + &x2) + &z2.square() // 3X² + Z⁴ (a = 1)
        };
        let y2 = self.y.square();
        let s = (&self.x * &y2).double().double(); // 4XY²
        let x3 = &m.square() - &s.double();
        let z3 = (&self.y * &self.z).double();
        let y3 = &(&m * &(&s - &x3)) - &y2.square().double().double().double(); // 8Y⁴
                                                                                // l·(2YZ³) = M(x_Q·Z² + X) − 2Y² + i·(y_Q·Z'·Z²)
        let c0 = &(&m * &(&(self.xq * &z2) + &self.x)) - &y2.double();
        let c1 = &(self.yq * &z3) * &z2;
        self.x = x3;
        self.y = y3;
        self.z = z3;
        Some(Fp2::new(c0, c1).expect("base field is 3 mod 4"))
    }

    /// Mixed addition step: returns the line `l_{T,P}(ψQ)` (or `None` for
    /// the vertical `T = −P` case) and advances `T ← T + P`.
    fn add_step(&mut self) -> Option<Fp2<8>> {
        if self.done {
            return None;
        }
        let z2 = self.z.square();
        let u2 = self.xp * &z2;
        let s2 = &(self.yp * &self.z) * &z2;
        let h = &u2 - &self.x;
        let r = &s2 - &self.y;
        if h.is_zero() {
            if r.is_zero() {
                // T == P: tangent line (malformed inputs only; kept for
                // robustness, mirroring the affine loop).
                return self.double_step();
            }
            // T == −P: vertical line, eliminated; T becomes the identity.
            self.done = true;
            return None;
        }
        let h2 = h.square();
        let h3 = &h2 * &h;
        let xh2 = &self.x * &h2;
        let x3 = &(&r.square() - &h3) - &xh2.double();
        let y3 = &(&r * &(&xh2 - &x3)) - &(&self.y * &h3);
        let z3 = &self.z * &h;
        // l·(Z³H) = R(x_Q·Z² + X) − Y·H + i·(y_Q·Z²·Z')
        let c0 = &(&r * &(&(self.xq * &z2) + &self.x)) - &(&self.y * &h);
        let c1 = &(self.yq * &z2) * &z3;
        self.x = x3;
        self.y = y3;
        self.z = z3;
        Some(Fp2::new(c0, c1).expect("base field is 3 mod 4"))
    }
}

/// Product-of-pairings Miller loop: computes
/// `Π_j f_{r,P_j}(ψQ_j)^{±1}` (sign per the `invert` flag of each
/// `(p, q, invert)` term) with **one shared accumulator squaring per bit**
/// and no field inversions, up to `F_q^*` factors killed by the final
/// exponentiation. Combined with a single [`final_exponentiation`], this
/// is what lets CP-ABE decryption fold every satisfied leaf into one
/// shared tail instead of `k` independent pairings.
///
/// Terms whose points include the identity contribute `1` and are
/// skipped.
pub(crate) fn miller_loop_product(terms: &[(&G1, &G1, bool)], r: &Uint<4>) -> Fp2<8> {
    let mut states: Vec<TermState<'_>> = terms
        .iter()
        .filter_map(|(p, q, invert)| {
            let (xp, yp) = p.coords()?;
            let (xq, yq) = q.coords()?;
            Some(TermState {
                xp,
                yp,
                xq,
                yq,
                conjugate: *invert,
                x: xp.clone(),
                y: yp.clone(),
                z: xp.ctx().one(),
                done: false,
            })
        })
        .collect();
    let ctx = match states.first() {
        Some(st) => st.xp.ctx().clone(),
        // Every term is degenerate (contributes 1): recover a field
        // context from any operand for the trivial answer.
        None => {
            let (x, _) = terms
                .iter()
                .find_map(|(p, q, _)| p.coords().or_else(|| q.coords()))
                .expect("miller_loop_product needs at least one non-identity operand");
            return Fp2::one(x.ctx());
        }
    };

    let mut f = Fp2::one(&ctx);
    let bits = r.bit_len();
    for i in (0..bits - 1).rev() {
        f = f.square();
        for st in &mut states {
            let conj = st.conjugate;
            if let Some(line) = st.double_step() {
                f = &f * &(if conj { line.conjugate() } else { line });
            }
        }
        if r.bit(i) {
            for st in &mut states {
                let conj = st.conjugate;
                if let Some(line) = st.add_step() {
                    f = &f * &(if conj { line.conjugate() } else { line });
                }
            }
        }
    }
    f
}

/// The raw Miller loop value `f_{r,P}(ψQ)` (before final exponentiation);
/// exposed within the crate so products/ratios of pairings can share one
/// final exponentiation.
///
/// # Panics
///
/// Panics if either point is the identity.
pub(crate) fn miller_loop(p: &G1, q: &G1, r: &Uint<4>) -> Fp2<8> {
    let (xp, yp) = p.coords().expect("identity handled by Pairing::pair");
    let (xq, yq) = q.coords().expect("identity handled by Pairing::pair");
    let ctx = xp.ctx().clone();

    let mut f = Fp2::one(&ctx);
    let mut xt = xp.clone();
    let mut yt = yp.clone();
    let bits = r.bit_len();

    for i in (0..bits - 1).rev() {
        // Doubling step: f ← f² · l_{T,T}(ψQ); T ← 2T.
        f = f.square();
        debug_assert!(!yt.is_zero(), "odd-order point cannot hit y = 0 mid-loop");
        let lambda = {
            let x2 = xt.square();
            let num = &(&x2.double() + &x2) + &ctx.one(); // 3x² + 1
            let den = yt.double();
            &num * &den.invert().expect("2y nonzero")
        };
        f = &f * &line_value(&lambda, &xt, &yt, xq, yq);
        let x_new = &lambda.square() - &xt.double();
        let y_new = &(&lambda * &(&xt - &x_new)) - &yt;
        xt = x_new;
        yt = y_new;

        if r.bit(i) {
            // Addition step: f ← f · l_{T,P}(ψQ); T ← T + P.
            if xt == *xp {
                if yt == *yp {
                    // T == P: tangent line (only possible in malformed
                    // inputs; handle for robustness).
                    let lambda = {
                        let x2 = xt.square();
                        let num = &(&x2.double() + &x2) + &ctx.one();
                        let den = yt.double();
                        &num * &den.invert().expect("2y nonzero")
                    };
                    f = &f * &line_value(&lambda, &xt, &yt, xq, yq);
                    let x_new = &lambda.square() - &xt.double();
                    let y_new = &(&lambda * &(&xt - &x_new)) - &yt;
                    xt = x_new;
                    yt = y_new;
                } else {
                    // T == −P: vertical line, value in F_q^* — skipped by
                    // denominator elimination. T + P = ∞; this only occurs
                    // on the final iteration for points of exact order r.
                    xt = ctx.zero();
                    yt = ctx.zero();
                    // Mark T as infinity by leaving the loop; any further
                    // iterations would multiply by line values at ∞, which
                    // cannot happen for prime r (the final addition is the
                    // last step).
                    debug_assert_eq!(i, 0, "T = -P before the last bit implies order < r");
                }
            } else {
                let lambda = &(yp - &yt) * &(xp - &xt).invert().expect("xp != xt");
                f = &f * &line_value(&lambda, &xt, &yt, xq, yq);
                let x_new = &(&lambda.square() - &xt) - xp;
                let y_new = &(&lambda * &(&xt - &x_new)) - &yt;
                xt = x_new;
                yt = y_new;
            }
        }
    }

    f
}

/// Final exponentiation: `f ↦ f^((q² − 1)/r)` computed in two stages as
/// `(conj(f)/f)^h`, since `(q² − 1)/r = (q − 1)·h` and `f^q = conj(f)`
/// in `F_{q²}` with `q ≡ 3 (mod 4)`.
pub(crate) fn final_exponentiation(f: &Fp2<8>, h: &Uint<8>) -> Fp2<8> {
    let f_inv = f.invert().expect("miller value nonzero");
    let u = &f.conjugate() * &f_inv;
    u.pow(h)
}
