//! Miller's algorithm for the modified Tate pairing on Type-A curves.
//!
//! The pairing computed is `ê(P, Q) = e_r(P, ψ(Q))^{(q²−1)/r}` where
//! `ψ(x, y) = (−x, i·y)` is the distortion map into `E(F_{q²})` and `e_r`
//! is the Tate pairing. Because the embedding degree is 2 and `ψ(Q)` has
//! its x-coordinate in the base field, all *vertical* line values lie in
//! `F_q^*` and are annihilated by the `(q−1)` factor of the final
//! exponentiation — so the Miller loop only multiplies in the non-vertical
//! line numerators (denominator elimination, BKLS).

use std::sync::Arc;

use sp_bigint::{MontCtx, Uint};
use sp_field::{FieldCtx, Fp, Fp2};

use crate::curve::G1;
use crate::error::PairingError;

type U = Uint<8>;

/// An `F_{q²}` element as raw Montgomery-domain coefficients: the Miller
/// loop's working representation. `Fp`'s operator overloads clone and
/// drop an `Arc` (two atomic ops) per temporary, which at ~45 ns field
/// multiplications is a double-digit share of the whole pairing — so the
/// hot loop runs on bare `Uint`s against one borrowed [`MontCtx`] and
/// converts to [`Fp2`] only at the boundary.
#[derive(Clone, Copy)]
struct RawFp2 {
    c0: U,
    c1: U,
}

impl RawFp2 {
    fn one(m: &MontCtx<8>) -> Self {
        Self { c0: *m.one(), c1: U::ZERO }
    }

    /// Karatsuba multiply in the lazy-reduction form (three wide
    /// products, two Montgomery reductions) — the raw twin of
    /// `&Fp2 * &Fp2`.
    fn mul(&self, m: &MontCtx<8>, rhs: &Self) -> Self {
        let v0 = m.wide_mul(&self.c0, &rhs.c0);
        let v1 = m.wide_mul(&self.c1, &rhs.c1);
        let s = m.add(&self.c0, &self.c1);
        let t = m.add(&rhs.c0, &rhs.c1);
        let v2 = m.wide_mul(&s, &t);
        let (lo, hi) = m.wide_sub(v0, &v1);
        let c0 = m.montgomery_reduce(&lo, &hi);
        let (lo, hi) = m.wide_sub(m.wide_sub(v2, &v0), &v1);
        let c1 = m.montgomery_reduce(&lo, &hi);
        Self { c0, c1 }
    }

    /// Complex squaring `(c0+c1)(c0−c1) + (2·c0·c1)·i`: two fused CIOS
    /// multiplies beat the wide-then-reduce route for squaring at
    /// truncated limb counts.
    fn square(&self, m: &MontCtx<8>) -> Self {
        let s = m.add(&self.c0, &self.c1);
        let d = m.sub(&self.c0, &self.c1);
        let t = m.mul(&self.c0, &self.c1);
        Self { c0: m.mul(&s, &d), c1: m.add(&t, &t) }
    }

    fn conjugate(&self, m: &MontCtx<8>) -> Self {
        Self { c0: self.c0, c1: m.neg(&self.c1) }
    }

    fn into_fp2(self, ctx: &Arc<FieldCtx<8>>) -> Fp2<8> {
        Fp2::new(Fp::from_mont_repr(ctx, self.c0), Fp::from_mont_repr(ctx, self.c1))
            .expect("base field is 3 mod 4")
    }
}

/// Evaluates the line through `t` (with slope `lambda`) at `ψ(Q)` for
/// `Q = (xq, yq)`.
///
/// `l(ψQ) = y_{ψQ} − y_T − λ(x_{ψQ} − x_T)` with `x_{ψQ} = −x_Q ∈ F_q`
/// and `y_{ψQ} = i·y_Q`, i.e. real part `λ(x_Q + x_T) − y_T`, imaginary
/// part `y_Q`.
fn line_value(lambda: &Fp<8>, xt: &Fp<8>, yt: &Fp<8>, xq: &Fp<8>, yq: &Fp<8>) -> Fp2<8> {
    let c0 = &(lambda * &(xq + xt)) - yt;
    Fp2::new(c0, yq.clone()).expect("base field is 3 mod 4")
}

/// Computes the modified Tate pairing `ê(P, Q)` before any [`crate::Gt`]
/// wrapping: Miller loop over the bits of `r`, then the two-stage final
/// exponentiation `f ↦ (f^{q−1})^h` with `h = (q+1)/r`.
///
/// `P` and `Q` must be non-identity points of order dividing `r` (the
/// caller handles identity operands).
///
/// # Panics
///
/// Panics if either point is the identity.
///
/// # Errors
///
/// Returns [`PairingError::DegeneratePairing`] if the Miller value
/// vanishes (operands outside the order-`r` subgroup).
pub(crate) fn tate_pairing(
    p: &G1,
    q: &G1,
    r: &Uint<4>,
    h: &Uint<8>,
) -> Result<Fp2<8>, PairingError> {
    final_exponentiation(&miller_loop_product(&[(p, q, false)], r), h)
}

/// The affine reference pairing: the original per-step-inversion Miller
/// loop and generic final-exponentiation chain, retained as the
/// differential-testing and benchmark baseline for [`tate_pairing`].
///
/// # Errors
///
/// Returns [`PairingError::DegeneratePairing`] if the Miller value
/// vanishes.
pub(crate) fn tate_pairing_reference(
    p: &G1,
    q: &G1,
    r: &Uint<4>,
    h: &Uint<8>,
) -> Result<Fp2<8>, PairingError> {
    final_exponentiation_reference(&miller_loop(p, q, r), h)
}

/// A (projectively scaled) Miller line in coefficient form: evaluated at
/// `ψ(Q)` for `Q = (x_Q, y_Q)` the line value is
/// `(a·x_Q + b) + i·(c·y_Q)`. The coefficients depend only on the Miller
/// walk of the first pairing argument — **not** on `Q` — which is what
/// the line-evaluation cache stores per fixed argument.
#[derive(Clone)]
pub(crate) struct LineCoeffs {
    a: U,
    b: U,
    c: U,
}

impl LineCoeffs {
    /// Evaluates the line at `ψ(Q)`: two base-field multiplications and
    /// one addition, instead of the full coefficient derivation.
    fn eval(&self, m: &MontCtx<8>, xq: &U, yq: &U) -> RawFp2 {
        RawFp2 { c0: m.add(&m.mul(&self.a, xq), &self.b), c1: m.mul(&self.c, yq) }
    }
}

/// The Q-independent part of one pairing term: the running point `T` of
/// the Miller walk in Jacobian coordinates. Keeping `T` projective
/// removes the per-step field inversion the affine loop pays for the line
/// slope — line values pick up extra `F_q^*` factors, which the `(q − 1)`
/// stage of the final exponentiation annihilates (the same argument BKLS
/// denominator elimination rests on).
struct MillerWalk<'a> {
    m: &'a MontCtx<8>,
    xp: U,
    yp: U,
    x: U,
    y: U,
    z: U,
    /// `T` reached the identity (final addition `T = −P`); no further
    /// line contributions.
    done: bool,
}

impl<'a> MillerWalk<'a> {
    fn new(m: &'a MontCtx<8>, xp: U, yp: U) -> Self {
        Self { m, xp, yp, x: xp, y: yp, z: *m.one(), done: false }
    }

    /// Doubling step: returns the coefficients of `l_{T,T}` and advances
    /// `T ← 2T`. Squarings go through the CIOS multiply: at truncated
    /// limb counts the fused multiply beats the separated SOS square.
    fn double_step(&mut self) -> Option<LineCoeffs> {
        if self.done {
            return None;
        }
        if self.y.is_zero() {
            // 2-torsion: tangent is vertical (value in F_q, eliminated).
            self.done = true;
            return None;
        }
        let m = self.m;
        let z2 = m.mul(&self.z, &self.z);
        let slope = {
            let x2 = m.mul(&self.x, &self.x);
            let z4 = m.mul(&z2, &z2);
            m.add(&m.add(&x2, &x2), &m.add(&x2, &z4)) // 3X² + Z⁴ (a = 1)
        };
        let y2 = m.mul(&self.y, &self.y);
        let s = {
            let xy2 = m.mul(&self.x, &y2);
            let t = m.add(&xy2, &xy2);
            m.add(&t, &t) // 4XY²
        };
        let x3 = m.sub(&m.mul(&slope, &slope), &m.add(&s, &s));
        let z3 = {
            let yz = m.mul(&self.y, &self.z);
            m.add(&yz, &yz)
        };
        let y3 = {
            let y4 = m.mul(&y2, &y2);
            let t = m.add(&y4, &y4);
            let t = m.add(&t, &t);
            m.sub(&m.mul(&slope, &m.sub(&s, &x3)), &m.add(&t, &t)) // − 8Y⁴
        };
        // l·(2YZ³) = (M·Z²)·x_Q + (M·X − 2Y²) + i·((Z'·Z²)·y_Q)
        let a = m.mul(&slope, &z2);
        let b = m.sub(&m.mul(&slope, &self.x), &m.add(&y2, &y2));
        let c = m.mul(&z3, &z2);
        self.x = x3;
        self.y = y3;
        self.z = z3;
        Some(LineCoeffs { a, b, c })
    }

    /// Mixed addition step: returns the coefficients of `l_{T,P}` (or
    /// `None` for the vertical `T = −P` case) and advances `T ← T + P`.
    fn add_step(&mut self) -> Option<LineCoeffs> {
        if self.done {
            return None;
        }
        let m = self.m;
        let z2 = m.mul(&self.z, &self.z);
        let u2 = m.mul(&self.xp, &z2);
        let s2 = m.mul(&m.mul(&self.yp, &self.z), &z2);
        let h = m.sub(&u2, &self.x);
        let r = m.sub(&s2, &self.y);
        if h.is_zero() {
            if r.is_zero() {
                // T == P: tangent line (malformed inputs only; kept for
                // robustness, mirroring the affine loop).
                return self.double_step();
            }
            // T == −P: vertical line, eliminated; T becomes the identity.
            self.done = true;
            return None;
        }
        let h2 = m.mul(&h, &h);
        let h3 = m.mul(&h2, &h);
        let xh2 = m.mul(&self.x, &h2);
        let x3 = m.sub(&m.sub(&m.mul(&r, &r), &h3), &m.add(&xh2, &xh2));
        let y3 = m.sub(&m.mul(&r, &m.sub(&xh2, &x3)), &m.mul(&self.y, &h3));
        let z3 = m.mul(&self.z, &h);
        // l·(Z³H) = (R·Z²)·x_Q + (R·X − Y·H) + i·((Z²·Z')·y_Q)
        let a = m.mul(&r, &z2);
        let b = m.sub(&m.mul(&r, &self.x), &m.mul(&self.y, &h));
        let c = m.mul(&z2, &z3);
        self.x = x3;
        self.y = y3;
        self.z = z3;
        Some(LineCoeffs { a, b, c })
    }
}

/// Precomputed line coefficients for every step of the Miller walk of a
/// fixed first argument `P`: pairing against any second argument `Q`
/// replays the stored lines (two `F_q` multiplications each) instead of
/// re-deriving the Jacobian walk. Built by [`precompute_lines`], stored
/// in [`crate::cache::LineCache`].
pub struct LinePrecomp {
    /// All line coefficients in evaluation order.
    lines: Vec<LineCoeffs>,
    /// Number of lines consumed per Miller-loop bit (MSB-first,
    /// `bit_len(r) − 1` entries — 0, 1 or 2 each).
    per_bit: Vec<u8>,
}

impl LinePrecomp {
    /// Approximate heap footprint in bytes (for cache accounting).
    pub fn approx_bytes(&self) -> usize {
        self.lines.len() * 3 * 64 + self.per_bit.len()
    }
}

/// Runs the Miller walk of `P` once and stores every line's coefficients.
///
/// # Panics
///
/// Panics if `p` is the identity (callers skip identity terms).
pub(crate) fn precompute_lines(p: &G1, r: &Uint<4>) -> LinePrecomp {
    let (xp, yp) = p.coords().expect("identity handled by caller");
    let m = xp.ctx().mont();
    let mut walk = MillerWalk::new(m, *xp.mont_repr(), *yp.mont_repr());
    let bits = r.bit_len();
    let mut lines = Vec::new();
    let mut per_bit = Vec::with_capacity(bits as usize - 1);
    for i in (0..bits - 1).rev() {
        let mut n = 0u8;
        if let Some(l) = walk.double_step() {
            lines.push(l);
            n += 1;
        }
        if r.bit(i) {
            if let Some(l) = walk.add_step() {
                lines.push(l);
                n += 1;
            }
        }
        per_bit.push(n);
    }
    LinePrecomp { lines, per_bit }
}

/// Product-of-pairings Miller loop over **precomputed** line coefficients:
/// the same shared-squaring accumulator as [`miller_loop_product`], but
/// each term replays its stored lines (evaluated at its `Q`) instead of
/// walking the curve. Produces bit-for-bit the value
/// [`miller_loop_product`] computes for the same `(P, Q)` terms.
pub(crate) fn miller_loop_precomputed(terms: &[(&LinePrecomp, &G1, bool)], r: &Uint<4>) -> Fp2<8> {
    let live: Vec<(&LinePrecomp, U, U, bool)> = terms
        .iter()
        .filter_map(|(pre, q, conj)| {
            let (xq, yq) = q.coords()?;
            Some((*pre, *xq.mont_repr(), *yq.mont_repr(), *conj))
        })
        .collect();
    let ctx = terms
        .iter()
        .find_map(|(_, q, _)| q.coords())
        .map(|(x, _)| x.ctx().clone())
        .expect("miller_loop_precomputed needs at least one non-identity Q");
    let m = ctx.mont();
    let mut f = RawFp2::one(m);
    let n_bits = r.bit_len() as usize - 1;
    let mut cursor = vec![0usize; live.len()];
    for bit in 0..n_bits {
        f = f.square(m);
        for (t, (pre, xq, yq, conj)) in live.iter().enumerate() {
            let n = usize::from(pre.per_bit[bit]);
            for line in &pre.lines[cursor[t]..cursor[t] + n] {
                let v = line.eval(m, xq, yq);
                f = f.mul(m, &(if *conj { v.conjugate(m) } else { v }));
            }
            cursor[t] += n;
        }
    }
    f.into_fp2(&ctx)
}

/// Product-of-pairings Miller loop: computes
/// `Π_j f_{r,P_j}(ψQ_j)^{±1}` (sign per the `invert` flag of each
/// `(p, q, invert)` term) with **one shared accumulator squaring per bit**
/// and no field inversions, up to `F_q^*` factors killed by the final
/// exponentiation. Combined with a single [`final_exponentiation`], this
/// is what lets CP-ABE decryption fold every satisfied leaf into one
/// shared tail instead of `k` independent pairings.
///
/// Terms whose points include the identity contribute `1` and are
/// skipped.
pub(crate) fn miller_loop_product(terms: &[(&G1, &G1, bool)], r: &Uint<4>) -> Fp2<8> {
    struct Term<'a> {
        walk: MillerWalk<'a>,
        xq: U,
        yq: U,
        /// Multiply the conjugate of each line value into the
        /// accumulator, yielding `ê(P, Q)^{-1}` after final
        /// exponentiation (inversion in the norm-1 subgroup is
        /// conjugation, up to an `F_q` factor).
        conjugate: bool,
    }
    // A field context from any non-identity operand; if every term is
    // fully degenerate (each contributes 1) this is still needed for the
    // trivial answer.
    let ctx = terms
        .iter()
        .find_map(|(p, q, _)| p.coords().or_else(|| q.coords()))
        .map(|(x, _)| x.ctx().clone())
        .expect("miller_loop_product needs at least one non-identity operand");
    let m = ctx.mont();
    let mut states: Vec<Term<'_>> = terms
        .iter()
        .filter_map(|(p, q, invert)| {
            let (xp, yp) = p.coords()?;
            let (xq, yq) = q.coords()?;
            Some(Term {
                walk: MillerWalk::new(m, *xp.mont_repr(), *yp.mont_repr()),
                xq: *xq.mont_repr(),
                yq: *yq.mont_repr(),
                conjugate: *invert,
            })
        })
        .collect();
    if states.is_empty() {
        return Fp2::one(&ctx);
    }

    let mut f = RawFp2::one(m);
    let bits = r.bit_len();
    for i in (0..bits - 1).rev() {
        f = f.square(m);
        for st in &mut states {
            if let Some(line) = st.walk.double_step() {
                let v = line.eval(m, &st.xq, &st.yq);
                f = f.mul(m, &(if st.conjugate { v.conjugate(m) } else { v }));
            }
        }
        if r.bit(i) {
            for st in &mut states {
                if let Some(line) = st.walk.add_step() {
                    let v = line.eval(m, &st.xq, &st.yq);
                    f = f.mul(m, &(if st.conjugate { v.conjugate(m) } else { v }));
                }
            }
        }
    }
    f.into_fp2(&ctx)
}

/// The raw Miller loop value `f_{r,P}(ψQ)` (before final exponentiation);
/// exposed within the crate so products/ratios of pairings can share one
/// final exponentiation.
///
/// # Panics
///
/// Panics if either point is the identity.
pub(crate) fn miller_loop(p: &G1, q: &G1, r: &Uint<4>) -> Fp2<8> {
    let (xp, yp) = p.coords().expect("identity handled by Pairing::pair");
    let (xq, yq) = q.coords().expect("identity handled by Pairing::pair");
    let ctx = xp.ctx().clone();

    let mut f = Fp2::one(&ctx);
    let mut xt = xp.clone();
    let mut yt = yp.clone();
    let bits = r.bit_len();

    for i in (0..bits - 1).rev() {
        // Doubling step: f ← f² · l_{T,T}(ψQ); T ← 2T.
        f = f.square();
        debug_assert!(!yt.is_zero(), "odd-order point cannot hit y = 0 mid-loop");
        let lambda = {
            let x2 = xt.square();
            let num = &(&x2.double() + &x2) + &ctx.one(); // 3x² + 1
            let den = yt.double();
            &num * &den.invert().expect("2y nonzero")
        };
        f = &f * &line_value(&lambda, &xt, &yt, xq, yq);
        let x_new = &lambda.square() - &xt.double();
        let y_new = &(&lambda * &(&xt - &x_new)) - &yt;
        xt = x_new;
        yt = y_new;

        if r.bit(i) {
            // Addition step: f ← f · l_{T,P}(ψQ); T ← T + P.
            if xt == *xp {
                if yt == *yp {
                    // T == P: tangent line (only possible in malformed
                    // inputs; handle for robustness).
                    let lambda = {
                        let x2 = xt.square();
                        let num = &(&x2.double() + &x2) + &ctx.one();
                        let den = yt.double();
                        &num * &den.invert().expect("2y nonzero")
                    };
                    f = &f * &line_value(&lambda, &xt, &yt, xq, yq);
                    let x_new = &lambda.square() - &xt.double();
                    let y_new = &(&lambda * &(&xt - &x_new)) - &yt;
                    xt = x_new;
                    yt = y_new;
                } else {
                    // T == −P: vertical line, value in F_q^* — skipped by
                    // denominator elimination. T + P = ∞; this only occurs
                    // on the final iteration for points of exact order r.
                    xt = ctx.zero();
                    yt = ctx.zero();
                    // Mark T as infinity by leaving the loop; any further
                    // iterations would multiply by line values at ∞, which
                    // cannot happen for prime r (the final addition is the
                    // last step).
                    debug_assert_eq!(i, 0, "T = -P before the last bit implies order < r");
                }
            } else {
                let lambda = &(yp - &yt) * &(xp - &xt).invert().expect("xp != xt");
                f = &f * &line_value(&lambda, &xt, &yt, xq, yq);
                let x_new = &(&lambda.square() - &xt) - xp;
                let y_new = &(&lambda * &(&xt - &x_new)) - &yt;
                xt = x_new;
                yt = y_new;
            }
        }
    }

    f
}

/// Final exponentiation: `f ↦ f^((q² − 1)/r)` computed in two stages as
/// `(conj(f)/f)^h`, since `(q² − 1)/r = (q − 1)·h` and `f^q = conj(f)`
/// in `F_{q²}` with `q ≡ 3 (mod 4)`.
///
/// After the first stage `u = conj(f)/f` satisfies `norm(u) = 1`, so the
/// dominating `pow(h)` chain runs on cyclotomic squarings (two base-field
/// squarings each) with a signed-digit exponent walk — conjugation is the
/// free inversion the NAF digits need.
///
/// # Errors
///
/// Returns [`PairingError::DegeneratePairing`] when `f = 0` (the former
/// `invert().expect(..)` panic): only reachable with operands outside the
/// order-`r` subgroup, since lines over valid points are units.
pub(crate) fn final_exponentiation(f: &Fp2<8>, h: &Uint<8>) -> Result<Fp2<8>, PairingError> {
    let f_inv = f.invert().map_err(|_| PairingError::DegeneratePairing)?;
    let u = &f.conjugate() * &f_inv;
    debug_assert!(u.norm().is_one(), "f^(q-1) lies in the norm-1 subgroup");
    Ok(u.pow_norm1(h))
}

/// Reference twin of [`final_exponentiation`]: the generic
/// square-and-multiply `pow(h)` chain instead of the cyclotomic one.
/// Retained for differential testing and as the benchmark baseline.
///
/// # Errors
///
/// Returns [`PairingError::DegeneratePairing`] when `f = 0`.
pub(crate) fn final_exponentiation_reference(
    f: &Fp2<8>,
    h: &Uint<8>,
) -> Result<Fp2<8>, PairingError> {
    let f_inv = f.invert().map_err(|_| PairingError::DegeneratePairing)?;
    let u = &f.conjugate() * &f_inv;
    Ok(u.pow(h))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_field::FieldCtx;

    #[test]
    fn final_exponentiation_rejects_zero_miller_value() {
        // 2^512 - 569 ≡ 3 (mod 4); any 3-mod-4 context works here.
        let p = Uint::<8>::from_hex(
            "ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff\
             fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffdc7",
        )
        .unwrap();
        let fq = FieldCtx::new(p).unwrap();
        let zero = Fp2::zero(&fq);
        let h = Uint::<8>::from_u64(12345);
        assert_eq!(final_exponentiation(&zero, &h), Err(PairingError::DegeneratePairing));
        assert_eq!(final_exponentiation_reference(&zero, &h), Err(PairingError::DegeneratePairing));
    }

    #[test]
    fn cyclotomic_final_exp_matches_reference() {
        let p = Uint::<8>::from_hex(
            "ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff\
             fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffdc7",
        )
        .unwrap();
        let fq = FieldCtx::new(p).unwrap();
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(61);
        for _ in 0..5 {
            let f = Fp2::random(&fq, &mut rng);
            if f.is_zero() {
                continue;
            }
            let h = Uint::<8>::random(&mut rng);
            assert_eq!(
                final_exponentiation(&f, &h).unwrap(),
                final_exponentiation_reference(&f, &h).unwrap()
            );
        }
    }
}
