//! Shared Miller-loop line-evaluation cache.
//!
//! CP-ABE decryption pairs a *fixed* set of ciphertext-side points (the
//! puzzle's public inputs) against per-key points, and the same puzzle is
//! displayed many times. The Miller walk of the fixed argument — every
//! doubling/addition and the line coefficients each step produces — does
//! not depend on the other argument, so it is computed once per
//! `(tag, point)` and replayed from the cache: a warm pairing costs two
//! base-field multiplications per stored line instead of the full
//! Jacobian walk.
//!
//! The cache is lock-striped over 16 shards selected by key hash, the
//! same discipline as the service layer's sharded puzzle memo, so
//! concurrent decryptions of unrelated puzzles never serialize on one
//! lock. Entries are grouped by an opaque byte *tag* (the service layer
//! uses the puzzle id): `Upload`/`Replace`/`Delete` of a puzzle drop all
//! of its lines via [`LineCache::invalidate`]. Hit/miss/invalidation
//! totals feed [`crate::stats`].

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use sp_bigint::Uint;

use crate::curve::G1;
use crate::miller::{precompute_lines, LinePrecomp};
use crate::stats;

/// Stripe count; power of two so the hash maps onto shards with a mask.
const SHARDS: usize = 16;

/// Cache key: the tag's stable hash plus the full identity of the
/// precomputation — group order bytes (distinguishing parameter sets that
/// share a process) followed by the compressed point encoding.
type Key = (u64, Vec<u8>);

/// FNV-1a over bytes — stable across processes, like the service layer's
/// puzzle-id striping hash.
fn fnv1a(data: &[u8]) -> u64 {
    let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        acc ^= u64::from(b);
        acc = acc.wrapping_mul(0x0000_0100_0000_01b3);
    }
    acc
}

/// A process-shared cache of [`LinePrecomp`] entries, striped over
/// independently locked shards and grouped by invalidation tag.
pub struct LineCache {
    shards: Vec<Mutex<HashMap<Key, Arc<LinePrecomp>>>>,
}

impl Default for LineCache {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LineCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LineCache").field("entries", &self.len()).finish()
    }
}

impl LineCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self { shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect() }
    }

    fn shard(&self, tag_hash: u64) -> &Mutex<HashMap<Key, Arc<LinePrecomp>>> {
        &self.shards[(tag_hash as usize) & (SHARDS - 1)]
    }

    /// Looks up (or computes and stores) the line precomputation for the
    /// Miller walk of `p` under group order `r`, filed under `tag`.
    pub(crate) fn get_or_precompute(&self, tag: &[u8], p: &G1, r: &Uint<4>) -> Arc<LinePrecomp> {
        let tag_hash = fnv1a(tag);
        let mut ident = r.to_be_bytes();
        ident.extend_from_slice(&p.to_bytes_compressed());
        let key = (tag_hash, ident);
        if let Some(hit) = self.shard(tag_hash).lock().expect("cache shard").get(&key) {
            stats::record_line_cache_hit();
            return Arc::clone(hit);
        }
        // Compute outside the lock; a racing miss on the same key does the
        // same work and the last insert wins — both Arcs are equivalent.
        stats::record_line_cache_miss();
        let pre = Arc::new(precompute_lines(p, r));
        self.shard(tag_hash).lock().expect("cache shard").insert(key, Arc::clone(&pre));
        pre
    }

    /// Drops every entry filed under `tag`, returning how many were
    /// removed. Called by the service layer when a puzzle is uploaded,
    /// replaced or deleted.
    pub fn invalidate(&self, tag: &[u8]) -> u64 {
        let tag_hash = fnv1a(tag);
        let mut shard = self.shard(tag_hash).lock().expect("cache shard");
        let before = shard.len();
        shard.retain(|(h, _), _| *h != tag_hash);
        let removed = (before - shard.len()) as u64;
        if removed > 0 {
            stats::record_line_cache_invalidation(removed);
        }
        removed
    }

    /// Total cached precomputations across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("cache shard").len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate heap footprint of all cached entries, in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock().expect("cache shard").values().map(|pre| pre.approx_bytes()).sum::<usize>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pairing;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hit_after_miss_and_tagged_invalidation() {
        let p = Pairing::insecure_test_params();
        let cache = LineCache::new();
        let mut rng = StdRng::seed_from_u64(70);
        let a = p.random_g1(&mut rng);
        let b = p.random_g1(&mut rng);

        let s0 = crate::stats::snapshot();
        cache.get_or_precompute(b"puzzle-1", &a, p.order());
        cache.get_or_precompute(b"puzzle-1", &a, p.order());
        cache.get_or_precompute(b"puzzle-1", &b, p.order());
        cache.get_or_precompute(b"puzzle-2", &a, p.order());
        let s1 = crate::stats::snapshot();
        assert_eq!(s1.line_cache_misses - s0.line_cache_misses, 3);
        assert_eq!(s1.line_cache_hits - s0.line_cache_hits, 1);
        assert_eq!(cache.len(), 3);
        assert!(cache.approx_bytes() > 0);

        // Invalidation only touches the tag's entries.
        assert_eq!(cache.invalidate(b"puzzle-1"), 2);
        assert_eq!(cache.invalidate(b"puzzle-1"), 0);
        assert_eq!(cache.len(), 1);
        let s2 = crate::stats::snapshot();
        assert_eq!(s2.line_cache_invalidations - s1.line_cache_invalidations, 2);

        // Re-query after invalidation recomputes.
        cache.get_or_precompute(b"puzzle-1", &a, p.order());
        let s3 = crate::stats::snapshot();
        assert_eq!(s3.line_cache_misses - s2.line_cache_misses, 1);
    }
}
