//! The group `G1`: the order-`r` subgroup of `E(F_q)` for the
//! supersingular curve `E : y² = x³ + x`.

use std::fmt;
use std::sync::Arc;

use sp_bigint::Uint;
use sp_field::{batch_invert, FieldCtx, Fp};

use crate::error::PairingError;

/// Window width shared by the sliding-window and fixed-base multipliers.
/// 4 divides the 64-bit limb size, so digit extraction never crosses a
/// limb boundary.
const WINDOW: u32 = 4;

/// A point on `E(F_q) : y² = x³ + x`, in affine coordinates (or the point
/// at infinity).
///
/// Library users obtain points from [`crate::Pairing`] (generator, hashing,
/// scalar multiplication); the group operation is written additively.
#[derive(Clone, PartialEq, Eq)]
pub struct G1 {
    repr: Repr,
}

#[derive(Clone, PartialEq, Eq)]
enum Repr {
    Infinity,
    Affine { x: Fp<8>, y: Fp<8> },
}

impl G1 {
    /// The point at infinity (group identity).
    pub fn identity() -> Self {
        Self { repr: Repr::Infinity }
    }

    /// Builds a point from affine coordinates, verifying the curve
    /// equation.
    ///
    /// # Errors
    ///
    /// Returns [`PairingError::BadPointEncoding`] if `(x, y)` is not on
    /// the curve.
    pub fn from_affine(x: Fp<8>, y: Fp<8>) -> Result<Self, PairingError> {
        let p = Self { repr: Repr::Affine { x, y } };
        if p.is_on_curve() {
            Ok(p)
        } else {
            Err(PairingError::BadPointEncoding)
        }
    }

    pub(crate) fn from_affine_unchecked(x: Fp<8>, y: Fp<8>) -> Self {
        Self { repr: Repr::Affine { x, y } }
    }

    /// Returns `true` for the point at infinity.
    pub fn is_identity(&self) -> bool {
        matches!(self.repr, Repr::Infinity)
    }

    /// Affine coordinates, or `None` for the point at infinity.
    pub fn coords(&self) -> Option<(&Fp<8>, &Fp<8>)> {
        match &self.repr {
            Repr::Infinity => None,
            Repr::Affine { x, y } => Some((x, y)),
        }
    }

    /// Checks `y² = x³ + x` (vacuously true at infinity).
    pub fn is_on_curve(&self) -> bool {
        match &self.repr {
            Repr::Infinity => true,
            Repr::Affine { x, y } => {
                let lhs = y.square();
                let rhs = &(&x.square() * x) + x;
                lhs == rhs
            }
        }
    }

    /// Group negation: `(x, y) ↦ (x, −y)`.
    pub fn negate(&self) -> Self {
        match &self.repr {
            Repr::Infinity => Self::identity(),
            Repr::Affine { x, y } => Self { repr: Repr::Affine { x: x.clone(), y: -y } },
        }
    }

    /// Point doubling.
    pub fn double(&self) -> Self {
        match &self.repr {
            Repr::Infinity => Self::identity(),
            Repr::Affine { x, y } => {
                if y.is_zero() {
                    // Order-2 point.
                    return Self::identity();
                }
                // λ = (3x² + 1) / 2y   (curve a-coefficient is 1)
                let ctx = x.ctx();
                let three_x2 = {
                    let x2 = x.square();
                    &x2.double() + &x2
                };
                let num = &three_x2 + &ctx.one();
                let den = y.double();
                let lambda = &num * &den.invert().expect("2y nonzero");
                let x3 = &lambda.square() - &x.double();
                let y3 = &(&lambda * &(x - &x3)) - y;
                Self { repr: Repr::Affine { x: x3, y: y3 } }
            }
        }
    }

    /// Group addition.
    pub fn add(&self, other: &Self) -> Self {
        match (&self.repr, &other.repr) {
            (Repr::Infinity, _) => other.clone(),
            (_, Repr::Infinity) => self.clone(),
            (Repr::Affine { x: x1, y: y1 }, Repr::Affine { x: x2, y: y2 }) => {
                if x1 == x2 {
                    if y1 == y2 {
                        return self.double();
                    }
                    // y1 = −y2: vertical line.
                    return Self::identity();
                }
                let lambda = &(y2 - y1) * &(x2 - x1).invert().expect("x2 != x1");
                let x3 = &(&lambda.square() - x1) - x2;
                let y3 = &(&lambda * &(x1 - &x3)) - y1;
                Self { repr: Repr::Affine { x: x3, y: y3 } }
            }
        }
    }

    /// Subtraction: `self + (−other)`.
    pub fn sub(&self, other: &Self) -> Self {
        self.add(&other.negate())
    }

    /// Scalar multiplication by a canonical integer.
    ///
    /// Uses Jacobian projective coordinates internally (one field
    /// inversion total, instead of one per group operation), with a
    /// double-and-add ladder over the scalar bits.
    pub fn mul_uint<const E: usize>(&self, scalar: &Uint<E>) -> Self {
        let bits = scalar.bit_len();
        if bits == 0 || self.is_identity() {
            return Self::identity();
        }
        let (x, y) = self.coords().expect("non-identity");
        let mut acc = Jacobian::from_affine(x.clone(), y.clone());
        for i in (0..bits - 1).rev() {
            acc = acc.double();
            if scalar.bit(i) {
                acc = acc.add_affine(x, y);
            }
        }
        acc.to_g1()
    }

    /// Sliding-window scalar multiplication: precomputes the odd multiples
    /// `P, 3P, …, 15P` (normalized to affine with one shared inversion via
    /// [`batch_invert`]) and consumes up to [`WINDOW`] scalar bits per
    /// group addition — roughly a third of the additions the textbook
    /// ladder in [`G1::mul_uint`] performs.
    ///
    /// Falls back to the textbook ladder for tiny scalars (precomputation
    /// would dominate) and for points of small order where an odd multiple
    /// hits the identity (possible before cofactor clearing).
    pub fn mul_uint_window<const E: usize>(&self, scalar: &Uint<E>) -> Self {
        let bits = scalar.bit_len();
        if bits == 0 || self.is_identity() {
            return Self::identity();
        }
        if bits <= WINDOW + 1 {
            return self.mul_uint(scalar);
        }
        let table = self.odd_multiples(1 << (WINDOW - 1));
        if table.iter().any(G1::is_identity) {
            return self.mul_uint(scalar);
        }
        let (x, _) = self.coords().expect("non-identity");
        let mut acc = Jacobian::identity(x.ctx());
        let mut i = i64::from(bits) - 1;
        while i >= 0 {
            if !scalar.bit(i as u32) {
                acc = acc.double();
                i -= 1;
                continue;
            }
            // Widest window of at most WINDOW bits that starts and ends
            // with a set bit (so the digit is odd and in the table).
            let mut j = (i - (i64::from(WINDOW) - 1)).max(0);
            while !scalar.bit(j as u32) {
                j += 1;
            }
            let width = (i - j + 1) as u32;
            for _ in 0..width {
                acc = acc.double();
            }
            let mut digit = 0usize;
            for b in (j..=i).rev() {
                digit = (digit << 1) | usize::from(scalar.bit(b as u32));
            }
            let (tx, ty) = table[(digit - 1) / 2].coords().expect("odd multiples checked");
            acc = acc.add_affine(tx, ty);
            i = j - 1;
        }
        acc.to_g1()
    }

    /// The odd multiples `[1]P, [3]P, …, [2·count − 1]P`, batch-normalized
    /// to affine with a single field inversion.
    fn odd_multiples(&self, count: usize) -> Vec<G1> {
        let (x, y) = self.coords().expect("non-identity");
        let first = Jacobian::from_affine(x.clone(), y.clone());
        let twice = first.double();
        let mut jac = Vec::with_capacity(count);
        jac.push(first);
        for i in 1..count {
            jac.push(jac[i - 1].add(&twice));
        }
        Jacobian::batch_to_g1(&jac)
    }

    /// Simultaneous double-scalar multiplication `[a]self + [b]other`:
    /// one shared doubling chain with per-scalar sliding-window tables
    /// (windowed Straus interleaving). This is the exact shape Schnorr
    /// verification evaluates (`[s]G + [−c]P`), at roughly the cost of a
    /// single windowed ladder plus one extra table.
    pub fn double_scalar_mul<const E: usize>(
        &self,
        a: &Uint<E>,
        other: &Self,
        b: &Uint<E>,
    ) -> Self {
        straus_windowed(&[(self, a), (other, b)])
    }

    /// The pre-optimization double-scalar ladder: a shared bit-at-a-time
    /// chain over the 4-entry `{P, Q, P+Q}` table. Retained as the
    /// reference implementation [`G1::double_scalar_mul`] is
    /// differential-tested against.
    pub fn double_scalar_mul_reference<const E: usize>(
        &self,
        a: &Uint<E>,
        other: &Self,
        b: &Uint<E>,
    ) -> Self {
        let bits = a.bit_len().max(b.bit_len());
        if bits == 0 {
            return Self::identity();
        }
        let sum = self.add(other);
        let mut acc = Self::identity();
        for i in (0..bits).rev() {
            acc = acc.double();
            match (a.bit(i), b.bit(i)) {
                (true, true) => acc = acc.add(&sum),
                (true, false) => acc = acc.add(self),
                (false, true) => acc = acc.add(other),
                (false, false) => {}
            }
        }
        acc
    }

    /// Split-scalar multiplication: decomposes `s = s₀ + s₁·2^⌈b/2⌉` and
    /// evaluates `[s₀]P + [s₁]([2^⌈b/2⌉]P)` with one windowed Straus
    /// interleaving over a half-length doubling chain.
    ///
    /// This is the GLV evaluation shape without the GLV endomorphism: on
    /// this Type-A curve `q ≡ 3 (mod 4)`, so the distortion map
    /// `ψ(x, y) = (−x, i·y)` is not `F_q`-rational and no cheap
    /// endomorphism exists to make the split point free. The split point
    /// is instead computed with `⌈b/2⌉` pure doublings (no additions, no
    /// table lookups), which keeps the total work competitive with
    /// [`G1::mul_uint_window`] while exercising the multi-scalar path;
    /// differential tests pin the two to identical results.
    pub fn mul_uint_split<const E: usize>(&self, scalar: &Uint<E>) -> Self {
        let bits = scalar.bit_len();
        if bits == 0 || self.is_identity() {
            return Self::identity();
        }
        // For short scalars the split buys nothing — one window suffices.
        if bits <= 2 * (WINDOW + 1) {
            return self.mul_uint_window(scalar);
        }
        let k = bits.div_ceil(2);
        let s1 = scalar.shr(k);
        let s0 = scalar.wrapping_sub(&s1.shl(k));
        // [2^k]P by k straight doublings in Jacobian coordinates.
        let (x, y) = self.coords().expect("non-identity");
        let mut split = Jacobian::from_affine(x.clone(), y.clone());
        for _ in 0..k {
            split = split.double();
        }
        let split = split.to_g1();
        crate::stats::record_split_scalar_mul();
        straus_windowed(&[(self, &s0), (&split, &s1)])
    }

    /// Scalar multiplication using the naive affine double-and-add;
    /// retained as the reference implementation the Jacobian path is
    /// tested against.
    pub fn mul_uint_affine<const E: usize>(&self, scalar: &Uint<E>) -> Self {
        let bits = scalar.bit_len();
        if bits == 0 || self.is_identity() {
            return Self::identity();
        }
        let mut acc = self.clone();
        for i in (0..bits - 1).rev() {
            acc = acc.double();
            if scalar.bit(i) {
                acc = acc.add(self);
            }
        }
        acc
    }

    /// Exact length of the [`G1::to_bytes`] encoding of this point —
    /// serializers pre-size their buffers from it.
    pub fn encoded_len(&self) -> usize {
        match &self.repr {
            Repr::Infinity => 1,
            Repr::Affine { .. } => 1 + 128,
        }
    }

    /// Fixed-length encoding: a tag byte (`0` infinity, `1` affine)
    /// followed by `x ‖ y` for affine points.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.write_bytes(&mut out);
        out
    }

    /// Appends the [`G1::to_bytes`] encoding to `out` without intermediate
    /// allocations (the coordinates stream their limbs directly).
    pub fn write_bytes(&self, out: &mut Vec<u8>) {
        match &self.repr {
            Repr::Infinity => out.push(0u8),
            Repr::Affine { x, y } => {
                out.reserve(1 + 128);
                out.push(1u8);
                x.write_be_bytes(out);
                y.write_be_bytes(out);
            }
        }
    }

    /// Decodes a point produced by [`G1::to_bytes`], verifying the curve
    /// equation.
    ///
    /// # Errors
    ///
    /// Returns [`PairingError::BadPointEncoding`] for malformed or
    /// off-curve encodings.
    pub fn from_bytes(fq: &Arc<FieldCtx<8>>, bytes: &[u8]) -> Result<Self, PairingError> {
        match bytes.first() {
            Some(0) if bytes.len() == 1 => Ok(Self::identity()),
            Some(1) if bytes.len() == 1 + 128 => {
                let x =
                    fq.from_be_bytes(&bytes[1..65]).map_err(|_| PairingError::BadPointEncoding)?;
                let y = fq
                    .from_be_bytes(&bytes[65..129])
                    .map_err(|_| PairingError::BadPointEncoding)?;
                Self::from_affine(x, y)
            }
            _ => Err(PairingError::BadPointEncoding),
        }
    }

    /// Compressed encoding: a tag byte (`0` infinity; `2`/`3` for even/odd
    /// `y`) followed by `x` — 65 bytes instead of 129 for affine points.
    pub fn to_bytes_compressed(&self) -> Vec<u8> {
        match &self.repr {
            Repr::Infinity => vec![0u8],
            Repr::Affine { x, y } => {
                let mut out = Vec::with_capacity(65);
                out.push(if y.to_uint().is_odd() { 3 } else { 2 });
                x.write_be_bytes(&mut out);
                out
            }
        }
    }

    /// Decodes a compressed point: recomputes `y = ±√(x³ + x)` and picks
    /// the root matching the parity tag.
    ///
    /// # Errors
    ///
    /// Returns [`PairingError::BadPointEncoding`] for malformed tags,
    /// wrong lengths, or `x` values with no square root (off-curve).
    pub fn from_bytes_compressed(
        fq: &Arc<FieldCtx<8>>,
        bytes: &[u8],
    ) -> Result<Self, PairingError> {
        match bytes.first() {
            Some(0) if bytes.len() == 1 => Ok(Self::identity()),
            Some(tag @ (2 | 3)) if bytes.len() == 65 => {
                let x =
                    fq.from_be_bytes(&bytes[1..]).map_err(|_| PairingError::BadPointEncoding)?;
                let rhs = &(&x.square() * &x) + &x;
                let y = rhs.sqrt().ok_or(PairingError::BadPointEncoding)?;
                let want_odd = *tag == 3;
                let y = if y.to_uint().is_odd() == want_odd { y } else { -&y };
                // sqrt(0) = 0 cannot satisfy an odd-parity tag.
                if y.is_zero() && want_odd {
                    return Err(PairingError::BadPointEncoding);
                }
                Ok(Self::from_affine_unchecked(x, y))
            }
            _ => Err(PairingError::BadPointEncoding),
        }
    }
}

/// Sliding-window digit decomposition: `(shift, digit)` pairs in
/// descending shift order with every digit odd and below `2^WINDOW`, such
/// that `scalar = Σ digit·2^shift` (same windowing rule as
/// [`G1::mul_uint_window`]).
fn sliding_window_digits<const E: usize>(scalar: &Uint<E>) -> Vec<(u32, usize)> {
    let mut out = Vec::new();
    let bits = scalar.bit_len();
    let mut i = i64::from(bits) - 1;
    while i >= 0 {
        if !scalar.bit(i as u32) {
            i -= 1;
            continue;
        }
        let mut j = (i - (i64::from(WINDOW) - 1)).max(0);
        while !scalar.bit(j as u32) {
            j += 1;
        }
        let mut digit = 0usize;
        for b in (j..=i).rev() {
            digit = (digit << 1) | usize::from(scalar.bit(b as u32));
        }
        out.push((j as u32, digit));
        i = j - 1;
    }
    out
}

/// Windowed Straus interleaving: one shared doubling chain over the
/// widest scalar, with each term consuming its own sliding-window digits
/// against its own odd-multiples table. Terms with an identity point or a
/// zero scalar contribute nothing.
fn straus_windowed<const E: usize>(terms: &[(&G1, &Uint<E>)]) -> G1 {
    let live: Vec<(&G1, &Uint<E>)> =
        terms.iter().copied().filter(|(p, s)| !p.is_identity() && s.bit_len() > 0).collect();
    let Some((first, _)) = live.first() else {
        return G1::identity();
    };
    // Small-order points can surface the identity among the odd multiples
    // (possible before cofactor clearing); fall back to independent
    // ladders rather than special-casing the tables.
    let tables: Vec<Vec<G1>> =
        live.iter().map(|(p, _)| p.odd_multiples(1 << (WINDOW - 1))).collect();
    if tables.iter().flatten().any(G1::is_identity) {
        return live.iter().fold(G1::identity(), |acc, (p, s)| acc.add(&p.mul_uint(s)));
    }
    let digits: Vec<Vec<(u32, usize)>> =
        live.iter().map(|(_, s)| sliding_window_digits(s)).collect();
    let max_bit = live.iter().map(|(_, s)| s.bit_len() - 1).max().expect("nonempty");
    let ctx = first.coords().expect("non-identity").0.ctx();
    let mut acc = Jacobian::identity(ctx);
    let mut next = vec![0usize; live.len()];
    for i in (0..=max_bit).rev() {
        acc = acc.double();
        for (t, digs) in digits.iter().enumerate() {
            // `shift` is the *low* bit of the window; adding here leaves
            // exactly `shift` doublings, scaling the entry by `2^shift`.
            if let Some(&(shift, digit)) = digs.get(next[t]) {
                if shift == i {
                    let (ex, ey) =
                        tables[t][(digit - 1) / 2].coords().expect("checked non-identity");
                    acc = acc.add_affine(ex, ey);
                    next[t] += 1;
                }
            }
        }
    }
    acc.to_g1()
}

/// A point in Jacobian projective coordinates: `(X, Y, Z)` represents the
/// affine point `(X/Z², Y/Z³)`; `Z = 0` is the identity. Internal to
/// scalar multiplication — only normalized affine points cross the API.
#[derive(Clone)]
struct Jacobian {
    x: Fp<8>,
    y: Fp<8>,
    z: Fp<8>,
}

impl Jacobian {
    fn from_affine(x: Fp<8>, y: Fp<8>) -> Self {
        let z = x.ctx().one();
        Self { x, y, z }
    }

    fn identity(ctx: &Arc<FieldCtx<8>>) -> Self {
        Self { x: ctx.one(), y: ctx.one(), z: ctx.zero() }
    }

    fn is_identity(&self) -> bool {
        self.z.is_zero()
    }

    /// Doubling on `y² = x³ + a·x` with `a = 1`:
    /// `S = 4XY²`, `M = 3X² + Z⁴`, `X' = M² − 2S`,
    /// `Y' = M(S − X') − 8Y⁴`, `Z' = 2YZ`.
    fn double(&self) -> Self {
        if self.is_identity() || self.y.is_zero() {
            return Self::identity(self.x.ctx());
        }
        let y2 = self.y.square();
        let s = (&self.x * &y2).double().double(); // 4XY²
        let m = {
            let x2 = self.x.square();
            let z2 = self.z.square();
            &(&x2.double() + &x2) + &z2.square() // 3X² + Z⁴ (a = 1)
        };
        let x3 = &m.square() - &s.double();
        let y3 = &(&m * &(&s - &x3)) - &y2.square().double().double().double(); // 8Y⁴
        let z3 = (&self.y * &self.z).double();
        Self { x: x3, y: y3, z: z3 }
    }

    /// Mixed addition with an affine point `(x2, y2)`.
    fn add_affine(&self, x2: &Fp<8>, y2: &Fp<8>) -> Self {
        if self.is_identity() {
            return Self::from_affine(x2.clone(), y2.clone());
        }
        let z1z1 = self.z.square();
        let u2 = x2 * &z1z1;
        let s2 = &(y2 * &self.z) * &z1z1;
        let h = &u2 - &self.x;
        let r = &s2 - &self.y;
        if h.is_zero() {
            if r.is_zero() {
                return self.double();
            }
            return Self::identity(self.x.ctx());
        }
        let h2 = h.square();
        let h3 = &h2 * &h;
        let x1h2 = &self.x * &h2;
        let x3 = &(&r.square() - &h3) - &x1h2.double();
        let y3 = &(&r * &(&x1h2 - &x3)) - &(&self.y * &h3);
        let z3 = &self.z * &h;
        Self { x: x3, y: y3, z: z3 }
    }

    /// Full Jacobian–Jacobian addition.
    fn add(&self, other: &Self) -> Self {
        if self.is_identity() {
            return other.clone();
        }
        if other.is_identity() {
            return self.clone();
        }
        let z1z1 = self.z.square();
        let z2z2 = other.z.square();
        let u1 = &self.x * &z2z2;
        let u2 = &other.x * &z1z1;
        let s1 = &(&self.y * &other.z) * &z2z2;
        let s2 = &(&other.y * &self.z) * &z1z1;
        let h = &u2 - &u1;
        let r = &s2 - &s1;
        if h.is_zero() {
            if r.is_zero() {
                return self.double();
            }
            return Self::identity(self.x.ctx());
        }
        let h2 = h.square();
        let h3 = &h2 * &h;
        let u1h2 = &u1 * &h2;
        let x3 = &(&r.square() - &h3) - &u1h2.double();
        let y3 = &(&r * &(&u1h2 - &x3)) - &(&s1 * &h3);
        let z3 = &(&self.z * &other.z) * &h;
        Self { x: x3, y: y3, z: z3 }
    }

    /// Normalizes back to an affine [`G1`] (the one inversion).
    fn to_g1(&self) -> G1 {
        if self.is_identity() {
            return G1::identity();
        }
        let z_inv = self.z.invert().expect("nonzero z");
        let z_inv2 = z_inv.square();
        let x = &self.x * &z_inv2;
        let y = &(&self.y * &z_inv2) * &z_inv;
        G1::from_affine_unchecked(x, y)
    }

    /// Normalizes a whole slice with **one** field inversion total
    /// (Montgomery's trick over the `Z` coordinates). Identity inputs map
    /// to [`G1::identity`].
    fn batch_to_g1(points: &[Self]) -> Vec<G1> {
        let mut z_invs: Vec<Fp<8>> = points.iter().map(|p| p.z.clone()).collect();
        batch_invert(&mut z_invs);
        points
            .iter()
            .zip(&z_invs)
            .map(|(p, z_inv)| {
                if z_inv.is_zero() {
                    return G1::identity();
                }
                let z_inv2 = z_inv.square();
                let x = &p.x * &z_inv2;
                let y = &(&p.y * &z_inv2) * z_inv;
                G1::from_affine_unchecked(x, y)
            })
            .collect()
    }
}

/// A fixed-base precomputation table: for a base point `P` and window
/// width [`WINDOW`] `= w`, entry `table[i][d − 1]` holds the affine point
/// `[d · 2^{w·i}]P`. A scalar multiplication then reads the scalar in
/// `w`-bit digits and performs one mixed addition per nonzero digit —
/// **no doublings at all** — which is several times faster than the
/// double-and-add ladder for the generator and public-key points that are
/// multiplied thousands of times per protocol run.
///
/// Tables are built once (all entries normalized to affine with a single
/// shared inversion via [`batch_invert`]) and cached by the callers in
/// `Pairing` / `PublicKey`.
pub struct FixedBaseTable {
    /// `table[i][d - 1] = [d · 2^{WINDOW·i}]P`, rows in ascending `i`.
    table: Vec<Vec<G1>>,
    /// The base point, kept for fallback when a scalar outruns the table.
    base: G1,
}

impl FixedBaseTable {
    /// Builds the table covering scalars of up to `bits` bits.
    pub fn new(base: &G1, bits: u32) -> Self {
        let Some((x, y)) = base.coords() else {
            return Self { table: Vec::new(), base: G1::identity() };
        };
        let windows = bits.div_ceil(WINDOW) as usize;
        let per_row = (1usize << WINDOW) - 1;
        // All rows in Jacobian first; one batch normalization at the end.
        let mut jac: Vec<Jacobian> = Vec::with_capacity(windows * per_row);
        let mut row_base = Jacobian::from_affine(x.clone(), y.clone());
        for _ in 0..windows {
            let mut cur = row_base.clone();
            jac.push(cur.clone());
            for _ in 2..=per_row {
                cur = cur.add(&row_base);
                jac.push(cur.clone());
            }
            for _ in 0..WINDOW {
                row_base = row_base.double();
            }
        }
        let affine = Jacobian::batch_to_g1(&jac);
        let table = affine.chunks(per_row).map(<[G1]>::to_vec).collect();
        Self { table, base: base.clone() }
    }

    /// Scalar multiplication `[scalar]P` off the table: one mixed addition
    /// per nonzero `WINDOW`-bit digit of the scalar.
    pub fn mul<const E: usize>(&self, scalar: &Uint<E>) -> G1 {
        let bits = scalar.bit_len();
        if bits == 0 || self.base.is_identity() {
            return G1::identity();
        }
        let windows = bits.div_ceil(WINDOW) as usize;
        if windows > self.table.len() {
            // Scalar wider than the table was built for.
            return self.base.mul_uint_window(scalar);
        }
        let (x, _) = self.base.coords().expect("non-identity base");
        let mut acc = Jacobian::identity(x.ctx());
        let limbs = scalar.limbs();
        let mask = (1u64 << WINDOW) - 1;
        for (i, row) in self.table.iter().enumerate().take(windows) {
            let bit_pos = i as u32 * WINDOW;
            // WINDOW divides 64, so a digit never crosses a limb boundary.
            let digit = (limbs[(bit_pos / 64) as usize] >> (bit_pos % 64)) & mask;
            if digit == 0 {
                continue;
            }
            // The identity case is unreachable for order-r bases
            // (d < 16 < r) but tolerated for small-order points.
            if let Some((ex, ey)) = row[digit as usize - 1].coords() {
                acc = acc.add_affine(ex, ey);
            }
        }
        acc.to_g1()
    }
}

impl fmt::Debug for G1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for G1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.repr {
            Repr::Infinity => f.write_str("G1(inf)"),
            Repr::Affine { x, y } => write!(f, "G1({x}, {y})"),
        }
    }
}
