//! The group `G1`: the order-`r` subgroup of `E(F_q)` for the
//! supersingular curve `E : y² = x³ + x`.

use std::fmt;
use std::sync::Arc;

use sp_bigint::Uint;
use sp_field::{FieldCtx, Fp};

use crate::error::PairingError;

/// A point on `E(F_q) : y² = x³ + x`, in affine coordinates (or the point
/// at infinity).
///
/// Library users obtain points from [`crate::Pairing`] (generator, hashing,
/// scalar multiplication); the group operation is written additively.
#[derive(Clone, PartialEq, Eq)]
pub struct G1 {
    repr: Repr,
}

#[derive(Clone, PartialEq, Eq)]
enum Repr {
    Infinity,
    Affine { x: Fp<8>, y: Fp<8> },
}

impl G1 {
    /// The point at infinity (group identity).
    pub fn identity() -> Self {
        Self { repr: Repr::Infinity }
    }

    /// Builds a point from affine coordinates, verifying the curve
    /// equation.
    ///
    /// # Errors
    ///
    /// Returns [`PairingError::BadPointEncoding`] if `(x, y)` is not on
    /// the curve.
    pub fn from_affine(x: Fp<8>, y: Fp<8>) -> Result<Self, PairingError> {
        let p = Self { repr: Repr::Affine { x, y } };
        if p.is_on_curve() {
            Ok(p)
        } else {
            Err(PairingError::BadPointEncoding)
        }
    }

    pub(crate) fn from_affine_unchecked(x: Fp<8>, y: Fp<8>) -> Self {
        Self { repr: Repr::Affine { x, y } }
    }

    /// Returns `true` for the point at infinity.
    pub fn is_identity(&self) -> bool {
        matches!(self.repr, Repr::Infinity)
    }

    /// Affine coordinates, or `None` for the point at infinity.
    pub fn coords(&self) -> Option<(&Fp<8>, &Fp<8>)> {
        match &self.repr {
            Repr::Infinity => None,
            Repr::Affine { x, y } => Some((x, y)),
        }
    }

    /// Checks `y² = x³ + x` (vacuously true at infinity).
    pub fn is_on_curve(&self) -> bool {
        match &self.repr {
            Repr::Infinity => true,
            Repr::Affine { x, y } => {
                let lhs = y.square();
                let rhs = &(&x.square() * x) + x;
                lhs == rhs
            }
        }
    }

    /// Group negation: `(x, y) ↦ (x, −y)`.
    pub fn negate(&self) -> Self {
        match &self.repr {
            Repr::Infinity => Self::identity(),
            Repr::Affine { x, y } => Self { repr: Repr::Affine { x: x.clone(), y: -y } },
        }
    }

    /// Point doubling.
    pub fn double(&self) -> Self {
        match &self.repr {
            Repr::Infinity => Self::identity(),
            Repr::Affine { x, y } => {
                if y.is_zero() {
                    // Order-2 point.
                    return Self::identity();
                }
                // λ = (3x² + 1) / 2y   (curve a-coefficient is 1)
                let ctx = x.ctx();
                let three_x2 = {
                    let x2 = x.square();
                    &x2.double() + &x2
                };
                let num = &three_x2 + &ctx.one();
                let den = y.double();
                let lambda = &num * &den.invert().expect("2y nonzero");
                let x3 = &lambda.square() - &x.double();
                let y3 = &(&lambda * &(x - &x3)) - y;
                Self { repr: Repr::Affine { x: x3, y: y3 } }
            }
        }
    }

    /// Group addition.
    pub fn add(&self, other: &Self) -> Self {
        match (&self.repr, &other.repr) {
            (Repr::Infinity, _) => other.clone(),
            (_, Repr::Infinity) => self.clone(),
            (Repr::Affine { x: x1, y: y1 }, Repr::Affine { x: x2, y: y2 }) => {
                if x1 == x2 {
                    if y1 == y2 {
                        return self.double();
                    }
                    // y1 = −y2: vertical line.
                    return Self::identity();
                }
                let lambda = &(y2 - y1) * &(x2 - x1).invert().expect("x2 != x1");
                let x3 = &(&lambda.square() - x1) - x2;
                let y3 = &(&lambda * &(x1 - &x3)) - y1;
                Self { repr: Repr::Affine { x: x3, y: y3 } }
            }
        }
    }

    /// Subtraction: `self + (−other)`.
    pub fn sub(&self, other: &Self) -> Self {
        self.add(&other.negate())
    }

    /// Scalar multiplication by a canonical integer.
    ///
    /// Uses Jacobian projective coordinates internally (one field
    /// inversion total, instead of one per group operation), with a
    /// double-and-add ladder over the scalar bits.
    pub fn mul_uint<const E: usize>(&self, scalar: &Uint<E>) -> Self {
        let bits = scalar.bit_len();
        if bits == 0 || self.is_identity() {
            return Self::identity();
        }
        let (x, y) = self.coords().expect("non-identity");
        let mut acc = Jacobian::from_affine(x.clone(), y.clone());
        for i in (0..bits - 1).rev() {
            acc = acc.double();
            if scalar.bit(i) {
                acc = acc.add_affine(x, y);
            }
        }
        acc.to_g1()
    }

    /// Simultaneous double-scalar multiplication `[a]self + [b]other`
    /// (Straus/Shamir trick): one shared double-and-add ladder with a
    /// 4-entry table, ~25% faster than two independent ladders. This is
    /// the exact shape Schnorr verification evaluates (`[s]G + [−c]P`).
    pub fn double_scalar_mul<const E: usize>(
        &self,
        a: &Uint<E>,
        other: &Self,
        b: &Uint<E>,
    ) -> Self {
        let bits = a.bit_len().max(b.bit_len());
        if bits == 0 {
            return Self::identity();
        }
        let sum = self.add(other);
        let mut acc = Self::identity();
        for i in (0..bits).rev() {
            acc = acc.double();
            match (a.bit(i), b.bit(i)) {
                (true, true) => acc = acc.add(&sum),
                (true, false) => acc = acc.add(self),
                (false, true) => acc = acc.add(other),
                (false, false) => {}
            }
        }
        acc
    }

    /// Scalar multiplication using the naive affine double-and-add;
    /// retained as the reference implementation the Jacobian path is
    /// tested against.
    pub fn mul_uint_affine<const E: usize>(&self, scalar: &Uint<E>) -> Self {
        let bits = scalar.bit_len();
        if bits == 0 || self.is_identity() {
            return Self::identity();
        }
        let mut acc = self.clone();
        for i in (0..bits - 1).rev() {
            acc = acc.double();
            if scalar.bit(i) {
                acc = acc.add(self);
            }
        }
        acc
    }

    /// Fixed-length encoding: a tag byte (`0` infinity, `1` affine)
    /// followed by `x ‖ y` for affine points.
    pub fn to_bytes(&self) -> Vec<u8> {
        match &self.repr {
            Repr::Infinity => vec![0u8],
            Repr::Affine { x, y } => {
                let mut out = Vec::with_capacity(1 + 128);
                out.push(1u8);
                out.extend_from_slice(&x.to_be_bytes());
                out.extend_from_slice(&y.to_be_bytes());
                out
            }
        }
    }

    /// Decodes a point produced by [`G1::to_bytes`], verifying the curve
    /// equation.
    ///
    /// # Errors
    ///
    /// Returns [`PairingError::BadPointEncoding`] for malformed or
    /// off-curve encodings.
    pub fn from_bytes(fq: &Arc<FieldCtx<8>>, bytes: &[u8]) -> Result<Self, PairingError> {
        match bytes.first() {
            Some(0) if bytes.len() == 1 => Ok(Self::identity()),
            Some(1) if bytes.len() == 1 + 128 => {
                let x =
                    fq.from_be_bytes(&bytes[1..65]).map_err(|_| PairingError::BadPointEncoding)?;
                let y = fq
                    .from_be_bytes(&bytes[65..129])
                    .map_err(|_| PairingError::BadPointEncoding)?;
                Self::from_affine(x, y)
            }
            _ => Err(PairingError::BadPointEncoding),
        }
    }

    /// Compressed encoding: a tag byte (`0` infinity; `2`/`3` for even/odd
    /// `y`) followed by `x` — 65 bytes instead of 129 for affine points.
    pub fn to_bytes_compressed(&self) -> Vec<u8> {
        match &self.repr {
            Repr::Infinity => vec![0u8],
            Repr::Affine { x, y } => {
                let mut out = Vec::with_capacity(65);
                out.push(if y.to_uint().is_odd() { 3 } else { 2 });
                out.extend_from_slice(&x.to_be_bytes());
                out
            }
        }
    }

    /// Decodes a compressed point: recomputes `y = ±√(x³ + x)` and picks
    /// the root matching the parity tag.
    ///
    /// # Errors
    ///
    /// Returns [`PairingError::BadPointEncoding`] for malformed tags,
    /// wrong lengths, or `x` values with no square root (off-curve).
    pub fn from_bytes_compressed(
        fq: &Arc<FieldCtx<8>>,
        bytes: &[u8],
    ) -> Result<Self, PairingError> {
        match bytes.first() {
            Some(0) if bytes.len() == 1 => Ok(Self::identity()),
            Some(tag @ (2 | 3)) if bytes.len() == 65 => {
                let x =
                    fq.from_be_bytes(&bytes[1..]).map_err(|_| PairingError::BadPointEncoding)?;
                let rhs = &(&x.square() * &x) + &x;
                let y = rhs.sqrt().ok_or(PairingError::BadPointEncoding)?;
                let want_odd = *tag == 3;
                let y = if y.to_uint().is_odd() == want_odd { y } else { -&y };
                // sqrt(0) = 0 cannot satisfy an odd-parity tag.
                if y.is_zero() && want_odd {
                    return Err(PairingError::BadPointEncoding);
                }
                Ok(Self::from_affine_unchecked(x, y))
            }
            _ => Err(PairingError::BadPointEncoding),
        }
    }
}

/// A point in Jacobian projective coordinates: `(X, Y, Z)` represents the
/// affine point `(X/Z², Y/Z³)`; `Z = 0` is the identity. Internal to
/// scalar multiplication — only normalized affine points cross the API.
struct Jacobian {
    x: Fp<8>,
    y: Fp<8>,
    z: Fp<8>,
}

impl Jacobian {
    fn from_affine(x: Fp<8>, y: Fp<8>) -> Self {
        let z = x.ctx().one();
        Self { x, y, z }
    }

    fn identity(ctx: &Arc<FieldCtx<8>>) -> Self {
        Self { x: ctx.one(), y: ctx.one(), z: ctx.zero() }
    }

    fn is_identity(&self) -> bool {
        self.z.is_zero()
    }

    /// Doubling on `y² = x³ + a·x` with `a = 1`:
    /// `S = 4XY²`, `M = 3X² + Z⁴`, `X' = M² − 2S`,
    /// `Y' = M(S − X') − 8Y⁴`, `Z' = 2YZ`.
    fn double(&self) -> Self {
        if self.is_identity() || self.y.is_zero() {
            return Self::identity(self.x.ctx());
        }
        let y2 = self.y.square();
        let s = (&self.x * &y2).double().double(); // 4XY²
        let m = {
            let x2 = self.x.square();
            let z2 = self.z.square();
            &(&x2.double() + &x2) + &z2.square() // 3X² + Z⁴ (a = 1)
        };
        let x3 = &m.square() - &s.double();
        let y3 = &(&m * &(&s - &x3)) - &y2.square().double().double().double(); // 8Y⁴
        let z3 = (&self.y * &self.z).double();
        Self { x: x3, y: y3, z: z3 }
    }

    /// Mixed addition with an affine point `(x2, y2)`.
    fn add_affine(&self, x2: &Fp<8>, y2: &Fp<8>) -> Self {
        if self.is_identity() {
            return Self::from_affine(x2.clone(), y2.clone());
        }
        let z1z1 = self.z.square();
        let u2 = x2 * &z1z1;
        let s2 = &(y2 * &self.z) * &z1z1;
        let h = &u2 - &self.x;
        let r = &s2 - &self.y;
        if h.is_zero() {
            if r.is_zero() {
                return self.double();
            }
            return Self::identity(self.x.ctx());
        }
        let h2 = h.square();
        let h3 = &h2 * &h;
        let x1h2 = &self.x * &h2;
        let x3 = &(&r.square() - &h3) - &x1h2.double();
        let y3 = &(&r * &(&x1h2 - &x3)) - &(&self.y * &h3);
        let z3 = &self.z * &h;
        Self { x: x3, y: y3, z: z3 }
    }

    /// Normalizes back to an affine [`G1`] (the one inversion).
    fn to_g1(&self) -> G1 {
        if self.is_identity() {
            return G1::identity();
        }
        let z_inv = self.z.invert().expect("nonzero z");
        let z_inv2 = z_inv.square();
        let x = &self.x * &z_inv2;
        let y = &(&self.y * &z_inv2) * &z_inv;
        G1::from_affine_unchecked(x, y)
    }
}

impl fmt::Debug for G1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for G1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.repr {
            Repr::Infinity => f.write_str("G1(inf)"),
            Repr::Affine { x, y } => write!(f, "G1({x}, {y})"),
        }
    }
}
