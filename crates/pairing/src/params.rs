//! Pairing parameters and the top-level [`Pairing`] API.

use std::fmt;
use std::sync::{Arc, OnceLock};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sp_bigint::prime::{generate_type_a, TypeAPrimes};
use sp_bigint::Uint;
use sp_crypto::sha256::sha256_concat;
use sp_field::{FieldCtx, Fp, Fp2};

use crate::cache::LineCache;
use crate::curve::{FixedBaseTable, G1};
use crate::error::PairingError;
use crate::gt::Gt;
use crate::miller::{
    final_exponentiation, final_exponentiation_reference, miller_loop, miller_loop_precomputed,
    miller_loop_product, tate_pairing, tate_pairing_reference, LinePrecomp,
};

/// An element of the scalar field `Z_r` (`r` = group order).
pub type Scalar = Fp<4>;

/// Bit size of the base-field prime `q` for production parameters —
/// matches PBC's stock `a.param` (512-bit `q`, 160-bit `r`).
pub const DEFAULT_Q_BITS: u32 = 512;

/// Smaller `q` used by [`Pairing::insecure_test_params`]; fine for tests
/// and benchmarks of protocol logic, but NOT cryptographically strong.
pub const TEST_Q_BITS: u32 = 264;

/// Generated Type-A pairing parameters: fields, cofactor and generator.
pub struct PairingParams {
    fq: Arc<FieldCtx<8>>,
    zr: Arc<FieldCtx<4>>,
    r: Uint<4>,
    h: Uint<8>,
    generator: G1,
    /// Lazily built fixed-base window table for the generator; every
    /// `[s]G` in Setup/Encrypt/KeyGen goes through it.
    gen_table: OnceLock<FixedBaseTable>,
}

impl fmt::Debug for PairingParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PairingParams")
            .field("q_bits", &self.fq.modulus().bit_len())
            .field("r_bits", &self.r.bit_len())
            .finish()
    }
}

/// A symmetric bilinear pairing `ê : G1 × G1 → Gt` on a Type-A curve.
///
/// Cheap to clone (shared parameters).
///
/// # Example
///
/// ```
/// use sp_pairing::Pairing;
///
/// let pairing = Pairing::insecure_test_params();
/// let g = pairing.generator();
/// let e = pairing.pair(g, g).unwrap();
/// assert!(!e.is_one(), "modified pairing is non-degenerate");
/// ```
#[derive(Clone, Debug)]
pub struct Pairing {
    params: Arc<PairingParams>,
}

impl Pairing {
    /// Generates fresh parameters with a `q_bits`-bit base field.
    ///
    /// # Panics
    ///
    /// Panics if `q_bits` is out of the supported range
    /// `(200, 512]`.
    pub fn generate<R: Rng + ?Sized>(q_bits: u32, rng: &mut R) -> Self {
        assert!(q_bits <= 512, "Uint<8> holds at most 512 bits");
        let TypeAPrimes { q, r, h } = generate_type_a::<8, R>(q_bits, rng);
        let fq = FieldCtx::new(q).expect("generated q is an odd prime");
        let r4: Uint<4> = r.truncate().expect("r is 160 bits");
        let zr = FieldCtx::new(r4).expect("r is an odd prime");
        let mut params = PairingParams {
            fq,
            zr,
            r: r4,
            h,
            generator: G1::identity(),
            gen_table: OnceLock::new(),
        };
        params.generator = hash_to_g1_inner(&params, b"social-puzzles/type-a/generator/v1");
        assert!(!params.generator.is_identity());
        Self { params: Arc::new(params) }
    }

    /// Process-wide cached 512-bit parameters (deterministic generation, so
    /// every component in a process agrees on the group).
    pub fn default_params() -> Self {
        static DEFAULT: OnceLock<Pairing> = OnceLock::new();
        DEFAULT
            .get_or_init(|| {
                let mut rng = StdRng::seed_from_u64(0x5050_4243_5A45_5441); // "PPBCZETA"
                Self::generate(DEFAULT_Q_BITS, &mut rng)
            })
            .clone()
    }

    /// Process-wide cached small parameters for tests and benchmarks.
    ///
    /// The group sizes are far below cryptographic strength — the name
    /// says so on purpose.
    pub fn insecure_test_params() -> Self {
        static TEST: OnceLock<Pairing> = OnceLock::new();
        TEST.get_or_init(|| {
            let mut rng = StdRng::seed_from_u64(0x7465_7374);
            Self::generate(TEST_Q_BITS, &mut rng)
        })
        .clone()
    }

    /// The base-field context `F_q`.
    pub fn fq(&self) -> &Arc<FieldCtx<8>> {
        &self.params.fq
    }

    /// The scalar-field context `Z_r`.
    pub fn zr(&self) -> &Arc<FieldCtx<4>> {
        &self.params.zr
    }

    /// The prime group order `r`.
    pub fn order(&self) -> &Uint<4> {
        &self.params.r
    }

    /// The cofactor `h = (q + 1)/r`.
    pub fn cofactor(&self) -> &Uint<8> {
        &self.params.h
    }

    /// A fixed generator of `G1`.
    pub fn generator(&self) -> &G1 {
        &self.params.generator
    }

    /// The modified Tate pairing `ê(P, Q)` (projective Miller loop — no
    /// per-step field inversions). Identity operands yield the `Gt`
    /// identity.
    ///
    /// # Errors
    ///
    /// Returns [`PairingError::DegeneratePairing`] if the Miller value
    /// vanishes — only reachable with points outside the order-`r`
    /// subgroup (e.g. the 2-torsion point `(0, 0)`).
    pub fn pair(&self, p: &G1, q: &G1) -> Result<Gt, PairingError> {
        if p.is_identity() || q.is_identity() {
            return Ok(Gt::one(&self.params.fq));
        }
        Ok(Gt::from_fp2(tate_pairing(p, q, &self.params.r, &self.params.h)?))
    }

    /// The original affine-Miller-loop pairing, retained as the reference
    /// implementation the optimized path is differential-tested and
    /// benchmarked against.
    ///
    /// # Errors
    ///
    /// Returns [`PairingError::DegeneratePairing`] if the Miller value
    /// vanishes (same contract as [`Pairing::pair`]).
    pub fn pair_reference(&self, p: &G1, q: &G1) -> Result<Gt, PairingError> {
        if p.is_identity() || q.is_identity() {
            return Ok(Gt::one(&self.params.fq));
        }
        Ok(Gt::from_fp2(tate_pairing_reference(p, q, &self.params.r, &self.params.h)?))
    }

    /// Product of pairing ratios `Π_j ê(Pⱼ, Qⱼ) / Π_k ê(P'ₖ, Q'ₖ)` with a
    /// **single** shared Miller accumulator and **one** final
    /// exponentiation — the multi-pairing shape CP-ABE decryption reduces
    /// to once the per-leaf Lagrange exponents are folded into the `G1`
    /// arguments. Terms containing the identity contribute `1`.
    ///
    /// # Errors
    ///
    /// Returns [`PairingError::DegeneratePairing`] if the shared Miller
    /// accumulator vanishes (only reachable with points outside the
    /// order-`r` subgroup).
    pub fn pair_product(&self, num: &[(&G1, &G1)], den: &[(&G1, &G1)]) -> Result<Gt, PairingError> {
        let terms: Vec<(&G1, &G1, bool)> = num
            .iter()
            .map(|&(p, q)| (p, q, false))
            .chain(den.iter().map(|&(p, q)| (p, q, true)))
            .collect();
        if terms.iter().all(|(p, q, _)| p.is_identity() || q.is_identity()) {
            return Ok(Gt::one(&self.params.fq));
        }
        let f = miller_loop_product(&terms, &self.params.r);
        Ok(Gt::from_fp2(final_exponentiation(&f, &self.params.h)?))
    }

    /// The pre-optimization pairing ratio: two *affine* Miller loops (one
    /// field inversion per curve step) sharing one final exponentiation.
    /// This is what [`Pairing::pair_ratio`] computed before the projective
    /// multi-pairing rewrite; it stays as the differential-test and
    /// benchmark baseline.
    ///
    /// # Errors
    ///
    /// Returns [`PairingError::DegeneratePairing`] if either Miller value
    /// vanishes.
    pub fn pair_ratio_reference(
        &self,
        p1: &G1,
        q1: &G1,
        p2: &G1,
        q2: &G1,
    ) -> Result<Gt, PairingError> {
        let mut f = Fp2::one(&self.params.fq);
        if !(p1.is_identity() || q1.is_identity()) {
            f = &f * &miller_loop(p1, q1, &self.params.r);
        }
        if !(p2.is_identity() || q2.is_identity()) {
            let f2 = miller_loop(p2, q2, &self.params.r);
            f = &f * &f2.invert().map_err(|_| PairingError::DegeneratePairing)?;
        }
        if f.is_one() {
            return Ok(Gt::one(&self.params.fq));
        }
        Ok(Gt::from_fp2(final_exponentiation_reference(&f, &self.params.h)?))
    }

    /// The pairing ratio `ê(P₁, Q₁) / ê(P₂, Q₂)`, computed with a single
    /// shared final exponentiation — the exact shape CP-ABE's
    /// `DecryptNode` evaluates once per satisfied leaf
    /// (`e(D_j, C_y) / e(D'_j, C'_y)`), at roughly half the
    /// final-exponentiation cost of two independent pairings.
    ///
    /// # Errors
    ///
    /// Same contract as [`Pairing::pair_product`].
    pub fn pair_ratio(&self, p1: &G1, q1: &G1, p2: &G1, q2: &G1) -> Result<Gt, PairingError> {
        self.pair_product(&[(p1, q1)], &[(p2, q2)])
    }

    /// [`Pairing::pair`] with the *first* argument's Miller walk served
    /// from `cache` (computed and stored under `tag` on a miss). The
    /// pairing is symmetric, so callers put the long-lived point — e.g. a
    /// puzzle's ciphertext-side public input — in the first slot and the
    /// per-request point in the second.
    ///
    /// # Errors
    ///
    /// Same contract as [`Pairing::pair`].
    pub fn pair_cached(
        &self,
        cache: &LineCache,
        tag: &[u8],
        fixed: &G1,
        q: &G1,
    ) -> Result<Gt, PairingError> {
        self.pair_product_cached(cache, tag, &[(fixed, q)], &[])
    }

    /// [`Pairing::pair_product`] with every term's *first* argument served
    /// from the line-evaluation cache — the warm-path shape of CP-ABE
    /// decryption, where the ciphertext-side points repeat across every
    /// display of the same puzzle. Produces exactly the value
    /// [`Pairing::pair_product`] computes for the same terms.
    ///
    /// # Errors
    ///
    /// Same contract as [`Pairing::pair_product`].
    pub fn pair_product_cached(
        &self,
        cache: &LineCache,
        tag: &[u8],
        num: &[(&G1, &G1)],
        den: &[(&G1, &G1)],
    ) -> Result<Gt, PairingError> {
        let pres: Vec<(Arc<LinePrecomp>, &G1, bool)> = num
            .iter()
            .map(|&(p, q)| (p, q, false))
            .chain(den.iter().map(|&(p, q)| (p, q, true)))
            .filter(|(p, q, _)| !p.is_identity() && !q.is_identity())
            .map(|(p, q, conj)| (cache.get_or_precompute(tag, p, &self.params.r), q, conj))
            .collect();
        if pres.is_empty() {
            return Ok(Gt::one(&self.params.fq));
        }
        let terms: Vec<(&LinePrecomp, &G1, bool)> =
            pres.iter().map(|(pre, q, conj)| (pre.as_ref(), *q, *conj)).collect();
        let f = miller_loop_precomputed(&terms, &self.params.r);
        Ok(Gt::from_fp2(final_exponentiation(&f, &self.params.h)?))
    }

    /// Uniformly random scalar in `Z_r`.
    pub fn random_scalar<R: Rng + ?Sized>(&self, rng: &mut R) -> Scalar {
        self.params.zr.random(rng)
    }

    /// Uniformly random *nonzero* scalar.
    pub fn random_nonzero_scalar<R: Rng + ?Sized>(&self, rng: &mut R) -> Scalar {
        self.params.zr.random_nonzero(rng)
    }

    /// Derives a scalar from arbitrary bytes (hash-to-`Z_r`).
    pub fn scalar_from_bytes(&self, data: &[u8]) -> Scalar {
        // 64 bytes of digest material, reduced mod r: bias ≤ 2^-96.
        let d1 = sha256_concat(&[b"sp/h2s/1", data]);
        let d2 = sha256_concat(&[b"sp/h2s/2", data]);
        let mut wide = [0u8; 64];
        wide[..32].copy_from_slice(&d1);
        wide[32..].copy_from_slice(&d2);
        let hi = Uint::<4>::from_be_bytes(&wide[..32]).expect("exact width");
        let lo = Uint::<4>::from_be_bytes(&wide[32..]).expect("exact width");
        let reduced = sp_bigint::reduce_wide(&hi, &lo, &self.params.r);
        self.params.zr.element(reduced)
    }

    /// Hashes arbitrary bytes to a point of `G1` (try-and-increment on the
    /// x-coordinate, then cofactor clearing).
    pub fn hash_to_g1(&self, data: &[u8]) -> G1 {
        hash_to_g1_inner(&self.params, data)
    }

    /// Scalar multiplication `[s]P` by a scalar in `Z_r`
    /// (sliding-window ladder).
    pub fn mul(&self, p: &G1, s: &Scalar) -> G1 {
        p.mul_uint_window(&s.to_uint())
    }

    /// Fixed-base scalar multiplication `[s]G` of the generator off the
    /// cached window table — no doublings, one mixed addition per nonzero
    /// scalar digit. First use per parameter set builds the table.
    pub fn mul_generator(&self, s: &Scalar) -> G1 {
        self.generator_table().mul(&s.to_uint())
    }

    fn generator_table(&self) -> &FixedBaseTable {
        self.params.gen_table.get_or_init(|| FixedBaseTable::new(&self.params.generator, 64 * 4))
    }

    /// A uniformly random point of `G1`.
    pub fn random_g1<R: Rng + ?Sized>(&self, rng: &mut R) -> G1 {
        self.mul(self.generator(), &self.random_scalar(rng))
    }

    /// A uniformly random element of `Gt` (a random power of
    /// `ê(G, G)`, which generates `Gt`).
    pub fn random_gt<R: Rng + ?Sized>(&self, rng: &mut R) -> Gt {
        let base = self
            .pair(self.generator(), self.generator())
            .expect("generator pairing is non-degenerate");
        base.pow(&self.random_scalar(rng).to_uint())
    }

    /// Decodes a `G1` point (see [`G1::from_bytes`]).
    ///
    /// # Errors
    ///
    /// Returns [`PairingError::BadPointEncoding`] for malformed encodings.
    pub fn g1_from_bytes(&self, bytes: &[u8]) -> Result<G1, PairingError> {
        G1::from_bytes(&self.params.fq, bytes)
    }

    /// Decodes a `Gt` element (see [`Gt::from_bytes`]).
    ///
    /// # Errors
    ///
    /// Returns [`PairingError::BadGtEncoding`] for malformed encodings.
    pub fn gt_from_bytes(&self, bytes: &[u8]) -> Result<Gt, PairingError> {
        Gt::from_bytes(&self.params.fq, bytes)
    }

    /// The identity of `Gt`.
    pub fn gt_one(&self) -> Gt {
        Gt::one(&self.params.fq)
    }
}

fn hash_to_g1_inner(params: &PairingParams, data: &[u8]) -> G1 {
    let fq = &params.fq;
    for counter in 0u32.. {
        let digest1 = sha256_concat(&[b"sp/h2g/1", &counter.to_be_bytes(), data]);
        let digest2 = sha256_concat(&[b"sp/h2g/2", &counter.to_be_bytes(), data]);
        let mut wide = [0u8; 64];
        wide[..32].copy_from_slice(&digest1);
        wide[32..].copy_from_slice(&digest2);
        let x = fq.from_be_bytes(&wide).expect("64 bytes fit Uint<8>");
        // y² = x³ + x
        let rhs = &(&x.square() * &x) + &x;
        if let Some(y) = rhs.sqrt() {
            // Canonicalize the root deterministically (pick the "even" one).
            let y = if y.to_uint().is_odd() { -&y } else { y };
            let point = G1::from_affine_unchecked(x, y);
            debug_assert!(point.is_on_curve());
            // Clear the cofactor to land in the order-r subgroup.
            let cleared = point.mul_uint_window(&params.h);
            if !cleared.is_identity() {
                return cleared;
            }
        }
    }
    unreachable!("hash-to-curve succeeds within a few counter increments")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairing() -> Pairing {
        Pairing::insecure_test_params()
    }

    #[test]
    fn parameters_are_consistent() {
        let p = pairing();
        // q + 1 = h·r
        let (prod, hi) = p.cofactor().widening_mul(&p.order().widen::<8>());
        assert!(hi.is_zero());
        assert_eq!(prod, p.fq().modulus().wrapping_add(&Uint::ONE));
        assert_eq!(p.fq().modulus().low_u64() & 3, 3);
        assert_eq!(p.zr().modulus(), p.order());
    }

    #[test]
    fn generator_has_order_r() {
        let p = pairing();
        let g = p.generator();
        assert!(g.is_on_curve());
        assert!(!g.is_identity());
        assert!(g.mul_uint(p.order()).is_identity());
    }

    #[test]
    fn group_laws() {
        let p = pairing();
        let mut rng = StdRng::seed_from_u64(40);
        let a = p.random_g1(&mut rng);
        let b = p.random_g1(&mut rng);
        let c = p.random_g1(&mut rng);
        assert_eq!(a.add(&b), b.add(&a));
        assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
        assert_eq!(a.add(&G1::identity()), a);
        assert!(a.add(&a.negate()).is_identity());
        assert_eq!(a.double(), a.add(&a));
        assert_eq!(a.sub(&b), a.add(&b.negate()));
    }

    #[test]
    fn scalar_mul_matches_addition() {
        let p = pairing();
        let g = p.generator();
        let mut acc = G1::identity();
        for k in 0u64..8 {
            assert_eq!(g.mul_uint(&Uint::<4>::from_u64(k)), acc, "k = {k}");
            acc = acc.add(g);
        }
    }

    #[test]
    fn jacobian_mul_matches_affine_reference() {
        let p = pairing();
        let mut rng = StdRng::seed_from_u64(47);
        for _ in 0..5 {
            let point = p.random_g1(&mut rng);
            let s = p.random_scalar(&mut rng);
            assert_eq!(point.mul_uint(&s.to_uint()), point.mul_uint_affine(&s.to_uint()));
        }
        // Edge scalars.
        let g = p.generator();
        for k in [0u64, 1, 2, 3] {
            assert_eq!(
                g.mul_uint(&Uint::<4>::from_u64(k)),
                g.mul_uint_affine(&Uint::<4>::from_u64(k))
            );
        }
        // Order and order±1.
        let r = *p.order();
        assert!(g.mul_uint(&r).is_identity());
        assert_eq!(g.mul_uint(&r.wrapping_add(&Uint::ONE)), *g);
        assert_eq!(g.mul_uint(&r.wrapping_sub(&Uint::ONE)), g.negate());
    }

    #[test]
    fn pairing_bilinearity() {
        let p = pairing();
        let mut rng = StdRng::seed_from_u64(41);
        let g = p.generator();
        let a = p.random_nonzero_scalar(&mut rng);
        let b = p.random_nonzero_scalar(&mut rng);
        let lhs = p.pair(&p.mul(g, &a), &p.mul(g, &b)).unwrap();
        let ab = &a * &b;
        let e = p.pair(g, g).unwrap();
        let rhs = e.pow(&ab.to_uint());
        assert_eq!(lhs, rhs);
        // And one argument at a time:
        assert_eq!(p.pair(&p.mul(g, &a), g).unwrap(), e.pow(&a.to_uint()));
        assert_eq!(p.pair(g, &p.mul(g, &b)).unwrap(), e.pow(&b.to_uint()));
    }

    #[test]
    fn pairing_non_degenerate_and_order_r() {
        let p = pairing();
        let g = p.generator();
        let e = p.pair(g, g).unwrap();
        assert!(!e.is_one());
        assert!(e.pow(p.order()).is_one());
    }

    #[test]
    fn pairing_identity_rules() {
        let p = pairing();
        let g = p.generator();
        assert!(p.pair(&G1::identity(), g).unwrap().is_one());
        assert!(p.pair(g, &G1::identity()).unwrap().is_one());
        assert!(p.pair(&G1::identity(), &G1::identity()).unwrap().is_one());
        // The reference path and the multi-pairing path agree on identities.
        assert!(p.pair_reference(&G1::identity(), g).unwrap().is_one());
        assert!(p.pair_product(&[(&G1::identity(), g)], &[(g, &G1::identity())]).unwrap().is_one());
    }

    #[test]
    fn pairing_symmetry() {
        let p = pairing();
        let mut rng = StdRng::seed_from_u64(42);
        let a = p.random_g1(&mut rng);
        let b = p.random_g1(&mut rng);
        assert_eq!(p.pair(&a, &b).unwrap(), p.pair(&b, &a).unwrap());
    }

    #[test]
    fn pair_ratio_matches_division_of_pairings() {
        let p = pairing();
        let mut rng = StdRng::seed_from_u64(48);
        for _ in 0..3 {
            let a = p.random_g1(&mut rng);
            let b = p.random_g1(&mut rng);
            let c = p.random_g1(&mut rng);
            let d = p.random_g1(&mut rng);
            let naive = p.pair(&a, &b).unwrap().div(&p.pair(&c, &d).unwrap());
            assert_eq!(p.pair_ratio(&a, &b, &c, &d).unwrap(), naive);
        }
        // Identity slots behave like e(...) = 1 in that slot.
        let g = p.generator();
        let e = p.pair(g, g).unwrap();
        assert_eq!(p.pair_ratio(&G1::identity(), g, g, g).unwrap(), e.inverse());
        assert_eq!(p.pair_ratio(g, g, &G1::identity(), g).unwrap(), e);
        assert!(p.pair_ratio(&G1::identity(), g, g, &G1::identity()).unwrap().is_one());
    }

    #[test]
    fn pairing_negation() {
        let p = pairing();
        let mut rng = StdRng::seed_from_u64(43);
        let a = p.random_g1(&mut rng);
        let b = p.random_g1(&mut rng);
        let e = p.pair(&a, &b).unwrap();
        assert_eq!(p.pair(&a.negate(), &b).unwrap(), e.inverse());
        assert!(e.mul(&p.pair(&a.negate(), &b).unwrap()).is_one());
    }

    #[test]
    fn hash_to_g1_properties() {
        let p = pairing();
        let h1 = p.hash_to_g1(b"attribute: where=lakeside");
        let h2 = p.hash_to_g1(b"attribute: where=lakeside");
        let h3 = p.hash_to_g1(b"attribute: who=priya");
        assert_eq!(h1, h2, "deterministic");
        assert_ne!(h1, h3, "input-sensitive");
        assert!(h1.is_on_curve());
        assert!(h1.mul_uint(p.order()).is_identity(), "in the order-r subgroup");
    }

    #[test]
    fn scalar_from_bytes_is_deterministic_and_reduced() {
        let p = pairing();
        let s1 = p.scalar_from_bytes(b"seed");
        let s2 = p.scalar_from_bytes(b"seed");
        let s3 = p.scalar_from_bytes(b"other");
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
        assert!(s1.to_uint() < *p.order());
    }

    #[test]
    fn point_serialization_roundtrip() {
        let p = pairing();
        let mut rng = StdRng::seed_from_u64(44);
        let a = p.random_g1(&mut rng);
        let bytes = a.to_bytes();
        assert_eq!(p.g1_from_bytes(&bytes).unwrap(), a);
        let inf = G1::identity();
        assert_eq!(p.g1_from_bytes(&inf.to_bytes()).unwrap(), inf);
        // Corrupt encoding: flip a byte in y.
        let mut bad = bytes.clone();
        bad[100] ^= 1;
        assert_eq!(p.g1_from_bytes(&bad).unwrap_err(), PairingError::BadPointEncoding);
        assert!(p.g1_from_bytes(&[]).is_err());
        assert!(p.g1_from_bytes(&[2]).is_err());
    }

    #[test]
    fn double_scalar_mul_matches_separate_ladders() {
        let p = pairing();
        let mut rng = StdRng::seed_from_u64(50);
        for _ in 0..5 {
            let g = p.random_g1(&mut rng);
            let h = p.random_g1(&mut rng);
            let a = p.random_scalar(&mut rng).to_uint();
            let b = p.random_scalar(&mut rng).to_uint();
            let fused = g.double_scalar_mul(&a, &h, &b);
            let separate = g.mul_uint(&a).add(&h.mul_uint(&b));
            assert_eq!(fused, separate);
            assert_eq!(fused, g.double_scalar_mul_reference(&a, &h, &b));
        }
        // Degenerate scalars.
        let g = p.generator();
        let zero = Uint::<4>::ZERO;
        let one = Uint::<4>::ONE;
        assert!(g.double_scalar_mul(&zero, g, &zero).is_identity());
        assert_eq!(g.double_scalar_mul(&one, g, &zero), *g);
        assert_eq!(g.double_scalar_mul(&zero, g, &one), *g);
        assert_eq!(g.double_scalar_mul(&one, g, &one), g.double());
        // a·G + b·(−G) with a == b cancels.
        let neg = g.negate();
        let s = p.random_scalar(&mut rng).to_uint();
        assert!(g.double_scalar_mul(&s, &neg, &s).is_identity());
    }

    #[test]
    fn split_scalar_mul_matches_window_mul() {
        let p = pairing();
        let mut rng = StdRng::seed_from_u64(63);
        let before = crate::stats::snapshot();
        for _ in 0..8 {
            let point = p.random_g1(&mut rng);
            let s = p.random_scalar(&mut rng).to_uint();
            assert_eq!(point.mul_uint_split(&s), point.mul_uint_window(&s));
        }
        let after = crate::stats::snapshot();
        assert!(after.split_scalar_mul >= before.split_scalar_mul + 8, "split path taken");
        // Edge scalars, including ones below the split threshold.
        let g = p.generator();
        for k in [0u64, 1, 2, 3, 15, 16, 17, 255, 1 << 11, u64::MAX] {
            let k = Uint::<4>::from_u64(k);
            assert_eq!(g.mul_uint_split(&k), g.mul_uint_window(&k));
        }
        let r = *p.order();
        assert!(g.mul_uint_split(&r).is_identity());
        assert_eq!(g.mul_uint_split(&r.wrapping_sub(&Uint::ONE)), g.negate());
        assert_eq!(g.mul_uint_split(&r.wrapping_add(&Uint::ONE)), *g);
        // Wide (cofactor-sized) scalars.
        assert_eq!(g.mul_uint_split(p.cofactor()), g.mul_uint_window(p.cofactor()));
        assert!(G1::identity().mul_uint_split(&r).is_identity());
    }

    #[test]
    fn compressed_point_roundtrip() {
        let p = pairing();
        let mut rng = StdRng::seed_from_u64(49);
        for _ in 0..10 {
            let a = p.random_g1(&mut rng);
            let compressed = a.to_bytes_compressed();
            assert_eq!(compressed.len(), 65);
            let back = G1::from_bytes_compressed(p.fq(), &compressed).unwrap();
            assert_eq!(back, a);
        }
        let inf = G1::identity();
        assert_eq!(G1::from_bytes_compressed(p.fq(), &inf.to_bytes_compressed()).unwrap(), inf);
        // Bad tag / bad length / non-residue x.
        assert!(G1::from_bytes_compressed(p.fq(), &[7u8; 65]).is_err());
        assert!(G1::from_bytes_compressed(p.fq(), &[2u8; 10]).is_err());
        // Find an x with no curve point (x³+x a non-residue).
        let mut probe = p.fq().from_u64(2);
        loop {
            let rhs = &(&probe.square() * &probe) + &probe;
            if rhs.sqrt().is_none() {
                let mut enc = vec![2u8];
                enc.extend_from_slice(&probe.to_be_bytes());
                assert!(G1::from_bytes_compressed(p.fq(), &enc).is_err());
                break;
            }
            probe = &probe + &p.fq().one();
        }
    }

    #[test]
    fn gt_serialization_roundtrip() {
        let p = pairing();
        let mut rng = StdRng::seed_from_u64(45);
        let e = p.random_gt(&mut rng);
        assert_eq!(p.gt_from_bytes(&e.to_bytes()).unwrap(), e);
        assert!(p.gt_from_bytes(&[1, 2, 3]).is_err());
    }

    #[test]
    fn gt_group_laws() {
        let p = pairing();
        let mut rng = StdRng::seed_from_u64(46);
        let a = p.random_gt(&mut rng);
        let b = p.random_gt(&mut rng);
        assert_eq!(a.mul(&b), b.mul(&a));
        assert!(a.div(&a).is_one());
        assert!(a.mul(&a.inverse()).is_one());
        assert_eq!(a.pow(&Uint::<4>::from_u64(3)), a.mul(&a).mul(&a));
        assert!(a.pow(p.order()).is_one(), "Gt elements have order dividing r");
    }

    #[test]
    fn window_mul_matches_textbook_ladder() {
        let p = pairing();
        let mut rng = StdRng::seed_from_u64(51);
        for _ in 0..8 {
            let point = p.random_g1(&mut rng);
            let s = p.random_scalar(&mut rng);
            assert_eq!(point.mul_uint_window(&s.to_uint()), point.mul_uint(&s.to_uint()));
        }
        let g = p.generator();
        for k in [0u64, 1, 2, 3, 15, 16, 17, 255] {
            let k = Uint::<4>::from_u64(k);
            assert_eq!(g.mul_uint_window(&k), g.mul_uint(&k));
        }
        let r = *p.order();
        assert!(g.mul_uint_window(&r).is_identity());
        assert_eq!(g.mul_uint_window(&r.wrapping_sub(&Uint::ONE)), g.negate());
        // Wide (cofactor-sized) scalars as used by cofactor clearing.
        assert_eq!(g.mul_uint_window(p.cofactor()), g.mul_uint(p.cofactor()));
    }

    #[test]
    fn fixed_base_table_matches_textbook_ladder() {
        let p = pairing();
        let g = p.generator();
        let table = crate::curve::FixedBaseTable::new(g, 64 * 4);
        let mut rng = StdRng::seed_from_u64(52);
        for _ in 0..8 {
            let s = p.random_scalar(&mut rng);
            assert_eq!(table.mul(&s.to_uint()), g.mul_uint(&s.to_uint()));
        }
        for k in [0u64, 1, 2, 15, 16, u64::MAX] {
            let k = Uint::<4>::from_u64(k);
            assert_eq!(table.mul(&k), g.mul_uint(&k));
        }
        let r = *p.order();
        assert!(table.mul(&r).is_identity());
        assert_eq!(table.mul(&r.wrapping_add(&Uint::ONE)), *g);
        // Identity base.
        let empty = crate::curve::FixedBaseTable::new(&G1::identity(), 64 * 4);
        assert!(empty.mul(&Uint::<4>::from_u64(7)).is_identity());
    }

    #[test]
    fn mul_generator_uses_the_cached_table() {
        let p = pairing();
        let mut rng = StdRng::seed_from_u64(53);
        for _ in 0..4 {
            let s = p.random_scalar(&mut rng);
            assert_eq!(p.mul_generator(&s), p.mul(p.generator(), &s));
        }
    }

    #[test]
    fn projective_pairing_matches_affine_reference() {
        let p = pairing();
        let mut rng = StdRng::seed_from_u64(54);
        for _ in 0..4 {
            let a = p.random_g1(&mut rng);
            let b = p.random_g1(&mut rng);
            assert_eq!(p.pair(&a, &b).unwrap(), p.pair_reference(&a, &b).unwrap());
        }
        let g = p.generator();
        assert_eq!(p.pair(g, g).unwrap(), p.pair_reference(g, g).unwrap());
    }

    #[test]
    fn pair_product_matches_naive_products() {
        let p = pairing();
        let mut rng = StdRng::seed_from_u64(55);
        let points: Vec<G1> = (0..8).map(|_| p.random_g1(&mut rng)).collect();
        // Π e(p_i, p_{i+1}) over pairs, divided by Π of the reversed pairs.
        let num: Vec<(&G1, &G1)> = vec![(&points[0], &points[1]), (&points[2], &points[3])];
        let den: Vec<(&G1, &G1)> = vec![(&points[4], &points[5]), (&points[6], &points[7])];
        let naive = p
            .pair(&points[0], &points[1])
            .unwrap()
            .mul(&p.pair(&points[2], &points[3]).unwrap())
            .div(&p.pair(&points[4], &points[5]).unwrap())
            .div(&p.pair(&points[6], &points[7]).unwrap());
        assert_eq!(p.pair_product(&num, &den).unwrap(), naive);
        // Numerator-only and denominator-only shapes.
        assert_eq!(
            p.pair_product(&num, &[]).unwrap(),
            p.pair(&points[0], &points[1]).unwrap().mul(&p.pair(&points[2], &points[3]).unwrap())
        );
        assert_eq!(
            p.pair_product(&[], &den[..1]).unwrap(),
            p.pair(&points[4], &points[5]).unwrap().inverse()
        );
        // Identity terms drop out.
        let id = G1::identity();
        assert_eq!(
            p.pair_product(&[(&points[0], &points[1]), (&id, &points[2])], &[]).unwrap(),
            p.pair(&points[0], &points[1]).unwrap()
        );
        assert!(p.pair_product(&[(&id, &points[0])], &[(&points[1], &id)]).unwrap().is_one());
        assert!(p.pair_product(&[], &[]).unwrap().is_one());
    }

    #[test]
    fn cached_pairing_matches_uncached() {
        let p = pairing();
        let cache = LineCache::new();
        let mut rng = StdRng::seed_from_u64(56);
        let fixed = p.random_g1(&mut rng);
        let before = crate::stats::snapshot();
        for _ in 0..3 {
            let q = p.random_g1(&mut rng);
            assert_eq!(
                p.pair_cached(&cache, b"tag", &fixed, &q).unwrap(),
                p.pair(&fixed, &q).unwrap()
            );
        }
        let after = crate::stats::snapshot();
        assert_eq!(after.line_cache_misses - before.line_cache_misses, 1);
        assert_eq!(after.line_cache_hits - before.line_cache_hits, 2);
        // Identity slots short-circuit without touching the cache.
        let g = p.generator();
        assert!(p.pair_cached(&cache, b"tag", &G1::identity(), g).unwrap().is_one());
        assert!(p.pair_cached(&cache, b"tag", g, &G1::identity()).unwrap().is_one());
    }

    #[test]
    fn cached_pair_product_matches_uncached() {
        let p = pairing();
        let cache = LineCache::new();
        let mut rng = StdRng::seed_from_u64(57);
        let points: Vec<G1> = (0..6).map(|_| p.random_g1(&mut rng)).collect();
        let num: Vec<(&G1, &G1)> = vec![(&points[0], &points[1]), (&points[2], &points[3])];
        let den: Vec<(&G1, &G1)> = vec![(&points[4], &points[5])];
        let want = p.pair_product(&num, &den).unwrap();
        // Cold, then warm: the answer never changes.
        assert_eq!(p.pair_product_cached(&cache, b"pz", &num, &den).unwrap(), want);
        assert_eq!(p.pair_product_cached(&cache, b"pz", &num, &den).unwrap(), want);
        assert_eq!(cache.len(), 3);
        // Identity terms drop out like in the uncached product.
        let id = G1::identity();
        assert_eq!(
            p.pair_product_cached(
                &cache,
                b"pz",
                &[(&points[0], &points[1]), (&id, &points[2])],
                &[]
            )
            .unwrap(),
            p.pair(&points[0], &points[1]).unwrap()
        );
        assert!(p.pair_product_cached(&cache, b"pz", &[], &[]).unwrap().is_one());
        // Invalidation empties the tag and the next call still agrees.
        assert_eq!(cache.invalidate(b"pz"), 3);
        assert_eq!(p.pair_product_cached(&cache, b"pz", &num, &den).unwrap(), want);
    }

    #[test]
    fn default_params_are_cached_and_512_bit() {
        let p1 = Pairing::default_params();
        let p2 = Pairing::default_params();
        assert_eq!(p1.fq().modulus(), p2.fq().modulus());
        assert_eq!(p1.fq().modulus().bit_len(), 512);
        assert_eq!(p1.order().bit_len(), 160);
    }
}
