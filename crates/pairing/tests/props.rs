//! Property-based tests of the pairing's algebraic laws.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sp_pairing::{Pairing, G1};

fn pairing() -> Pairing {
    Pairing::insecure_test_params()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn bilinearity_in_both_slots(seed in any::<u64>()) {
        let p = pairing();
        let mut rng = StdRng::seed_from_u64(seed);
        let g = p.generator();
        let a = p.random_nonzero_scalar(&mut rng);
        let b = p.random_nonzero_scalar(&mut rng);
        let ga = p.mul(g, &a);
        let gb = p.mul(g, &b);
        let e_gg = p.pair(g, g);
        prop_assert_eq!(p.pair(&ga, &gb), e_gg.pow_scalar(&(&a * &b)));
        prop_assert_eq!(p.pair(&ga, g), e_gg.pow_scalar(&a));
        prop_assert_eq!(p.pair(g, &gb), e_gg.pow_scalar(&b));
    }

    #[test]
    fn pairing_of_sum_is_product(seed in any::<u64>()) {
        let p = pairing();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = p.random_g1(&mut rng);
        let b = p.random_g1(&mut rng);
        let c = p.random_g1(&mut rng);
        // e(a + b, c) = e(a, c) · e(b, c)
        prop_assert_eq!(
            p.pair(&a.add(&b), &c),
            p.pair(&a, &c).mul(&p.pair(&b, &c))
        );
    }

    #[test]
    fn group_is_abelian_and_associative(seed in any::<u64>()) {
        let p = pairing();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = p.random_g1(&mut rng);
        let b = p.random_g1(&mut rng);
        let c = p.random_g1(&mut rng);
        prop_assert_eq!(a.add(&b), b.add(&a));
        prop_assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
        prop_assert!(a.sub(&a).is_identity());
        prop_assert!(a.add(&G1::identity()) == a);
    }

    #[test]
    fn scalar_mul_distributes(seed in any::<u64>()) {
        let p = pairing();
        let mut rng = StdRng::seed_from_u64(seed);
        let g = p.random_g1(&mut rng);
        let a = p.random_scalar(&mut rng);
        let b = p.random_scalar(&mut rng);
        // (a + b)·G = a·G + b·G
        prop_assert_eq!(
            p.mul(&g, &(&a + &b)),
            p.mul(&g, &a).add(&p.mul(&g, &b))
        );
        // (a·b)·G = a·(b·G)
        prop_assert_eq!(
            p.mul(&g, &(&a * &b)),
            p.mul(&p.mul(&g, &b), &a)
        );
    }

    #[test]
    fn points_serialize_roundtrip(seed in any::<u64>()) {
        let p = pairing();
        let mut rng = StdRng::seed_from_u64(seed);
        let g = p.random_g1(&mut rng);
        prop_assert_eq!(p.g1_from_bytes(&g.to_bytes()).unwrap(), g);
        let e = p.random_gt(&mut rng);
        prop_assert_eq!(p.gt_from_bytes(&e.to_bytes()).unwrap(), e);
    }

    #[test]
    fn hash_to_g1_lands_in_subgroup(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let p = pairing();
        let h = p.hash_to_g1(&data);
        prop_assert!(h.is_on_curve());
        prop_assert!(!h.is_identity());
        prop_assert!(h.mul_uint(p.order()).is_identity());
    }
}
