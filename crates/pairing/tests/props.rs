//! Property-based tests of the pairing's algebraic laws.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sp_pairing::{Pairing, G1};

fn pairing() -> Pairing {
    Pairing::insecure_test_params()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn bilinearity_in_both_slots(seed in any::<u64>()) {
        let p = pairing();
        let mut rng = StdRng::seed_from_u64(seed);
        let g = p.generator();
        let a = p.random_nonzero_scalar(&mut rng);
        let b = p.random_nonzero_scalar(&mut rng);
        let ga = p.mul(g, &a);
        let gb = p.mul(g, &b);
        let e_gg = p.pair(g, g).unwrap();
        prop_assert_eq!(p.pair(&ga, &gb).unwrap(), e_gg.pow_scalar(&(&a * &b)));
        prop_assert_eq!(p.pair(&ga, g).unwrap(), e_gg.pow_scalar(&a));
        prop_assert_eq!(p.pair(g, &gb).unwrap(), e_gg.pow_scalar(&b));
    }

    #[test]
    fn pairing_of_sum_is_product(seed in any::<u64>()) {
        let p = pairing();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = p.random_g1(&mut rng);
        let b = p.random_g1(&mut rng);
        let c = p.random_g1(&mut rng);
        // e(a + b, c) = e(a, c) · e(b, c)
        prop_assert_eq!(
            p.pair(&a.add(&b), &c).unwrap(),
            p.pair(&a, &c).unwrap().mul(&p.pair(&b, &c).unwrap())
        );
    }

    #[test]
    fn group_is_abelian_and_associative(seed in any::<u64>()) {
        let p = pairing();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = p.random_g1(&mut rng);
        let b = p.random_g1(&mut rng);
        let c = p.random_g1(&mut rng);
        prop_assert_eq!(a.add(&b), b.add(&a));
        prop_assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
        prop_assert!(a.sub(&a).is_identity());
        prop_assert!(a.add(&G1::identity()) == a);
    }

    #[test]
    fn scalar_mul_distributes(seed in any::<u64>()) {
        let p = pairing();
        let mut rng = StdRng::seed_from_u64(seed);
        let g = p.random_g1(&mut rng);
        let a = p.random_scalar(&mut rng);
        let b = p.random_scalar(&mut rng);
        // (a + b)·G = a·G + b·G
        prop_assert_eq!(
            p.mul(&g, &(&a + &b)),
            p.mul(&g, &a).add(&p.mul(&g, &b))
        );
        // (a·b)·G = a·(b·G)
        prop_assert_eq!(
            p.mul(&g, &(&a * &b)),
            p.mul(&p.mul(&g, &b), &a)
        );
    }

    #[test]
    fn points_serialize_roundtrip(seed in any::<u64>()) {
        let p = pairing();
        let mut rng = StdRng::seed_from_u64(seed);
        let g = p.random_g1(&mut rng);
        prop_assert_eq!(p.g1_from_bytes(&g.to_bytes()).unwrap(), g);
        let e = p.random_gt(&mut rng);
        prop_assert_eq!(p.gt_from_bytes(&e.to_bytes()).unwrap(), e);
    }

    #[test]
    fn hash_to_g1_lands_in_subgroup(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let p = pairing();
        let h = p.hash_to_g1(&data);
        prop_assert!(h.is_on_curve());
        prop_assert!(!h.is_identity());
        prop_assert!(h.mul_uint(p.order()).is_identity());
    }
}

// Fast-path equivalence: the optimized routines (sliding-window and
// fixed-base-table scalar multiplication, product-of-pairings Miller
// loop) must agree with the textbook shapes they replaced on every
// random input, including identity and small-order corner cases.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn windowed_and_table_muls_match_textbook(seed in any::<u64>()) {
        let p = pairing();
        let mut rng = StdRng::seed_from_u64(seed);
        let base = p.random_g1(&mut rng);
        let s = p.random_nonzero_scalar(&mut rng);
        let want = base.mul_uint(&s.to_uint());
        prop_assert_eq!(base.mul_uint_window(&s.to_uint()), want.clone());
        let table = sp_pairing::FixedBaseTable::new(&base, 256);
        prop_assert_eq!(table.mul(&s.to_uint()), want);
        // The cached generator table behind mul_generator too.
        prop_assert_eq!(p.mul_generator(&s), p.generator().mul_uint(&s.to_uint()));
        // Degenerate scalars.
        prop_assert!(table.mul(&sp_bigint::Uint::<4>::ZERO).is_identity());
        prop_assert!(G1::identity().mul_uint_window(&s.to_uint()).is_identity());
    }

    #[test]
    fn product_of_pairings_matches_individual_pairings(
        seed in any::<u64>(),
        n_num in 1usize..4,
        n_den in 0usize..3,
    ) {
        let p = pairing();
        let mut rng = StdRng::seed_from_u64(seed);
        let num: Vec<(G1, G1)> =
            (0..n_num).map(|_| (p.random_g1(&mut rng), p.random_g1(&mut rng))).collect();
        let den: Vec<(G1, G1)> =
            (0..n_den).map(|_| (p.random_g1(&mut rng), p.random_g1(&mut rng))).collect();
        let mut want = p.gt_one();
        for (a, b) in &num {
            want = want.mul(&p.pair_reference(a, b).unwrap());
        }
        for (a, b) in &den {
            want = want.div(&p.pair_reference(a, b).unwrap());
        }
        let num_refs: Vec<(&G1, &G1)> = num.iter().map(|(a, b)| (a, b)).collect();
        let den_refs: Vec<(&G1, &G1)> = den.iter().map(|(a, b)| (a, b)).collect();
        prop_assert_eq!(p.pair_product(&num_refs, &den_refs).unwrap(), want);
        // Identity terms drop out instead of poisoning the product.
        let id = G1::identity();
        let with_id: Vec<(&G1, &G1)> = num_refs
            .iter()
            .copied()
            .chain(std::iter::once((&id, &num[0].1)))
            .collect();
        prop_assert_eq!(
            p.pair_product(&with_id, &den_refs).unwrap(),
            p.pair_product(&num_refs, &den_refs).unwrap()
        );
    }
}

// Second-wave kernel equivalence: cyclotomic final exponentiation,
// split/Straus scalar multiplication, the norm-1 Gt::pow fast path, and
// the line-evaluation cache must each reproduce their reference twin
// bit-for-bit on random inputs.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn optimized_pairing_matches_reference(seed in any::<u64>()) {
        let p = pairing();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = p.random_g1(&mut rng);
        let b = p.random_g1(&mut rng);
        // Precomputed Miller loop + cyclotomic final exponentiation vs
        // the affine loop + generic-pow final exponentiation.
        prop_assert_eq!(p.pair(&a, &b).unwrap(), p.pair_reference(&a, &b).unwrap());
    }

    #[test]
    fn split_and_straus_muls_match_reference(seed in any::<u64>()) {
        let p = pairing();
        let mut rng = StdRng::seed_from_u64(seed);
        let g = p.random_g1(&mut rng);
        let h = p.random_g1(&mut rng);
        let a = p.random_scalar(&mut rng).to_uint();
        let b = p.random_scalar(&mut rng).to_uint();
        prop_assert_eq!(g.mul_uint_split(&a), g.mul_uint(&a));
        prop_assert_eq!(
            g.double_scalar_mul(&a, &h, &b),
            g.double_scalar_mul_reference(&a, &h, &b)
        );
        prop_assert_eq!(
            g.double_scalar_mul(&a, &h, &b),
            g.mul_uint(&a).add(&h.mul_uint(&b))
        );
        // Degenerate shapes.
        let zero = sp_bigint::Uint::<4>::ZERO;
        prop_assert!(g.mul_uint_split(&zero).is_identity());
        prop_assert_eq!(g.double_scalar_mul(&a, &h, &zero), g.mul_uint(&a));
        prop_assert!(G1::identity().mul_uint_split(&a).is_identity());
    }

    #[test]
    fn gt_pow_fast_path_matches_reference(seed in any::<u64>(), e in any::<[u64; 4]>()) {
        let p = pairing();
        let mut rng = StdRng::seed_from_u64(seed);
        let x = p.random_gt(&mut rng); // norm 1: takes the cyclotomic path
        let e = sp_bigint::Uint::<4>::from_limbs(e);
        prop_assert_eq!(x.pow(&e), x.pow_reference(&e));
    }

    #[test]
    fn cached_pairing_matches_uncached(seed in any::<u64>()) {
        let p = pairing();
        let mut rng = StdRng::seed_from_u64(seed);
        let cache = sp_pairing::LineCache::new();
        let a = p.random_g1(&mut rng);
        let b = p.random_g1(&mut rng);
        let c = p.random_g1(&mut rng);
        let want = p.pair(&a, &b).unwrap();
        // Cold miss, then warm hit, must both equal the uncached value.
        prop_assert_eq!(p.pair_cached(&cache, b"t", &a, &b).unwrap(), want.clone());
        prop_assert_eq!(p.pair_cached(&cache, b"t", &a, &b).unwrap(), want);
        // Product form against its uncached twin, reusing the cached walk.
        let num = [(&a, &b), (&c, &b)];
        let den = [(&a, &c)];
        prop_assert_eq!(
            p.pair_product_cached(&cache, b"t", &num, &den).unwrap(),
            p.pair_product(&num, &den).unwrap()
        );
        // Invalidation forces a recompute that still agrees.
        cache.invalidate(b"t");
        prop_assert_eq!(
            p.pair_cached(&cache, b"t", &a, &b).unwrap(),
            p.pair(&a, &b).unwrap()
        );
    }
}
