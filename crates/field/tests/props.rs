//! Property-based tests of the field axioms over `F_p` and `F_{p²}`.

use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sp_bigint::Uint;
use sp_field::{FieldCtx, Fp2};

fn f_large() -> Arc<FieldCtx<4>> {
    // 2^255 - 19 (≡ 1 mod 4 is fine for Fp; Fp2 tests use the 3 mod 4 one)
    FieldCtx::new(
        Uint::from_hex("7fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffed").unwrap(),
    )
    .unwrap()
}

fn f_3mod4() -> Arc<FieldCtx<4>> {
    // The NIST P-256 prime is ≡ 3 mod 4.
    FieldCtx::new(
        Uint::from_hex("ffffffff00000001000000000000000000000000ffffffffffffffffffffffff").unwrap(),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fp_field_axioms(seed in any::<u64>()) {
        let f = f_large();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = f.random(&mut rng);
        let b = f.random(&mut rng);
        let c = f.random(&mut rng);
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        prop_assert_eq!(&a - &a, f.zero());
        prop_assert_eq!(&a * &f.one(), a.clone());
        prop_assert_eq!(-(-&a), a);
    }

    #[test]
    fn fp_inverse_and_sqrt(seed in any::<u64>()) {
        let f = f_3mod4();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = f.random_nonzero(&mut rng);
        let inv = a.invert().unwrap();
        prop_assert!((&a * &inv).is_one());
        // a² is always a residue; its root squares back.
        let sq = a.square();
        let root = sq.sqrt().expect("squares are residues");
        prop_assert_eq!(root.square(), sq);
        prop_assert_eq!(a.square().legendre(), 1);
    }

    #[test]
    fn fp_pow_laws(seed in any::<u64>(), e1 in 0u64..1000, e2 in 0u64..1000) {
        let f = f_large();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = f.random_nonzero(&mut rng);
        let lhs = a.pow(&Uint::<4>::from_u64(e1 + e2));
        let rhs = &a.pow(&Uint::<4>::from_u64(e1)) * &a.pow(&Uint::<4>::from_u64(e2));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn fp2_field_axioms(seed in any::<u64>()) {
        let f = f_3mod4();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Fp2::random(&f, &mut rng);
        let b = Fp2::random(&f, &mut rng);
        let c = Fp2::random(&f, &mut rng);
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        prop_assert_eq!(a.square(), &a * &a);
        if !a.is_zero() {
            prop_assert!((&a * &a.invert().unwrap()).is_one());
        }
    }

    #[test]
    fn fp2_conjugation_is_field_automorphism(seed in any::<u64>()) {
        let f = f_3mod4();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Fp2::random(&f, &mut rng);
        let b = Fp2::random(&f, &mut rng);
        prop_assert_eq!((&a * &b).conjugate(), &a.conjugate() * &b.conjugate());
        prop_assert_eq!((&a + &b).conjugate(), &a.conjugate() + &b.conjugate());
        prop_assert_eq!(a.conjugate().conjugate(), a.clone());
        // Norm = a · conj(a) is in the base field and multiplicative.
        prop_assert_eq!((&a * &b).norm(), &a.norm() * &b.norm());
    }

    #[test]
    fn fp_serialization_roundtrip(seed in any::<u64>()) {
        let f = f_3mod4();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = f.random(&mut rng);
        prop_assert_eq!(f.from_be_bytes(&a.to_be_bytes()).unwrap(), a.clone());
        let x = Fp2::random(&f, &mut rng);
        prop_assert_eq!(Fp2::from_be_bytes(&f, &x.to_be_bytes()).unwrap(), x);
    }
}

// Batch-inversion equivalence: Montgomery's trick must agree with the
// per-element inversion it amortizes, with zeros anywhere in the batch
// left in place rather than poisoning their neighbors.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batch_invert_matches_per_element_inversion(
        seed in any::<u64>(),
        len in 0usize..24,
        zero_mask in any::<u32>(),
    ) {
        let f = f_3mod4();
        let mut rng = StdRng::seed_from_u64(seed);
        let original: Vec<_> = (0..len)
            .map(|i| if zero_mask & (1 << i) != 0 { f.zero() } else { f.random(&mut rng) })
            .collect();
        let mut batch = original.clone();
        let inverted = sp_field::batch_invert(&mut batch);
        let mut nonzero = 0usize;
        for (got, orig) in batch.iter().zip(&original) {
            match orig.invert() {
                Ok(inv) => {
                    nonzero += 1;
                    prop_assert_eq!(got.clone(), inv);
                }
                Err(_) => prop_assert_eq!(got.clone(), orig.clone()),
            }
        }
        prop_assert_eq!(inverted, nonzero);
    }
}

// Kernel-equivalence suite: the lazy-reduction F_{p²} multiply/square
// and the cyclotomic (norm-1) exponentiation ladder must agree with the
// retained reference twins on every random input.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fp2_lazy_kernels_match_reference(seed in any::<u64>()) {
        let f = f_3mod4();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Fp2::random(&f, &mut rng);
        let b = Fp2::random(&f, &mut rng);
        prop_assert_eq!(&a * &b, a.mul_reference(&b));
        prop_assert_eq!(a.square(), a.square_reference());
        prop_assert_eq!(a.square(), &a * &a);
    }

    #[test]
    fn cyclotomic_ops_match_generic_on_norm1(seed in any::<u64>(), e in any::<[u64; 4]>()) {
        let f = f_3mod4();
        let mut rng = StdRng::seed_from_u64(seed);
        // conj(a)/a has norm 1 for any nonzero a — the cyclotomic
        // subgroup the final exponentiation lands in.
        let mut a = Fp2::random(&f, &mut rng);
        while a.is_zero() {
            a = Fp2::random(&f, &mut rng);
        }
        let u = &a.conjugate() * &a.invert().unwrap();
        prop_assert_eq!(u.cyclotomic_square(), u.square());
        let e = Uint::<4>::from_limbs(e);
        prop_assert_eq!(u.pow_norm1(&e), u.pow(&e));
        prop_assert!(u.pow_norm1(&Uint::<4>::ZERO).is_one());
    }
}
