//! The quadratic extension `F_{p²} = F_p[i]/(i² + 1)`.
//!
//! Requires `p ≡ 3 (mod 4)` so that `−1` is a quadratic non-residue and
//! `x² + 1` is irreducible. This is the target field of the Type-A
//! pairing: pairing values live in the order-`p+1` "norm-one" subgroup of
//! `F_{p²}^*`, where inversion is conjugation.

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};
use std::sync::Arc;

use rand::Rng;
use sp_bigint::Uint;

use crate::error::FieldError;
use crate::fp::{FieldCtx, Fp};

/// An element `c0 + c1·i` of `F_{p²}`.
#[derive(Clone, PartialEq, Eq)]
pub struct Fp2<const L: usize> {
    c0: Fp<L>,
    c1: Fp<L>,
}

impl<const L: usize> Fp2<L> {
    /// Builds an element from its two coefficients.
    ///
    /// # Errors
    ///
    /// Returns [`FieldError::Not3Mod4`] if the base field modulus is not
    /// `3 (mod 4)` (the extension would not be a field).
    pub fn new(c0: Fp<L>, c1: Fp<L>) -> Result<Self, FieldError> {
        if !c0.ctx().is_3mod4() {
            return Err(FieldError::Not3Mod4);
        }
        Ok(Self { c0, c1 })
    }

    /// The zero element.
    pub fn zero(ctx: &Arc<FieldCtx<L>>) -> Self {
        Self { c0: ctx.zero(), c1: ctx.zero() }
    }

    /// The one element.
    pub fn one(ctx: &Arc<FieldCtx<L>>) -> Self {
        Self { c0: ctx.one(), c1: ctx.zero() }
    }

    /// Embeds a base-field element (imaginary part zero).
    pub fn from_fp(c0: Fp<L>) -> Self {
        let c1 = c0.ctx().zero();
        Self { c0, c1 }
    }

    /// Uniformly random element.
    pub fn random<R: Rng + ?Sized>(ctx: &Arc<FieldCtx<L>>, rng: &mut R) -> Self {
        Self { c0: ctx.random(rng), c1: ctx.random(rng) }
    }

    /// The real coefficient.
    pub fn c0(&self) -> &Fp<L> {
        &self.c0
    }

    /// The imaginary coefficient.
    pub fn c1(&self) -> &Fp<L> {
        &self.c1
    }

    /// Returns `true` for the additive identity.
    pub fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero()
    }

    /// Returns `true` for the multiplicative identity.
    pub fn is_one(&self) -> bool {
        self.c0.is_one() && self.c1.is_zero()
    }

    /// Complex conjugate `c0 − c1·i`. This is also the `p`-power Frobenius
    /// endomorphism, since `i^p = −i` when `p ≡ 3 (mod 4)`.
    pub fn conjugate(&self) -> Self {
        Self { c0: self.c0.clone(), c1: -&self.c1 }
    }

    /// Squares the element: `(c0² − c1²) + (2·c0·c1)·i`.
    pub fn square(&self) -> Self {
        // (c0 + c1 i)² = (c0+c1)(c0−c1) + 2 c0 c1 i
        let t0 = &self.c0 + &self.c1;
        let t1 = &self.c0 - &self.c1;
        let c0 = &t0 * &t1;
        let c1 = (&self.c0 * &self.c1).double();
        Self { c0, c1 }
    }

    /// Field norm `c0² + c1² ∈ F_p` (the product with the conjugate).
    pub fn norm(&self) -> Fp<L> {
        &self.c0.square() + &self.c1.square()
    }

    /// Multiplicative inverse: `conj(z) / norm(z)`.
    ///
    /// # Errors
    ///
    /// Returns [`FieldError::DivisionByZero`] for zero.
    pub fn invert(&self) -> Result<Self, FieldError> {
        let norm_inv = self.norm().invert()?;
        Ok(Self { c0: &self.c0 * &norm_inv, c1: &(-&self.c1) * &norm_inv })
    }

    /// Raises to the power `exp` (square-and-multiply).
    pub fn pow<const E: usize>(&self, exp: &Uint<E>) -> Self {
        let ctx = self.c0.ctx();
        let bits = exp.bit_len();
        if bits == 0 {
            return Self::one(ctx);
        }
        let mut acc = self.clone();
        for i in (0..bits - 1).rev() {
            acc = acc.square();
            if exp.bit(i) {
                acc = &acc * self;
            }
        }
        acc
    }

    /// Multiplies by a base-field scalar.
    pub fn mul_by_fp(&self, s: &Fp<L>) -> Self {
        Self { c0: &self.c0 * s, c1: &self.c1 * s }
    }

    /// Fixed-length big-endian encoding: `c0 ‖ c1`, `16·L` bytes.
    pub fn to_be_bytes(&self) -> Vec<u8> {
        let mut out = self.c0.to_be_bytes();
        out.extend_from_slice(&self.c1.to_be_bytes());
        out
    }

    /// Decodes an element produced by [`Fp2::to_be_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`FieldError::BadEncoding`] if the length is wrong.
    pub fn from_be_bytes(ctx: &Arc<FieldCtx<L>>, bytes: &[u8]) -> Result<Self, FieldError> {
        if bytes.len() != 16 * L {
            return Err(FieldError::BadEncoding);
        }
        let c0 = ctx.from_be_bytes(&bytes[..8 * L])?;
        let c1 = ctx.from_be_bytes(&bytes[8 * L..])?;
        Ok(Self { c0, c1 })
    }
}

impl<const L: usize> fmt::Debug for Fp2<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fp2({} + {}·i)", self.c0, self.c1)
    }
}

impl<const L: usize> fmt::Display for Fp2<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} + {}·i", self.c0, self.c1)
    }
}

impl<const L: usize> Add<&Fp2<L>> for &Fp2<L> {
    type Output = Fp2<L>;
    fn add(self, rhs: &Fp2<L>) -> Fp2<L> {
        Fp2 { c0: &self.c0 + &rhs.c0, c1: &self.c1 + &rhs.c1 }
    }
}

impl<const L: usize> Sub<&Fp2<L>> for &Fp2<L> {
    type Output = Fp2<L>;
    fn sub(self, rhs: &Fp2<L>) -> Fp2<L> {
        Fp2 { c0: &self.c0 - &rhs.c0, c1: &self.c1 - &rhs.c1 }
    }
}

impl<const L: usize> Mul<&Fp2<L>> for &Fp2<L> {
    type Output = Fp2<L>;
    fn mul(self, rhs: &Fp2<L>) -> Fp2<L> {
        // Karatsuba: (a0 + a1 i)(b0 + b1 i)
        //   = (a0 b0 − a1 b1) + ((a0+a1)(b0+b1) − a0 b0 − a1 b1) i
        let v0 = &self.c0 * &rhs.c0;
        let v1 = &self.c1 * &rhs.c1;
        let c0 = &v0 - &v1;
        let c1 = &(&(&self.c0 + &self.c1) * &(&rhs.c0 + &rhs.c1)) - &(&v0 + &v1);
        Fp2 { c0, c1 }
    }
}

impl<const L: usize> Add for Fp2<L> {
    type Output = Fp2<L>;
    fn add(self, rhs: Fp2<L>) -> Fp2<L> {
        &self + &rhs
    }
}

impl<const L: usize> Sub for Fp2<L> {
    type Output = Fp2<L>;
    fn sub(self, rhs: Fp2<L>) -> Fp2<L> {
        &self - &rhs
    }
}

impl<const L: usize> Mul for Fp2<L> {
    type Output = Fp2<L>;
    fn mul(self, rhs: Fp2<L>) -> Fp2<L> {
        &self * &rhs
    }
}

impl<const L: usize> Neg for &Fp2<L> {
    type Output = Fp2<L>;
    fn neg(self) -> Fp2<L> {
        Fp2 { c0: -&self.c0, c1: -&self.c1 }
    }
}

impl<const L: usize> Neg for Fp2<L> {
    type Output = Fp2<L>;
    fn neg(self) -> Fp2<L> {
        -&self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn f103() -> Arc<FieldCtx<4>> {
        FieldCtx::new(Uint::from_u64(103)).unwrap()
    }

    fn el(ctx: &Arc<FieldCtx<4>>, a: u64, b: u64) -> Fp2<4> {
        Fp2::new(ctx.from_u64(a), ctx.from_u64(b)).unwrap()
    }

    #[test]
    fn requires_3mod4() {
        let f13 = FieldCtx::<4>::new(Uint::from_u64(13)).unwrap();
        assert_eq!(Fp2::new(f13.from_u64(1), f13.from_u64(2)).unwrap_err(), FieldError::Not3Mod4);
    }

    #[test]
    fn i_squared_is_minus_one() {
        let f = f103();
        let i = el(&f, 0, 1);
        let minus_one = Fp2::from_fp(-&f.one());
        assert_eq!(&i * &i, minus_one);
        assert_eq!(i.square(), &i * &i);
    }

    #[test]
    fn mul_matches_schoolbook() {
        let f = f103();
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..50 {
            let a = Fp2::random(&f, &mut rng);
            let b = Fp2::random(&f, &mut rng);
            let prod = &a * &b;
            // Schoolbook
            let c0 = &(a.c0() * b.c0()) - &(a.c1() * b.c1());
            let c1 = &(a.c0() * b.c1()) + &(a.c1() * b.c0());
            assert_eq!(prod.c0(), &c0);
            assert_eq!(prod.c1(), &c1);
            assert_eq!(a.square(), &a * &a);
        }
    }

    #[test]
    fn inverse_roundtrip() {
        let f = f103();
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..30 {
            let a = Fp2::random(&f, &mut rng);
            if a.is_zero() {
                continue;
            }
            let inv = a.invert().unwrap();
            assert!((&a * &inv).is_one());
        }
        assert_eq!(Fp2::zero(&f).invert(), Err(FieldError::DivisionByZero));
    }

    #[test]
    fn conjugate_properties() {
        let f = f103();
        let a = el(&f, 5, 7);
        let c = a.conjugate();
        assert_eq!(c.c0(), a.c0());
        assert_eq!(c.c1(), &-a.c1());
        // z * conj(z) = norm(z) (real)
        let prod = &a * &c;
        assert!(prod.c1().is_zero());
        assert_eq!(prod.c0(), &a.norm());
        // Frobenius: conj(z) == z^p for p = 103.
        assert_eq!(c, a.pow(&Uint::<4>::from_u64(103)));
    }

    #[test]
    fn pow_and_order() {
        let f = f103();
        let mut rng = StdRng::seed_from_u64(14);
        // |Fp2*| = p² − 1
        let order = Uint::<4>::from_u64(103 * 103 - 1);
        for _ in 0..10 {
            let a = Fp2::random(&f, &mut rng);
            if a.is_zero() {
                continue;
            }
            assert!(a.pow(&order).is_one());
        }
        let a = el(&f, 2, 3);
        assert!(a.pow(&Uint::<4>::ZERO).is_one());
        assert_eq!(a.pow(&Uint::<4>::ONE), a);
        assert_eq!(a.pow(&Uint::<4>::from_u64(5)), {
            let a2 = a.square();
            let a4 = a2.square();
            &a4 * &a
        });
    }

    #[test]
    fn norm_is_multiplicative() {
        let f = f103();
        let mut rng = StdRng::seed_from_u64(15);
        for _ in 0..20 {
            let a = Fp2::random(&f, &mut rng);
            let b = Fp2::random(&f, &mut rng);
            assert_eq!((&a * &b).norm(), &a.norm() * &b.norm());
        }
    }

    #[test]
    fn bytes_roundtrip() {
        let f = f103();
        let a = el(&f, 42, 99);
        let bytes = a.to_be_bytes();
        assert_eq!(bytes.len(), 64);
        assert_eq!(Fp2::from_be_bytes(&f, &bytes).unwrap(), a);
        assert!(Fp2::from_be_bytes(&f, &bytes[1..]).is_err());
    }

    #[test]
    fn ring_axioms() {
        let f = f103();
        let mut rng = StdRng::seed_from_u64(16);
        for _ in 0..20 {
            let a = Fp2::random(&f, &mut rng);
            let b = Fp2::random(&f, &mut rng);
            let c = Fp2::random(&f, &mut rng);
            assert_eq!(&(&a + &b) * &c, &(&a * &c) + &(&b * &c));
            assert_eq!(&a * &b, &b * &a);
            assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
            assert_eq!(&a - &a, Fp2::zero(&f));
            assert_eq!(-(-&a), a);
        }
    }

    #[test]
    fn mul_by_fp_matches_embedding() {
        let f = f103();
        let a = el(&f, 4, 9);
        let s = f.from_u64(6);
        assert_eq!(a.mul_by_fp(&s), &a * &Fp2::from_fp(s));
    }
}
