//! The quadratic extension `F_{p²} = F_p[i]/(i² + 1)`.
//!
//! Requires `p ≡ 3 (mod 4)` so that `−1` is a quadratic non-residue and
//! `x² + 1` is irreducible. This is the target field of the Type-A
//! pairing: pairing values live in the order-`p+1` "norm-one" subgroup of
//! `F_{p²}^*`, where inversion is conjugation.

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};
use std::sync::Arc;

use rand::Rng;
use sp_bigint::Uint;

use crate::error::FieldError;
use crate::fp::{FieldCtx, Fp};

/// An element `c0 + c1·i` of `F_{p²}`.
#[derive(Clone, PartialEq, Eq)]
pub struct Fp2<const L: usize> {
    c0: Fp<L>,
    c1: Fp<L>,
}

impl<const L: usize> Fp2<L> {
    /// Builds an element from its two coefficients.
    ///
    /// # Errors
    ///
    /// Returns [`FieldError::Not3Mod4`] if the base field modulus is not
    /// `3 (mod 4)` (the extension would not be a field).
    pub fn new(c0: Fp<L>, c1: Fp<L>) -> Result<Self, FieldError> {
        if !c0.ctx().is_3mod4() {
            return Err(FieldError::Not3Mod4);
        }
        Ok(Self { c0, c1 })
    }

    /// The zero element.
    pub fn zero(ctx: &Arc<FieldCtx<L>>) -> Self {
        Self { c0: ctx.zero(), c1: ctx.zero() }
    }

    /// The one element.
    pub fn one(ctx: &Arc<FieldCtx<L>>) -> Self {
        Self { c0: ctx.one(), c1: ctx.zero() }
    }

    /// Embeds a base-field element (imaginary part zero).
    pub fn from_fp(c0: Fp<L>) -> Self {
        let c1 = c0.ctx().zero();
        Self { c0, c1 }
    }

    /// Uniformly random element.
    pub fn random<R: Rng + ?Sized>(ctx: &Arc<FieldCtx<L>>, rng: &mut R) -> Self {
        Self { c0: ctx.random(rng), c1: ctx.random(rng) }
    }

    /// The real coefficient.
    pub fn c0(&self) -> &Fp<L> {
        &self.c0
    }

    /// The imaginary coefficient.
    pub fn c1(&self) -> &Fp<L> {
        &self.c1
    }

    /// Returns `true` for the additive identity.
    pub fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero()
    }

    /// Returns `true` for the multiplicative identity.
    pub fn is_one(&self) -> bool {
        self.c0.is_one() && self.c1.is_zero()
    }

    /// Complex conjugate `c0 − c1·i`. This is also the `p`-power Frobenius
    /// endomorphism, since `i^p = −i` when `p ≡ 3 (mod 4)`.
    pub fn conjugate(&self) -> Self {
        Self { c0: self.c0.clone(), c1: -&self.c1 }
    }

    /// Squares the element: `(c0² − c1²) + (2·c0·c1)·i`.
    ///
    /// Lazy-reduction kernel: both coefficient squares use the dedicated
    /// SOS widening square, the difference is taken at double width, and
    /// each output coefficient pays exactly one Montgomery reduction.
    pub fn square(&self) -> Self {
        let ctx = self.c0.ctx();
        let mont = ctx.mont();
        let a = self.c0.mont_repr();
        let b = self.c1.mont_repr();
        let va = mont.wide_square(a);
        let vb = mont.wide_square(b);
        let (lo, hi) = mont.wide_sub(va, &vb);
        let c0 = mont.montgomery_reduce(&lo, &hi);
        // 2·c0·c1: double one operand in the single-width domain first so
        // the wide product stays below p·R for the one-subtraction REDC.
        let a2 = mont.add(a, a);
        let (lo, hi) = mont.wide_mul(&a2, b);
        let c1 = mont.montgomery_reduce(&lo, &hi);
        Self { c0: Fp::from_mont_repr(ctx, c0), c1: Fp::from_mont_repr(ctx, c1) }
    }

    /// Reference twin of [`Fp2::square`]: the pre-lazy-reduction
    /// formulation `(c0+c1)(c0−c1) + (2·c0·c1)·i` built from fully reduced
    /// base-field multiplies. Retained for differential testing.
    pub fn square_reference(&self) -> Self {
        let t0 = &self.c0 + &self.c1;
        let t1 = &self.c0 - &self.c1;
        let c0 = &t0 * &t1;
        let c1 = (&self.c0 * &self.c1).double();
        Self { c0, c1 }
    }

    /// Field norm `c0² + c1² ∈ F_p` (the product with the conjugate).
    pub fn norm(&self) -> Fp<L> {
        &self.c0.square() + &self.c1.square()
    }

    /// Squaring specialized to the norm-one subgroup (`c0² + c1² = 1`):
    /// `z² = (2·c0² − 1) + ((c0+c1)² − 1)·i` — two base-field squarings
    /// where the generic [`Fp2::square`] pays two full-width products.
    ///
    /// Callers must ensure `norm(z) = 1` (pairing values after the
    /// `(q − 1)` stage of the final exponentiation live there); other
    /// inputs produce wrong answers, which is why this is not the `square`
    /// default.
    pub fn cyclotomic_square(&self) -> Self {
        debug_assert!(self.norm().is_one(), "cyclotomic_square needs a norm-1 element");
        let one = self.c0.ctx().one();
        let a2 = self.c0.square();
        let s = (&self.c0 + &self.c1).square();
        Self { c0: &a2.double() - &one, c1: &s - &one }
    }

    /// Exponentiation specialized to the norm-one subgroup: cyclotomic
    /// squarings driven by a signed-digit (non-adjacent form) walk of the
    /// exponent, using conjugation as the cost-free inversion the NAF
    /// digits `−1` need. Callers must ensure `norm(self) = 1`.
    pub fn pow_norm1<const E: usize>(&self, exp: &Uint<E>) -> Self {
        let ctx = self.c0.ctx();
        if exp.is_zero() {
            return Self::one(ctx);
        }
        let digits = naf(exp);
        let inv = self.conjugate();
        let mut acc = Self::one(ctx);
        let mut started = false;
        for &d in digits.iter().rev() {
            if started {
                acc = acc.cyclotomic_square();
            }
            match d {
                1 => {
                    acc = if started { &acc * self } else { self.clone() };
                    started = true;
                }
                -1 => {
                    acc = if started { &acc * &inv } else { inv.clone() };
                    started = true;
                }
                _ => {}
            }
        }
        acc
    }

    /// Multiplicative inverse: `conj(z) / norm(z)`.
    ///
    /// # Errors
    ///
    /// Returns [`FieldError::DivisionByZero`] for zero.
    pub fn invert(&self) -> Result<Self, FieldError> {
        let norm_inv = self.norm().invert()?;
        Ok(Self { c0: &self.c0 * &norm_inv, c1: &(-&self.c1) * &norm_inv })
    }

    /// Raises to the power `exp` (square-and-multiply).
    pub fn pow<const E: usize>(&self, exp: &Uint<E>) -> Self {
        let ctx = self.c0.ctx();
        let bits = exp.bit_len();
        if bits == 0 {
            return Self::one(ctx);
        }
        let mut acc = self.clone();
        for i in (0..bits - 1).rev() {
            acc = acc.square();
            if exp.bit(i) {
                acc = &acc * self;
            }
        }
        acc
    }

    /// Multiplies by a base-field scalar.
    pub fn mul_by_fp(&self, s: &Fp<L>) -> Self {
        Self { c0: &self.c0 * s, c1: &self.c1 * s }
    }

    /// Reference twin of the `Mul` operator: Karatsuba built from fully
    /// reduced base-field multiplies (one Montgomery reduction per
    /// product, three per Fp² multiply). Retained for differential
    /// testing of the lazy-reduction kernel.
    pub fn mul_reference(&self, rhs: &Self) -> Self {
        // Karatsuba: (a0 + a1 i)(b0 + b1 i)
        //   = (a0 b0 − a1 b1) + ((a0+a1)(b0+b1) − a0 b0 − a1 b1) i
        let v0 = &self.c0 * &rhs.c0;
        let v1 = &self.c1 * &rhs.c1;
        let c0 = &v0 - &v1;
        let c1 = &(&(&self.c0 + &self.c1) * &(&rhs.c0 + &rhs.c1)) - &(&v0 + &v1);
        Self { c0, c1 }
    }

    /// Fixed-length big-endian encoding: `c0 ‖ c1`, `16·L` bytes.
    pub fn to_be_bytes(&self) -> Vec<u8> {
        let mut out = self.c0.to_be_bytes();
        out.extend_from_slice(&self.c1.to_be_bytes());
        out
    }

    /// Decodes an element produced by [`Fp2::to_be_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`FieldError::BadEncoding`] if the length is wrong.
    pub fn from_be_bytes(ctx: &Arc<FieldCtx<L>>, bytes: &[u8]) -> Result<Self, FieldError> {
        if bytes.len() != 16 * L {
            return Err(FieldError::BadEncoding);
        }
        let c0 = ctx.from_be_bytes(&bytes[..8 * L])?;
        let c1 = ctx.from_be_bytes(&bytes[8 * L..])?;
        Ok(Self { c0, c1 })
    }
}

impl<const L: usize> fmt::Debug for Fp2<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fp2({} + {}·i)", self.c0, self.c1)
    }
}

impl<const L: usize> fmt::Display for Fp2<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} + {}·i", self.c0, self.c1)
    }
}

impl<const L: usize> Add<&Fp2<L>> for &Fp2<L> {
    type Output = Fp2<L>;
    fn add(self, rhs: &Fp2<L>) -> Fp2<L> {
        Fp2 { c0: &self.c0 + &rhs.c0, c1: &self.c1 + &rhs.c1 }
    }
}

impl<const L: usize> Sub<&Fp2<L>> for &Fp2<L> {
    type Output = Fp2<L>;
    fn sub(self, rhs: &Fp2<L>) -> Fp2<L> {
        Fp2 { c0: &self.c0 - &rhs.c0, c1: &self.c1 - &rhs.c1 }
    }
}

impl<const L: usize> Mul<&Fp2<L>> for &Fp2<L> {
    type Output = Fp2<L>;
    fn mul(self, rhs: &Fp2<L>) -> Fp2<L> {
        // Lazy-reduction Karatsuba: the three products are taken at
        // double width and combined there, so each output coefficient
        // pays one Montgomery reduction instead of the three paid by
        // [`Fp2::mul_reference`]. Every intermediate stays below p·R
        // (sums are reduced mod p before multiplying; wide differences
        // borrow against p·R), which the one-subtraction REDC requires.
        let ctx = self.c0.ctx();
        let mont = ctx.mont();
        let a0 = self.c0.mont_repr();
        let a1 = self.c1.mont_repr();
        let b0 = rhs.c0.mont_repr();
        let b1 = rhs.c1.mont_repr();
        let v0 = mont.wide_mul(a0, b0);
        let v1 = mont.wide_mul(a1, b1);
        let s = mont.add(a0, a1);
        let t = mont.add(b0, b1);
        let v2 = mont.wide_mul(&s, &t);
        let (lo, hi) = mont.wide_sub(v0, &v1);
        let c0 = mont.montgomery_reduce(&lo, &hi);
        let (lo, hi) = mont.wide_sub(mont.wide_sub(v2, &v0), &v1);
        let c1 = mont.montgomery_reduce(&lo, &hi);
        Fp2 { c0: Fp::from_mont_repr(ctx, c0), c1: Fp::from_mont_repr(ctx, c1) }
    }
}

/// Non-adjacent form of `exp`: little-endian digits in `{−1, 0, 1}` with
/// no two adjacent nonzeros, so a signed-digit exponentiation pays
/// roughly `bits/3` multiplies instead of `bits/2`.
fn naf<const E: usize>(exp: &Uint<E>) -> Vec<i8> {
    let mut v = *exp;
    // `overflow` models a conceptual bit at 2^BITS (reachable only when
    // a −1 digit increments a value at the very top of the range).
    let mut overflow = false;
    let mut digits = Vec::with_capacity(Uint::<E>::BITS as usize + 1);
    while !v.is_zero() || overflow {
        if v.is_odd() {
            if v.low_u64() & 3 == 1 {
                digits.push(1);
                v = v.wrapping_sub(&Uint::ONE);
            } else {
                digits.push(-1);
                let (nv, carry) = v.overflowing_add(&Uint::ONE);
                v = nv;
                overflow = overflow || carry;
            }
        } else {
            digits.push(0);
        }
        v = v.shr1();
        if overflow {
            v = v.wrapping_add(&Uint::ONE.shl(Uint::<E>::BITS - 1));
            overflow = false;
        }
    }
    digits
}

impl<const L: usize> Add for Fp2<L> {
    type Output = Fp2<L>;
    fn add(self, rhs: Fp2<L>) -> Fp2<L> {
        &self + &rhs
    }
}

impl<const L: usize> Sub for Fp2<L> {
    type Output = Fp2<L>;
    fn sub(self, rhs: Fp2<L>) -> Fp2<L> {
        &self - &rhs
    }
}

impl<const L: usize> Mul for Fp2<L> {
    type Output = Fp2<L>;
    fn mul(self, rhs: Fp2<L>) -> Fp2<L> {
        &self * &rhs
    }
}

impl<const L: usize> Neg for &Fp2<L> {
    type Output = Fp2<L>;
    fn neg(self) -> Fp2<L> {
        Fp2 { c0: -&self.c0, c1: -&self.c1 }
    }
}

impl<const L: usize> Neg for Fp2<L> {
    type Output = Fp2<L>;
    fn neg(self) -> Fp2<L> {
        -&self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn f103() -> Arc<FieldCtx<4>> {
        FieldCtx::new(Uint::from_u64(103)).unwrap()
    }

    fn el(ctx: &Arc<FieldCtx<4>>, a: u64, b: u64) -> Fp2<4> {
        Fp2::new(ctx.from_u64(a), ctx.from_u64(b)).unwrap()
    }

    #[test]
    fn requires_3mod4() {
        let f13 = FieldCtx::<4>::new(Uint::from_u64(13)).unwrap();
        assert_eq!(Fp2::new(f13.from_u64(1), f13.from_u64(2)).unwrap_err(), FieldError::Not3Mod4);
    }

    #[test]
    fn i_squared_is_minus_one() {
        let f = f103();
        let i = el(&f, 0, 1);
        let minus_one = Fp2::from_fp(-&f.one());
        assert_eq!(&i * &i, minus_one);
        assert_eq!(i.square(), &i * &i);
    }

    #[test]
    fn mul_matches_schoolbook() {
        let f = f103();
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..50 {
            let a = Fp2::random(&f, &mut rng);
            let b = Fp2::random(&f, &mut rng);
            let prod = &a * &b;
            // Schoolbook
            let c0 = &(a.c0() * b.c0()) - &(a.c1() * b.c1());
            let c1 = &(a.c0() * b.c1()) + &(a.c1() * b.c0());
            assert_eq!(prod.c0(), &c0);
            assert_eq!(prod.c1(), &c1);
            assert_eq!(a.square(), &a * &a);
        }
    }

    #[test]
    fn inverse_roundtrip() {
        let f = f103();
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..30 {
            let a = Fp2::random(&f, &mut rng);
            if a.is_zero() {
                continue;
            }
            let inv = a.invert().unwrap();
            assert!((&a * &inv).is_one());
        }
        assert_eq!(Fp2::zero(&f).invert(), Err(FieldError::DivisionByZero));
    }

    #[test]
    fn conjugate_properties() {
        let f = f103();
        let a = el(&f, 5, 7);
        let c = a.conjugate();
        assert_eq!(c.c0(), a.c0());
        assert_eq!(c.c1(), &-a.c1());
        // z * conj(z) = norm(z) (real)
        let prod = &a * &c;
        assert!(prod.c1().is_zero());
        assert_eq!(prod.c0(), &a.norm());
        // Frobenius: conj(z) == z^p for p = 103.
        assert_eq!(c, a.pow(&Uint::<4>::from_u64(103)));
    }

    #[test]
    fn pow_and_order() {
        let f = f103();
        let mut rng = StdRng::seed_from_u64(14);
        // |Fp2*| = p² − 1
        let order = Uint::<4>::from_u64(103 * 103 - 1);
        for _ in 0..10 {
            let a = Fp2::random(&f, &mut rng);
            if a.is_zero() {
                continue;
            }
            assert!(a.pow(&order).is_one());
        }
        let a = el(&f, 2, 3);
        assert!(a.pow(&Uint::<4>::ZERO).is_one());
        assert_eq!(a.pow(&Uint::<4>::ONE), a);
        assert_eq!(a.pow(&Uint::<4>::from_u64(5)), {
            let a2 = a.square();
            let a4 = a2.square();
            &a4 * &a
        });
    }

    #[test]
    fn norm_is_multiplicative() {
        let f = f103();
        let mut rng = StdRng::seed_from_u64(15);
        for _ in 0..20 {
            let a = Fp2::random(&f, &mut rng);
            let b = Fp2::random(&f, &mut rng);
            assert_eq!((&a * &b).norm(), &a.norm() * &b.norm());
        }
    }

    #[test]
    fn bytes_roundtrip() {
        let f = f103();
        let a = el(&f, 42, 99);
        let bytes = a.to_be_bytes();
        assert_eq!(bytes.len(), 64);
        assert_eq!(Fp2::from_be_bytes(&f, &bytes).unwrap(), a);
        assert!(Fp2::from_be_bytes(&f, &bytes[1..]).is_err());
    }

    #[test]
    fn ring_axioms() {
        let f = f103();
        let mut rng = StdRng::seed_from_u64(16);
        for _ in 0..20 {
            let a = Fp2::random(&f, &mut rng);
            let b = Fp2::random(&f, &mut rng);
            let c = Fp2::random(&f, &mut rng);
            assert_eq!(&(&a + &b) * &c, &(&a * &c) + &(&b * &c));
            assert_eq!(&a * &b, &b * &a);
            assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
            assert_eq!(&a - &a, Fp2::zero(&f));
            assert_eq!(-(-&a), a);
        }
    }

    #[test]
    fn mul_by_fp_matches_embedding() {
        let f = f103();
        let a = el(&f, 4, 9);
        let s = f.from_u64(6);
        assert_eq!(a.mul_by_fp(&s), &a * &Fp2::from_fp(s));
    }

    /// secp256k1's base field: a full-width 256-bit prime ≡ 3 (mod 4), so
    /// the lazy-reduction bounds are exercised with no spare top bits.
    fn f256() -> Arc<FieldCtx<4>> {
        let p = Uint::from_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f")
            .unwrap();
        FieldCtx::new(p).unwrap()
    }

    #[test]
    fn lazy_mul_matches_reference() {
        for (seed, f) in [(31u64, f103()), (32, f256())] {
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..100 {
                let a = Fp2::random(&f, &mut rng);
                let b = Fp2::random(&f, &mut rng);
                assert_eq!(&a * &b, a.mul_reference(&b));
            }
            // Degenerate coefficients.
            let zero = Fp2::zero(&f);
            let one = Fp2::one(&f);
            let a = Fp2::random(&f, &mut rng);
            assert_eq!(&a * &zero, a.mul_reference(&zero));
            assert_eq!(&a * &one, a.mul_reference(&one));
            // Maximal coefficients p−1 + (p−1)i.
            let top = Fp2::new(-&f.one(), -&f.one()).unwrap();
            assert_eq!(&top * &top, top.mul_reference(&top));
            assert_eq!(&a * &top, a.mul_reference(&top));
        }
    }

    /// A uniformish norm-1 element: `conj(z)/z` for random nonzero `z`.
    fn norm1(f: &Arc<FieldCtx<4>>, rng: &mut StdRng) -> Fp2<4> {
        loop {
            let z = Fp2::random(f, rng);
            if z.is_zero() {
                continue;
            }
            let u = &z.conjugate() * &z.invert().unwrap();
            assert!(u.norm().is_one());
            return u;
        }
    }

    #[test]
    fn cyclotomic_square_matches_generic_on_norm1() {
        for (seed, f) in [(41u64, f103()), (42, f256())] {
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..50 {
                let u = norm1(&f, &mut rng);
                assert_eq!(u.cyclotomic_square(), u.square());
                assert_eq!(u.cyclotomic_square(), u.square_reference());
            }
            let one = Fp2::one(&f);
            assert_eq!(one.cyclotomic_square(), one.square());
        }
    }

    #[test]
    fn pow_norm1_matches_generic_pow() {
        for (seed, f) in [(43u64, f103()), (44, f256())] {
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..20 {
                let u = norm1(&f, &mut rng);
                let e = Uint::<4>::random(&mut rng);
                assert_eq!(u.pow_norm1(&e), u.pow(&e));
                let small = Uint::<4>::from_u64(rng.gen::<u64>() % 100);
                assert_eq!(u.pow_norm1(&small), u.pow(&small));
            }
            let u = norm1(&f, &mut rng);
            assert!(u.pow_norm1(&Uint::<4>::ZERO).is_one());
            assert_eq!(u.pow_norm1(&Uint::<4>::ONE), u);
            // The overflow guard: an exponent at the very top of the range.
            assert_eq!(u.pow_norm1(&Uint::<4>::MAX), u.pow(&Uint::<4>::MAX));
        }
    }

    #[test]
    fn lazy_square_matches_reference() {
        for (seed, f) in [(33u64, f103()), (34, f256())] {
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..100 {
                let a = Fp2::random(&f, &mut rng);
                assert_eq!(a.square(), a.square_reference());
                assert_eq!(a.square(), &a * &a);
            }
            let top = Fp2::new(-&f.one(), -&f.one()).unwrap();
            assert_eq!(top.square(), top.square_reference());
            assert_eq!(Fp2::zero(&f).square(), Fp2::zero(&f).square_reference());
        }
    }
}
