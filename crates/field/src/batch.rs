//! Batch inversion (Montgomery's trick).
//!
//! Inverting `n` field elements naively costs `n` extended-GCD runs; the
//! trick below folds them into **one** inversion plus `3(n − 1)`
//! multiplications by inverting the running product and unwinding it:
//!
//! ```text
//! p_i = a_1·a_2⋯a_i          (prefix products)
//! p_n^{-1}                   (the single inversion)
//! a_i^{-1} = p_{i-1} · (p_i)^{-1},   p_{i-1}^{-1} = a_i · p_i^{-1}
//! ```
//!
//! Zeros are not invertible; they are skipped and left in place so callers
//! can batch heterogeneous data (e.g. Lagrange denominators where some
//! sentinel slots are zero) without pre-filtering.

use crate::fp::Fp;

/// Replaces every **nonzero** element of `elems` with its multiplicative
/// inverse, in place, using one field inversion total. Zero elements are
/// left untouched (zero has no inverse).
///
/// Returns the number of elements inverted.
///
/// All elements must share one field context (debug-asserted by the
/// element arithmetic itself).
pub fn batch_invert<const L: usize>(elems: &mut [Fp<L>]) -> usize {
    // Prefix products over the nonzero elements only.
    let mut prefix: Vec<Fp<L>> = Vec::with_capacity(elems.len());
    let mut acc: Option<Fp<L>> = None;
    for e in elems.iter() {
        if e.is_zero() {
            continue;
        }
        match acc {
            None => {
                acc = Some(e.clone());
            }
            Some(ref a) => {
                prefix.push(a.clone());
                acc = Some(a * e);
            }
        }
    }
    let Some(total) = acc else {
        return 0; // all zero (or empty)
    };
    // The one inversion. The product of nonzero elements of a prime field
    // is nonzero, so this cannot fail for the field moduli this workspace
    // generates.
    let mut inv = total.invert().expect("product of nonzero field elements is nonzero");
    let inverted = prefix.len() + 1;
    // Unwind backwards: elems[i]^{-1} = prefix · inv(product up to i).
    for e in elems.iter_mut().rev() {
        if e.is_zero() {
            continue;
        }
        match prefix.pop() {
            Some(p) => {
                let orig = e.clone();
                *e = &p * &inv;
                inv = &inv * &orig;
            }
            None => {
                // First nonzero element: its inverse is what remains.
                *e = inv.clone();
                break;
            }
        }
    }
    inverted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fp::FieldCtx;
    use rand::{rngs::StdRng, SeedableRng};
    use sp_bigint::Uint;
    use std::sync::Arc;

    fn f103() -> Arc<FieldCtx<4>> {
        FieldCtx::new(Uint::from_u64(103)).unwrap()
    }

    #[test]
    fn matches_per_element_inversion() {
        let f = f103();
        let mut rng = StdRng::seed_from_u64(77);
        let mut elems: Vec<_> = (0..40).map(|_| f.random_nonzero(&mut rng)).collect();
        let expected: Vec<_> = elems.iter().map(|e| e.invert().unwrap()).collect();
        assert_eq!(batch_invert(&mut elems), 40);
        assert_eq!(elems, expected);
    }

    #[test]
    fn zeros_mid_batch_are_skipped() {
        let f = f103();
        let mut elems =
            vec![f.from_u64(2), f.zero(), f.from_u64(5), f.zero(), f.from_u64(7), f.zero()];
        assert_eq!(batch_invert(&mut elems), 3);
        assert_eq!(elems[0], f.from_u64(2).invert().unwrap());
        assert!(elems[1].is_zero());
        assert_eq!(elems[2], f.from_u64(5).invert().unwrap());
        assert!(elems[3].is_zero());
        assert_eq!(elems[4], f.from_u64(7).invert().unwrap());
        assert!(elems[5].is_zero());
    }

    #[test]
    fn degenerate_batches() {
        let f = f103();
        let mut empty: Vec<Fp<4>> = vec![];
        assert_eq!(batch_invert(&mut empty), 0);
        let mut zeros = vec![f.zero(), f.zero()];
        assert_eq!(batch_invert(&mut zeros), 0);
        assert!(zeros.iter().all(Fp::is_zero));
        let mut single = vec![f.from_u64(9)];
        assert_eq!(batch_invert(&mut single), 1);
        assert_eq!(single[0], f.from_u64(9).invert().unwrap());
    }
}
