//! Error types.

use std::error::Error;
use std::fmt;

use sp_bigint::BigIntError;

/// Errors produced by field construction and element operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FieldError {
    /// The modulus is not usable (even, one, or zero).
    BadModulus,
    /// An operation required `p ≡ 3 (mod 4)` (e.g. `Fp2` with `i² = −1`).
    Not3Mod4,
    /// Attempted to invert zero.
    DivisionByZero,
    /// An element encoding could not be parsed.
    BadEncoding,
}

impl fmt::Display for FieldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadModulus => f.write_str("modulus must be an odd number greater than one"),
            Self::Not3Mod4 => f.write_str("operation requires a prime congruent to 3 mod 4"),
            Self::DivisionByZero => f.write_str("attempted to invert zero"),
            Self::BadEncoding => f.write_str("invalid field element encoding"),
        }
    }
}

impl Error for FieldError {}

impl From<BigIntError> for FieldError {
    fn from(e: BigIntError) -> Self {
        match e {
            BigIntError::EvenModulus => Self::BadModulus,
            _ => Self::BadEncoding,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            FieldError::BadModulus,
            FieldError::Not3Mod4,
            FieldError::DivisionByZero,
            FieldError::BadEncoding,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn converts_from_bigint_error() {
        assert_eq!(FieldError::from(BigIntError::EvenModulus), FieldError::BadModulus);
        assert_eq!(FieldError::from(BigIntError::InvalidDigit), FieldError::BadEncoding);
    }
}
