//! The prime field `F_p`.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::sync::Arc;

use rand::Rng;
use sp_bigint::{modops, MontCtx, Uint};

use crate::error::FieldError;

/// Shared context for a prime field `F_p`.
///
/// Construct once with [`FieldCtx::new`] and mint elements from it; the
/// returned [`Arc`] is cloned into every element, so elements can be moved
/// around freely and combined with plain operators.
#[derive(Debug)]
pub struct FieldCtx<const L: usize> {
    mont: MontCtx<L>,
    is_3mod4: bool,
}

impl<const L: usize> FieldCtx<L> {
    /// Creates a field context for the odd modulus `p > 1`.
    ///
    /// Primality is the caller's responsibility (the pairing and ABE layers
    /// always pass generated primes); compositeness only costs the loss of
    /// inverses for non-units.
    ///
    /// # Errors
    ///
    /// Returns [`FieldError::BadModulus`] if `p` is even or `p <= 1`.
    pub fn new(p: Uint<L>) -> Result<Arc<Self>, FieldError> {
        let mont = MontCtx::new(p)?;
        let is_3mod4 = p.low_u64() & 3 == 3;
        Ok(Arc::new(Self { mont, is_3mod4 }))
    }

    /// The field modulus.
    pub fn modulus(&self) -> &Uint<L> {
        self.mont.modulus()
    }

    /// Whether `p ≡ 3 (mod 4)` (required for [`crate::Fp2`] and fast
    /// square roots).
    pub fn is_3mod4(&self) -> bool {
        self.is_3mod4
    }

    /// The additive identity.
    pub fn zero(self: &Arc<Self>) -> Fp<L> {
        Fp { ctx: Arc::clone(self), repr: Uint::ZERO }
    }

    /// The multiplicative identity.
    pub fn one(self: &Arc<Self>) -> Fp<L> {
        Fp { ctx: Arc::clone(self), repr: *self.mont.one() }
    }

    /// Creates an element from a canonical integer, reducing mod `p`.
    pub fn element(self: &Arc<Self>, v: Uint<L>) -> Fp<L> {
        let reduced =
            if v < *self.modulus() { v } else { sp_bigint::div_rem(&v, self.modulus()).1 };
        Fp { ctx: Arc::clone(self), repr: self.mont.to_mont(&reduced) }
    }

    /// Creates an element from a `u64`.
    pub fn from_u64(self: &Arc<Self>, v: u64) -> Fp<L> {
        self.element(Uint::from_u64(v))
    }

    /// Uniformly random field element.
    pub fn random<R: Rng + ?Sized>(self: &Arc<Self>, rng: &mut R) -> Fp<L> {
        self.element(Uint::random_below(rng, self.modulus()))
    }

    /// Uniformly random nonzero field element.
    pub fn random_nonzero<R: Rng + ?Sized>(self: &Arc<Self>, rng: &mut R) -> Fp<L> {
        loop {
            let e = self.random(rng);
            if !e.is_zero() {
                return e;
            }
        }
    }

    /// Creates an element from big-endian bytes (value reduced mod `p`).
    ///
    /// # Errors
    ///
    /// Returns [`FieldError::BadEncoding`] if the bytes encode a value too
    /// wide for `Uint<L>`.
    pub fn from_be_bytes(self: &Arc<Self>, bytes: &[u8]) -> Result<Fp<L>, FieldError> {
        let v = Uint::from_be_bytes(bytes)?;
        Ok(self.element(v))
    }

    /// The underlying Montgomery context, for raw-representation hot
    /// paths (e.g. the Miller loop) that carry `Uint` Montgomery values
    /// directly instead of paying an `Arc` clone per `Fp` temporary.
    /// Combine with [`Fp::mont_repr`] / [`Fp::from_mont_repr`] at the
    /// boundary.
    pub fn mont(&self) -> &MontCtx<L> {
        &self.mont
    }
}

/// An element of `F_p`, stored in Montgomery form.
///
/// Elements hold an `Arc` to their [`FieldCtx`]; mixing elements from
/// different contexts is a logic error and debug-panics.
#[derive(Clone)]
pub struct Fp<const L: usize> {
    ctx: Arc<FieldCtx<L>>,
    repr: Uint<L>,
}

impl<const L: usize> Fp<L> {
    /// The field context this element belongs to.
    pub fn ctx(&self) -> &Arc<FieldCtx<L>> {
        &self.ctx
    }

    /// Canonical (non-Montgomery) integer value in `[0, p)`.
    pub fn to_uint(&self) -> Uint<L> {
        self.ctx.mont.from_mont(&self.repr)
    }

    /// Big-endian canonical encoding, `8·L` bytes.
    pub fn to_be_bytes(&self) -> Vec<u8> {
        self.to_uint().to_be_bytes()
    }

    /// Appends the big-endian canonical encoding (`8·L` bytes) to `out`
    /// without an intermediate allocation.
    pub fn write_be_bytes(&self, out: &mut Vec<u8>) {
        self.to_uint().write_be_bytes(out);
    }

    /// Returns `true` if this is the additive identity.
    pub fn is_zero(&self) -> bool {
        self.repr.is_zero()
    }

    /// Returns `true` if this is the multiplicative identity.
    pub fn is_one(&self) -> bool {
        self.repr == *self.ctx.mont.one()
    }

    /// Doubles the element.
    pub fn double(&self) -> Self {
        self.with(self.ctx.mont.add(&self.repr, &self.repr))
    }

    /// Squares the element.
    pub fn square(&self) -> Self {
        self.with(self.ctx.mont.square(&self.repr))
    }

    /// Multiplicative inverse.
    ///
    /// # Errors
    ///
    /// Returns [`FieldError::DivisionByZero`] for zero (and, for composite
    /// moduli, for non-units).
    pub fn invert(&self) -> Result<Self, FieldError> {
        let canonical = self.to_uint();
        let inv =
            modops::mod_inv(&canonical, self.ctx.modulus()).ok_or(FieldError::DivisionByZero)?;
        Ok(self.with(self.ctx.mont.to_mont(&inv)))
    }

    /// Raises to the power `exp`.
    pub fn pow<const E: usize>(&self, exp: &Uint<E>) -> Self {
        self.with(self.ctx.mont.pow(&self.repr, exp))
    }

    /// Square root for fields with `p ≡ 3 (mod 4)`; `None` if the element
    /// is a non-residue.
    ///
    /// # Panics
    ///
    /// Panics if the modulus is not `3 (mod 4)`.
    pub fn sqrt(&self) -> Option<Self> {
        assert!(self.ctx.is_3mod4, "sqrt requires p ≡ 3 mod 4");
        let canonical = self.to_uint();
        modops::sqrt_3mod4(self.ctx.mont(), &canonical)
            .map(|root| self.with(self.ctx.mont.to_mont(&root)))
    }

    /// Legendre symbol: `1` for nonzero residues, `-1` for non-residues,
    /// `0` for zero.
    pub fn legendre(&self) -> i32 {
        modops::jacobi(&self.to_uint(), self.ctx.modulus())
    }

    /// Raw Montgomery representation (for serialization by sibling crates).
    pub fn mont_repr(&self) -> &Uint<L> {
        &self.repr
    }

    /// Rebuilds an element from a Montgomery representation produced by
    /// [`Fp::mont_repr`] under the same context.
    pub fn from_mont_repr(ctx: &Arc<FieldCtx<L>>, repr: Uint<L>) -> Self {
        Fp { ctx: Arc::clone(ctx), repr }
    }

    fn with(&self, repr: Uint<L>) -> Self {
        Fp { ctx: Arc::clone(&self.ctx), repr }
    }

    fn check_ctx(&self, other: &Self) {
        debug_assert_eq!(
            self.ctx.modulus(),
            other.ctx.modulus(),
            "field elements from different contexts"
        );
    }
}

impl<const L: usize> PartialEq for Fp<L> {
    fn eq(&self, other: &Self) -> bool {
        self.ctx.modulus() == other.ctx.modulus() && self.repr == other.repr
    }
}

impl<const L: usize> Eq for Fp<L> {}

impl<const L: usize> fmt::Debug for Fp<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fp(0x{})", self.to_uint().to_hex())
    }
}

impl<const L: usize> fmt::Display for Fp<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_uint().to_hex())
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $inner:expr) => {
        impl<'a, 'b, const L: usize> $trait<&'b Fp<L>> for &'a Fp<L> {
            type Output = Fp<L>;
            fn $method(self, rhs: &'b Fp<L>) -> Fp<L> {
                self.check_ctx(rhs);
                #[allow(clippy::redundant_closure_call)]
                let repr = ($inner)(&self.ctx.mont, &self.repr, &rhs.repr);
                self.with(repr)
            }
        }
        impl<const L: usize> $trait<Fp<L>> for Fp<L> {
            type Output = Fp<L>;
            fn $method(self, rhs: Fp<L>) -> Fp<L> {
                (&self).$method(&rhs)
            }
        }
        impl<'a, const L: usize> $trait<&'a Fp<L>> for Fp<L> {
            type Output = Fp<L>;
            fn $method(self, rhs: &'a Fp<L>) -> Fp<L> {
                (&self).$method(rhs)
            }
        }
        impl<'a, const L: usize> $trait<Fp<L>> for &'a Fp<L> {
            type Output = Fp<L>;
            fn $method(self, rhs: Fp<L>) -> Fp<L> {
                self.$method(&rhs)
            }
        }
    };
}

impl_binop!(Add, add, |m: &MontCtx<L>, a, b| m.add(a, b));
impl_binop!(Sub, sub, |m: &MontCtx<L>, a, b| m.sub(a, b));
impl_binop!(Mul, mul, |m: &MontCtx<L>, a, b| m.mul(a, b));

impl<const L: usize> AddAssign<&Fp<L>> for Fp<L> {
    fn add_assign(&mut self, rhs: &Fp<L>) {
        self.check_ctx(rhs);
        self.repr = self.ctx.mont.add(&self.repr, &rhs.repr);
    }
}

impl<const L: usize> SubAssign<&Fp<L>> for Fp<L> {
    fn sub_assign(&mut self, rhs: &Fp<L>) {
        self.check_ctx(rhs);
        self.repr = self.ctx.mont.sub(&self.repr, &rhs.repr);
    }
}

impl<const L: usize> MulAssign<&Fp<L>> for Fp<L> {
    fn mul_assign(&mut self, rhs: &Fp<L>) {
        self.check_ctx(rhs);
        self.repr = self.ctx.mont.mul(&self.repr, &rhs.repr);
    }
}

impl<const L: usize> Neg for &Fp<L> {
    type Output = Fp<L>;
    fn neg(self) -> Fp<L> {
        self.with(self.ctx.mont.neg(&self.repr))
    }
}

impl<const L: usize> Neg for Fp<L> {
    type Output = Fp<L>;
    fn neg(self) -> Fp<L> {
        -&self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn f101() -> Arc<FieldCtx<4>> {
        FieldCtx::new(Uint::from_u64(103)).unwrap() // 103 ≡ 3 mod 4
    }

    #[test]
    fn identities() {
        let f = f101();
        let a = f.from_u64(42);
        assert_eq!(&a + &f.zero(), a);
        assert_eq!(&a * &f.one(), a);
        assert!(f.zero().is_zero());
        assert!(f.one().is_one());
        assert!(!a.is_zero() && !a.is_one());
    }

    #[test]
    fn arithmetic_small() {
        let f = f101();
        let a = f.from_u64(50);
        let b = f.from_u64(60);
        assert_eq!(&a + &b, f.from_u64(7)); // 110 mod 103
        assert_eq!(&a - &b, f.from_u64(93)); // -10 mod 103
        assert_eq!(&a * &b, f.from_u64(50 * 60 % 103));
        assert_eq!(-&a, f.from_u64(53));
        assert_eq!(a.double(), f.from_u64(100));
        assert_eq!(a.square(), f.from_u64(50 * 50 % 103));
    }

    #[test]
    fn assign_ops() {
        let f = f101();
        let mut a = f.from_u64(10);
        a += &f.from_u64(5);
        assert_eq!(a, f.from_u64(15));
        a -= &f.from_u64(20);
        assert_eq!(a, f.from_u64(103 - 5));
        a *= &f.from_u64(2);
        assert_eq!(a, f.from_u64(196 % 103));
    }

    #[test]
    fn inversion() {
        let f = f101();
        for v in 1..103u64 {
            let a = f.from_u64(v);
            let inv = a.invert().unwrap();
            assert!((&a * &inv).is_one(), "v = {v}");
        }
        assert_eq!(f.zero().invert(), Err(FieldError::DivisionByZero));
    }

    #[test]
    fn element_reduces_large_input() {
        let f = f101();
        assert_eq!(f.element(Uint::from_u64(103 * 7 + 11)), f.from_u64(11));
        let huge = Uint::<4>::MAX;
        let reduced = f.element(huge);
        assert!(reduced.to_uint() < Uint::from_u64(103));
    }

    #[test]
    fn sqrt_3mod4() {
        let f = f101();
        let mut residues = 0;
        for v in 1..103u64 {
            let a = f.from_u64(v);
            match a.sqrt() {
                Some(r) => {
                    assert_eq!(r.square(), a);
                    assert_eq!(a.legendre(), 1);
                    residues += 1;
                }
                None => assert_eq!(a.legendre(), -1),
            }
        }
        assert_eq!(residues, 51); // (p-1)/2 residues
        assert!(f.zero().sqrt().unwrap().is_zero());
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let f = f101();
        let a = f.from_u64(5);
        let mut acc = f.one();
        for e in 0..20u64 {
            assert_eq!(a.pow(&Uint::<4>::from_u64(e)), acc, "e = {e}");
            acc = &acc * &a;
        }
    }

    #[test]
    fn random_is_reduced() {
        let f = f101();
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..50 {
            let a = f.random(&mut rng);
            assert!(a.to_uint() < Uint::from_u64(103));
        }
        assert!(!f.random_nonzero(&mut rng).is_zero());
    }

    #[test]
    fn bytes_roundtrip() {
        let f = FieldCtx::<4>::new(
            Uint::from_hex("ffffffff00000001000000000000000000000000ffffffffffffffffffffffff")
                .unwrap(),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let a = f.random(&mut rng);
        let b = f.from_be_bytes(&a.to_be_bytes()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn mont_repr_roundtrip() {
        let f = f101();
        let a = f.from_u64(77);
        let b = Fp::from_mont_repr(&f, *a.mont_repr());
        assert_eq!(a, b);
    }

    #[test]
    fn field_axioms_randomized() {
        let f = FieldCtx::<4>::new(
            Uint::from_hex("7fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffed")
                .unwrap(),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..20 {
            let a = f.random(&mut rng);
            let b = f.random(&mut rng);
            let c = f.random(&mut rng);
            assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
            assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
            assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
            assert_eq!(&a + &b, &b + &a);
            assert_eq!(&a * &b, &b * &a);
            assert_eq!(&a - &a, f.zero());
        }
    }

    #[test]
    fn rejects_bad_modulus() {
        assert!(FieldCtx::<4>::new(Uint::from_u64(0)).is_err());
        assert!(FieldCtx::<4>::new(Uint::from_u64(1)).is_err());
        assert!(FieldCtx::<4>::new(Uint::from_u64(4)).is_err());
    }

    #[test]
    fn display_and_debug() {
        let f = f101();
        let a = f.from_u64(255); // 255 mod 103 = 49 = 0x31
        assert_eq!(format!("{a}"), "0x31");
        assert_eq!(format!("{a:?}"), "Fp(0x31)");
    }
}
