//! Prime fields and quadratic extensions.
//!
//! Builds on [`sp_bigint`] to provide ergonomic field elements:
//!
//! * [`FieldCtx`] — a shared context (modulus + Montgomery tables) for a
//!   prime field `F_p`,
//! * [`Fp`] — an element of `F_p`, carrying an [`std::sync::Arc`] to its
//!   context so elements compose with plain operators,
//! * [`Fp2`] — the quadratic extension `F_p[i]/(i² + 1)` for primes
//!   `p ≡ 3 (mod 4)`, the target-field substrate of the Type-A pairing.
//!
//! # Example
//!
//! ```
//! use sp_bigint::Uint;
//! use sp_field::FieldCtx;
//!
//! let ctx = FieldCtx::<4>::new(Uint::from_u64(1_000_003))?;
//! let a = ctx.element(Uint::from_u64(2));
//! let b = ctx.element(Uint::from_u64(3));
//! assert_eq!((&a + &b) * &a, ctx.element(Uint::from_u64(10)));
//! assert_eq!(&a * &a.invert().unwrap(), ctx.one());
//! # Ok::<(), sp_field::FieldError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod error;
mod fp;
mod fp2;

pub use batch::batch_invert;
pub use error::FieldError;
pub use fp::{FieldCtx, Fp};
pub use fp2::Fp2;
