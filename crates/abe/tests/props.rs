//! Property-based tests of CP-ABE: random threshold policies, random
//! attribute subsets, and the invariant that decryption succeeds exactly
//! when the attribute set satisfies the tree.

use std::collections::HashSet;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sp_abe::{AccessTree, CpAbe};

fn attr_name(i: usize) -> String {
    format!("attr{i}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// For a k-of-n context tree and a random attribute subset, decryption
    /// succeeds iff |subset| >= k.
    #[test]
    fn threshold_semantics_hold(
        seed in any::<u64>(),
        n in 2usize..6,
        k_off in 0usize..5,
        subset_bits in any::<u8>(),
    ) {
        let k = 1 + k_off % n;
        let abe = CpAbe::insecure_test_params();
        let mut rng = StdRng::seed_from_u64(seed);
        let (pk, mk) = abe.setup(&mut rng);
        let leaves: Vec<AccessTree> = (0..n).map(|i| AccessTree::leaf(attr_name(i))).collect();
        let tree = AccessTree::threshold(k, leaves).unwrap();
        let m = abe.random_message(&mut rng);
        let ct = abe.encrypt(&pk, &m, &tree, &mut rng).unwrap();

        let subset: Vec<String> = (0..n)
            .filter(|i| subset_bits >> i & 1 == 1)
            .map(attr_name)
            .collect();
        let sk = abe.keygen(&mk, &subset, &mut rng);
        let attrs: HashSet<String> = subset.iter().cloned().collect();

        let should_succeed = attrs.len() >= k;
        prop_assert_eq!(tree.satisfied_by(&attrs), should_succeed);
        match abe.decrypt(&ct, &sk) {
            Ok(recovered) => {
                prop_assert!(should_succeed);
                prop_assert_eq!(recovered, m);
            }
            Err(_) => prop_assert!(!should_succeed),
        }
    }

    /// Satisfaction of a random two-level tree matches a direct recursive
    /// evaluation, and decryption agrees with satisfaction.
    #[test]
    fn nested_tree_satisfaction_matches_decryption(
        seed in any::<u64>(),
        k_top in 1usize..3,
        k_a in 1usize..3,
        k_b in 1usize..3,
        subset_bits in any::<u8>(),
    ) {
        // Tree: k_top-of-( k_a-of-(0,1,2), k_b-of-(3,4,5) )
        let sub_a = AccessTree::threshold(
            k_a,
            (0..3).map(|i| AccessTree::leaf(attr_name(i))).collect(),
        ).unwrap();
        let sub_b = AccessTree::threshold(
            k_b,
            (3..6).map(|i| AccessTree::leaf(attr_name(i))).collect(),
        ).unwrap();
        let tree = AccessTree::threshold(k_top.min(2), vec![sub_a, sub_b]).unwrap();

        let abe = CpAbe::insecure_test_params();
        let mut rng = StdRng::seed_from_u64(seed);
        let (pk, mk) = abe.setup(&mut rng);
        let m = abe.random_message(&mut rng);
        let ct = abe.encrypt(&pk, &m, &tree, &mut rng).unwrap();

        let subset: Vec<String> = (0..6)
            .filter(|i| subset_bits >> i & 1 == 1)
            .map(attr_name)
            .collect();
        let attrs: HashSet<String> = subset.iter().cloned().collect();
        let count_a = (0..3).filter(|i| attrs.contains(&attr_name(*i))).count();
        let count_b = (3..6).filter(|i| attrs.contains(&attr_name(*i))).count();
        let sat = [(count_a >= k_a), (count_b >= k_b)]
            .iter()
            .filter(|s| **s)
            .count()
            >= k_top.min(2);
        prop_assert_eq!(tree.satisfied_by(&attrs), sat);

        let sk = abe.keygen(&mk, &subset, &mut rng);
        match abe.decrypt(&ct, &sk) {
            Ok(recovered) => {
                prop_assert!(sat);
                prop_assert_eq!(recovered, m);
            }
            Err(_) => prop_assert!(!sat),
        }
    }

    /// Ciphertexts and keys survive serialization under random policies.
    #[test]
    fn serialization_is_faithful(seed in any::<u64>(), n in 1usize..5) {
        let abe = CpAbe::insecure_test_params();
        let mut rng = StdRng::seed_from_u64(seed);
        let (pk, mk) = abe.setup(&mut rng);
        let tree = AccessTree::threshold(
            1,
            (0..n).map(|i| AccessTree::leaf(attr_name(i))).collect(),
        ).unwrap();
        let m = abe.random_message(&mut rng);
        let ct = abe.encrypt(&pk, &m, &tree, &mut rng).unwrap();
        let sk = abe.keygen(&mk, &[attr_name(0)], &mut rng);

        let ct2 = abe.decode_ciphertext(&abe.encode_ciphertext(&ct)).unwrap();
        let sk2 = abe.decode_private_key(&abe.encode_private_key(&sk)).unwrap();
        prop_assert_eq!(abe.decrypt(&ct2, &sk2).unwrap(), m);
    }

    /// Hybrid roundtrip for arbitrary payloads.
    #[test]
    fn hybrid_roundtrip(seed in any::<u64>(),
                        payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        let abe = CpAbe::insecure_test_params();
        let mut rng = StdRng::seed_from_u64(seed);
        let (pk, mk) = abe.setup(&mut rng);
        let tree = AccessTree::leaf("the-attr");
        let ct = sp_abe::hybrid::encrypt(&abe, &pk, &tree, &payload, &mut rng).unwrap();
        let sk = abe.keygen(&mk, &["the-attr".to_string()], &mut rng);
        prop_assert_eq!(sp_abe::hybrid::decrypt(&abe, &ct, &sk).unwrap(), payload);
    }
}
