//! Ciphertext-policy attribute-based encryption (CP-ABE).
//!
//! A from-scratch implementation of the Bethencourt–Sahai–Waters scheme
//! (IEEE S&P 2007) — the scheme behind the `cpabe` toolkit that the
//! paper's second prototype shells out to — over the workspace's Type-A
//! pairing:
//!
//! * [`AccessTree`] — monotone threshold access structures (AND/OR/k-of-n
//!   gates over string attributes), including the paper's height-1
//!   "context tree" and its `Perturb`-compatible leaf relabeling,
//! * [`CpAbe`] — `Setup`, `Encrypt`, `KeyGen`, `Decrypt` and `Delegate`,
//! * [`hybrid`] — ABE-wrapped AES encryption of arbitrary byte payloads
//!   (what `cpabe-enc` does for files),
//! * wire encodings of every artifact, so the OSN simulation transfers
//!   byte-accurate public keys, master keys and ciphertexts.
//!
//! # Example
//!
//! ```
//! use rand::SeedableRng;
//! use sp_abe::{AccessTree, CpAbe};
//!
//! let abe = CpAbe::insecure_test_params();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let (pk, mk) = abe.setup(&mut rng);
//!
//! // "2-of-3 of these context facts"
//! let tree = AccessTree::threshold(2, vec![
//!     AccessTree::leaf("where=lakeside"),
//!     AccessTree::leaf("when=june"),
//!     AccessTree::leaf("host=priya"),
//! ])?;
//!
//! let message = abe.random_message(&mut rng);
//! let ct = abe.encrypt(&pk, &message, &tree, &mut rng)?;
//!
//! let sk = abe.keygen(&mk, &["where=lakeside".into(), "host=priya".into()], &mut rng);
//! assert_eq!(abe.decrypt(&ct, &sk)?, message);
//! # Ok::<(), sp_abe::AbeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access_tree;
mod bsw07;
mod error;
pub mod hybrid;

pub use access_tree::{encode_qa_attribute, AccessNode, AccessTree};
pub use bsw07::{Ciphertext, CpAbe, MasterKey, PrivateKey, PublicKey};
pub use error::AbeError;
