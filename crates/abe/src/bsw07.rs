//! The Bethencourt–Sahai–Waters CP-ABE scheme (IEEE S&P 2007).

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

use rand::Rng;
use sp_pairing::{FixedBaseTable, Gt, LineCache, Pairing, Scalar, G1};
use sp_par::parallel_map;
use sp_shamir::{Polynomial, ShamirScheme};
use sp_wire::{Reader, Writer};

use crate::access_tree::{AccessNode, AccessTree};
use crate::error::AbeError;

/// Fixed [`Gt`] encoding length (`c0 ‖ c1` over the 512-bit base field).
const GT_LEN: usize = 128;

/// The CP-ABE public key: `(h = g^β, f = g^{1/β}, e(g,g)^α)`; the
/// generator `g` itself is part of the shared pairing parameters.
///
/// Carries a lazily built fixed-base window table for `h` (the only
/// public-key point exponentiated per `Encrypt`), shared across clones so
/// repeated encryptions under one key pay the table cost once.
#[derive(Clone)]
pub struct PublicKey {
    h: G1,
    f: G1,
    e_gg_alpha: Gt,
    h_table: Arc<OnceLock<FixedBaseTable>>,
}

impl PublicKey {
    fn assemble(h: G1, f: G1, e_gg_alpha: Gt) -> Self {
        Self { h, f, e_gg_alpha, h_table: Arc::new(OnceLock::new()) }
    }

    fn h_table(&self) -> &FixedBaseTable {
        self.h_table.get_or_init(|| FixedBaseTable::new(&self.h, 64 * 4))
    }
}

impl PartialEq for PublicKey {
    fn eq(&self, other: &Self) -> bool {
        // The window table is a cache of h, not part of the key's value.
        self.h == other.h && self.f == other.f && self.e_gg_alpha == other.e_gg_alpha
    }
}

impl Eq for PublicKey {}

impl fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("PublicKey(h, f, e(g,g)^alpha)")
    }
}

/// The master secret `(β, g^α)`.
///
/// In the paper's protocol the sharer *publishes* `MK` alongside `PK` so
/// receivers can run `KeyGen` themselves — access control comes from
/// knowing the context attributes, not from withholding the master key.
#[derive(Clone, PartialEq, Eq)]
pub struct MasterKey {
    beta: Scalar,
    g_alpha: G1,
}

impl fmt::Debug for MasterKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("MasterKey(<secret>)")
    }
}

/// One per-attribute component of a private key.
#[derive(Clone, PartialEq, Eq, Debug)]
struct KeyComponent {
    attribute: String,
    d_j: G1,
    d_j_prime: G1,
}

/// A private key for an attribute set.
#[derive(Clone, PartialEq, Eq)]
pub struct PrivateKey {
    d: G1,
    components: Vec<KeyComponent>,
}

impl PrivateKey {
    /// The attributes this key identifies with.
    pub fn attributes(&self) -> Vec<&str> {
        self.components.iter().map(|c| c.attribute.as_str()).collect()
    }
}

impl fmt::Debug for PrivateKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PrivateKey({} attributes)", self.components.len())
    }
}

/// A CP-ABE ciphertext: the access tree, `C̃ = m·e(g,g)^{αs}`, `C = h^s`,
/// and per-leaf components in depth-first leaf order.
#[derive(Clone, PartialEq, Eq)]
pub struct Ciphertext {
    tree: AccessTree,
    c_tilde: Gt,
    c: G1,
    leaf_cts: Vec<(G1, G1)>,
}

impl Ciphertext {
    /// The embedded access tree.
    pub fn tree(&self) -> &AccessTree {
        &self.tree
    }

    /// Replaces the embedded tree with one of identical shape.
    ///
    /// This is the mechanism behind the paper's `Perturb` and
    /// `Reconstruct` subroutines (§V-B): the group-element components are
    /// opaque and stay put, only the human-readable tree labels change.
    ///
    /// # Errors
    ///
    /// Returns [`AbeError::TreeMismatch`] if the gate structure differs.
    pub fn with_tree(&self, tree: AccessTree) -> Result<Ciphertext, AbeError> {
        if !self.tree.same_shape(&tree) {
            return Err(AbeError::TreeMismatch);
        }
        Ok(Ciphertext {
            tree,
            c_tilde: self.c_tilde.clone(),
            c: self.c.clone(),
            leaf_cts: self.leaf_cts.clone(),
        })
    }
}

impl fmt::Debug for Ciphertext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ciphertext({} leaves, tree = {:?})", self.leaf_cts.len(), self.tree)
    }
}

/// The CP-ABE scheme, bound to pairing parameters.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Clone)]
pub struct CpAbe {
    pairing: Pairing,
    shamir: ShamirScheme,
    /// Memoized attribute hash points `attr → H(attr)`. Try-and-increment
    /// hashing plus cofactor clearing dominates Encrypt/KeyGen for
    /// repeated attributes; clones share the cache.
    attr_cache: Arc<Mutex<HashMap<String, G1>>>,
}

impl fmt::Debug for CpAbe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cached = self.attr_cache.lock().map(|c| c.len()).unwrap_or(0);
        write!(f, "CpAbe({:?}, {cached} cached attribute hashes)", self.pairing)
    }
}

impl CpAbe {
    /// Creates a scheme over the given pairing.
    pub fn new(pairing: Pairing) -> Self {
        let shamir = ShamirScheme::new(pairing.zr().clone());
        Self { pairing, shamir, attr_cache: Arc::new(Mutex::new(HashMap::new())) }
    }

    /// Scheme over the production 512-bit parameters.
    pub fn default_params() -> Self {
        Self::new(Pairing::default_params())
    }

    /// Scheme over small cached test parameters (not cryptographically
    /// strong).
    pub fn insecure_test_params() -> Self {
        Self::new(Pairing::insecure_test_params())
    }

    /// The underlying pairing.
    pub fn pairing(&self) -> &Pairing {
        &self.pairing
    }

    /// Samples a uniformly random `Gt` message (the payload a hybrid
    /// scheme derives its symmetric key from).
    pub fn random_message<R: Rng + ?Sized>(&self, rng: &mut R) -> Gt {
        self.pairing.random_gt(rng)
    }

    /// `Setup`: produces the public key and master secret.
    pub fn setup<R: Rng + ?Sized>(&self, rng: &mut R) -> (PublicKey, MasterKey) {
        let g = self.pairing.generator();
        let alpha = self.pairing.random_nonzero_scalar(rng);
        let beta = self.pairing.random_nonzero_scalar(rng);
        let beta_inv = beta.invert().expect("nonzero");
        let h = self.pairing.mul_generator(&beta);
        let f = self.pairing.mul_generator(&beta_inv);
        let g_alpha = self.pairing.mul_generator(&alpha);
        let e_gg_alpha =
            self.pairing.pair(g, &g_alpha).expect("generator pairing is non-degenerate");
        (PublicKey::assemble(h, f, e_gg_alpha), MasterKey { beta, g_alpha })
    }

    /// `Encrypt(PK, m, τ)`: encrypts the group element `m` under the
    /// access tree `τ`.
    ///
    /// # Errors
    ///
    /// Returns [`AbeError::BadTree`] if the tree is structurally invalid
    /// (cannot happen for trees built through [`AccessTree`]'s
    /// constructors).
    pub fn encrypt<R: Rng + ?Sized>(
        &self,
        pk: &PublicKey,
        m: &Gt,
        tree: &AccessTree,
        rng: &mut R,
    ) -> Result<Ciphertext, AbeError> {
        let s = self.pairing.random_nonzero_scalar(rng);

        // Share s down the tree; collect per-leaf secret shares in DFS order.
        let mut leaf_shares: Vec<Scalar> = Vec::with_capacity(tree.leaf_count());
        self.share_secret(tree.root(), &s, &mut leaf_shares, rng)?;

        let c_tilde = m.mul(&pk.e_gg_alpha.pow_scalar(&s));
        let c = pk.h_table().mul(&s.to_uint());
        // Attribute hashes resolve through the memo cache (serial — cheap
        // on a hit); the per-leaf exponentiations then fan out.
        let jobs: Vec<(G1, Scalar)> = tree
            .leaves()
            .iter()
            .zip(&leaf_shares)
            .map(|(attr, share)| (self.hash_attribute(attr), share.clone()))
            .collect();
        let leaf_cts = parallel_map(&jobs, |(h_attr, share)| {
            (self.pairing.mul_generator(share), self.pairing.mul(h_attr, share))
        });

        Ok(Ciphertext { tree: tree.clone(), c_tilde, c, leaf_cts })
    }

    /// The pre-optimization `Encrypt`: textbook double-and-add ladders,
    /// fresh (uncached) attribute hashing, serial leaf loop.
    ///
    /// Given the same RNG stream it produces a ciphertext **identical** to
    /// [`CpAbe::encrypt`]'s — the differential tests rely on that — and it
    /// is the "before" baseline the crypto benchmarks report speedups
    /// against.
    ///
    /// # Errors
    ///
    /// Returns [`AbeError::BadTree`] under the same conditions as
    /// [`CpAbe::encrypt`].
    pub fn encrypt_reference<R: Rng + ?Sized>(
        &self,
        pk: &PublicKey,
        m: &Gt,
        tree: &AccessTree,
        rng: &mut R,
    ) -> Result<Ciphertext, AbeError> {
        let s = self.pairing.random_nonzero_scalar(rng);
        let mut leaf_shares: Vec<Scalar> = Vec::with_capacity(tree.leaf_count());
        self.share_secret(tree.root(), &s, &mut leaf_shares, rng)?;

        let c_tilde = m.mul(&pk.e_gg_alpha.pow_scalar(&s));
        let c = pk.h.mul_uint(&s.to_uint());
        let g = self.pairing.generator();
        let leaf_cts = tree
            .leaves()
            .iter()
            .zip(&leaf_shares)
            .map(|(attr, share)| {
                let c_y = g.mul_uint(&share.to_uint());
                let c_y_prime = self.hash_attribute_uncached(attr).mul_uint(&share.to_uint());
                (c_y, c_y_prime)
            })
            .collect();

        Ok(Ciphertext { tree: tree.clone(), c_tilde, c, leaf_cts })
    }

    fn share_secret<R: Rng + ?Sized>(
        &self,
        node: &AccessNode,
        value: &Scalar,
        out: &mut Vec<Scalar>,
        rng: &mut R,
    ) -> Result<(), AbeError> {
        let zr = self.pairing.zr();
        match node {
            AccessNode::Leaf { .. } => {
                out.push(value.clone());
                Ok(())
            }
            AccessNode::Threshold { k, children } => {
                let poly = Polynomial::random_with_constant(value.clone(), *k, zr, rng);
                for (i, child) in children.iter().enumerate() {
                    let x = zr.from_u64(i as u64 + 1);
                    self.share_secret(child, &poly.eval(&x), out, rng)?;
                }
                Ok(())
            }
        }
    }

    /// `KeyGen(MK, S)`: derives a private key for attribute set `S`.
    pub fn keygen<R: Rng + ?Sized>(
        &self,
        mk: &MasterKey,
        attributes: &[String],
        rng: &mut R,
    ) -> PrivateKey {
        let r = self.pairing.random_nonzero_scalar(rng);
        let beta_inv = mk.beta.invert().expect("nonzero");
        // D = g^{(α + r)/β}
        let g_r = self.pairing.mul_generator(&r);
        let d = self.pairing.mul(&mk.g_alpha.add(&g_r), &beta_inv);
        // Per-attribute randomness is drawn serially (the RNG is borrowed
        // exclusively, and the draw order must match the reference path);
        // the group operations then fan out.
        let jobs: Vec<(String, Scalar, G1)> = attributes
            .iter()
            .map(|attr| {
                let r_j = self.pairing.random_nonzero_scalar(rng);
                (attr.clone(), r_j, self.hash_attribute(attr))
            })
            .collect();
        let components = parallel_map(&jobs, |(attr, r_j, h_attr)| KeyComponent {
            attribute: attr.clone(),
            d_j: g_r.add(&self.pairing.mul(h_attr, r_j)),
            d_j_prime: self.pairing.mul_generator(r_j),
        });
        PrivateKey { d, components }
    }

    /// The pre-optimization `KeyGen` (textbook ladders, uncached hashing,
    /// serial loop); same RNG stream ⇒ identical key to [`CpAbe::keygen`].
    pub fn keygen_reference<R: Rng + ?Sized>(
        &self,
        mk: &MasterKey,
        attributes: &[String],
        rng: &mut R,
    ) -> PrivateKey {
        let g = self.pairing.generator();
        let r = self.pairing.random_nonzero_scalar(rng);
        let beta_inv = mk.beta.invert().expect("nonzero");
        let g_r = g.mul_uint(&r.to_uint());
        let d = mk.g_alpha.add(&g_r).mul_uint(&beta_inv.to_uint());
        let components = attributes
            .iter()
            .map(|attr| {
                let r_j = self.pairing.random_nonzero_scalar(rng);
                let d_j = g_r.add(&self.hash_attribute_uncached(attr).mul_uint(&r_j.to_uint()));
                let d_j_prime = g.mul_uint(&r_j.to_uint());
                KeyComponent { attribute: attr.clone(), d_j, d_j_prime }
            })
            .collect();
        PrivateKey { d, components }
    }

    /// `Delegate(SK, S̃)`: derives a re-randomized key for a subset of the
    /// key's attributes (BSW07 §4.2), without the master key.
    ///
    /// # Errors
    ///
    /// Returns [`AbeError::PolicyNotSatisfied`] if `subset` is not
    /// contained in the key's attributes.
    pub fn delegate<R: Rng + ?Sized>(
        &self,
        pk: &PublicKey,
        sk: &PrivateKey,
        subset: &[String],
        rng: &mut R,
    ) -> Result<PrivateKey, AbeError> {
        let r_tilde = self.pairing.random_nonzero_scalar(rng);
        let g_rt = self.pairing.mul_generator(&r_tilde);
        let d = sk.d.add(&self.pairing.mul(&pk.f, &r_tilde));
        let components = subset
            .iter()
            .map(|attr| {
                let comp = sk
                    .components
                    .iter()
                    .find(|c| &c.attribute == attr)
                    .ok_or(AbeError::PolicyNotSatisfied)?;
                let r_k = self.pairing.random_nonzero_scalar(rng);
                let d_j =
                    comp.d_j.add(&g_rt).add(&self.pairing.mul(&self.hash_attribute(attr), &r_k));
                let d_j_prime = comp.d_j_prime.add(&self.pairing.mul_generator(&r_k));
                Ok(KeyComponent { attribute: attr.clone(), d_j, d_j_prime })
            })
            .collect::<Result<Vec<_>, AbeError>>()?;
        Ok(PrivateKey { d, components })
    }

    /// `Decrypt(CT, SK)`: recovers the message if the key's attributes
    /// satisfy the ciphertext's access tree.
    ///
    /// The recursive `DecryptNode` of the paper is flattened: each used
    /// leaf contributes `[e(D_j, C_y)/e(D'_j, C'_y)]^{c_j}` where `c_j` is
    /// the product of Lagrange coefficients along its root path, so the
    /// whole tree is one product of pairings. Folding `c_j` into the `G1`
    /// arguments (`e(X, Y)^c = e([c]X, Y)`) turns `k` pairing ratios plus
    /// `k` `Gt` exponentiations into `2k` scalar multiplications (cheap,
    /// parallel) and **one** multi-pairing with **one** final
    /// exponentiation.
    ///
    /// # Errors
    ///
    /// Returns [`AbeError::PolicyNotSatisfied`] if the key's attributes do
    /// not satisfy the tree.
    pub fn decrypt(&self, ct: &Ciphertext, sk: &PrivateKey) -> Result<Gt, AbeError> {
        let attrs: HashSet<String> = sk.components.iter().map(|c| c.attribute.clone()).collect();
        if !ct.tree.satisfied_by(&attrs) {
            return Err(AbeError::PolicyNotSatisfied);
        }
        let mut selected: Vec<(usize, Scalar)> = Vec::new();
        let mut leaf_index = 0usize;
        let one = self.pairing.zr().one();
        self.collect_leaf_coefficients(
            ct.tree.root(),
            &attrs,
            &one,
            &mut leaf_index,
            &mut selected,
        )?;

        let leaves = ct.tree.leaves();
        let jobs: Vec<(G1, G1, Scalar, usize)> = selected
            .into_iter()
            .map(|(idx, coeff)| {
                let comp = sk
                    .components
                    .iter()
                    .find(|c| c.attribute == leaves[idx])
                    .expect("selected leaves carry key attributes");
                (comp.d_j.clone(), comp.d_j_prime.clone(), coeff, idx)
            })
            .collect();
        let folded: Vec<(G1, G1, usize)> = parallel_map(&jobs, |(d_j, d_j_prime, coeff, idx)| {
            (self.pairing.mul(d_j, coeff), self.pairing.mul(d_j_prime, coeff), *idx)
        });
        let num: Vec<(&G1, &G1)> =
            folded.iter().map(|(d, _, idx)| (d, &ct.leaf_cts[*idx].0)).collect();
        let mut den: Vec<(&G1, &G1)> =
            folded.iter().map(|(_, dp, idx)| (dp, &ct.leaf_cts[*idx].1)).collect();
        den.push((&ct.c, &sk.d));
        // m = C̃ · Π e([c_j]D_j, C_y) / (Π e([c_j]D'_j, C'_y) · e(C, D))
        let prod =
            self.pairing.pair_product(&num, &den).map_err(|_| AbeError::DegeneratePairing)?;
        Ok(ct.c_tilde.mul(&prod))
    }

    /// [`CpAbe::decrypt`] with the Miller walks of the ciphertext-side
    /// points (`C_y`, `C'_y`, `C` — the puzzle's fixed public inputs)
    /// replayed from `cache` under the opaque `tag`.
    ///
    /// The pairing is symmetric, so each ratio term is evaluated with the
    /// *ciphertext* point in the first (cached) slot and the per-key folded
    /// point in the second: a warm decryption skips every Jacobian walk
    /// over the ciphertext components. The result is the same group
    /// element as [`CpAbe::decrypt`].
    ///
    /// # Errors
    ///
    /// Returns [`AbeError::PolicyNotSatisfied`] if the key's attributes do
    /// not satisfy the tree.
    pub fn decrypt_cached(
        &self,
        cache: &LineCache,
        tag: &[u8],
        ct: &Ciphertext,
        sk: &PrivateKey,
    ) -> Result<Gt, AbeError> {
        let attrs: HashSet<String> = sk.components.iter().map(|c| c.attribute.clone()).collect();
        if !ct.tree.satisfied_by(&attrs) {
            return Err(AbeError::PolicyNotSatisfied);
        }
        let mut selected: Vec<(usize, Scalar)> = Vec::new();
        let mut leaf_index = 0usize;
        let one = self.pairing.zr().one();
        self.collect_leaf_coefficients(
            ct.tree.root(),
            &attrs,
            &one,
            &mut leaf_index,
            &mut selected,
        )?;

        let leaves = ct.tree.leaves();
        let jobs: Vec<(G1, G1, Scalar, usize)> = selected
            .into_iter()
            .map(|(idx, coeff)| {
                let comp = sk
                    .components
                    .iter()
                    .find(|c| c.attribute == leaves[idx])
                    .expect("selected leaves carry key attributes");
                (comp.d_j.clone(), comp.d_j_prime.clone(), coeff, idx)
            })
            .collect();
        let folded: Vec<(G1, G1, usize)> = parallel_map(&jobs, |(d_j, d_j_prime, coeff, idx)| {
            (self.pairing.mul(d_j, coeff), self.pairing.mul(d_j_prime, coeff), *idx)
        });
        // Fixed ciphertext-side points go in the first slot — that is the
        // argument whose line precomputation the cache stores and replays.
        let num: Vec<(&G1, &G1)> =
            folded.iter().map(|(d, _, idx)| (&ct.leaf_cts[*idx].0, d)).collect();
        let mut den: Vec<(&G1, &G1)> =
            folded.iter().map(|(_, dp, idx)| (&ct.leaf_cts[*idx].1, dp)).collect();
        den.push((&ct.c, &sk.d));
        let prod = self
            .pairing
            .pair_product_cached(cache, tag, &num, &den)
            .map_err(|_| AbeError::DegeneratePairing)?;
        Ok(ct.c_tilde.mul(&prod))
    }

    /// Walks a *satisfied* subtree mirroring the reference `DecryptNode`
    /// child selection (the first `k` satisfied children in order) and
    /// records, for each used leaf, the product of Lagrange coefficients
    /// along its path. `leaf_index` advances through skipped subtrees so
    /// recorded indices line up with `leaf_cts`.
    fn collect_leaf_coefficients(
        &self,
        node: &AccessNode,
        attrs: &HashSet<String>,
        coeff: &Scalar,
        leaf_index: &mut usize,
        out: &mut Vec<(usize, Scalar)>,
    ) -> Result<(), AbeError> {
        fn satisfied(node: &AccessNode, attrs: &HashSet<String>) -> bool {
            match node {
                AccessNode::Leaf { attribute } => attrs.contains(attribute),
                AccessNode::Threshold { k, children } => {
                    children.iter().filter(|c| satisfied(c, attrs)).count() >= *k
                }
            }
        }
        fn leaf_count(node: &AccessNode) -> usize {
            match node {
                AccessNode::Leaf { .. } => 1,
                AccessNode::Threshold { children, .. } => children.iter().map(leaf_count).sum(),
            }
        }
        match node {
            AccessNode::Leaf { .. } => {
                out.push((*leaf_index, coeff.clone()));
                *leaf_index += 1;
                Ok(())
            }
            AccessNode::Threshold { k, children } => {
                let chosen: Vec<usize> = children
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| satisfied(c, attrs))
                    .map(|(i, _)| i)
                    .take(*k)
                    .collect();
                debug_assert_eq!(chosen.len(), *k, "caller guarantees this subtree is satisfied");
                let zr = self.pairing.zr();
                let xs: Vec<Scalar> = chosen.iter().map(|&i| zr.from_u64(i as u64 + 1)).collect();
                let gammas = self
                    .shamir
                    .lagrange_coefficients_at_zero(&xs)
                    .map_err(|_| AbeError::PolicyNotSatisfied)?;
                let mut pos = 0usize;
                for (i, child) in children.iter().enumerate() {
                    if pos < chosen.len() && chosen[pos] == i {
                        let child_coeff = coeff * &gammas[pos];
                        self.collect_leaf_coefficients(
                            child,
                            attrs,
                            &child_coeff,
                            leaf_index,
                            out,
                        )?;
                        pos += 1;
                    } else {
                        *leaf_index += leaf_count(child);
                    }
                }
                Ok(())
            }
        }
    }

    /// The pre-optimization `Decrypt`: recursive `DecryptNode` with one
    /// affine-Miller pairing ratio per satisfied leaf and a `Gt`
    /// exponentiation per Lagrange coefficient. Differential-test oracle
    /// (it must return the *same group element* as [`CpAbe::decrypt`]) and
    /// benchmark baseline.
    ///
    /// # Errors
    ///
    /// Returns [`AbeError::PolicyNotSatisfied`] if the key's attributes do
    /// not satisfy the tree.
    pub fn decrypt_reference(&self, ct: &Ciphertext, sk: &PrivateKey) -> Result<Gt, AbeError> {
        let attrs: HashSet<String> = sk.components.iter().map(|c| c.attribute.clone()).collect();
        if !ct.tree.satisfied_by(&attrs) {
            return Err(AbeError::PolicyNotSatisfied);
        }
        let mut leaf_index = 0usize;
        let a = self
            .decrypt_node(ct.tree.root(), ct, sk, &mut leaf_index)
            .ok_or(AbeError::PolicyNotSatisfied)?;
        // m = C̃ · A / e(C, D)
        let e_c_d =
            self.pairing.pair_reference(&ct.c, &sk.d).map_err(|_| AbeError::DegeneratePairing)?;
        Ok(ct.c_tilde.mul(&a).div(&e_c_d))
    }

    /// Recursive `DecryptNode`; `leaf_index` tracks the DFS leaf cursor so
    /// tree nodes line up with `leaf_cts`.
    fn decrypt_node(
        &self,
        node: &AccessNode,
        ct: &Ciphertext,
        sk: &PrivateKey,
        leaf_index: &mut usize,
    ) -> Option<Gt> {
        match node {
            AccessNode::Leaf { attribute } => {
                let idx = *leaf_index;
                *leaf_index += 1;
                let comp = sk.components.iter().find(|c| &c.attribute == attribute)?;
                let (c_y, c_y_prime) = &ct.leaf_cts[idx];
                // e(D_j, C_y) / e(D'_j, C'_y) = e(g,g)^{r·q_y(0)},
                // computed with one shared final exponentiation.
                self.pairing.pair_ratio_reference(&comp.d_j, c_y, &comp.d_j_prime, c_y_prime).ok()
            }
            AccessNode::Threshold { k, children } => {
                // Evaluate every child (advancing the leaf cursor through
                // unsatisfied subtrees too), keep the satisfied ones.
                let mut satisfied: Vec<(usize, Gt)> = Vec::new();
                for (i, child) in children.iter().enumerate() {
                    if let Some(f) = self.decrypt_node(child, ct, sk, leaf_index) {
                        satisfied.push((i, f));
                    }
                }
                if satisfied.len() < *k {
                    return None;
                }
                satisfied.truncate(*k);
                // Lagrange combination in the exponent at x = 0 over child
                // indices (1-based).
                let zr = self.pairing.zr();
                let xs: Vec<Scalar> =
                    satisfied.iter().map(|(i, _)| zr.from_u64(*i as u64 + 1)).collect();
                let zero = zr.zero();
                let mut acc = self.pairing.gt_one();
                for (j, (_, f)) in satisfied.iter().enumerate() {
                    let gamma = self
                        .shamir
                        .lagrange_coefficient(&xs, j, &zero)
                        .expect("child indices are distinct");
                    acc = acc.mul(&f.pow_scalar(&gamma));
                }
                Some(acc)
            }
        }
    }

    /// `H : {0,1}* → G1`, the attribute hash, memoized per scheme
    /// instance (the paper's protocols hash the same few context
    /// attributes over and over across Encrypt/KeyGen calls).
    pub fn hash_attribute(&self, attribute: &str) -> G1 {
        if let Ok(cache) = self.attr_cache.lock() {
            if let Some(p) = cache.get(attribute) {
                return p.clone();
            }
        }
        let p = self.hash_attribute_uncached(attribute);
        if let Ok(mut cache) = self.attr_cache.lock() {
            cache.insert(attribute.to_owned(), p.clone());
        }
        p
    }

    /// The attribute hash without memoization (reference paths hash fresh
    /// every time, like the pre-optimization code did).
    fn hash_attribute_uncached(&self, attribute: &str) -> G1 {
        self.pairing.hash_to_g1(&[b"sp-abe/attr/v1/", attribute.as_bytes()].concat())
    }

    // ------------------------------------------------------------------
    // Wire encodings (byte-accurate transfer sizes for the OSN simulator).
    // ------------------------------------------------------------------

    /// Encodes the public key.
    pub fn encode_public_key(&self, pk: &PublicKey) -> Vec<u8> {
        let cap = 12 + pk.h.encoded_len() + pk.f.encoded_len() + GT_LEN;
        let mut w = Writer::with_capacity(cap);
        w.bytes(&pk.h.to_bytes());
        w.bytes(&pk.f.to_bytes());
        w.bytes(&pk.e_gg_alpha.to_bytes());
        let out = w.finish().to_vec();
        debug_assert_eq!(out.len(), cap);
        out
    }

    /// Decodes a public key.
    ///
    /// # Errors
    ///
    /// Returns [`AbeError::BadEncoding`] for malformed buffers.
    pub fn decode_public_key(&self, bytes: &[u8]) -> Result<PublicKey, AbeError> {
        let mut r = Reader::new(bytes);
        let h = self
            .pairing
            .g1_from_bytes(r.bytes().map_err(|_| AbeError::BadEncoding)?)
            .map_err(|_| AbeError::BadEncoding)?;
        let f = self
            .pairing
            .g1_from_bytes(r.bytes().map_err(|_| AbeError::BadEncoding)?)
            .map_err(|_| AbeError::BadEncoding)?;
        let e_gg_alpha = self
            .pairing
            .gt_from_bytes(r.bytes().map_err(|_| AbeError::BadEncoding)?)
            .map_err(|_| AbeError::BadEncoding)?;
        r.expect_end().map_err(|_| AbeError::BadEncoding)?;
        Ok(PublicKey::assemble(h, f, e_gg_alpha))
    }

    /// Encodes the master key.
    pub fn encode_master_key(&self, mk: &MasterKey) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes(&mk.beta.to_be_bytes());
        w.bytes(&mk.g_alpha.to_bytes());
        w.finish().to_vec()
    }

    /// Decodes a master key.
    ///
    /// # Errors
    ///
    /// Returns [`AbeError::BadEncoding`] for malformed buffers.
    pub fn decode_master_key(&self, bytes: &[u8]) -> Result<MasterKey, AbeError> {
        let mut r = Reader::new(bytes);
        let beta = self
            .pairing
            .zr()
            .from_be_bytes(r.bytes().map_err(|_| AbeError::BadEncoding)?)
            .map_err(|_| AbeError::BadEncoding)?;
        let g_alpha = self
            .pairing
            .g1_from_bytes(r.bytes().map_err(|_| AbeError::BadEncoding)?)
            .map_err(|_| AbeError::BadEncoding)?;
        r.expect_end().map_err(|_| AbeError::BadEncoding)?;
        Ok(MasterKey { beta, g_alpha })
    }

    /// Encodes a ciphertext (tree + group elements).
    ///
    /// The output buffer is pre-sized to its exact final length and leaf
    /// points stream through one reused scratch buffer, so encoding a
    /// large ciphertext performs no doubling reallocations.
    pub fn encode_ciphertext(&self, ct: &Ciphertext) -> Vec<u8> {
        let cap = ct.tree.encoded_len()
            + 4
            + GT_LEN
            + 4
            + ct.c.encoded_len()
            + 4
            + ct.leaf_cts
                .iter()
                .map(|(c_y, c_y_prime)| 8 + c_y.encoded_len() + c_y_prime.encoded_len())
                .sum::<usize>();
        let mut w = Writer::with_capacity(cap);
        ct.tree.encode(&mut w);
        w.bytes(&ct.c_tilde.to_bytes());
        w.bytes(&ct.c.to_bytes());
        w.u32(ct.leaf_cts.len() as u32);
        let mut scratch = Vec::with_capacity(ct.c.encoded_len());
        for (c_y, c_y_prime) in &ct.leaf_cts {
            scratch.clear();
            c_y.write_bytes(&mut scratch);
            w.bytes(&scratch);
            scratch.clear();
            c_y_prime.write_bytes(&mut scratch);
            w.bytes(&scratch);
        }
        let out = w.finish().to_vec();
        debug_assert_eq!(out.len(), cap);
        out
    }

    /// Decodes a ciphertext.
    ///
    /// # Errors
    ///
    /// Returns [`AbeError::BadEncoding`] for malformed buffers, including
    /// a leaf-component count that disagrees with the tree.
    pub fn decode_ciphertext(&self, bytes: &[u8]) -> Result<Ciphertext, AbeError> {
        let mut r = Reader::new(bytes);
        let tree = AccessTree::decode(&mut r).map_err(|_| AbeError::BadEncoding)?;
        let c_tilde = self
            .pairing
            .gt_from_bytes(r.bytes().map_err(|_| AbeError::BadEncoding)?)
            .map_err(|_| AbeError::BadEncoding)?;
        let c = self
            .pairing
            .g1_from_bytes(r.bytes().map_err(|_| AbeError::BadEncoding)?)
            .map_err(|_| AbeError::BadEncoding)?;
        let n = r.u32().map_err(|_| AbeError::BadEncoding)? as usize;
        if n != tree.leaf_count() {
            return Err(AbeError::BadEncoding);
        }
        let mut leaf_cts = Vec::with_capacity(n);
        for _ in 0..n {
            let c_y = self
                .pairing
                .g1_from_bytes(r.bytes().map_err(|_| AbeError::BadEncoding)?)
                .map_err(|_| AbeError::BadEncoding)?;
            let c_y_prime = self
                .pairing
                .g1_from_bytes(r.bytes().map_err(|_| AbeError::BadEncoding)?)
                .map_err(|_| AbeError::BadEncoding)?;
            leaf_cts.push((c_y, c_y_prime));
        }
        r.expect_end().map_err(|_| AbeError::BadEncoding)?;
        Ok(Ciphertext { tree, c_tilde, c, leaf_cts })
    }

    /// Encodes a private key.
    pub fn encode_private_key(&self, sk: &PrivateKey) -> Vec<u8> {
        let cap = 8
            + sk.d.encoded_len()
            + sk.components
                .iter()
                .map(|c| 12 + c.attribute.len() + c.d_j.encoded_len() + c.d_j_prime.encoded_len())
                .sum::<usize>();
        let mut w = Writer::with_capacity(cap);
        w.bytes(&sk.d.to_bytes());
        w.u32(sk.components.len() as u32);
        for c in &sk.components {
            w.string(&c.attribute);
            w.bytes(&c.d_j.to_bytes());
            w.bytes(&c.d_j_prime.to_bytes());
        }
        w.finish().to_vec()
    }

    /// Decodes a private key.
    ///
    /// # Errors
    ///
    /// Returns [`AbeError::BadEncoding`] for malformed buffers.
    pub fn decode_private_key(&self, bytes: &[u8]) -> Result<PrivateKey, AbeError> {
        let mut r = Reader::new(bytes);
        let d = self
            .pairing
            .g1_from_bytes(r.bytes().map_err(|_| AbeError::BadEncoding)?)
            .map_err(|_| AbeError::BadEncoding)?;
        let n = r.u32().map_err(|_| AbeError::BadEncoding)? as usize;
        if n > 1 << 20 {
            return Err(AbeError::BadEncoding);
        }
        let mut components = Vec::with_capacity(n);
        for _ in 0..n {
            let attribute = r.string().map_err(|_| AbeError::BadEncoding)?.to_owned();
            let d_j = self
                .pairing
                .g1_from_bytes(r.bytes().map_err(|_| AbeError::BadEncoding)?)
                .map_err(|_| AbeError::BadEncoding)?;
            let d_j_prime = self
                .pairing
                .g1_from_bytes(r.bytes().map_err(|_| AbeError::BadEncoding)?)
                .map_err(|_| AbeError::BadEncoding)?;
            components.push(KeyComponent { attribute, d_j, d_j_prime });
        }
        r.expect_end().map_err(|_| AbeError::BadEncoding)?;
        Ok(PrivateKey { d, components })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn abe() -> CpAbe {
        CpAbe::insecure_test_params()
    }

    fn strings(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn encrypt_decrypt_single_leaf() {
        let abe = abe();
        let mut rng = StdRng::seed_from_u64(80);
        let (pk, mk) = abe.setup(&mut rng);
        let tree = AccessTree::leaf("a");
        let m = abe.random_message(&mut rng);
        let ct = abe.encrypt(&pk, &m, &tree, &mut rng).unwrap();
        let sk = abe.keygen(&mk, &strings(&["a"]), &mut rng);
        assert_eq!(abe.decrypt(&ct, &sk).unwrap(), m);
    }

    #[test]
    fn wrong_attribute_fails() {
        let abe = abe();
        let mut rng = StdRng::seed_from_u64(81);
        let (pk, mk) = abe.setup(&mut rng);
        let tree = AccessTree::leaf("a");
        let m = abe.random_message(&mut rng);
        let ct = abe.encrypt(&pk, &m, &tree, &mut rng).unwrap();
        let sk = abe.keygen(&mk, &strings(&["b"]), &mut rng);
        assert_eq!(abe.decrypt(&ct, &sk).unwrap_err(), AbeError::PolicyNotSatisfied);
    }

    #[test]
    fn threshold_2_of_3() {
        let abe = abe();
        let mut rng = StdRng::seed_from_u64(82);
        let (pk, mk) = abe.setup(&mut rng);
        let tree = AccessTree::threshold(
            2,
            vec![AccessTree::leaf("a"), AccessTree::leaf("b"), AccessTree::leaf("c")],
        )
        .unwrap();
        let m = abe.random_message(&mut rng);
        let ct = abe.encrypt(&pk, &m, &tree, &mut rng).unwrap();
        for good in [&["a", "b"][..], &["b", "c"], &["a", "c"], &["a", "b", "c"]] {
            let sk = abe.keygen(&mk, &strings(good), &mut rng);
            assert_eq!(abe.decrypt(&ct, &sk).unwrap(), m, "attrs = {good:?}");
        }
        for bad in [&["a"][..], &["c"], &["x", "y"], &[]] {
            let sk = abe.keygen(&mk, &strings(bad), &mut rng);
            assert!(abe.decrypt(&ct, &sk).is_err(), "attrs = {bad:?}");
        }
    }

    #[test]
    fn nested_policy() {
        let abe = abe();
        let mut rng = StdRng::seed_from_u64(83);
        let (pk, mk) = abe.setup(&mut rng);
        // (a AND b) OR c
        let tree = AccessTree::or(vec![
            AccessTree::and(vec![AccessTree::leaf("a"), AccessTree::leaf("b")]).unwrap(),
            AccessTree::leaf("c"),
        ])
        .unwrap();
        let m = abe.random_message(&mut rng);
        let ct = abe.encrypt(&pk, &m, &tree, &mut rng).unwrap();
        for good in [&["a", "b"][..], &["c"], &["a", "c"]] {
            let sk = abe.keygen(&mk, &strings(good), &mut rng);
            assert_eq!(abe.decrypt(&ct, &sk).unwrap(), m, "attrs = {good:?}");
        }
        let sk = abe.keygen(&mk, &strings(&["a"]), &mut rng);
        assert!(abe.decrypt(&ct, &sk).is_err());
    }

    #[test]
    fn excess_attributes_are_fine() {
        let abe = abe();
        let mut rng = StdRng::seed_from_u64(84);
        let (pk, mk) = abe.setup(&mut rng);
        let tree = AccessTree::and(vec![AccessTree::leaf("a"), AccessTree::leaf("b")]).unwrap();
        let m = abe.random_message(&mut rng);
        let ct = abe.encrypt(&pk, &m, &tree, &mut rng).unwrap();
        let sk = abe.keygen(&mk, &strings(&["z", "a", "q", "b", "w"]), &mut rng);
        assert_eq!(abe.decrypt(&ct, &sk).unwrap(), m);
    }

    #[test]
    fn collusion_resistance() {
        // Alice holds {a}, Bob holds {b}; the policy needs both. Neither
        // key alone decrypts, and mixing components across keys must not
        // decrypt either (different blinding r per key).
        let abe = abe();
        let mut rng = StdRng::seed_from_u64(85);
        let (pk, mk) = abe.setup(&mut rng);
        let tree = AccessTree::and(vec![AccessTree::leaf("a"), AccessTree::leaf("b")]).unwrap();
        let m = abe.random_message(&mut rng);
        let ct = abe.encrypt(&pk, &m, &tree, &mut rng).unwrap();
        let alice = abe.keygen(&mk, &strings(&["a"]), &mut rng);
        let bob = abe.keygen(&mk, &strings(&["b"]), &mut rng);
        assert!(abe.decrypt(&ct, &alice).is_err());
        assert!(abe.decrypt(&ct, &bob).is_err());
        // Frankenstein key: Alice's D and a-component + Bob's b-component.
        let franken = PrivateKey {
            d: alice.d.clone(),
            components: vec![alice.components[0].clone(), bob.components[0].clone()],
        };
        match abe.decrypt(&ct, &franken) {
            Err(_) => {}
            Ok(recovered) => assert_ne!(recovered, m, "collusion must not recover the message"),
        }
    }

    #[test]
    fn delegate_subset_works_and_nonsubset_rejected() {
        let abe = abe();
        let mut rng = StdRng::seed_from_u64(86);
        let (pk, mk) = abe.setup(&mut rng);
        let sk = abe.keygen(&mk, &strings(&["a", "b", "c"]), &mut rng);
        let delegated = abe.delegate(&pk, &sk, &strings(&["a", "b"]), &mut rng).unwrap();
        assert_eq!(delegated.attributes(), vec!["a", "b"]);

        let tree = AccessTree::and(vec![AccessTree::leaf("a"), AccessTree::leaf("b")]).unwrap();
        let m = abe.random_message(&mut rng);
        let ct = abe.encrypt(&pk, &m, &tree, &mut rng).unwrap();
        assert_eq!(abe.decrypt(&ct, &delegated).unwrap(), m);

        // But the delegated key lost "c".
        let tree_c = AccessTree::leaf("c");
        let ct_c = abe.encrypt(&pk, &m, &tree_c, &mut rng).unwrap();
        assert!(abe.decrypt(&ct_c, &delegated).is_err());

        assert_eq!(
            abe.delegate(&pk, &sk, &strings(&["a", "zzz"]), &mut rng).unwrap_err(),
            AbeError::PolicyNotSatisfied
        );
    }

    #[test]
    fn tree_replacement_perturb_reconstruct() {
        let abe = abe();
        let mut rng = StdRng::seed_from_u64(87);
        let (pk, mk) = abe.setup(&mut rng);
        let tree = AccessTree::threshold(
            2,
            vec![AccessTree::leaf("a"), AccessTree::leaf("b"), AccessTree::leaf("c")],
        )
        .unwrap();
        let m = abe.random_message(&mut rng);
        let ct = abe.encrypt(&pk, &m, &tree, &mut rng).unwrap();

        // Perturb: relabel leaves; group elements untouched.
        let perturbed_tree = tree.map_leaves(|a| format!("H({a})"));
        let ct_perturbed = ct.with_tree(perturbed_tree).unwrap();
        // A key for the original attributes no longer *satisfies the tree
        // labels*, so decryption refuses.
        let sk = abe.keygen(&mk, &strings(&["a", "b"]), &mut rng);
        assert!(abe.decrypt(&ct_perturbed, &sk).is_err());

        // Reconstruct: put the real labels back; decryption works again.
        let ct_reconstructed = ct_perturbed.with_tree(tree.clone()).unwrap();
        assert_eq!(abe.decrypt(&ct_reconstructed, &sk).unwrap(), m);

        // Mismatched shape is rejected.
        let other = AccessTree::leaf("x");
        assert_eq!(ct.with_tree(other).unwrap_err(), AbeError::TreeMismatch);
    }

    #[test]
    fn serialization_roundtrips() {
        let abe = abe();
        let mut rng = StdRng::seed_from_u64(88);
        let (pk, mk) = abe.setup(&mut rng);
        let tree =
            AccessTree::threshold(1, vec![AccessTree::leaf("a"), AccessTree::leaf("b")]).unwrap();
        let m = abe.random_message(&mut rng);
        let ct = abe.encrypt(&pk, &m, &tree, &mut rng).unwrap();
        let sk = abe.keygen(&mk, &strings(&["a"]), &mut rng);

        let pk2 = abe.decode_public_key(&abe.encode_public_key(&pk)).unwrap();
        assert_eq!(pk2, pk);
        let mk2 = abe.decode_master_key(&abe.encode_master_key(&mk)).unwrap();
        assert_eq!(mk2, mk);
        let ct2 = abe.decode_ciphertext(&abe.encode_ciphertext(&ct)).unwrap();
        assert_eq!(ct2, ct);
        let sk2 = abe.decode_private_key(&abe.encode_private_key(&sk)).unwrap();
        assert_eq!(sk2, sk);

        // Decryption still works across a serialize/deserialize cycle.
        assert_eq!(abe.decrypt(&ct2, &sk2).unwrap(), m);

        // Corruption is caught.
        let mut bad = abe.encode_ciphertext(&ct);
        let last = bad.len() - 1;
        bad[last] ^= 1;
        assert!(abe.decode_ciphertext(&bad).is_err());
        assert!(abe.decode_public_key(&[1, 2, 3]).is_err());
        assert!(abe.decode_master_key(&[]).is_err());
        assert!(abe.decode_private_key(&[0]).is_err());
    }

    #[test]
    fn keygen_randomization_gives_distinct_keys() {
        let abe = abe();
        let mut rng = StdRng::seed_from_u64(89);
        let (_, mk) = abe.setup(&mut rng);
        let sk1 = abe.keygen(&mk, &strings(&["a"]), &mut rng);
        let sk2 = abe.keygen(&mk, &strings(&["a"]), &mut rng);
        assert_ne!(sk1, sk2, "keys must be randomized per KeyGen call");
    }

    #[test]
    fn ciphertext_randomization() {
        let abe = abe();
        let mut rng = StdRng::seed_from_u64(90);
        let (pk, _) = abe.setup(&mut rng);
        let tree = AccessTree::leaf("a");
        let m = abe.random_message(&mut rng);
        let ct1 = abe.encrypt(&pk, &m, &tree, &mut rng).unwrap();
        let ct2 = abe.encrypt(&pk, &m, &tree, &mut rng).unwrap();
        assert_ne!(ct1, ct2, "encryption must be probabilistic");
    }

    #[test]
    fn encrypt_matches_reference_on_same_rng_stream() {
        // Fast Encrypt (fixed-base tables, memoized hashes, parallel leaf
        // map) draws randomness in the same order as the textbook path, so
        // identical seeds must give identical ciphertexts.
        let abe = abe();
        let mut rng = StdRng::seed_from_u64(92);
        let (pk, _) = abe.setup(&mut rng);
        let tree = AccessTree::threshold(
            2,
            vec![
                AccessTree::leaf("a"),
                AccessTree::and(vec![AccessTree::leaf("b"), AccessTree::leaf("c")]).unwrap(),
                AccessTree::leaf("d"),
            ],
        )
        .unwrap();
        let m = abe.random_message(&mut rng);
        let ct_fast = abe.encrypt(&pk, &m, &tree, &mut StdRng::seed_from_u64(7)).unwrap();
        let ct_ref = abe.encrypt_reference(&pk, &m, &tree, &mut StdRng::seed_from_u64(7)).unwrap();
        assert_eq!(ct_fast, ct_ref);
    }

    #[test]
    fn keygen_matches_reference_on_same_rng_stream() {
        let abe = abe();
        let mut rng = StdRng::seed_from_u64(93);
        let (_, mk) = abe.setup(&mut rng);
        let attrs = strings(&["a", "b", "c", "d", "e"]);
        let sk_fast = abe.keygen(&mk, &attrs, &mut StdRng::seed_from_u64(11));
        let sk_ref = abe.keygen_reference(&mk, &attrs, &mut StdRng::seed_from_u64(11));
        assert_eq!(sk_fast, sk_ref);
    }

    #[test]
    fn decrypt_matches_reference_exactly() {
        // The flattened multi-pairing decrypt must return the *same group
        // element* as the recursive per-leaf path, across gate shapes and
        // partially satisfying keys.
        let abe = abe();
        let mut rng = StdRng::seed_from_u64(94);
        let (pk, mk) = abe.setup(&mut rng);
        let tree = AccessTree::threshold(
            2,
            vec![
                AccessTree::or(vec![AccessTree::leaf("a"), AccessTree::leaf("b")]).unwrap(),
                AccessTree::and(vec![AccessTree::leaf("c"), AccessTree::leaf("d")]).unwrap(),
                AccessTree::leaf("e"),
            ],
        )
        .unwrap();
        let m = abe.random_message(&mut rng);
        let ct = abe.encrypt(&pk, &m, &tree, &mut rng).unwrap();
        for attrs in
            [&["a", "c", "d"][..], &["b", "e"], &["a", "b", "c", "d", "e"], &["e", "c", "d"]]
        {
            let sk = abe.keygen(&mk, &strings(attrs), &mut rng);
            let fast = abe.decrypt(&ct, &sk).unwrap();
            let slow = abe.decrypt_reference(&ct, &sk).unwrap();
            assert_eq!(fast, slow, "attrs = {attrs:?}");
            assert_eq!(fast, m, "attrs = {attrs:?}");
        }
        // Both paths refuse unsatisfying keys.
        let sk = abe.keygen(&mk, &strings(&["a", "c"]), &mut rng);
        assert!(abe.decrypt(&ct, &sk).is_err());
        assert!(abe.decrypt_reference(&ct, &sk).is_err());
    }

    #[test]
    fn decrypt_cached_matches_uncached() {
        // Cold (cache misses) and warm (replayed lines) decryptions must
        // both return the exact group element `decrypt` produces, and the
        // warm pass must actually hit the cache.
        let abe = abe();
        let mut rng = StdRng::seed_from_u64(95);
        let (pk, mk) = abe.setup(&mut rng);
        let tree = AccessTree::threshold(
            2,
            vec![AccessTree::leaf("a"), AccessTree::leaf("b"), AccessTree::leaf("c")],
        )
        .unwrap();
        let m = abe.random_message(&mut rng);
        let ct = abe.encrypt(&pk, &m, &tree, &mut rng).unwrap();
        let sk = abe.keygen(&mk, &strings(&["a", "c"]), &mut rng);

        let cache = LineCache::new();
        let plain = abe.decrypt(&ct, &sk).unwrap();
        let cold = abe.decrypt_cached(&cache, b"pz-1", &ct, &sk).unwrap();
        let before = sp_pairing::stats::snapshot();
        let warm = abe.decrypt_cached(&cache, b"pz-1", &ct, &sk).unwrap();
        let after = sp_pairing::stats::snapshot();
        assert_eq!(cold, plain);
        assert_eq!(warm, plain);
        assert_eq!(plain, m);
        // 2 leaves used → C_a, C'_a, C_c, C'_c, plus C: five cached walks.
        assert!(after.line_cache_hits - before.line_cache_hits >= 5);
        assert_eq!(after.line_cache_misses, before.line_cache_misses);

        // A different key against the same warmed puzzle also agrees.
        let sk2 = abe.keygen(&mk, &strings(&["a", "b"]), &mut rng);
        assert_eq!(abe.decrypt_cached(&cache, b"pz-1", &ct, &sk2).unwrap(), m);

        // Unsatisfying keys are refused before touching the cache.
        let sk3 = abe.keygen(&mk, &strings(&["a"]), &mut rng);
        assert!(abe.decrypt_cached(&cache, b"pz-1", &ct, &sk3).is_err());

        // Invalidation drops the puzzle's entries; re-decryption recomputes
        // and still agrees.
        assert!(cache.invalidate(b"pz-1") >= 5);
        assert_eq!(abe.decrypt_cached(&cache, b"pz-1", &ct, &sk).unwrap(), m);
    }

    #[test]
    fn hash_attribute_memoization_is_transparent() {
        let abe = abe();
        let first = abe.hash_attribute("attr-x");
        let second = abe.hash_attribute("attr-x");
        assert_eq!(first, second);
        assert_eq!(first, abe.hash_attribute_uncached("attr-x"));
        // Clones share the cache and agree.
        assert_eq!(abe.clone().hash_attribute("attr-x"), first);
    }

    #[test]
    fn paper_context_tree_with_k_1_and_n_2() {
        // The evaluation sweeps from N = 2 with k = 1 ("CP-ABE does not
        // support (1,1)"), so this is the smallest measured configuration.
        let abe = abe();
        let mut rng = StdRng::seed_from_u64(91);
        let (pk, mk) = abe.setup(&mut rng);
        let pairs: Vec<(String, String)> =
            vec![("q1".into(), "a1".into()), ("q2".into(), "a2".into())];
        let tree = AccessTree::context_tree(1, &pairs).unwrap();
        let m = abe.random_message(&mut rng);
        let ct = abe.encrypt(&pk, &m, &tree, &mut rng).unwrap();
        let attr = crate::access_tree::encode_qa_attribute("q2", "a2");
        let sk = abe.keygen(&mk, &[attr], &mut rng);
        assert_eq!(abe.decrypt(&ct, &sk).unwrap(), m);
    }
}
