//! The Bethencourt–Sahai–Waters CP-ABE scheme (IEEE S&P 2007).

use std::collections::HashSet;
use std::fmt;

use rand::Rng;
use sp_pairing::{Gt, Pairing, Scalar, G1};
use sp_shamir::{Polynomial, ShamirScheme};
use sp_wire::{Reader, Writer};

use crate::access_tree::{AccessNode, AccessTree};
use crate::error::AbeError;

/// The CP-ABE public key: `(h = g^β, f = g^{1/β}, e(g,g)^α)`; the
/// generator `g` itself is part of the shared pairing parameters.
#[derive(Clone, PartialEq, Eq)]
pub struct PublicKey {
    h: G1,
    f: G1,
    e_gg_alpha: Gt,
}

impl fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("PublicKey(h, f, e(g,g)^alpha)")
    }
}

/// The master secret `(β, g^α)`.
///
/// In the paper's protocol the sharer *publishes* `MK` alongside `PK` so
/// receivers can run `KeyGen` themselves — access control comes from
/// knowing the context attributes, not from withholding the master key.
#[derive(Clone, PartialEq, Eq)]
pub struct MasterKey {
    beta: Scalar,
    g_alpha: G1,
}

impl fmt::Debug for MasterKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("MasterKey(<secret>)")
    }
}

/// One per-attribute component of a private key.
#[derive(Clone, PartialEq, Eq, Debug)]
struct KeyComponent {
    attribute: String,
    d_j: G1,
    d_j_prime: G1,
}

/// A private key for an attribute set.
#[derive(Clone, PartialEq, Eq)]
pub struct PrivateKey {
    d: G1,
    components: Vec<KeyComponent>,
}

impl PrivateKey {
    /// The attributes this key identifies with.
    pub fn attributes(&self) -> Vec<&str> {
        self.components.iter().map(|c| c.attribute.as_str()).collect()
    }
}

impl fmt::Debug for PrivateKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PrivateKey({} attributes)", self.components.len())
    }
}

/// A CP-ABE ciphertext: the access tree, `C̃ = m·e(g,g)^{αs}`, `C = h^s`,
/// and per-leaf components in depth-first leaf order.
#[derive(Clone, PartialEq, Eq)]
pub struct Ciphertext {
    tree: AccessTree,
    c_tilde: Gt,
    c: G1,
    leaf_cts: Vec<(G1, G1)>,
}

impl Ciphertext {
    /// The embedded access tree.
    pub fn tree(&self) -> &AccessTree {
        &self.tree
    }

    /// Replaces the embedded tree with one of identical shape.
    ///
    /// This is the mechanism behind the paper's `Perturb` and
    /// `Reconstruct` subroutines (§V-B): the group-element components are
    /// opaque and stay put, only the human-readable tree labels change.
    ///
    /// # Errors
    ///
    /// Returns [`AbeError::TreeMismatch`] if the gate structure differs.
    pub fn with_tree(&self, tree: AccessTree) -> Result<Ciphertext, AbeError> {
        if !self.tree.same_shape(&tree) {
            return Err(AbeError::TreeMismatch);
        }
        Ok(Ciphertext {
            tree,
            c_tilde: self.c_tilde.clone(),
            c: self.c.clone(),
            leaf_cts: self.leaf_cts.clone(),
        })
    }
}

impl fmt::Debug for Ciphertext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ciphertext({} leaves, tree = {:?})", self.leaf_cts.len(), self.tree)
    }
}

/// The CP-ABE scheme, bound to pairing parameters.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Clone, Debug)]
pub struct CpAbe {
    pairing: Pairing,
    shamir: ShamirScheme,
}

impl CpAbe {
    /// Creates a scheme over the given pairing.
    pub fn new(pairing: Pairing) -> Self {
        let shamir = ShamirScheme::new(pairing.zr().clone());
        Self { pairing, shamir }
    }

    /// Scheme over the production 512-bit parameters.
    pub fn default_params() -> Self {
        Self::new(Pairing::default_params())
    }

    /// Scheme over small cached test parameters (not cryptographically
    /// strong).
    pub fn insecure_test_params() -> Self {
        Self::new(Pairing::insecure_test_params())
    }

    /// The underlying pairing.
    pub fn pairing(&self) -> &Pairing {
        &self.pairing
    }

    /// Samples a uniformly random `Gt` message (the payload a hybrid
    /// scheme derives its symmetric key from).
    pub fn random_message<R: Rng + ?Sized>(&self, rng: &mut R) -> Gt {
        self.pairing.random_gt(rng)
    }

    /// `Setup`: produces the public key and master secret.
    pub fn setup<R: Rng + ?Sized>(&self, rng: &mut R) -> (PublicKey, MasterKey) {
        let g = self.pairing.generator();
        let alpha = self.pairing.random_nonzero_scalar(rng);
        let beta = self.pairing.random_nonzero_scalar(rng);
        let beta_inv = beta.invert().expect("nonzero");
        let h = self.pairing.mul(g, &beta);
        let f = self.pairing.mul(g, &beta_inv);
        let g_alpha = self.pairing.mul(g, &alpha);
        let e_gg_alpha = self.pairing.pair(g, &g_alpha);
        (PublicKey { h, f, e_gg_alpha }, MasterKey { beta, g_alpha })
    }

    /// `Encrypt(PK, m, τ)`: encrypts the group element `m` under the
    /// access tree `τ`.
    ///
    /// # Errors
    ///
    /// Returns [`AbeError::BadTree`] if the tree is structurally invalid
    /// (cannot happen for trees built through [`AccessTree`]'s
    /// constructors).
    pub fn encrypt<R: Rng + ?Sized>(
        &self,
        pk: &PublicKey,
        m: &Gt,
        tree: &AccessTree,
        rng: &mut R,
    ) -> Result<Ciphertext, AbeError> {
        let s = self.pairing.random_nonzero_scalar(rng);

        // Share s down the tree; collect per-leaf secret shares in DFS order.
        let mut leaf_shares: Vec<Scalar> = Vec::with_capacity(tree.leaf_count());
        self.share_secret(tree.root(), &s, &mut leaf_shares, rng)?;

        let c_tilde = m.mul(&pk.e_gg_alpha.pow_scalar(&s));
        let c = self.pairing.mul(&pk.h, &s);
        let g = self.pairing.generator();
        let leaf_cts = tree
            .leaves()
            .iter()
            .zip(&leaf_shares)
            .map(|(attr, share)| {
                let c_y = self.pairing.mul(g, share);
                let c_y_prime = self.pairing.mul(&self.hash_attribute(attr), share);
                (c_y, c_y_prime)
            })
            .collect();

        Ok(Ciphertext { tree: tree.clone(), c_tilde, c, leaf_cts })
    }

    fn share_secret<R: Rng + ?Sized>(
        &self,
        node: &AccessNode,
        value: &Scalar,
        out: &mut Vec<Scalar>,
        rng: &mut R,
    ) -> Result<(), AbeError> {
        let zr = self.pairing.zr();
        match node {
            AccessNode::Leaf { .. } => {
                out.push(value.clone());
                Ok(())
            }
            AccessNode::Threshold { k, children } => {
                let poly = Polynomial::random_with_constant(value.clone(), *k, zr, rng);
                for (i, child) in children.iter().enumerate() {
                    let x = zr.from_u64(i as u64 + 1);
                    self.share_secret(child, &poly.eval(&x), out, rng)?;
                }
                Ok(())
            }
        }
    }

    /// `KeyGen(MK, S)`: derives a private key for attribute set `S`.
    pub fn keygen<R: Rng + ?Sized>(
        &self,
        mk: &MasterKey,
        attributes: &[String],
        rng: &mut R,
    ) -> PrivateKey {
        let g = self.pairing.generator();
        let r = self.pairing.random_nonzero_scalar(rng);
        let beta_inv = mk.beta.invert().expect("nonzero");
        // D = g^{(α + r)/β}
        let g_r = self.pairing.mul(g, &r);
        let d = mk.g_alpha.add(&g_r).mul_uint(&beta_inv.to_uint());
        let components = attributes
            .iter()
            .map(|attr| {
                let r_j = self.pairing.random_nonzero_scalar(rng);
                let d_j = g_r.add(&self.pairing.mul(&self.hash_attribute(attr), &r_j));
                let d_j_prime = self.pairing.mul(g, &r_j);
                KeyComponent { attribute: attr.clone(), d_j, d_j_prime }
            })
            .collect();
        PrivateKey { d, components }
    }

    /// `Delegate(SK, S̃)`: derives a re-randomized key for a subset of the
    /// key's attributes (BSW07 §4.2), without the master key.
    ///
    /// # Errors
    ///
    /// Returns [`AbeError::PolicyNotSatisfied`] if `subset` is not
    /// contained in the key's attributes.
    pub fn delegate<R: Rng + ?Sized>(
        &self,
        pk: &PublicKey,
        sk: &PrivateKey,
        subset: &[String],
        rng: &mut R,
    ) -> Result<PrivateKey, AbeError> {
        let g = self.pairing.generator();
        let r_tilde = self.pairing.random_nonzero_scalar(rng);
        let g_rt = self.pairing.mul(g, &r_tilde);
        let d = sk.d.add(&self.pairing.mul(&pk.f, &r_tilde));
        let components = subset
            .iter()
            .map(|attr| {
                let comp = sk
                    .components
                    .iter()
                    .find(|c| &c.attribute == attr)
                    .ok_or(AbeError::PolicyNotSatisfied)?;
                let r_k = self.pairing.random_nonzero_scalar(rng);
                let d_j =
                    comp.d_j.add(&g_rt).add(&self.pairing.mul(&self.hash_attribute(attr), &r_k));
                let d_j_prime = comp.d_j_prime.add(&self.pairing.mul(g, &r_k));
                Ok(KeyComponent { attribute: attr.clone(), d_j, d_j_prime })
            })
            .collect::<Result<Vec<_>, AbeError>>()?;
        Ok(PrivateKey { d, components })
    }

    /// `Decrypt(CT, SK)`: recovers the message if the key's attributes
    /// satisfy the ciphertext's access tree.
    ///
    /// # Errors
    ///
    /// Returns [`AbeError::PolicyNotSatisfied`] otherwise.
    pub fn decrypt(&self, ct: &Ciphertext, sk: &PrivateKey) -> Result<Gt, AbeError> {
        let attrs: HashSet<String> = sk.components.iter().map(|c| c.attribute.clone()).collect();
        if !ct.tree.satisfied_by(&attrs) {
            return Err(AbeError::PolicyNotSatisfied);
        }
        let mut leaf_index = 0usize;
        let a = self
            .decrypt_node(ct.tree.root(), ct, sk, &mut leaf_index)
            .ok_or(AbeError::PolicyNotSatisfied)?;
        // m = C̃ · A / e(C, D)
        let e_c_d = self.pairing.pair(&ct.c, &sk.d);
        Ok(ct.c_tilde.mul(&a).div(&e_c_d))
    }

    /// Recursive `DecryptNode`; `leaf_index` tracks the DFS leaf cursor so
    /// tree nodes line up with `leaf_cts`.
    fn decrypt_node(
        &self,
        node: &AccessNode,
        ct: &Ciphertext,
        sk: &PrivateKey,
        leaf_index: &mut usize,
    ) -> Option<Gt> {
        match node {
            AccessNode::Leaf { attribute } => {
                let idx = *leaf_index;
                *leaf_index += 1;
                let comp = sk.components.iter().find(|c| &c.attribute == attribute)?;
                let (c_y, c_y_prime) = &ct.leaf_cts[idx];
                // e(D_j, C_y) / e(D'_j, C'_y) = e(g,g)^{r·q_y(0)},
                // computed with one shared final exponentiation.
                Some(self.pairing.pair_ratio(&comp.d_j, c_y, &comp.d_j_prime, c_y_prime))
            }
            AccessNode::Threshold { k, children } => {
                // Evaluate every child (advancing the leaf cursor through
                // unsatisfied subtrees too), keep the satisfied ones.
                let mut satisfied: Vec<(usize, Gt)> = Vec::new();
                for (i, child) in children.iter().enumerate() {
                    if let Some(f) = self.decrypt_node(child, ct, sk, leaf_index) {
                        satisfied.push((i, f));
                    }
                }
                if satisfied.len() < *k {
                    return None;
                }
                satisfied.truncate(*k);
                // Lagrange combination in the exponent at x = 0 over child
                // indices (1-based).
                let zr = self.pairing.zr();
                let xs: Vec<Scalar> =
                    satisfied.iter().map(|(i, _)| zr.from_u64(*i as u64 + 1)).collect();
                let zero = zr.zero();
                let mut acc = self.pairing.gt_one();
                for (j, (_, f)) in satisfied.iter().enumerate() {
                    let gamma = self
                        .shamir
                        .lagrange_coefficient(&xs, j, &zero)
                        .expect("child indices are distinct");
                    acc = acc.mul(&f.pow_scalar(&gamma));
                }
                Some(acc)
            }
        }
    }

    /// `H : {0,1}* → G1`, the attribute hash.
    pub fn hash_attribute(&self, attribute: &str) -> G1 {
        self.pairing.hash_to_g1(&[b"sp-abe/attr/v1/", attribute.as_bytes()].concat())
    }

    // ------------------------------------------------------------------
    // Wire encodings (byte-accurate transfer sizes for the OSN simulator).
    // ------------------------------------------------------------------

    /// Encodes the public key.
    pub fn encode_public_key(&self, pk: &PublicKey) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes(&pk.h.to_bytes());
        w.bytes(&pk.f.to_bytes());
        w.bytes(&pk.e_gg_alpha.to_bytes());
        w.finish().to_vec()
    }

    /// Decodes a public key.
    ///
    /// # Errors
    ///
    /// Returns [`AbeError::BadEncoding`] for malformed buffers.
    pub fn decode_public_key(&self, bytes: &[u8]) -> Result<PublicKey, AbeError> {
        let mut r = Reader::new(bytes);
        let h = self
            .pairing
            .g1_from_bytes(r.bytes().map_err(|_| AbeError::BadEncoding)?)
            .map_err(|_| AbeError::BadEncoding)?;
        let f = self
            .pairing
            .g1_from_bytes(r.bytes().map_err(|_| AbeError::BadEncoding)?)
            .map_err(|_| AbeError::BadEncoding)?;
        let e_gg_alpha = self
            .pairing
            .gt_from_bytes(r.bytes().map_err(|_| AbeError::BadEncoding)?)
            .map_err(|_| AbeError::BadEncoding)?;
        r.expect_end().map_err(|_| AbeError::BadEncoding)?;
        Ok(PublicKey { h, f, e_gg_alpha })
    }

    /// Encodes the master key.
    pub fn encode_master_key(&self, mk: &MasterKey) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes(&mk.beta.to_be_bytes());
        w.bytes(&mk.g_alpha.to_bytes());
        w.finish().to_vec()
    }

    /// Decodes a master key.
    ///
    /// # Errors
    ///
    /// Returns [`AbeError::BadEncoding`] for malformed buffers.
    pub fn decode_master_key(&self, bytes: &[u8]) -> Result<MasterKey, AbeError> {
        let mut r = Reader::new(bytes);
        let beta = self
            .pairing
            .zr()
            .from_be_bytes(r.bytes().map_err(|_| AbeError::BadEncoding)?)
            .map_err(|_| AbeError::BadEncoding)?;
        let g_alpha = self
            .pairing
            .g1_from_bytes(r.bytes().map_err(|_| AbeError::BadEncoding)?)
            .map_err(|_| AbeError::BadEncoding)?;
        r.expect_end().map_err(|_| AbeError::BadEncoding)?;
        Ok(MasterKey { beta, g_alpha })
    }

    /// Encodes a ciphertext (tree + group elements).
    pub fn encode_ciphertext(&self, ct: &Ciphertext) -> Vec<u8> {
        let mut w = Writer::new();
        ct.tree.encode(&mut w);
        w.bytes(&ct.c_tilde.to_bytes());
        w.bytes(&ct.c.to_bytes());
        w.u32(ct.leaf_cts.len() as u32);
        for (c_y, c_y_prime) in &ct.leaf_cts {
            w.bytes(&c_y.to_bytes());
            w.bytes(&c_y_prime.to_bytes());
        }
        w.finish().to_vec()
    }

    /// Decodes a ciphertext.
    ///
    /// # Errors
    ///
    /// Returns [`AbeError::BadEncoding`] for malformed buffers, including
    /// a leaf-component count that disagrees with the tree.
    pub fn decode_ciphertext(&self, bytes: &[u8]) -> Result<Ciphertext, AbeError> {
        let mut r = Reader::new(bytes);
        let tree = AccessTree::decode(&mut r).map_err(|_| AbeError::BadEncoding)?;
        let c_tilde = self
            .pairing
            .gt_from_bytes(r.bytes().map_err(|_| AbeError::BadEncoding)?)
            .map_err(|_| AbeError::BadEncoding)?;
        let c = self
            .pairing
            .g1_from_bytes(r.bytes().map_err(|_| AbeError::BadEncoding)?)
            .map_err(|_| AbeError::BadEncoding)?;
        let n = r.u32().map_err(|_| AbeError::BadEncoding)? as usize;
        if n != tree.leaf_count() {
            return Err(AbeError::BadEncoding);
        }
        let mut leaf_cts = Vec::with_capacity(n);
        for _ in 0..n {
            let c_y = self
                .pairing
                .g1_from_bytes(r.bytes().map_err(|_| AbeError::BadEncoding)?)
                .map_err(|_| AbeError::BadEncoding)?;
            let c_y_prime = self
                .pairing
                .g1_from_bytes(r.bytes().map_err(|_| AbeError::BadEncoding)?)
                .map_err(|_| AbeError::BadEncoding)?;
            leaf_cts.push((c_y, c_y_prime));
        }
        r.expect_end().map_err(|_| AbeError::BadEncoding)?;
        Ok(Ciphertext { tree, c_tilde, c, leaf_cts })
    }

    /// Encodes a private key.
    pub fn encode_private_key(&self, sk: &PrivateKey) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes(&sk.d.to_bytes());
        w.u32(sk.components.len() as u32);
        for c in &sk.components {
            w.string(&c.attribute);
            w.bytes(&c.d_j.to_bytes());
            w.bytes(&c.d_j_prime.to_bytes());
        }
        w.finish().to_vec()
    }

    /// Decodes a private key.
    ///
    /// # Errors
    ///
    /// Returns [`AbeError::BadEncoding`] for malformed buffers.
    pub fn decode_private_key(&self, bytes: &[u8]) -> Result<PrivateKey, AbeError> {
        let mut r = Reader::new(bytes);
        let d = self
            .pairing
            .g1_from_bytes(r.bytes().map_err(|_| AbeError::BadEncoding)?)
            .map_err(|_| AbeError::BadEncoding)?;
        let n = r.u32().map_err(|_| AbeError::BadEncoding)? as usize;
        if n > 1 << 20 {
            return Err(AbeError::BadEncoding);
        }
        let mut components = Vec::with_capacity(n);
        for _ in 0..n {
            let attribute = r.string().map_err(|_| AbeError::BadEncoding)?.to_owned();
            let d_j = self
                .pairing
                .g1_from_bytes(r.bytes().map_err(|_| AbeError::BadEncoding)?)
                .map_err(|_| AbeError::BadEncoding)?;
            let d_j_prime = self
                .pairing
                .g1_from_bytes(r.bytes().map_err(|_| AbeError::BadEncoding)?)
                .map_err(|_| AbeError::BadEncoding)?;
            components.push(KeyComponent { attribute, d_j, d_j_prime });
        }
        r.expect_end().map_err(|_| AbeError::BadEncoding)?;
        Ok(PrivateKey { d, components })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn abe() -> CpAbe {
        CpAbe::insecure_test_params()
    }

    fn strings(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn encrypt_decrypt_single_leaf() {
        let abe = abe();
        let mut rng = StdRng::seed_from_u64(80);
        let (pk, mk) = abe.setup(&mut rng);
        let tree = AccessTree::leaf("a");
        let m = abe.random_message(&mut rng);
        let ct = abe.encrypt(&pk, &m, &tree, &mut rng).unwrap();
        let sk = abe.keygen(&mk, &strings(&["a"]), &mut rng);
        assert_eq!(abe.decrypt(&ct, &sk).unwrap(), m);
    }

    #[test]
    fn wrong_attribute_fails() {
        let abe = abe();
        let mut rng = StdRng::seed_from_u64(81);
        let (pk, mk) = abe.setup(&mut rng);
        let tree = AccessTree::leaf("a");
        let m = abe.random_message(&mut rng);
        let ct = abe.encrypt(&pk, &m, &tree, &mut rng).unwrap();
        let sk = abe.keygen(&mk, &strings(&["b"]), &mut rng);
        assert_eq!(abe.decrypt(&ct, &sk).unwrap_err(), AbeError::PolicyNotSatisfied);
    }

    #[test]
    fn threshold_2_of_3() {
        let abe = abe();
        let mut rng = StdRng::seed_from_u64(82);
        let (pk, mk) = abe.setup(&mut rng);
        let tree = AccessTree::threshold(
            2,
            vec![AccessTree::leaf("a"), AccessTree::leaf("b"), AccessTree::leaf("c")],
        )
        .unwrap();
        let m = abe.random_message(&mut rng);
        let ct = abe.encrypt(&pk, &m, &tree, &mut rng).unwrap();
        for good in [&["a", "b"][..], &["b", "c"], &["a", "c"], &["a", "b", "c"]] {
            let sk = abe.keygen(&mk, &strings(good), &mut rng);
            assert_eq!(abe.decrypt(&ct, &sk).unwrap(), m, "attrs = {good:?}");
        }
        for bad in [&["a"][..], &["c"], &["x", "y"], &[]] {
            let sk = abe.keygen(&mk, &strings(bad), &mut rng);
            assert!(abe.decrypt(&ct, &sk).is_err(), "attrs = {bad:?}");
        }
    }

    #[test]
    fn nested_policy() {
        let abe = abe();
        let mut rng = StdRng::seed_from_u64(83);
        let (pk, mk) = abe.setup(&mut rng);
        // (a AND b) OR c
        let tree = AccessTree::or(vec![
            AccessTree::and(vec![AccessTree::leaf("a"), AccessTree::leaf("b")]).unwrap(),
            AccessTree::leaf("c"),
        ])
        .unwrap();
        let m = abe.random_message(&mut rng);
        let ct = abe.encrypt(&pk, &m, &tree, &mut rng).unwrap();
        for good in [&["a", "b"][..], &["c"], &["a", "c"]] {
            let sk = abe.keygen(&mk, &strings(good), &mut rng);
            assert_eq!(abe.decrypt(&ct, &sk).unwrap(), m, "attrs = {good:?}");
        }
        let sk = abe.keygen(&mk, &strings(&["a"]), &mut rng);
        assert!(abe.decrypt(&ct, &sk).is_err());
    }

    #[test]
    fn excess_attributes_are_fine() {
        let abe = abe();
        let mut rng = StdRng::seed_from_u64(84);
        let (pk, mk) = abe.setup(&mut rng);
        let tree = AccessTree::and(vec![AccessTree::leaf("a"), AccessTree::leaf("b")]).unwrap();
        let m = abe.random_message(&mut rng);
        let ct = abe.encrypt(&pk, &m, &tree, &mut rng).unwrap();
        let sk = abe.keygen(&mk, &strings(&["z", "a", "q", "b", "w"]), &mut rng);
        assert_eq!(abe.decrypt(&ct, &sk).unwrap(), m);
    }

    #[test]
    fn collusion_resistance() {
        // Alice holds {a}, Bob holds {b}; the policy needs both. Neither
        // key alone decrypts, and mixing components across keys must not
        // decrypt either (different blinding r per key).
        let abe = abe();
        let mut rng = StdRng::seed_from_u64(85);
        let (pk, mk) = abe.setup(&mut rng);
        let tree = AccessTree::and(vec![AccessTree::leaf("a"), AccessTree::leaf("b")]).unwrap();
        let m = abe.random_message(&mut rng);
        let ct = abe.encrypt(&pk, &m, &tree, &mut rng).unwrap();
        let alice = abe.keygen(&mk, &strings(&["a"]), &mut rng);
        let bob = abe.keygen(&mk, &strings(&["b"]), &mut rng);
        assert!(abe.decrypt(&ct, &alice).is_err());
        assert!(abe.decrypt(&ct, &bob).is_err());
        // Frankenstein key: Alice's D and a-component + Bob's b-component.
        let franken = PrivateKey {
            d: alice.d.clone(),
            components: vec![alice.components[0].clone(), bob.components[0].clone()],
        };
        match abe.decrypt(&ct, &franken) {
            Err(_) => {}
            Ok(recovered) => assert_ne!(recovered, m, "collusion must not recover the message"),
        }
    }

    #[test]
    fn delegate_subset_works_and_nonsubset_rejected() {
        let abe = abe();
        let mut rng = StdRng::seed_from_u64(86);
        let (pk, mk) = abe.setup(&mut rng);
        let sk = abe.keygen(&mk, &strings(&["a", "b", "c"]), &mut rng);
        let delegated = abe.delegate(&pk, &sk, &strings(&["a", "b"]), &mut rng).unwrap();
        assert_eq!(delegated.attributes(), vec!["a", "b"]);

        let tree = AccessTree::and(vec![AccessTree::leaf("a"), AccessTree::leaf("b")]).unwrap();
        let m = abe.random_message(&mut rng);
        let ct = abe.encrypt(&pk, &m, &tree, &mut rng).unwrap();
        assert_eq!(abe.decrypt(&ct, &delegated).unwrap(), m);

        // But the delegated key lost "c".
        let tree_c = AccessTree::leaf("c");
        let ct_c = abe.encrypt(&pk, &m, &tree_c, &mut rng).unwrap();
        assert!(abe.decrypt(&ct_c, &delegated).is_err());

        assert_eq!(
            abe.delegate(&pk, &sk, &strings(&["a", "zzz"]), &mut rng).unwrap_err(),
            AbeError::PolicyNotSatisfied
        );
    }

    #[test]
    fn tree_replacement_perturb_reconstruct() {
        let abe = abe();
        let mut rng = StdRng::seed_from_u64(87);
        let (pk, mk) = abe.setup(&mut rng);
        let tree = AccessTree::threshold(
            2,
            vec![AccessTree::leaf("a"), AccessTree::leaf("b"), AccessTree::leaf("c")],
        )
        .unwrap();
        let m = abe.random_message(&mut rng);
        let ct = abe.encrypt(&pk, &m, &tree, &mut rng).unwrap();

        // Perturb: relabel leaves; group elements untouched.
        let perturbed_tree = tree.map_leaves(|a| format!("H({a})"));
        let ct_perturbed = ct.with_tree(perturbed_tree).unwrap();
        // A key for the original attributes no longer *satisfies the tree
        // labels*, so decryption refuses.
        let sk = abe.keygen(&mk, &strings(&["a", "b"]), &mut rng);
        assert!(abe.decrypt(&ct_perturbed, &sk).is_err());

        // Reconstruct: put the real labels back; decryption works again.
        let ct_reconstructed = ct_perturbed.with_tree(tree.clone()).unwrap();
        assert_eq!(abe.decrypt(&ct_reconstructed, &sk).unwrap(), m);

        // Mismatched shape is rejected.
        let other = AccessTree::leaf("x");
        assert_eq!(ct.with_tree(other).unwrap_err(), AbeError::TreeMismatch);
    }

    #[test]
    fn serialization_roundtrips() {
        let abe = abe();
        let mut rng = StdRng::seed_from_u64(88);
        let (pk, mk) = abe.setup(&mut rng);
        let tree =
            AccessTree::threshold(1, vec![AccessTree::leaf("a"), AccessTree::leaf("b")]).unwrap();
        let m = abe.random_message(&mut rng);
        let ct = abe.encrypt(&pk, &m, &tree, &mut rng).unwrap();
        let sk = abe.keygen(&mk, &strings(&["a"]), &mut rng);

        let pk2 = abe.decode_public_key(&abe.encode_public_key(&pk)).unwrap();
        assert_eq!(pk2, pk);
        let mk2 = abe.decode_master_key(&abe.encode_master_key(&mk)).unwrap();
        assert_eq!(mk2, mk);
        let ct2 = abe.decode_ciphertext(&abe.encode_ciphertext(&ct)).unwrap();
        assert_eq!(ct2, ct);
        let sk2 = abe.decode_private_key(&abe.encode_private_key(&sk)).unwrap();
        assert_eq!(sk2, sk);

        // Decryption still works across a serialize/deserialize cycle.
        assert_eq!(abe.decrypt(&ct2, &sk2).unwrap(), m);

        // Corruption is caught.
        let mut bad = abe.encode_ciphertext(&ct);
        let last = bad.len() - 1;
        bad[last] ^= 1;
        assert!(abe.decode_ciphertext(&bad).is_err());
        assert!(abe.decode_public_key(&[1, 2, 3]).is_err());
        assert!(abe.decode_master_key(&[]).is_err());
        assert!(abe.decode_private_key(&[0]).is_err());
    }

    #[test]
    fn keygen_randomization_gives_distinct_keys() {
        let abe = abe();
        let mut rng = StdRng::seed_from_u64(89);
        let (_, mk) = abe.setup(&mut rng);
        let sk1 = abe.keygen(&mk, &strings(&["a"]), &mut rng);
        let sk2 = abe.keygen(&mk, &strings(&["a"]), &mut rng);
        assert_ne!(sk1, sk2, "keys must be randomized per KeyGen call");
    }

    #[test]
    fn ciphertext_randomization() {
        let abe = abe();
        let mut rng = StdRng::seed_from_u64(90);
        let (pk, _) = abe.setup(&mut rng);
        let tree = AccessTree::leaf("a");
        let m = abe.random_message(&mut rng);
        let ct1 = abe.encrypt(&pk, &m, &tree, &mut rng).unwrap();
        let ct2 = abe.encrypt(&pk, &m, &tree, &mut rng).unwrap();
        assert_ne!(ct1, ct2, "encryption must be probabilistic");
    }

    #[test]
    fn paper_context_tree_with_k_1_and_n_2() {
        // The evaluation sweeps from N = 2 with k = 1 ("CP-ABE does not
        // support (1,1)"), so this is the smallest measured configuration.
        let abe = abe();
        let mut rng = StdRng::seed_from_u64(91);
        let (pk, mk) = abe.setup(&mut rng);
        let pairs: Vec<(String, String)> =
            vec![("q1".into(), "a1".into()), ("q2".into(), "a2".into())];
        let tree = AccessTree::context_tree(1, &pairs).unwrap();
        let m = abe.random_message(&mut rng);
        let ct = abe.encrypt(&pk, &m, &tree, &mut rng).unwrap();
        let attr = crate::access_tree::encode_qa_attribute("q2", "a2");
        let sk = abe.keygen(&mk, &[attr], &mut rng);
        assert_eq!(abe.decrypt(&ct, &sk).unwrap(), m);
    }
}
