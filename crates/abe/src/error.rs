//! Error types.

use std::error::Error;
use std::fmt;

/// Errors produced by CP-ABE operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum AbeError {
    /// An access tree was structurally invalid (empty gate, threshold out
    /// of range, or empty attribute).
    BadTree,
    /// The private key's attributes do not satisfy the ciphertext policy.
    PolicyNotSatisfied,
    /// A serialized artifact could not be decoded.
    BadEncoding,
    /// A replacement tree does not match the ciphertext's leaf layout.
    TreeMismatch,
    /// The hybrid payload failed symmetric decryption (wrong ABE result or
    /// corrupted ciphertext).
    PayloadCorrupt,
    /// A pairing inside decryption degenerated to zero — only reachable
    /// with ciphertext or key points outside the prime-order subgroup
    /// (i.e. forged or corrupted artifacts).
    DegeneratePairing,
}

impl fmt::Display for AbeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadTree => f.write_str("invalid access tree structure"),
            Self::PolicyNotSatisfied => f.write_str("attributes do not satisfy the policy"),
            Self::BadEncoding => f.write_str("invalid cp-abe encoding"),
            Self::TreeMismatch => f.write_str("replacement tree does not match ciphertext layout"),
            Self::PayloadCorrupt => f.write_str("hybrid payload failed to decrypt"),
            Self::DegeneratePairing => f.write_str("pairing degenerated during decryption"),
        }
    }
}

impl Error for AbeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            AbeError::BadTree,
            AbeError::PolicyNotSatisfied,
            AbeError::BadEncoding,
            AbeError::TreeMismatch,
            AbeError::PayloadCorrupt,
            AbeError::DegeneratePairing,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
