//! Hybrid encryption: CP-ABE wrapping an AES-encrypted payload.
//!
//! This is what `cpabe-enc` does for files: sample a random `Gt` element,
//! derive a symmetric key from it, AES-encrypt the payload, and CP-ABE
//! encrypt the group element under the policy.

use rand::Rng;
use sp_crypto::kdf::derive_key;
use sp_crypto::modes::{cbc_decrypt, cbc_encrypt};
use sp_crypto::sha256::sha256;
use sp_wire::{Reader, Writer};

use crate::access_tree::AccessTree;
use crate::bsw07::{Ciphertext, CpAbe, PrivateKey, PublicKey};
use crate::error::AbeError;

/// A hybrid ciphertext: the ABE-wrapped key element plus the AES-CBC
/// payload (with an integrity digest so wrong keys are detected).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HybridCiphertext {
    abe: Ciphertext,
    iv: [u8; 16],
    payload: Vec<u8>,
    digest: [u8; 32],
}

impl HybridCiphertext {
    /// The embedded ABE ciphertext (e.g. for tree perturbation).
    pub fn abe(&self) -> &Ciphertext {
        &self.abe
    }

    /// Replaces the embedded ABE ciphertext's access tree (the
    /// `Perturb`/`Reconstruct` hook).
    ///
    /// # Errors
    ///
    /// Returns [`AbeError::TreeMismatch`] if the gate structure differs.
    pub fn with_tree(&self, tree: AccessTree) -> Result<Self, AbeError> {
        Ok(Self {
            abe: self.abe.with_tree(tree)?,
            iv: self.iv,
            payload: self.payload.clone(),
            digest: self.digest,
        })
    }

    /// Total serialized size in bytes.
    pub fn encoded_len(&self, abe: &CpAbe) -> usize {
        encode(abe, self).len()
    }
}

/// Encrypts `plaintext` so that only keys satisfying `tree` can recover it.
///
/// # Errors
///
/// Returns [`AbeError::BadTree`] for invalid trees.
pub fn encrypt<R: Rng + ?Sized>(
    abe: &CpAbe,
    pk: &PublicKey,
    tree: &AccessTree,
    plaintext: &[u8],
    rng: &mut R,
) -> Result<HybridCiphertext, AbeError> {
    let m = abe.random_message(rng);
    let abe_ct = abe.encrypt(pk, &m, tree, rng)?;
    let key = derive_key(&m.to_bytes(), "sp-abe/hybrid/aes256", 32);
    let mut iv = [0u8; 16];
    rng.fill(&mut iv);
    let payload = cbc_encrypt(&key, &iv, plaintext).expect("32-byte key is valid");
    let digest = sha256(plaintext);
    Ok(HybridCiphertext { abe: abe_ct, iv, payload, digest })
}

/// Decrypts a hybrid ciphertext.
///
/// # Errors
///
/// Returns [`AbeError::PolicyNotSatisfied`] if the key does not satisfy
/// the policy, or [`AbeError::PayloadCorrupt`] if symmetric decryption or
/// the integrity check fails.
pub fn decrypt(abe: &CpAbe, ct: &HybridCiphertext, sk: &PrivateKey) -> Result<Vec<u8>, AbeError> {
    let m = abe.decrypt(&ct.abe, sk)?;
    unwrap_payload(ct, &m)
}

/// [`decrypt`] with the ciphertext-side Miller walks replayed from
/// `cache` under `tag` (see [`CpAbe::decrypt_cached`]).
///
/// # Errors
///
/// Same contract as [`decrypt`].
pub fn decrypt_cached(
    abe: &CpAbe,
    cache: &sp_pairing::LineCache,
    tag: &[u8],
    ct: &HybridCiphertext,
    sk: &PrivateKey,
) -> Result<Vec<u8>, AbeError> {
    let m = abe.decrypt_cached(cache, tag, &ct.abe, sk)?;
    unwrap_payload(ct, &m)
}

fn unwrap_payload(ct: &HybridCiphertext, m: &sp_pairing::Gt) -> Result<Vec<u8>, AbeError> {
    let key = derive_key(&m.to_bytes(), "sp-abe/hybrid/aes256", 32);
    let plaintext = cbc_decrypt(&key, &ct.iv, &ct.payload).map_err(|_| AbeError::PayloadCorrupt)?;
    if sha256(&plaintext) != ct.digest {
        return Err(AbeError::PayloadCorrupt);
    }
    Ok(plaintext)
}

/// Encodes a hybrid ciphertext to bytes.
pub fn encode(abe: &CpAbe, ct: &HybridCiphertext) -> Vec<u8> {
    let mut w = Writer::new();
    w.bytes(&abe.encode_ciphertext(&ct.abe));
    w.raw(&ct.iv);
    w.bytes(&ct.payload);
    w.raw(&ct.digest);
    w.finish().to_vec()
}

/// Decodes a hybrid ciphertext.
///
/// # Errors
///
/// Returns [`AbeError::BadEncoding`] for malformed buffers.
pub fn decode(abe: &CpAbe, bytes: &[u8]) -> Result<HybridCiphertext, AbeError> {
    let mut r = Reader::new(bytes);
    let abe_ct = abe
        .decode_ciphertext(r.bytes().map_err(|_| AbeError::BadEncoding)?)
        .map_err(|_| AbeError::BadEncoding)?;
    let iv: [u8; 16] = r.raw(16).map_err(|_| AbeError::BadEncoding)?.try_into().expect("16 bytes");
    let payload = r.bytes().map_err(|_| AbeError::BadEncoding)?.to_vec();
    let digest: [u8; 32] =
        r.raw(32).map_err(|_| AbeError::BadEncoding)?.try_into().expect("32 bytes");
    r.expect_end().map_err(|_| AbeError::BadEncoding)?;
    Ok(HybridCiphertext { abe: abe_ct, iv, payload, digest })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn setup() -> (CpAbe, PublicKey, crate::bsw07::MasterKey, StdRng) {
        let abe = CpAbe::insecure_test_params();
        let mut rng = StdRng::seed_from_u64(100);
        let (pk, mk) = abe.setup(&mut rng);
        (abe, pk, mk, rng)
    }

    #[test]
    fn roundtrip() {
        let (abe, pk, mk, mut rng) = setup();
        let tree = AccessTree::or(vec![AccessTree::leaf("a"), AccessTree::leaf("b")]).unwrap();
        let msg = b"a 100-character message exactly like the paper's evaluation uses for every sharing experiment!!";
        let ct = encrypt(&abe, &pk, &tree, msg, &mut rng).unwrap();
        let sk = abe.keygen(&mk, &["b".to_string()], &mut rng);
        assert_eq!(decrypt(&abe, &ct, &sk).unwrap(), msg);
    }

    #[test]
    fn cached_decrypt_matches_plain() {
        let (abe, pk, mk, mut rng) = setup();
        let tree = AccessTree::and(vec![AccessTree::leaf("a"), AccessTree::leaf("b")]).unwrap();
        let msg = b"cache me twice";
        let ct = encrypt(&abe, &pk, &tree, msg, &mut rng).unwrap();
        let sk = abe.keygen(&mk, &["a".to_string(), "b".to_string()], &mut rng);
        let cache = sp_pairing::LineCache::new();
        assert_eq!(decrypt_cached(&abe, &cache, b"h1", &ct, &sk).unwrap(), msg);
        assert_eq!(decrypt_cached(&abe, &cache, b"h1", &ct, &sk).unwrap(), msg);
        assert_eq!(
            decrypt_cached(&abe, &cache, b"h1", &ct, &sk).unwrap(),
            decrypt(&abe, &ct, &sk).unwrap()
        );
        assert!(!cache.is_empty());
    }

    #[test]
    fn unsatisfying_key_rejected() {
        let (abe, pk, mk, mut rng) = setup();
        let tree = AccessTree::leaf("a");
        let ct = encrypt(&abe, &pk, &tree, b"secret", &mut rng).unwrap();
        let sk = abe.keygen(&mk, &["z".to_string()], &mut rng);
        assert_eq!(decrypt(&abe, &ct, &sk).unwrap_err(), AbeError::PolicyNotSatisfied);
    }

    #[test]
    fn corrupt_payload_detected() {
        let (abe, pk, mk, mut rng) = setup();
        let tree = AccessTree::leaf("a");
        let mut ct = encrypt(&abe, &pk, &tree, b"secret payload bytes", &mut rng).unwrap();
        let last = ct.payload.len() - 1;
        ct.payload[last] ^= 0x80;
        let sk = abe.keygen(&mk, &["a".to_string()], &mut rng);
        assert_eq!(decrypt(&abe, &ct, &sk).unwrap_err(), AbeError::PayloadCorrupt);
    }

    #[test]
    fn empty_and_large_payloads() {
        let (abe, pk, mk, mut rng) = setup();
        let tree = AccessTree::leaf("a");
        let sk = abe.keygen(&mk, &["a".to_string()], &mut rng);
        for len in [0usize, 1, 16, 1000, 10_000] {
            let msg: Vec<u8> = (0..len).map(|i| (i % 256) as u8).collect();
            let ct = encrypt(&abe, &pk, &tree, &msg, &mut rng).unwrap();
            assert_eq!(decrypt(&abe, &ct, &sk).unwrap(), msg, "len = {len}");
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let (abe, pk, mk, mut rng) = setup();
        let tree = AccessTree::and(vec![AccessTree::leaf("a"), AccessTree::leaf("b")]).unwrap();
        let ct = encrypt(&abe, &pk, &tree, b"wire me", &mut rng).unwrap();
        let bytes = encode(&abe, &ct);
        assert_eq!(bytes.len(), ct.encoded_len(&abe));
        let back = decode(&abe, &bytes).unwrap();
        assert_eq!(back, ct);
        let sk = abe.keygen(&mk, &["a".to_string(), "b".to_string()], &mut rng);
        assert_eq!(decrypt(&abe, &back, &sk).unwrap(), b"wire me");
        assert!(decode(&abe, &bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn perturbed_tree_blocks_then_reconstruct_unblocks() {
        let (abe, pk, mk, mut rng) = setup();
        let tree = AccessTree::or(vec![AccessTree::leaf("a"), AccessTree::leaf("b")]).unwrap();
        let ct = encrypt(&abe, &pk, &tree, b"perturb me", &mut rng).unwrap();
        let perturbed = ct.with_tree(tree.map_leaves(|a| format!("#{a}"))).unwrap();
        let sk = abe.keygen(&mk, &["a".to_string()], &mut rng);
        assert!(decrypt(&abe, &perturbed, &sk).is_err());
        let restored = perturbed.with_tree(tree).unwrap();
        assert_eq!(decrypt(&abe, &restored, &sk).unwrap(), b"perturb me");
    }
}
