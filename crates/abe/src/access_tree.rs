//! Monotone threshold access trees.

use std::collections::HashSet;
use std::fmt;

use sp_wire::{Reader, WireError, Writer};

use crate::error::AbeError;

/// A node of an access tree: either a threshold gate over child nodes or
/// a leaf naming one attribute.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AccessNode {
    /// `k`-of-`children.len()` threshold gate. `k = 1` is OR, `k = n` is
    /// AND.
    Threshold {
        /// How many children must be satisfied.
        k: usize,
        /// The child nodes.
        children: Vec<AccessNode>,
    },
    /// A leaf carrying one attribute string.
    Leaf {
        /// The attribute that satisfies this leaf.
        attribute: String,
    },
}

/// A validated monotone access structure.
///
/// Construct with [`AccessTree::leaf`], [`AccessTree::threshold`],
/// [`AccessTree::and`], [`AccessTree::or`], or the paper's height-1
/// context tree via [`AccessTree::context_tree`].
#[derive(Clone, PartialEq, Eq)]
pub struct AccessTree {
    root: AccessNode,
}

impl AccessTree {
    /// A single-leaf tree.
    pub fn leaf(attribute: impl Into<String>) -> Self {
        Self { root: AccessNode::Leaf { attribute: attribute.into() } }
    }

    /// A `k`-of-`n` threshold gate.
    ///
    /// # Errors
    ///
    /// Returns [`AbeError::BadTree`] if `k` is zero or exceeds the child
    /// count, the gate is empty, or any nested attribute is empty.
    pub fn threshold(k: usize, children: Vec<AccessTree>) -> Result<Self, AbeError> {
        let root =
            AccessNode::Threshold { k, children: children.into_iter().map(|t| t.root).collect() };
        let tree = Self { root };
        tree.validate()?;
        Ok(tree)
    }

    /// An AND gate (all children required).
    ///
    /// # Errors
    ///
    /// Returns [`AbeError::BadTree`] for an empty child list.
    pub fn and(children: Vec<AccessTree>) -> Result<Self, AbeError> {
        let n = children.len();
        Self::threshold(n, children)
    }

    /// An OR gate (any child suffices).
    ///
    /// # Errors
    ///
    /// Returns [`AbeError::BadTree`] for an empty child list.
    pub fn or(children: Vec<AccessTree>) -> Result<Self, AbeError> {
        Self::threshold(1, children)
    }

    /// The paper's Construction-2 access tree (Fig. 3): height 1, root
    /// threshold `k`, one leaf per context question–answer pair, leaf
    /// attribute being the canonical `(q, a)` encoding.
    ///
    /// # Errors
    ///
    /// Returns [`AbeError::BadTree`] if `pairs` is empty or
    /// `k ∉ [1, pairs.len()]`.
    pub fn context_tree(k: usize, pairs: &[(String, String)]) -> Result<Self, AbeError> {
        let leaves = pairs.iter().map(|(q, a)| Self::leaf(encode_qa_attribute(q, a))).collect();
        Self::threshold(k, leaves)
    }

    /// The root node.
    pub fn root(&self) -> &AccessNode {
        &self.root
    }

    fn validate(&self) -> Result<(), AbeError> {
        fn walk(node: &AccessNode) -> Result<(), AbeError> {
            match node {
                AccessNode::Leaf { attribute } => {
                    if attribute.is_empty() {
                        return Err(AbeError::BadTree);
                    }
                    Ok(())
                }
                AccessNode::Threshold { k, children } => {
                    if children.is_empty() || *k == 0 || *k > children.len() {
                        return Err(AbeError::BadTree);
                    }
                    children.iter().try_for_each(walk)
                }
            }
        }
        walk(&self.root)
    }

    /// All leaf attributes in depth-first order (the order ciphertext leaf
    /// components are laid out in).
    pub fn leaves(&self) -> Vec<&str> {
        fn walk<'a>(node: &'a AccessNode, out: &mut Vec<&'a str>) {
            match node {
                AccessNode::Leaf { attribute } => out.push(attribute),
                AccessNode::Threshold { children, .. } => {
                    children.iter().for_each(|c| walk(c, out));
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.root, &mut out);
        out
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.leaves().len()
    }

    /// Whether the attribute set satisfies the tree.
    pub fn satisfied_by(&self, attributes: &HashSet<String>) -> bool {
        fn walk(node: &AccessNode, attrs: &HashSet<String>) -> bool {
            match node {
                AccessNode::Leaf { attribute } => attrs.contains(attribute),
                AccessNode::Threshold { k, children } => {
                    children.iter().filter(|c| walk(c, attrs)).count() >= *k
                }
            }
        }
        walk(&self.root, attributes)
    }

    /// Rewrites every leaf attribute through `f`, preserving structure.
    ///
    /// This is the tree-shape half of the paper's `Perturb` subroutine
    /// (§V-B): the social-puzzles layer passes a function that replaces
    /// the answer part of each `(q, a)` attribute with its hash.
    pub fn map_leaves(&self, mut f: impl FnMut(&str) -> String) -> AccessTree {
        fn walk(node: &AccessNode, f: &mut impl FnMut(&str) -> String) -> AccessNode {
            match node {
                AccessNode::Leaf { attribute } => AccessNode::Leaf { attribute: f(attribute) },
                AccessNode::Threshold { k, children } => AccessNode::Threshold {
                    k: *k,
                    children: children.iter().map(|c| walk(c, f)).collect(),
                },
            }
        }
        AccessTree { root: walk(&self.root, &mut f) }
    }

    /// Whether `other` has the identical gate structure (thresholds and
    /// arities), ignoring leaf attribute strings. Ciphertext tree
    /// replacement (`Perturb`/`Reconstruct`) requires this.
    pub fn same_shape(&self, other: &AccessTree) -> bool {
        fn walk(a: &AccessNode, b: &AccessNode) -> bool {
            match (a, b) {
                (AccessNode::Leaf { .. }, AccessNode::Leaf { .. }) => true,
                (
                    AccessNode::Threshold { k: ka, children: ca },
                    AccessNode::Threshold { k: kb, children: cb },
                ) => ka == kb && ca.len() == cb.len() && ca.iter().zip(cb).all(|(x, y)| walk(x, y)),
                _ => false,
            }
        }
        walk(&self.root, &other.root)
    }

    /// Wire encoding (depth-first, tagged nodes).
    pub fn encode(&self, w: &mut Writer) {
        fn walk(node: &AccessNode, w: &mut Writer) {
            match node {
                AccessNode::Leaf { attribute } => {
                    w.u8(0);
                    w.string(attribute);
                }
                AccessNode::Threshold { k, children } => {
                    w.u8(1);
                    w.u32(*k as u32);
                    w.u32(children.len() as u32);
                    children.iter().for_each(|c| walk(c, w));
                }
            }
        }
        walk(&self.root, w);
    }

    /// Exact byte length of [`AccessTree::encode`]'s output, so encoders
    /// can pre-size their buffers.
    pub fn encoded_len(&self) -> usize {
        fn walk(node: &AccessNode) -> usize {
            match node {
                // tag + length prefix + attribute bytes
                AccessNode::Leaf { attribute } => 1 + 4 + attribute.len(),
                // tag + k + child count + children
                AccessNode::Threshold { children, .. } => {
                    1 + 4 + 4 + children.iter().map(walk).sum::<usize>()
                }
            }
        }
        walk(&self.root)
    }

    /// Decodes a tree produced by [`AccessTree::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] variants for malformed buffers.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        fn walk(r: &mut Reader<'_>, depth: usize) -> Result<AccessNode, WireError> {
            if depth > 64 {
                return Err(WireError::BadLength);
            }
            match r.u8()? {
                0 => Ok(AccessNode::Leaf { attribute: r.string()?.to_owned() }),
                1 => {
                    let k = r.u32()? as usize;
                    let n = r.u32()? as usize;
                    if n > 1 << 20 {
                        return Err(WireError::BadLength);
                    }
                    let mut children = Vec::with_capacity(n);
                    for _ in 0..n {
                        children.push(walk(r, depth + 1)?);
                    }
                    Ok(AccessNode::Threshold { k, children })
                }
                _ => Err(WireError::BadLength),
            }
        }
        let root = walk(r, 0)?;
        let tree = AccessTree { root };
        tree.validate().map_err(|_| WireError::BadLength)?;
        Ok(tree)
    }
}

impl fmt::Debug for AccessTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn walk(node: &AccessNode, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match node {
                AccessNode::Leaf { attribute } => write!(f, "{attribute:?}"),
                AccessNode::Threshold { k, children } => {
                    write!(f, "{k}-of-(")?;
                    for (i, c) in children.iter().enumerate() {
                        if i > 0 {
                            f.write_str(", ")?;
                        }
                        walk(c, f)?;
                    }
                    f.write_str(")")
                }
            }
        }
        f.write_str("AccessTree[")?;
        walk(&self.root, f)?;
        f.write_str("]")
    }
}

/// Canonical attribute encoding for a `(question, answer)` pair — the
/// unit-separator byte cannot appear in either part without escaping, so
/// the mapping is injective.
pub fn encode_qa_attribute(question: &str, answer: &str) -> String {
    format!("{}\u{1f}{}", question.replace('\u{1f}', "\u{1f}\u{1f}"), answer)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attrs(list: &[&str]) -> HashSet<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn leaf_satisfaction() {
        let t = AccessTree::leaf("a");
        assert!(t.satisfied_by(&attrs(&["a", "b"])));
        assert!(!t.satisfied_by(&attrs(&["b"])));
        assert!(!t.satisfied_by(&attrs(&[])));
    }

    #[test]
    fn threshold_semantics() {
        let t = AccessTree::threshold(
            2,
            vec![AccessTree::leaf("a"), AccessTree::leaf("b"), AccessTree::leaf("c")],
        )
        .unwrap();
        assert!(t.satisfied_by(&attrs(&["a", "b"])));
        assert!(t.satisfied_by(&attrs(&["a", "c"])));
        assert!(t.satisfied_by(&attrs(&["a", "b", "c"])));
        assert!(!t.satisfied_by(&attrs(&["a"])));
        assert!(!t.satisfied_by(&attrs(&["x", "y"])));
    }

    #[test]
    fn and_or_gates() {
        let and = AccessTree::and(vec![AccessTree::leaf("a"), AccessTree::leaf("b")]).unwrap();
        assert!(and.satisfied_by(&attrs(&["a", "b"])));
        assert!(!and.satisfied_by(&attrs(&["a"])));
        let or = AccessTree::or(vec![AccessTree::leaf("a"), AccessTree::leaf("b")]).unwrap();
        assert!(or.satisfied_by(&attrs(&["b"])));
        assert!(!or.satisfied_by(&attrs(&["c"])));
    }

    #[test]
    fn nested_tree() {
        // (a AND b) OR (2-of-(c, d, e))
        let t = AccessTree::or(vec![
            AccessTree::and(vec![AccessTree::leaf("a"), AccessTree::leaf("b")]).unwrap(),
            AccessTree::threshold(
                2,
                vec![AccessTree::leaf("c"), AccessTree::leaf("d"), AccessTree::leaf("e")],
            )
            .unwrap(),
        ])
        .unwrap();
        assert!(t.satisfied_by(&attrs(&["a", "b"])));
        assert!(t.satisfied_by(&attrs(&["c", "e"])));
        assert!(!t.satisfied_by(&attrs(&["a", "c"])));
        assert_eq!(t.leaf_count(), 5);
    }

    #[test]
    fn validation_rejects_bad_trees() {
        assert_eq!(
            AccessTree::threshold(0, vec![AccessTree::leaf("a")]).unwrap_err(),
            AbeError::BadTree
        );
        assert_eq!(
            AccessTree::threshold(2, vec![AccessTree::leaf("a")]).unwrap_err(),
            AbeError::BadTree
        );
        assert_eq!(AccessTree::threshold(1, vec![]).unwrap_err(), AbeError::BadTree);
        assert_eq!(AccessTree::and(vec![]).unwrap_err(), AbeError::BadTree);
        assert_eq!(
            AccessTree::threshold(1, vec![AccessTree::leaf("")]).unwrap_err(),
            AbeError::BadTree
        );
    }

    #[test]
    fn context_tree_matches_paper_shape() {
        let pairs: Vec<(String, String)> = vec![
            ("where?".into(), "lakeside".into()),
            ("who?".into(), "priya".into()),
            ("when?".into(), "june".into()),
        ];
        let t = AccessTree::context_tree(2, &pairs).unwrap();
        assert_eq!(t.leaf_count(), 3);
        let good = attrs(&[
            &encode_qa_attribute("where?", "lakeside"),
            &encode_qa_attribute("when?", "june"),
        ]);
        assert!(t.satisfied_by(&good));
        let bad = attrs(&[&encode_qa_attribute("where?", "lakeside")]);
        assert!(!t.satisfied_by(&bad));
        assert!(AccessTree::context_tree(0, &pairs).is_err());
        assert!(AccessTree::context_tree(4, &pairs).is_err());
        assert!(AccessTree::context_tree(1, &[]).is_err());
    }

    #[test]
    fn qa_encoding_is_injective_on_separator() {
        // ("a\u{1f}", "b") must differ from ("a", "\u{1f}b")
        assert_ne!(encode_qa_attribute("a\u{1f}", "b"), encode_qa_attribute("a", "\u{1f}b"));
    }

    #[test]
    fn map_leaves_preserves_shape() {
        let t = AccessTree::threshold(
            2,
            vec![AccessTree::leaf("a"), AccessTree::leaf("b"), AccessTree::leaf("c")],
        )
        .unwrap();
        let mapped = t.map_leaves(|a| format!("H({a})"));
        assert!(t.same_shape(&mapped));
        assert_eq!(mapped.leaves(), vec!["H(a)", "H(b)", "H(c)"]);
        assert!(!mapped.satisfied_by(&attrs(&["a", "b"])));
        assert!(mapped.satisfied_by(&attrs(&["H(a)", "H(b)"])));
    }

    #[test]
    fn same_shape_detects_differences() {
        let a = AccessTree::and(vec![AccessTree::leaf("a"), AccessTree::leaf("b")]).unwrap();
        let b = AccessTree::or(vec![AccessTree::leaf("x"), AccessTree::leaf("y")]).unwrap();
        let c = AccessTree::and(vec![AccessTree::leaf("x"), AccessTree::leaf("y")]).unwrap();
        assert!(!a.same_shape(&b), "thresholds differ");
        assert!(a.same_shape(&c), "only attributes differ");
        assert!(!a.same_shape(&AccessTree::leaf("a")));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let t = AccessTree::or(vec![
            AccessTree::and(vec![AccessTree::leaf("a"), AccessTree::leaf("b")]).unwrap(),
            AccessTree::leaf("c"),
        ])
        .unwrap();
        let mut w = Writer::new();
        t.encode(&mut w);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        let decoded = AccessTree::decode(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(decoded, t);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(AccessTree::decode(&mut Reader::new(&[9])).is_err());
        assert!(AccessTree::decode(&mut Reader::new(&[])).is_err());
        // Tag says threshold with huge child count.
        let mut w = Writer::new();
        w.u8(1).u32(1).u32(u32::MAX);
        let buf = w.finish();
        assert!(AccessTree::decode(&mut Reader::new(&buf)).is_err());
    }

    #[test]
    fn debug_rendering() {
        let t =
            AccessTree::threshold(2, vec![AccessTree::leaf("a"), AccessTree::leaf("b")]).unwrap();
        let s = format!("{t:?}");
        assert!(s.contains("2-of-"));
        assert!(s.contains("\"a\""));
    }
}
