//! The append-only write-ahead log: segments, group commit, snapshots,
//! rotation + compaction, and recovery.
//!
//! ## Layout
//!
//! A log directory holds numbered segment files and snapshot files:
//!
//! ```text
//! wal-00000000000000000001.log    records, first seq 1
//! wal-00000000000000000042.log    records, first seq 42 (active)
//! snap-00000000000000000041.snap  state covering seqs ≤ 41
//! ```
//!
//! Segments are append-only concatenations of CRC-framed records
//! ([`crate::record`]). When the active segment exceeds the configured
//! size it is fsynced, closed, and a new one named by the next sequence
//! number opened. Snapshots are written to a temp file, fsynced, then
//! atomically renamed; after a snapshot, closed segments fully covered
//! by it (and older snapshots) are deleted.
//!
//! ## Group commit
//!
//! [`Wal::append`] buffers the frame into the active segment under the
//! log lock *without* fsyncing, and returns the record's sequence
//! number. [`Wal::commit`] makes that sequence durable: the first waiter
//! becomes the flush leader — it snapshots the written watermark, drops
//! the lock, issues one `fdatasync`, and publishes the durable watermark
//! — while concurrent committers wait on a condvar and are released by
//! the same fsync. This is the `VerifyBatch` batching pattern applied to
//! fsyncs: N concurrent writers, one disk flush.
//!
//! ## Faults
//!
//! [`FileFault`] injects the three classic log failure modes (process
//! kill with lost page cache, torn append, lying fsync). After a fault
//! fires the log permanently returns [`StoreError::Crashed`]; the test
//! harness reopens the directory and recovery replays what was durable.

use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use bytes::Bytes;
use sp_wire::{Reader, Writer};

use crate::crc::crc32;
use crate::error::StoreError;
use crate::record::{scan_frame, Record, ScanStep};

const SEGMENT_PREFIX: &str = "wal-";
const SEGMENT_SUFFIX: &str = ".log";
const SNAPSHOT_PREFIX: &str = "snap-";
const SNAPSHOT_SUFFIX: &str = ".snap";
const SNAPSHOT_MAGIC: &[u8; 8] = b"SPSNAP01";

/// A file-level fault to inject, modeling a process/OS failure. Exactly
/// one fault fires per log lifetime; afterwards every operation returns
/// [`StoreError::Crashed`] until the directory is reopened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileFault {
    /// Kill the process once the active segment has `offset` bytes:
    /// everything not yet fsynced is lost (the cut never reaches below
    /// the synced watermark — fsynced bytes survive a kill).
    KillAtOffset {
        /// Active-segment byte threshold that triggers the kill.
        offset: u64,
    },
    /// The `append`-th append (1-based, per log lifetime) writes only a
    /// strict prefix of its frame and then the process dies — the torn
    /// tail recovery must skip.
    TornWrite {
        /// Which append tears.
        append: u64,
    },
    /// At the `append`-th append the storage stack admits that previous
    /// un-fsynced writes never reached the platter: the file rolls back
    /// to the synced watermark and the process dies.
    PartialFsync {
        /// Which append reveals the lie.
        append: u64,
    },
}

/// What [`Wal::open`] recovered from the directory.
#[derive(Debug, Default)]
pub struct Recovered {
    /// The newest snapshot, as `(covered seq, payload)`.
    pub snapshot: Option<(u64, Bytes)>,
    /// Log records with seq beyond the snapshot, in ascending seq order.
    pub records: Vec<(u64, Record)>,
}

struct ActiveSegment {
    file: Arc<File>,
    path: PathBuf,
    first_seq: u64,
    written: u64,
    synced: u64,
}

struct WalState {
    active: ActiveSegment,
    /// Closed segments as `(first seq, path)`, ascending.
    closed: Vec<(u64, PathBuf)>,
    next_seq: u64,
    /// Last appended seq (0 = nothing ever appended).
    written_seq: u64,
    /// Last seq known fsynced.
    durable_seq: u64,
    /// A flush leader currently holds the fsync.
    flushing: bool,
    /// Bumped at rotation so a completed flush never credits its byte
    /// watermark to the wrong file.
    epoch: u64,
    /// Appends attempted this lifetime (fault trigger clock).
    append_count: u64,
    fault: Option<FileFault>,
    crashed: bool,
}

/// The write-ahead log. One instance per store directory; all methods
/// are safe to call from concurrent writer threads.
pub struct Wal {
    dir: PathBuf,
    segment_bytes: u64,
    group_commit: bool,
    state: Mutex<WalState>,
    flushed: Condvar,
    appends: AtomicU64,
    fsync_batches: AtomicU64,
    snapshots: AtomicU64,
    replayed: u64,
}

fn segment_name(first_seq: u64) -> String {
    format!("{SEGMENT_PREFIX}{first_seq:020}{SEGMENT_SUFFIX}")
}

fn snapshot_name(seq: u64) -> String {
    format!("{SNAPSHOT_PREFIX}{seq:020}{SNAPSHOT_SUFFIX}")
}

fn parse_numbered(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?.strip_suffix(suffix)?.parse().ok()
}

fn sync_dir(dir: &Path) -> Result<(), StoreError> {
    // Directory fsync persists the entry metadata (creates, renames,
    // deletes). Not all platforms allow opening a directory for sync;
    // failures there are ignored — data-file fsyncs still hold.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

fn read_snapshot(path: &Path) -> Result<(u64, Bytes), StoreError> {
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("snapshot").to_owned();
    let corrupt = |offset: u64, detail: &str| StoreError::Corrupt {
        segment: name.clone(),
        offset,
        detail: detail.to_owned(),
    };
    let data = fs::read(path)?;
    let mut r = Reader::new(&data);
    let magic = r.raw(8).map_err(|_| corrupt(0, "truncated header"))?;
    if magic != SNAPSHOT_MAGIC {
        return Err(corrupt(0, "bad magic"));
    }
    let seq = r.u64().map_err(|_| corrupt(8, "truncated header"))?;
    let len = r.u32().map_err(|_| corrupt(16, "truncated header"))? as usize;
    let want = r.u32().map_err(|_| corrupt(20, "truncated header"))?;
    let payload = r.raw(len).map_err(|_| corrupt(24, "truncated payload"))?;
    if crc32(payload) != want {
        return Err(corrupt(24, "payload crc mismatch"));
    }
    r.expect_end().map_err(|_| corrupt(24 + len as u64, "trailing bytes"))?;
    Ok((seq, Bytes::copy_from_slice(payload)))
}

impl Wal {
    /// Locks the log state. A writer that panicked mid-append poisons
    /// the std mutex; the log state itself is always internally
    /// consistent (every field update happens before any fallible I/O
    /// result is propagated), so the poison flag is cleared.
    fn lock_state(&self) -> MutexGuard<'_, WalState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Opens (creating if needed) the log directory, runs recovery, and
    /// returns the log plus everything the owner must replay.
    ///
    /// Recovery policy: the newest snapshot is loaded, every segment is
    /// scanned front to back, and records beyond the snapshot are
    /// returned for replay. An incomplete frame at the tail of the
    /// *last* segment is a torn write — it is truncated away, never
    /// replayed. Corruption anywhere else (CRC mismatch, incomplete
    /// frame in a closed segment) aborts with [`StoreError::Corrupt`]:
    /// this log refuses to guess.
    ///
    /// # Errors
    ///
    /// I/O failures and the corruption cases above.
    pub fn open(
        dir: impl Into<PathBuf>,
        segment_bytes: u64,
        group_commit: bool,
        fault: Option<FileFault>,
    ) -> Result<(Self, Recovered), StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;

        let mut segments: Vec<(u64, PathBuf)> = Vec::new();
        let mut snapshots: Vec<(u64, PathBuf)> = Vec::new();
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(seq) = parse_numbered(name, SEGMENT_PREFIX, SEGMENT_SUFFIX) {
                segments.push((seq, entry.path()));
            } else if let Some(seq) = parse_numbered(name, SNAPSHOT_PREFIX, SNAPSHOT_SUFFIX) {
                snapshots.push((seq, entry.path()));
            }
            // Anything else (e.g. an orphaned .tmp from a snapshot that
            // died before its rename) is ignored.
        }
        segments.sort_unstable_by_key(|(seq, _)| *seq);
        snapshots.sort_unstable_by_key(|(seq, _)| *seq);

        let snapshot = match snapshots.last() {
            Some((_, path)) => Some(read_snapshot(path)?),
            None => None,
        };
        let snap_seq = snapshot.as_ref().map_or(0, |(seq, _)| *seq);

        let mut records: Vec<(u64, Record)> = Vec::new();
        let mut max_seq = snap_seq;
        let last_ix = segments.len().wrapping_sub(1);
        for (ix, (_, path)) in segments.iter().enumerate() {
            let seg_name =
                path.file_name().and_then(|n| n.to_str()).unwrap_or("segment").to_owned();
            let data = fs::read(path)?;
            let mut off = 0usize;
            while off < data.len() {
                match scan_frame(&data[off..]) {
                    ScanStep::Complete { seq, record, consumed } => {
                        if seq > snap_seq {
                            records.push((seq, record));
                        }
                        max_seq = max_seq.max(seq);
                        off += consumed;
                    }
                    ScanStep::Incomplete if ix == last_ix => {
                        // Torn tail of the final segment: keep the valid
                        // prefix, drop the un-acknowledged tail.
                        let f = OpenOptions::new().write(true).open(path)?;
                        f.set_len(off as u64)?;
                        f.sync_all()?;
                        break;
                    }
                    ScanStep::Incomplete => {
                        return Err(StoreError::Corrupt {
                            segment: seg_name,
                            offset: off as u64,
                            detail: "incomplete record inside a closed segment".to_owned(),
                        });
                    }
                    ScanStep::Corrupt { detail } => {
                        return Err(StoreError::Corrupt {
                            segment: seg_name,
                            offset: off as u64,
                            detail,
                        });
                    }
                }
            }
        }
        records.sort_by_key(|(seq, _)| *seq);

        // Open a fresh active segment past everything recovered. The name
        // can only collide with an existing segment that recovered zero
        // records (empty or fully truncated) — appending to it is safe.
        let next_seq = max_seq + 1;
        let active_path = dir.join(segment_name(next_seq));
        let file = OpenOptions::new().create(true).append(true).read(true).open(&active_path)?;
        let existing = file.metadata()?.len();
        debug_assert_eq!(existing, 0, "active segment reuse implies an empty file");
        sync_dir(&dir)?;
        let closed: Vec<(u64, PathBuf)> =
            segments.into_iter().filter(|(_, p)| *p != active_path).collect();

        let replayed = records.len() as u64;
        let wal = Self {
            dir,
            segment_bytes: segment_bytes.max(1),
            group_commit,
            state: Mutex::new(WalState {
                active: ActiveSegment {
                    file: Arc::new(file),
                    path: active_path,
                    first_seq: next_seq,
                    written: existing,
                    synced: existing,
                },
                closed,
                next_seq,
                written_seq: max_seq,
                durable_seq: max_seq,
                flushing: false,
                epoch: 0,
                append_count: 0,
                fault,
                crashed: false,
            }),
            flushed: Condvar::new(),
            appends: AtomicU64::new(0),
            fsync_batches: AtomicU64::new(0),
            snapshots: AtomicU64::new(0),
            replayed,
        };
        Ok((wal, Recovered { snapshot, records }))
    }

    /// Appends one record, returning its sequence number. The record is
    /// *written* but not yet durable — call [`Wal::commit`] with the
    /// returned seq before acknowledging the mutation.
    ///
    /// # Errors
    ///
    /// I/O failures, or [`StoreError::Crashed`] once a fault has fired.
    pub fn append(&self, record: &Record) -> Result<u64, StoreError> {
        let mut st = self.lock_state();
        if st.crashed {
            return Err(StoreError::Crashed);
        }
        st.append_count += 1;
        let seq = st.next_seq;
        let frame = record.frame(seq);

        match st.fault {
            Some(FileFault::TornWrite { append }) if st.append_count == append => {
                // Write a strict prefix of the frame, then die.
                let cut = frame.len() / 2;
                (&*st.active.file).write_all(&frame[..cut])?;
                let _ = st.active.file.sync_data();
                return Err(self.crash(&mut st));
            }
            Some(FileFault::PartialFsync { append }) if st.append_count == append => {
                // Every write since the last honest fsync evaporates.
                st.active.file.set_len(st.active.synced)?;
                let _ = st.active.file.sync_data();
                return Err(self.crash(&mut st));
            }
            _ => {}
        }

        (&*st.active.file).write_all(&frame)?;
        st.active.written += frame.len() as u64;
        st.next_seq += 1;
        st.written_seq = seq;
        self.appends.fetch_add(1, Ordering::Relaxed);

        if let Some(FileFault::KillAtOffset { offset }) = st.fault {
            if st.active.written >= offset {
                // The kill drops whatever the page cache still held; the
                // fsynced prefix survives.
                let cut = offset.clamp(st.active.synced, st.active.written);
                st.active.file.set_len(cut)?;
                let _ = st.active.file.sync_data();
                return Err(self.crash(&mut st));
            }
        }

        if !self.group_commit {
            st.active.file.sync_data()?;
            st.active.synced = st.active.written;
            st.durable_seq = seq;
            self.fsync_batches.fetch_add(1, Ordering::Relaxed);
        }

        if st.active.written >= self.segment_bytes {
            self.rotate(&mut st)?;
        }
        Ok(seq)
    }

    fn crash(&self, st: &mut WalState) -> StoreError {
        st.crashed = true;
        self.flushed.notify_all();
        StoreError::Crashed
    }

    fn rotate(&self, st: &mut WalState) -> Result<(), StoreError> {
        st.active.file.sync_data()?;
        self.fsync_batches.fetch_add(1, Ordering::Relaxed);
        st.active.synced = st.active.written;
        st.durable_seq = st.written_seq;
        let first = st.next_seq;
        let path = self.dir.join(segment_name(first));
        let file = OpenOptions::new().create_new(true).append(true).read(true).open(&path)?;
        sync_dir(&self.dir)?;
        st.closed.push((st.active.first_seq, std::mem::replace(&mut st.active.path, path)));
        st.active.file = Arc::new(file);
        st.active.first_seq = first;
        st.active.written = 0;
        st.active.synced = 0;
        st.epoch += 1;
        // Rotation fsynced everything written so far: release waiters.
        self.flushed.notify_all();
        Ok(())
    }

    /// Blocks until every record up to and including `seq` is durable —
    /// the group-commit path. The first committer in becomes the flush
    /// leader and issues one `fdatasync` on behalf of everyone waiting.
    ///
    /// # Errors
    ///
    /// I/O failures, or [`StoreError::Crashed`] once a fault has fired.
    pub fn commit(&self, seq: u64) -> Result<(), StoreError> {
        let mut st = self.lock_state();
        loop {
            if st.crashed {
                return Err(StoreError::Crashed);
            }
            if st.durable_seq >= seq {
                return Ok(());
            }
            if st.flushing {
                st = self.flushed.wait(st).unwrap_or_else(|e| e.into_inner());
                continue;
            }
            st.flushing = true;
            let file = st.active.file.clone();
            let target_bytes = st.active.written;
            let target_seq = st.written_seq;
            let epoch = st.epoch;
            drop(st);
            let res = file.sync_data();
            st = self.lock_state();
            st.flushing = false;
            self.flushed.notify_all();
            res?;
            self.fsync_batches.fetch_add(1, Ordering::Relaxed);
            if st.epoch == epoch {
                st.active.synced = st.active.synced.max(target_bytes);
            }
            st.durable_seq = st.durable_seq.max(target_seq);
        }
    }

    /// Writes a snapshot covering every record with seq ≤ `seq` (the
    /// caller must have [`Wal::commit`]ed `seq` first and must guarantee
    /// `payload` reflects exactly that state), then compacts: closed
    /// segments fully covered by the snapshot and older snapshot files
    /// are deleted.
    ///
    /// The snapshot is crash-safe: written to a temp file, fsynced, and
    /// atomically renamed into place. A crash mid-write leaves an
    /// ignored `.tmp`; a crash after rename leaves a valid snapshot.
    ///
    /// # Errors
    ///
    /// I/O failures, or [`StoreError::Crashed`] once a fault has fired.
    pub fn write_snapshot(&self, seq: u64, payload: &[u8]) -> Result<(), StoreError> {
        {
            let st = self.lock_state();
            if st.crashed {
                return Err(StoreError::Crashed);
            }
            debug_assert!(st.durable_seq >= seq, "snapshot of un-fsynced state");
        }
        let final_path = self.dir.join(snapshot_name(seq));
        let tmp_path = self.dir.join(format!("{}.tmp", snapshot_name(seq)));
        let mut w = Writer::with_capacity(8 + 8 + 4 + 4 + payload.len());
        w.raw(SNAPSHOT_MAGIC).u64(seq).u32(payload.len() as u32).u32(crc32(payload)).raw(payload);
        let encoded = w.finish();
        let mut f = File::create(&tmp_path)?;
        f.write_all(&encoded)?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp_path, &final_path)?;
        sync_dir(&self.dir)?;
        self.snapshots.fetch_add(1, Ordering::Relaxed);
        self.compact(seq)?;
        Ok(())
    }

    /// Deletes closed segments whose records are all ≤ `snap_seq`, and
    /// snapshot files older than `snap_seq`.
    fn compact(&self, snap_seq: u64) -> Result<(), StoreError> {
        let mut st = self.lock_state();
        // A closed segment's records end where the next segment begins.
        let mut bounds: Vec<u64> = st.closed.iter().skip(1).map(|(first, _)| *first).collect();
        bounds.push(st.active.first_seq);
        let mut keep = Vec::with_capacity(st.closed.len());
        for ((first, path), next_first) in st.closed.drain(..).zip(bounds) {
            if next_first <= snap_seq + 1 {
                fs::remove_file(&path)?;
            } else {
                keep.push((first, path));
            }
        }
        st.closed = keep;
        drop(st);
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(seq) = parse_numbered(name, SNAPSHOT_PREFIX, SNAPSHOT_SUFFIX) {
                if seq < snap_seq {
                    fs::remove_file(entry.path())?;
                }
            }
        }
        sync_dir(&self.dir)?;
        Ok(())
    }

    /// Exports every **durable** record with seq in `(after_seq,
    /// durable_seq]` as concatenated CRC frames — the replication
    /// stream. Frames are re-encoded via [`Record::frame`], which is
    /// deterministic, so the exported bytes are identical to the bytes
    /// on the primary's disk and a replica appending them in order
    /// builds a byte-identical log.
    ///
    /// Returns `(durable watermark, frames)`. The watermark is
    /// snapshotted together with the segment list, so the stream is
    /// exactly the records a replica at `after_seq` needs to reach it.
    ///
    /// # Errors
    ///
    /// [`StoreError::Crashed`] after a fault; [`StoreError::Corrupt`]
    /// when the requested range is no longer contiguous on disk —
    /// either `after_seq` predates the oldest retained segment
    /// (compaction won; the replica must be reseeded from a snapshot)
    /// or `after_seq` is beyond the durable watermark (the "replica" is
    /// ahead of this log).
    pub fn export_frames_after(&self, after_seq: u64) -> Result<(u64, Vec<u8>), StoreError> {
        let (paths, durable) = {
            let st = self.lock_state();
            if st.crashed {
                return Err(StoreError::Crashed);
            }
            let mut paths: Vec<PathBuf> = st.closed.iter().map(|(_, p)| p.clone()).collect();
            paths.push(st.active.path.clone());
            (paths, st.durable_seq)
        };
        if after_seq > durable {
            return Err(StoreError::Corrupt {
                segment: "export".to_owned(),
                offset: 0,
                detail: format!("replica watermark {after_seq} is ahead of durable {durable}"),
            });
        }
        let mut out = Vec::new();
        let mut expect = after_seq + 1;
        'segments: for path in &paths {
            // A concurrently compacted segment is simply gone; the gap
            // check below decides whether that matters for this range.
            let Ok(data) = fs::read(path) else { continue };
            let mut off = 0usize;
            while off < data.len() {
                match scan_frame(&data[off..]) {
                    ScanStep::Complete { seq, record, consumed } => {
                        if seq >= expect && seq <= durable {
                            if seq != expect {
                                return Err(StoreError::Corrupt {
                                    segment: "export".to_owned(),
                                    offset: off as u64,
                                    detail: format!(
                                        "replication gap: want seq {expect}, found {seq} \
                                         (range compacted; reseed the replica)"
                                    ),
                                });
                            }
                            out.extend_from_slice(&record.frame(seq));
                            expect = seq + 1;
                        }
                        off += consumed;
                    }
                    // A torn or in-flight tail write: everything durable
                    // precedes it, stop scanning this file.
                    ScanStep::Incomplete | ScanStep::Corrupt { .. } => continue 'segments,
                }
            }
        }
        if expect != durable + 1 {
            return Err(StoreError::Corrupt {
                segment: "export".to_owned(),
                offset: 0,
                detail: format!(
                    "replication gap: want seqs {expect}..={durable} but the log starts later \
                     (range compacted; reseed the replica)"
                ),
            });
        }
        Ok((durable, out))
    }

    /// The last appended sequence number (0 before the first append).
    pub fn written_seq(&self) -> u64 {
        self.lock_state().written_seq
    }

    /// The last sequence number known durable.
    pub fn durable_seq(&self) -> u64 {
        self.lock_state().durable_seq
    }

    /// Whether an injected fault has fired.
    pub fn is_crashed(&self) -> bool {
        self.lock_state().crashed
    }

    /// Segment files currently live: closed + the active one.
    pub fn segment_count(&self) -> usize {
        self.lock_state().closed.len() + 1
    }

    /// Records appended this lifetime.
    pub fn append_count(&self) -> u64 {
        self.appends.load(Ordering::Relaxed)
    }

    /// Physical fsyncs issued this lifetime.
    pub fn fsync_batch_count(&self) -> u64 {
        self.fsync_batches.load(Ordering::Relaxed)
    }

    /// Snapshots written this lifetime.
    pub fn snapshot_count(&self) -> u64 {
        self.snapshots.load(Ordering::Relaxed)
    }

    /// Records replayed by the recovery that opened this log.
    pub fn replayed_count(&self) -> u64 {
        self.replayed
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let unique =
            format!("sp-store-wal-{tag}-{}-{:?}", std::process::id(), std::thread::current().id());
        std::env::temp_dir().join(unique)
    }

    fn fresh(tag: &str) -> PathBuf {
        let dir = tmp_dir(tag);
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn rec(i: u64) -> Record {
        Record::LogAccess { user: i, puzzle: i * 7, granted: i.is_multiple_of(2) }
    }

    #[test]
    fn append_commit_recover_roundtrip() {
        let dir = fresh("roundtrip");
        {
            let (wal, recovered) = Wal::open(&dir, 1 << 20, true, None).unwrap();
            assert!(recovered.snapshot.is_none());
            assert!(recovered.records.is_empty());
            for i in 0..10 {
                let seq = wal.append(&rec(i)).unwrap();
                wal.commit(seq).unwrap();
            }
            assert_eq!(wal.written_seq(), 10);
            assert_eq!(wal.durable_seq(), 10);
            assert_eq!(wal.append_count(), 10);
            assert!(wal.fsync_batch_count() >= 1);
        }
        let (wal, recovered) = Wal::open(&dir, 1 << 20, true, None).unwrap();
        assert_eq!(recovered.records.len(), 10);
        assert_eq!(wal.replayed_count(), 10);
        for (i, (seq, record)) in recovered.records.iter().enumerate() {
            assert_eq!(*seq, i as u64 + 1);
            assert_eq!(*record, rec(i as u64));
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_each_mode_syncs_every_append() {
        let dir = fresh("fsync-each");
        let (wal, _) = Wal::open(&dir, 1 << 20, false, None).unwrap();
        for i in 0..5 {
            let seq = wal.append(&rec(i)).unwrap();
            // Already durable before commit is even called.
            assert_eq!(wal.durable_seq(), seq);
            wal.commit(seq).unwrap();
        }
        assert_eq!(wal.fsync_batch_count(), 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_batches_fsyncs_across_writers() {
        let dir = fresh("group");
        let wal = std::sync::Arc::new(Wal::open(&dir, 1 << 20, true, None).unwrap().0);
        let writers = 8;
        let per = 50;
        crossbeam::thread::scope(|s| {
            for t in 0..writers {
                let wal = wal.clone();
                s.spawn(move |_| {
                    for i in 0..per {
                        let seq = wal.append(&rec((t * per + i) as u64)).unwrap();
                        wal.commit(seq).unwrap();
                    }
                });
            }
        })
        .unwrap();
        let appends = wal.append_count();
        assert_eq!(appends, (writers * per) as u64);
        assert!(
            wal.fsync_batch_count() <= appends,
            "group commit must not fsync more than once per append"
        );
        assert_eq!(wal.durable_seq(), appends);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_produces_segments_and_recovery_reads_them_all() {
        let dir = fresh("rotate");
        let n = 40u64;
        {
            let (wal, _) = Wal::open(&dir, 64, true, None).unwrap();
            for i in 0..n {
                let seq = wal.append(&rec(i)).unwrap();
                wal.commit(seq).unwrap();
            }
            assert!(wal.segment_count() > 1, "tiny segment size must rotate");
        }
        let (_, recovered) = Wal::open(&dir, 64, true, None).unwrap();
        assert_eq!(recovered.records.len(), n as usize);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_compacts_covered_segments_and_old_snapshots() {
        let dir = fresh("compact");
        let (wal, _) = Wal::open(&dir, 64, true, None).unwrap();
        for i in 0..30 {
            let seq = wal.append(&rec(i)).unwrap();
            wal.commit(seq).unwrap();
        }
        let seq = wal.written_seq();
        wal.commit(seq).unwrap();
        wal.write_snapshot(seq, b"state-at-30").unwrap();
        for i in 30..40 {
            let s = wal.append(&rec(i)).unwrap();
            wal.commit(s).unwrap();
        }
        let seq2 = wal.written_seq();
        wal.write_snapshot(seq2, b"state-at-40").unwrap();
        assert_eq!(wal.snapshot_count(), 2);
        let names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        let snaps = names.iter().filter(|n| n.starts_with(SNAPSHOT_PREFIX)).count();
        assert_eq!(snaps, 1, "old snapshots deleted: {names:?}");
        drop(wal);
        // Recovery from snapshot + (possibly empty) tail sees seq 40 state.
        let (wal, recovered) = Wal::open(&dir, 64, true, None).unwrap();
        let (snap_seq, payload) = recovered.snapshot.expect("snapshot survives");
        assert_eq!(snap_seq, 40);
        assert_eq!(&payload[..], b"state-at-40");
        assert!(recovered.records.is_empty());
        assert_eq!(wal.written_seq(), 40);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_fault_loses_only_the_torn_record() {
        let dir = fresh("torn");
        let (wal, _) =
            Wal::open(&dir, 1 << 20, true, Some(FileFault::TornWrite { append: 4 })).unwrap();
        for i in 0..3 {
            let seq = wal.append(&rec(i)).unwrap();
            wal.commit(seq).unwrap();
        }
        assert!(matches!(wal.append(&rec(3)), Err(StoreError::Crashed)));
        assert!(wal.is_crashed());
        assert!(matches!(wal.commit(1), Err(StoreError::Crashed)));
        drop(wal);
        let (_, recovered) = Wal::open(&dir, 1 << 20, true, None).unwrap();
        assert_eq!(recovered.records.len(), 3, "torn tail skipped, acked records intact");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn partial_fsync_fault_rolls_back_to_the_synced_watermark() {
        let dir = fresh("partial");
        let (wal, _) =
            Wal::open(&dir, 1 << 20, true, Some(FileFault::PartialFsync { append: 5 })).unwrap();
        // Two acked (fsynced) records...
        for i in 0..2 {
            let seq = wal.append(&rec(i)).unwrap();
            wal.commit(seq).unwrap();
        }
        // ...two written but never committed...
        wal.append(&rec(2)).unwrap();
        wal.append(&rec(3)).unwrap();
        // ...and the fifth append reveals the lie.
        assert!(matches!(wal.append(&rec(4)), Err(StoreError::Crashed)));
        drop(wal);
        let (_, recovered) = Wal::open(&dir, 1 << 20, true, None).unwrap();
        assert_eq!(recovered.records.len(), 2, "only fsynced records survive a lying fsync");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn kill_at_offset_never_cuts_below_the_synced_watermark() {
        let dir = fresh("kill");
        let frame_len = rec(0).frame(1).len() as u64;
        // Trigger after ~6 frames; the first 4 are fsynced.
        let (wal, _) = Wal::open(
            &dir,
            1 << 20,
            true,
            Some(FileFault::KillAtOffset { offset: frame_len * 6 - 2 }),
        )
        .unwrap();
        let mut acked = 0;
        for i in 0..4 {
            let seq = wal.append(&rec(i)).unwrap();
            wal.commit(seq).unwrap();
            acked += 1;
        }
        let mut crashed = false;
        for i in 4..10 {
            match wal.append(&rec(i)) {
                Ok(_) => {}
                Err(StoreError::Crashed) => {
                    crashed = true;
                    break;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(crashed, "kill fault must fire");
        drop(wal);
        let (_, recovered) = Wal::open(&dir, 1 << 20, true, None).unwrap();
        assert!(
            recovered.records.len() >= acked,
            "acked records lost: {} < {acked}",
            recovered.records.len()
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Regression: snapshot compaction used to be written against a
    /// quiesced log. Run it hot instead — one thread appending through
    /// continuous segment rotation while another snapshots whatever is
    /// durable and compacts — and recovery must still account for every
    /// acknowledged record.
    #[test]
    fn compaction_races_concurrent_appends_and_rotation() {
        let dir = fresh("compact-race");
        let total = 400u64;
        let wal = Arc::new(Wal::open(&dir, 96, true, None).unwrap().0);
        let done = std::sync::atomic::AtomicBool::new(false);
        let raced_snapshots = std::thread::scope(|s| {
            let appender = s.spawn(|| {
                for i in 0..total {
                    let seq = wal.append(&rec(i)).unwrap();
                    wal.commit(seq).unwrap();
                }
                done.store(true, Ordering::SeqCst);
            });
            let snapshotter = s.spawn(|| {
                let mut last = 0;
                let mut written = 0u64;
                while !done.load(Ordering::SeqCst) {
                    let seq = wal.durable_seq();
                    if seq > last {
                        wal.write_snapshot(seq, format!("state-{seq}").as_bytes()).unwrap();
                        last = seq;
                        written += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
                written
            });
            appender.join().unwrap();
            snapshotter.join().unwrap()
        });

        // Quiesced tail: one more snapshot covering everything, which
        // must compact every closed segment regardless of what the
        // racing snapshots already deleted.
        wal.write_snapshot(total, b"final").unwrap();
        assert_eq!(wal.snapshot_count(), raced_snapshots + 1);
        assert_eq!(wal.segment_count(), 1, "full-coverage snapshot leaves only the active segment");
        let snaps_on_disk = fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref().unwrap().file_name().to_string_lossy().starts_with(SNAPSHOT_PREFIX)
            })
            .count();
        assert_eq!(snaps_on_disk, 1, "stale racing snapshots compacted away");
        drop(wal);

        let (reopened, recovered) = Wal::open(&dir, 96, true, None).unwrap();
        let (snap_seq, payload) = recovered.snapshot.expect("final snapshot recovered");
        assert_eq!(snap_seq, total);
        assert_eq!(&payload[..], b"final");
        assert!(recovered.records.is_empty(), "snapshot covers every record");
        assert_eq!(reopened.written_seq(), total);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// The same hot append/snapshot/rotate race, but the log dies
    /// mid-run via the fault injector. Whatever interleaving happened,
    /// recovery must cover every *acknowledged* seq: each one is either
    /// ≤ the recovered snapshot's seq or present in the replay set.
    #[test]
    fn compaction_race_under_fault_keeps_every_acked_record() {
        let dir = fresh("compact-race-fault");
        let wal = Arc::new(
            Wal::open(&dir, 96, true, Some(FileFault::TornWrite { append: 120 })).unwrap().0,
        );
        let (acked, snapshotted) = std::thread::scope(|s| {
            let appender = s.spawn(|| {
                let mut acked = Vec::new();
                for i in 0..400u64 {
                    let Ok(seq) = wal.append(&rec(i)) else { break };
                    if wal.commit(seq).is_err() {
                        break;
                    }
                    acked.push(seq);
                }
                acked
            });
            let snapshotter = s.spawn(|| {
                let mut last = 0;
                while !wal.is_crashed() {
                    let seq = wal.durable_seq();
                    if seq > last && wal.write_snapshot(seq, format!("s{seq}").as_bytes()).is_ok() {
                        last = seq;
                    } else {
                        std::thread::yield_now();
                    }
                }
                last
            });
            (appender.join().unwrap(), snapshotter.join().unwrap())
        });
        assert!(wal.is_crashed(), "fault must fire mid-run");
        assert!(!acked.is_empty(), "some appends must be acknowledged before the crash");
        drop(wal);

        let (_, recovered) = Wal::open(&dir, 96, true, None).unwrap();
        let snap_seq = recovered.snapshot.as_ref().map_or(0, |(seq, _)| *seq);
        assert!(
            snap_seq >= snapshotted,
            "newest recovered snapshot {snap_seq} older than one written {snapshotted}"
        );
        let replayed: std::collections::BTreeSet<u64> =
            recovered.records.iter().map(|(seq, _)| *seq).collect();
        for &seq in &acked {
            assert!(
                seq <= snap_seq || replayed.contains(&seq),
                "acked seq {seq} lost (snapshot covers ≤{snap_seq}, replay has {} records)",
                replayed.len()
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn export_streams_exactly_the_durable_range_across_rotation() {
        let dir = fresh("export");
        let (wal, _) = Wal::open(&dir, 96, true, None).unwrap();
        for i in 0..30 {
            let seq = wal.append(&rec(i)).unwrap();
            wal.commit(seq).unwrap();
        }
        assert!(wal.segment_count() > 1, "export must span a rotation");

        let (watermark, frames) = wal.export_frames_after(0).unwrap();
        assert_eq!(watermark, 30);
        // The stream re-parses to seqs 1..=30 with the original records,
        // and the bytes match a fresh deterministic re-framing.
        let mut off = 0usize;
        let mut expected = Vec::new();
        for want in 1..=30u64 {
            match scan_frame(&frames[off..]) {
                ScanStep::Complete { seq, record, consumed } => {
                    assert_eq!(seq, want);
                    assert_eq!(record, rec(want - 1));
                    expected.extend_from_slice(&record.frame(seq));
                    off += consumed;
                }
                other => panic!("stream truncated at seq {want}: {other:?}"),
            }
        }
        assert_eq!(off, frames.len(), "no trailing bytes after the durable range");
        assert_eq!(frames, expected, "export is byte-identical to deterministic re-framing");

        // A caught-up replica gets an empty delta at the same watermark.
        let (w2, tail) = wal.export_frames_after(30).unwrap();
        assert_eq!((w2, tail.len()), (30, 0));
        // Mid-log incremental export picks up exactly the suffix.
        let (_, suffix) = wal.export_frames_after(28).unwrap();
        assert_eq!(&frames[frames.len() - suffix.len()..], &suffix[..]);
        // A "replica" claiming the future is rejected.
        assert!(matches!(wal.export_frames_after(31), Err(StoreError::Corrupt { .. })));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn export_excludes_written_but_uncommitted_records() {
        let dir = fresh("export-uncommitted");
        let (wal, _) = Wal::open(&dir, 1 << 20, true, None).unwrap();
        for i in 0..5 {
            let seq = wal.append(&rec(i)).unwrap();
            wal.commit(seq).unwrap();
        }
        // Written, never committed: not durable, never shipped.
        wal.append(&rec(99)).unwrap();
        let (watermark, frames) = wal.export_frames_after(0).unwrap();
        assert_eq!(watermark, 5);
        let mut count = 0u64;
        let mut off = 0usize;
        while off < frames.len() {
            match scan_frame(&frames[off..]) {
                ScanStep::Complete { consumed, .. } => {
                    count += 1;
                    off += consumed;
                }
                other => panic!("bad stream: {other:?}"),
            }
        }
        assert_eq!(count, 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn export_refuses_a_compacted_range() {
        let dir = fresh("export-compacted");
        let (wal, _) = Wal::open(&dir, 64, true, None).unwrap();
        for i in 0..20 {
            let seq = wal.append(&rec(i)).unwrap();
            wal.commit(seq).unwrap();
        }
        wal.write_snapshot(20, b"covered").unwrap();
        for i in 20..25 {
            let seq = wal.append(&rec(i)).unwrap();
            wal.commit(seq).unwrap();
        }
        // Records 1..=20 live only in the snapshot now: a replica at 0
        // cannot be caught up from the log alone.
        let err = wal.export_frames_after(0).unwrap_err();
        assert!(err.to_string().contains("gap"), "want gap error, got {err}");
        // But a replica past the compaction point streams fine.
        let (watermark, frames) = wal.export_frames_after(20).unwrap();
        assert_eq!(watermark, 25);
        assert!(!frames.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_closed_segment_refuses_to_open() {
        let dir = fresh("corrupt");
        {
            let (wal, _) = Wal::open(&dir, 1 << 20, true, None).unwrap();
            for i in 0..5 {
                let seq = wal.append(&rec(i)).unwrap();
                wal.commit(seq).unwrap();
            }
        }
        // Flip a byte inside the first record's body on disk.
        let seg = dir.join(segment_name(1));
        let mut data = fs::read(&seg).unwrap();
        data[FRAME_HEADER_LEN_PLUS_2] ^= 0xFF;
        fs::write(&seg, data).unwrap();
        match Wal::open(&dir, 1 << 20, true, None) {
            Err(StoreError::Corrupt { offset, .. }) => assert_eq!(offset, 0),
            Err(other) => panic!("expected corruption, got {other}"),
            Ok(_) => panic!("expected corruption, got a clean open"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    const FRAME_HEADER_LEN_PLUS_2: usize = crate::record::FRAME_HEADER_LEN + 2;

    #[test]
    fn torn_tail_of_last_segment_is_truncated_not_fatal() {
        let dir = fresh("tail");
        {
            let (wal, _) = Wal::open(&dir, 1 << 20, true, None).unwrap();
            for i in 0..5 {
                let seq = wal.append(&rec(i)).unwrap();
                wal.commit(seq).unwrap();
            }
        }
        // Simulate a torn final write by appending half a frame by hand.
        let seg = dir.join(segment_name(1));
        let torn = rec(9).frame(6);
        let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(&torn[..torn.len() / 2]).unwrap();
        drop(f);
        let (_, recovered) = Wal::open(&dir, 1 << 20, true, None).unwrap();
        assert_eq!(recovered.records.len(), 5);
        // The truncation is persistent: a third open also sees 5.
        let (_, recovered) = Wal::open(&dir, 1 << 20, true, None).unwrap();
        assert_eq!(recovered.records.len(), 5);
        fs::remove_dir_all(&dir).unwrap();
    }
}
