//! CRC32 (IEEE 802.3, reflected polynomial `0xEDB88320`).
//!
//! The workspace builds offline against vendored crates only, so the WAL
//! carries its own table-driven implementation. Every log record and
//! snapshot body is covered by this checksum; recovery treats a mismatch
//! as corruption, never as data.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The IEEE check value every CRC32 implementation must produce.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"\0"), 0xD202_EF8D);
    }

    #[test]
    fn any_single_bit_flip_changes_the_checksum() {
        let data = b"the write-ahead log survives torn tails";
        let base = crc32(data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.to_vec();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at byte {byte} bit {bit} undetected");
            }
        }
    }
}
