//! `sp-store`: a durable storage engine for the SP/DH state.
//!
//! The paper's prototype keeps the service provider's puzzle database
//! and the storage host's blob store on a real server (§VII); this crate
//! gives the workspace the matching durability layer:
//!
//! * [`Record`] — the mutation log entries, CRC32-framed with the
//!   `sp-wire` codec ([`scan_frame`] recovers them one at a time),
//! * [`Wal`] — an append-only segmented write-ahead log with **group
//!   commit** (one fsync makes many concurrent appends durable),
//!   periodic [snapshots](Wal::write_snapshot), segment rotation, and
//!   compaction of segments a snapshot has made obsolete,
//! * [`DurableProvider`] / [`DurableHost`] — drop-in backends behind
//!   the `sp-osn` traits: the sharded in-memory stores remain the read
//!   path, every mutation is logged before it is acknowledged, and
//!   recovery-on-startup replays snapshot + log tail,
//! * [`FileFault`] — injected kill/torn-write/partial-fsync faults so
//!   the crash-recovery tests exercise real failure shapes.
//!
//! # Example
//!
//! ```
//! use sp_store::{DurableProvider, StoreConfig};
//! use sp_osn::ProviderApi;
//!
//! let dir = std::env::temp_dir().join(format!("sp-store-doc-{}", std::process::id()));
//! let id = {
//!     let sp = DurableProvider::open(&dir, StoreConfig::default())?;
//!     sp.publish_puzzle(bytes::Bytes::from_static(b"opaque record"))?
//! };
//! // A reopened store replays the log and serves the same state.
//! let sp = DurableProvider::open(&dir, StoreConfig::default())?;
//! assert_eq!(sp.fetch_puzzle(id)?, bytes::Bytes::from_static(b"opaque record"));
//! # std::fs::remove_dir_all(&dir).unwrap();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc;
mod durable;
mod error;
pub mod record;
mod wal;

pub use crc::crc32;
pub use durable::{DurableHost, DurableProvider, StoreConfig};
pub use error::StoreError;
pub use record::{scan_frame, Record, ScanStep, FRAME_HEADER_LEN, MAX_RECORD_LEN};
pub use wal::{FileFault, Recovered, Wal};
