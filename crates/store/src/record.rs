//! The WAL record codec: one mutation per record, CRC32-framed.
//!
//! On-disk frame layout (all integers big-endian, matching `sp-wire`):
//!
//! ```text
//! ┌─────────┬─────────┬──────────────────────────────┐
//! │ u32 len │ u32 crc │ body (len bytes)             │
//! └─────────┴─────────┴──────────────────────────────┘
//! body = u64 seq ‖ u8 kind ‖ kind-specific fields
//! ```
//!
//! The CRC covers the body only; the length is implicitly validated by
//! the CRC (a wrong length either truncates the body, failing the CRC,
//! or runs past the write, leaving an incomplete frame). Records carry
//! *absolute* state — ids and URLs assigned at write time — so replay is
//! idempotent and order-insensitive per key.

use bytes::Bytes;
use sp_wire::{Reader, WireError, Writer};

use crate::crc::crc32;

/// Bytes of frame header preceding each record body: `u32 len ‖ u32 crc`.
pub const FRAME_HEADER_LEN: usize = 8;

/// Upper bound on one record body. A frame claiming more is corruption,
/// not data — no blob or puzzle record approaches this.
pub const MAX_RECORD_LEN: usize = 64 << 20;

/// One logged mutation. SP records carry puzzle/feed/audit state; DH
/// records carry blob state. A store only replays the kinds it owns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Record {
    /// A puzzle record published under an SP-assigned id (`Upload`).
    PublishPuzzle {
        /// SP-assigned raw puzzle id.
        id: u64,
        /// The opaque serialized puzzle.
        record: Bytes,
    },
    /// A puzzle record replaced in place (sharer refresh).
    ReplacePuzzle {
        /// Raw puzzle id.
        id: u64,
        /// The replacement record.
        record: Bytes,
    },
    /// A puzzle deleted.
    DeletePuzzle {
        /// Raw puzzle id.
        id: u64,
    },
    /// One audit-log entry (`Verify` / `AnswerPuzzle` outcome).
    LogAccess {
        /// Raw attempting-user id.
        user: u64,
        /// Raw attempted-puzzle id.
        puzzle: u64,
        /// Whether access was granted.
        granted: bool,
    },
    /// A feed post (share hyperlink).
    Post {
        /// SP-assigned raw post id.
        id: u64,
        /// Raw author user id.
        author: u64,
        /// Post text.
        text: String,
        /// Raw linked puzzle id.
        puzzle: u64,
    },
    /// A blob stored (or a URL reserved with empty content) at a
    /// DH-minted URL.
    PutBlob {
        /// The minted URL.
        url: String,
        /// Blob content.
        data: Bytes,
    },
    /// A previously issued URL filled (or replaced).
    FillBlob {
        /// The target URL.
        url: String,
        /// New content.
        data: Bytes,
    },
    /// A blob deleted.
    DeleteBlob {
        /// The target URL.
        url: String,
    },
}

const KIND_PUBLISH_PUZZLE: u8 = 1;
const KIND_REPLACE_PUZZLE: u8 = 2;
const KIND_DELETE_PUZZLE: u8 = 3;
const KIND_LOG_ACCESS: u8 = 4;
const KIND_POST: u8 = 5;
const KIND_PUT_BLOB: u8 = 6;
const KIND_FILL_BLOB: u8 = 7;
const KIND_DELETE_BLOB: u8 = 8;

impl Record {
    fn kind(&self) -> u8 {
        match self {
            Self::PublishPuzzle { .. } => KIND_PUBLISH_PUZZLE,
            Self::ReplacePuzzle { .. } => KIND_REPLACE_PUZZLE,
            Self::DeletePuzzle { .. } => KIND_DELETE_PUZZLE,
            Self::LogAccess { .. } => KIND_LOG_ACCESS,
            Self::Post { .. } => KIND_POST,
            Self::PutBlob { .. } => KIND_PUT_BLOB,
            Self::FillBlob { .. } => KIND_FILL_BLOB,
            Self::DeleteBlob { .. } => KIND_DELETE_BLOB,
        }
    }

    /// Exact body size for this record under `seq` framing — used to
    /// pre-size the encoder (`Writer::with_capacity`) so the hot append
    /// path never reallocates.
    pub fn encoded_len(&self) -> usize {
        let fields = match self {
            Self::PublishPuzzle { record, .. } | Self::ReplacePuzzle { record, .. } => {
                8 + 4 + record.len()
            }
            Self::DeletePuzzle { .. } => 8,
            Self::LogAccess { .. } => 8 + 8 + 1,
            Self::Post { text, .. } => 8 + 8 + (4 + text.len()) + 8,
            Self::PutBlob { url, data } | Self::FillBlob { url, data } => {
                (4 + url.len()) + (4 + data.len())
            }
            Self::DeleteBlob { url } => 4 + url.len(),
        };
        8 + 1 + fields // seq ‖ kind ‖ fields
    }

    fn encode_body(&self, seq: u64) -> Bytes {
        let mut w = Writer::with_capacity(self.encoded_len());
        w.u64(seq).u8(self.kind());
        match self {
            Self::PublishPuzzle { id, record } | Self::ReplacePuzzle { id, record } => {
                w.u64(*id).bytes(record);
            }
            Self::DeletePuzzle { id } => {
                w.u64(*id);
            }
            Self::LogAccess { user, puzzle, granted } => {
                w.u64(*user).u64(*puzzle).u8(u8::from(*granted));
            }
            Self::Post { id, author, text, puzzle } => {
                w.u64(*id).u64(*author).string(text).u64(*puzzle);
            }
            Self::PutBlob { url, data } | Self::FillBlob { url, data } => {
                w.string(url).bytes(data);
            }
            Self::DeleteBlob { url } => {
                w.string(url);
            }
        }
        w.finish()
    }

    /// Encodes the complete on-disk frame for this record at `seq`.
    pub fn frame(&self, seq: u64) -> Bytes {
        let body = self.encode_body(seq);
        let mut w = Writer::with_capacity(FRAME_HEADER_LEN + body.len());
        w.u32(body.len() as u32).u32(crc32(&body)).raw(&body);
        w.finish()
    }

    /// Decodes a record body (already CRC-validated) into `(seq, record)`.
    ///
    /// # Errors
    ///
    /// Returns the `sp-wire` decode error for malformed bodies, including
    /// trailing bytes and unknown kinds (mapped to
    /// [`WireError::UnexpectedEnd`]-family errors by construction).
    pub fn decode_body(body: &[u8]) -> Result<(u64, Record), WireError> {
        let mut r = Reader::new(body);
        let seq = r.u64()?;
        let kind = r.u8()?;
        let record = match kind {
            KIND_PUBLISH_PUZZLE => {
                Record::PublishPuzzle { id: r.u64()?, record: Bytes::copy_from_slice(r.bytes()?) }
            }
            KIND_REPLACE_PUZZLE => {
                Record::ReplacePuzzle { id: r.u64()?, record: Bytes::copy_from_slice(r.bytes()?) }
            }
            KIND_DELETE_PUZZLE => Record::DeletePuzzle { id: r.u64()? },
            KIND_LOG_ACCESS => {
                Record::LogAccess { user: r.u64()?, puzzle: r.u64()?, granted: r.u8()? != 0 }
            }
            KIND_POST => Record::Post {
                id: r.u64()?,
                author: r.u64()?,
                text: r.string()?.to_owned(),
                puzzle: r.u64()?,
            },
            KIND_PUT_BLOB => Record::PutBlob {
                url: r.string()?.to_owned(),
                data: Bytes::copy_from_slice(r.bytes()?),
            },
            KIND_FILL_BLOB => Record::FillBlob {
                url: r.string()?.to_owned(),
                data: Bytes::copy_from_slice(r.bytes()?),
            },
            KIND_DELETE_BLOB => Record::DeleteBlob { url: r.string()?.to_owned() },
            // An unknown kind on a CRC-valid body means a version we do
            // not speak; surface it as a decode failure, not silence.
            _ => return Err(WireError::TrailingBytes),
        };
        r.expect_end()?;
        Ok((seq, record))
    }
}

/// Outcome of scanning one frame at the front of a buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScanStep {
    /// A full, CRC-valid, decodable frame.
    Complete {
        /// The record's log sequence number.
        seq: u64,
        /// The decoded record.
        record: Record,
        /// Total frame bytes consumed (header + body).
        consumed: usize,
    },
    /// The buffer ends before the frame does — a torn tail if this is
    /// the end of the last segment, corruption anywhere else.
    Incomplete,
    /// The frame is complete but invalid: absurd length, CRC mismatch,
    /// or undecodable body.
    Corrupt {
        /// What failed, for the recovery error message.
        detail: String,
    },
}

/// Scans the frame at the front of `buf` without consuming it.
pub fn scan_frame(buf: &[u8]) -> ScanStep {
    if buf.len() < FRAME_HEADER_LEN {
        return ScanStep::Incomplete;
    }
    let len = u32::from_be_bytes(buf[0..4].try_into().expect("4 bytes")) as usize;
    if len > MAX_RECORD_LEN {
        return ScanStep::Corrupt { detail: format!("frame claims {len} bytes") };
    }
    let Some(body) = buf.get(FRAME_HEADER_LEN..FRAME_HEADER_LEN + len) else {
        return ScanStep::Incomplete;
    };
    let want = u32::from_be_bytes(buf[4..8].try_into().expect("4 bytes"));
    let got = crc32(body);
    if got != want {
        return ScanStep::Corrupt {
            detail: format!("crc mismatch: stored {want:#010x}, computed {got:#010x}"),
        };
    }
    match Record::decode_body(body) {
        Ok((seq, record)) => ScanStep::Complete { seq, record, consumed: FRAME_HEADER_LEN + len },
        Err(e) => ScanStep::Corrupt { detail: format!("undecodable body: {e}") },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Record> {
        vec![
            Record::PublishPuzzle { id: 0, record: Bytes::from_static(b"opaque") },
            Record::ReplacePuzzle { id: 7, record: Bytes::new() },
            Record::DeletePuzzle { id: u64::MAX },
            Record::LogAccess { user: 3, puzzle: 9, granted: true },
            Record::LogAccess { user: 3, puzzle: 9, granted: false },
            Record::Post { id: 1, author: 2, text: "solve my 🔒 puzzle".into(), puzzle: 4 },
            Record::PutBlob {
                url: "https://dh.example/objects/0".into(),
                data: Bytes::from_static(b"ct"),
            },
            Record::FillBlob { url: "https://dh.example/objects/0".into(), data: Bytes::new() },
            Record::DeleteBlob { url: "https://dh.example/objects/0".into() },
        ]
    }

    #[test]
    fn frame_roundtrips_every_kind() {
        for (i, rec) in samples().into_iter().enumerate() {
            let seq = i as u64 + 1;
            let frame = rec.frame(seq);
            assert_eq!(frame.len(), FRAME_HEADER_LEN + rec.encoded_len(), "{rec:?}");
            match scan_frame(&frame) {
                ScanStep::Complete { seq: got_seq, record, consumed } => {
                    assert_eq!(got_seq, seq);
                    assert_eq!(record, rec);
                    assert_eq!(consumed, frame.len());
                }
                other => panic!("{rec:?} scanned as {other:?}"),
            }
        }
    }

    #[test]
    fn scan_sees_through_concatenated_frames() {
        let mut buf = Vec::new();
        for (i, rec) in samples().into_iter().enumerate() {
            buf.extend_from_slice(&rec.frame(i as u64 + 1));
        }
        let mut off = 0;
        let mut seen = 0u64;
        while off < buf.len() {
            match scan_frame(&buf[off..]) {
                ScanStep::Complete { seq, consumed, .. } => {
                    seen += 1;
                    assert_eq!(seq, seen);
                    off += consumed;
                }
                other => panic!("offset {off}: {other:?}"),
            }
        }
        assert_eq!(seen, samples().len() as u64);
    }

    #[test]
    fn every_strict_prefix_is_incomplete() {
        let rec = Record::PublishPuzzle { id: 5, record: Bytes::from_static(b"payload") };
        let frame = rec.frame(1);
        for cut in 0..frame.len() {
            assert_eq!(scan_frame(&frame[..cut]), ScanStep::Incomplete, "cut at {cut}");
        }
    }

    #[test]
    fn bit_flips_in_the_body_are_corrupt_not_data() {
        let rec = Record::LogAccess { user: 1, puzzle: 2, granted: true };
        let frame = rec.frame(9);
        for byte in FRAME_HEADER_LEN..frame.len() {
            let mut bad = frame.to_vec();
            bad[byte] ^= 0x01;
            assert!(
                matches!(scan_frame(&bad), ScanStep::Corrupt { .. }),
                "body flip at byte {byte} accepted"
            );
        }
        // A flipped stored CRC is also rejected.
        let mut bad = frame.to_vec();
        bad[4] ^= 0x80;
        assert!(matches!(scan_frame(&bad), ScanStep::Corrupt { .. }));
    }

    #[test]
    fn absurd_length_is_corrupt() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        buf.extend_from_slice(&[0u8; 12]);
        assert!(
            matches!(scan_frame(&buf), ScanStep::Corrupt { detail } if detail.contains("claims"))
        );
    }

    #[test]
    fn unknown_kind_is_corrupt() {
        let mut w = Writer::new();
        w.u64(1).u8(200);
        let body = w.finish();
        let mut buf = Vec::new();
        buf.extend_from_slice(&(body.len() as u32).to_be_bytes());
        buf.extend_from_slice(&crc32(&body).to_be_bytes());
        buf.extend_from_slice(&body);
        assert!(matches!(scan_frame(&buf), ScanStep::Corrupt { .. }));
    }

    #[test]
    fn trailing_garbage_in_body_is_corrupt() {
        let mut w = Writer::new();
        w.u64(1).u8(KIND_DELETE_PUZZLE).u64(3).u8(0xEE); // one byte too many
        let body = w.finish();
        let mut buf = Vec::new();
        buf.extend_from_slice(&(body.len() as u32).to_be_bytes());
        buf.extend_from_slice(&crc32(&body).to_be_bytes());
        buf.extend_from_slice(&body);
        assert!(matches!(scan_frame(&buf), ScanStep::Corrupt { .. }));
    }
}
