//! Storage-engine errors.

use std::error::Error;
use std::fmt;
use std::io;

use sp_wire::WireError;

/// Errors produced by the write-ahead log and the durable backends.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(io::Error),
    /// A log segment or snapshot failed its integrity checks somewhere
    /// other than the torn tail of the last segment (which recovery
    /// silently truncates). Recovery refuses to guess at corrupt state.
    Corrupt {
        /// File name of the offending segment or snapshot.
        segment: String,
        /// Byte offset of the first bad frame.
        offset: u64,
        /// What failed: CRC mismatch, bad length, undecodable body.
        detail: String,
    },
    /// A record body failed to decode (recovery surfaces this as
    /// [`StoreError::Corrupt`]; this variant covers encode-side misuse).
    Wire(WireError),
    /// An injected file fault fired: the store simulates a process kill
    /// and refuses every further operation until reopened.
    Crashed,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "storage i/o failed: {e}"),
            Self::Corrupt { segment, offset, detail } => {
                write!(f, "corrupt log: {segment} at byte {offset}: {detail}")
            }
            Self::Wire(e) => write!(f, "record codec failed: {e}"),
            Self::Crashed => f.write_str("store crashed (injected fault); reopen to recover"),
        }
    }
}

impl Error for StoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<WireError> for StoreError {
    fn from(e: WireError) -> Self {
        Self::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let io: StoreError = io::Error::other("disk on fire").into();
        assert!(io.to_string().contains("disk on fire"));
        assert!(io.source().is_some());
        let wire: StoreError = WireError::UnexpectedEnd.into();
        assert!(wire.source().is_some());
        let corrupt = StoreError::Corrupt {
            segment: "wal-00000000000000000001.log".into(),
            offset: 42,
            detail: "crc mismatch".into(),
        };
        let shown = corrupt.to_string();
        assert!(shown.contains("byte 42"));
        assert!(shown.contains("crc mismatch"));
        assert!(corrupt.source().is_none());
        assert!(StoreError::Crashed.to_string().contains("reopen"));
    }
}
