//! Durable drop-in backends: [`DurableProvider`] and [`DurableHost`]
//! wrap the sharded in-memory stores as the read path and log every
//! mutation to a [`Wal`](crate::wal::Wal) before acknowledging it.
//!
//! Write path per mutation: under a per-store commit mutex the mutation
//! is applied to the in-memory store and its record appended to the WAL
//! (so memory order and log order agree); the fsync wait happens
//! *outside* the mutex, so concurrent writers still share one group
//! commit. A mutation is acknowledged only after its sequence number is
//! durable — a crash can lose only never-acknowledged operations.
//!
//! Recovery on open loads the newest snapshot and replays the log tail
//! through the same restore hooks the snapshot uses; records carry
//! absolute ids, so replay is idempotent.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use parking_lot::Mutex;
use sp_osn::{
    DurabilityCounters, OsnError, PostId, ProviderApi, ProviderBackend, PuzzleId, ReplApplied,
    ServiceProvider, ShardLoad, StorageApi, StorageBackend, StorageHost, Url, UserId,
};
use sp_wire::{Reader, Writer};

use crate::error::StoreError;
use crate::record::{scan_frame, Record, ScanStep};
use crate::wal::{FileFault, Recovered, Wal};

/// Configuration for a durable store directory.
#[derive(Clone, Copy, Debug)]
pub struct StoreConfig {
    /// Lock stripes for the wrapped in-memory store.
    pub shards: usize,
    /// Active-segment size that triggers rotation.
    pub segment_bytes: u64,
    /// Logged mutations between automatic snapshots.
    pub snapshot_every: u64,
    /// `true` batches fsyncs across concurrent writers (group commit);
    /// `false` fsyncs inside every append (the benchmark baseline).
    pub group_commit: bool,
    /// Optional injected file fault (crash testing).
    pub fault: Option<FileFault>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            shards: sp_osn::DEFAULT_SHARDS,
            segment_bytes: 4 << 20,
            snapshot_every: 1024,
            group_commit: true,
            fault: None,
        }
    }
}

fn transport(_: StoreError) -> OsnError {
    OsnError::Transport
}

/// Shared append/commit/snapshot plumbing for both durable stores.
struct Engine {
    wal: Wal,
    /// Serializes {apply to memory + WAL append} so log order matches
    /// memory order; never held across an fsync.
    commit_mu: Mutex<()>,
    snapshot_every: u64,
    since_snapshot: AtomicU64,
}

impl Engine {
    fn new(wal: Wal, snapshot_every: u64) -> Self {
        Self {
            wal,
            commit_mu: Mutex::new(()),
            snapshot_every: snapshot_every.max(1),
            since_snapshot: AtomicU64::new(0),
        }
    }

    /// Applies `op` to memory and logs its record under the commit
    /// mutex, then waits for durability outside it. `op` returns the
    /// in-memory result plus the record to log; an `Err` from `op`
    /// (e.g. unknown puzzle) aborts before anything is logged.
    fn logged<T>(
        &self,
        op: impl FnOnce() -> Result<(T, Record), OsnError>,
        snapshot: impl FnOnce() -> Vec<u8>,
    ) -> Result<T, OsnError> {
        let (out, seq) = {
            let _guard = self.commit_mu.lock();
            if self.wal.is_crashed() {
                return Err(OsnError::Transport);
            }
            let (out, record) = op()?;
            let seq = self.wal.append(&record).map_err(transport)?;
            (out, seq)
        };
        self.wal.commit(seq).map_err(transport)?;
        self.maybe_snapshot(1, snapshot).map_err(transport)?;
        Ok(out)
    }

    fn maybe_snapshot(
        &self,
        ops: u64,
        snapshot: impl FnOnce() -> Vec<u8>,
    ) -> Result<(), StoreError> {
        if self.since_snapshot.fetch_add(ops, Ordering::Relaxed) + ops < self.snapshot_every {
            return Ok(());
        }
        self.snapshot_now(snapshot)
    }

    /// Takes a snapshot now: quiesce writers via the commit mutex, make
    /// every logged record durable, export state, write + compact.
    fn snapshot_now(&self, snapshot: impl FnOnce() -> Vec<u8>) -> Result<(), StoreError> {
        let _guard = self.commit_mu.lock();
        if self.wal.is_crashed() {
            return Err(StoreError::Crashed);
        }
        let seq = self.wal.written_seq();
        self.wal.commit(seq)?;
        let payload = snapshot();
        self.wal.write_snapshot(seq, &payload)?;
        self.since_snapshot.store(0, Ordering::Relaxed);
        Ok(())
    }

    fn check_alive(&self) -> Result<(), OsnError> {
        if self.wal.is_crashed() {
            Err(OsnError::Transport)
        } else {
            Ok(())
        }
    }

    fn counters(&self) -> DurabilityCounters {
        DurabilityCounters {
            durable_appends: self.wal.append_count(),
            fsync_batches: self.wal.fsync_batch_count(),
            recovery_replayed_records: self.wal.replayed_count(),
            snapshot_count: self.wal.snapshot_count(),
        }
    }
}

// ---- service provider ----------------------------------------------------

/// A durable [`ServiceProvider`]: same read semantics, every mutation
/// write-ahead-logged and recovered on reopen.
pub struct DurableProvider {
    inner: ServiceProvider,
    engine: Engine,
}

impl DurableProvider {
    /// Opens (creating if needed) a provider store in `dir`, replaying
    /// snapshot + log tail into memory.
    ///
    /// # Errors
    ///
    /// I/O failures, or [`StoreError::Corrupt`] when the log fails its
    /// integrity checks anywhere but the final torn tail.
    pub fn open(dir: impl AsRef<Path>, cfg: StoreConfig) -> Result<Self, StoreError> {
        let (wal, recovered) =
            Wal::open(dir.as_ref(), cfg.segment_bytes, cfg.group_commit, cfg.fault)?;
        let inner = ServiceProvider::with_shards(cfg.shards);
        Self::restore(&inner, recovered)?;
        Ok(Self { inner, engine: Engine::new(wal, cfg.snapshot_every) })
    }

    fn restore(inner: &ServiceProvider, recovered: Recovered) -> Result<(), StoreError> {
        if let Some((_, payload)) = recovered.snapshot {
            Self::load_snapshot(inner, &payload)?;
        }
        for (_, record) in recovered.records {
            Self::apply(inner, record)?;
        }
        Ok(())
    }

    fn apply(inner: &ServiceProvider, record: Record) -> Result<(), StoreError> {
        match record {
            Record::PublishPuzzle { id, record } | Record::ReplacePuzzle { id, record } => {
                inner.restore_puzzle(id, record);
            }
            Record::DeletePuzzle { id } => {
                // Replaying a delete of an id the snapshot already dropped
                // is a no-op, not corruption.
                let _ = inner.delete_puzzle(PuzzleId::from_raw(id));
            }
            Record::LogAccess { user, puzzle, granted } => {
                inner.log_access(UserId::from_raw(user), PuzzleId::from_raw(puzzle), granted);
            }
            Record::Post { id, author, text, puzzle } => {
                inner.restore_post(id, UserId::from_raw(author), text, PuzzleId::from_raw(puzzle));
            }
            other => {
                return Err(StoreError::Corrupt {
                    segment: "provider log".to_owned(),
                    offset: 0,
                    detail: format!("blob record in a provider store: {other:?}"),
                });
            }
        }
        Ok(())
    }

    /// Snapshot payload: `next_puzzle ‖ puzzles ‖ next_post ‖ posts
    /// (feed order) ‖ audit entries (seq order)`.
    fn snapshot_payload(inner: &ServiceProvider) -> Vec<u8> {
        let puzzles = inner.export_puzzles();
        let (next_post, posts) = inner.export_posts();
        let audit = inner.audit_log();
        let mut w = Writer::new();
        w.u64(inner.next_puzzle_id());
        w.u32(puzzles.len() as u32);
        for (id, record) in &puzzles {
            w.u64(*id).bytes(record);
        }
        w.u64(next_post);
        w.u32(posts.len() as u32);
        for (id, post) in &posts {
            w.u64(*id).u64(post.author.raw()).string(&post.text).u64(post.puzzle.raw());
        }
        w.u32(audit.len() as u32);
        for entry in &audit {
            w.u64(entry.user.raw()).u64(entry.puzzle.raw()).u8(u8::from(entry.granted));
        }
        w.finish().to_vec()
    }

    fn load_snapshot(inner: &ServiceProvider, payload: &[u8]) -> Result<(), StoreError> {
        let mut r = Reader::new(payload);
        let next_puzzle = r.u64()?;
        let n_puzzles = r.u32()?;
        for _ in 0..n_puzzles {
            let id = r.u64()?;
            let record = Bytes::copy_from_slice(r.bytes()?);
            inner.restore_puzzle(id, record);
        }
        inner.bump_next_puzzle_id(next_puzzle);
        let next_post = r.u64()?;
        let n_posts = r.u32()?;
        for _ in 0..n_posts {
            let id = r.u64()?;
            let author = UserId::from_raw(r.u64()?);
            let text = r.string()?.to_owned();
            let puzzle = PuzzleId::from_raw(r.u64()?);
            inner.restore_post(id, author, text, puzzle);
        }
        let _ = next_post; // restore_post already raises the allocator
        let n_audit = r.u32()?;
        let mut entries = Vec::with_capacity(n_audit as usize);
        for _ in 0..n_audit {
            let user = UserId::from_raw(r.u64()?);
            let puzzle = PuzzleId::from_raw(r.u64()?);
            let granted = r.u8()? != 0;
            entries.push((user, puzzle, granted));
        }
        inner.log_access_batch(entries);
        r.expect_end()?;
        Ok(())
    }

    /// The wrapped in-memory provider (the read path). Mutating it
    /// directly bypasses the log — tests only.
    pub fn in_memory(&self) -> &ServiceProvider {
        &self.inner
    }

    /// The underlying log, for counters and tests.
    pub fn wal(&self) -> &Wal {
        &self.engine.wal
    }

    /// Forces a snapshot (and compaction) right now.
    ///
    /// # Errors
    ///
    /// I/O failures, or [`StoreError::Crashed`] after a fault.
    pub fn snapshot_now(&self) -> Result<(), StoreError> {
        self.engine.snapshot_now(|| Self::snapshot_payload(&self.inner))
    }

    /// Durability counters for metrics export.
    pub fn durability_counters(&self) -> DurabilityCounters {
        self.engine.counters()
    }

    /// Applies one replication batch — frames a primary exported with
    /// [`Wal::export_frames_after`] — to memory *and* the local log,
    /// then commits. Because [`Record::frame`] is deterministic and the
    /// replica's own appends assign the same sequence numbers, the
    /// replica's log stays byte-identical to the primary's; promotion
    /// is just "reopen the directory" (or keep serving in place).
    ///
    /// Frames at or below the local written watermark are duplicates
    /// (a retried batch) and are skipped. Returns `(durable watermark,
    /// records applied, puzzle ids touched)`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] on a sequence gap, a truncated or
    /// corrupt frame, or a seq misalignment between the stream and the
    /// local log; [`StoreError::Crashed`] after a fault.
    pub fn apply_repl_frames(&self, frames: &[u8]) -> Result<(u64, u64, Vec<u64>), StoreError> {
        let corrupt = |offset: usize, detail: String| StoreError::Corrupt {
            segment: "replication".to_owned(),
            offset: offset as u64,
            detail,
        };
        let (last, applied, touched) = {
            let _guard = self.engine.commit_mu.lock();
            if self.engine.wal.is_crashed() {
                return Err(StoreError::Crashed);
            }
            let mut last = self.engine.wal.written_seq();
            let mut applied = 0u64;
            let mut touched = Vec::new();
            let mut off = 0usize;
            while off < frames.len() {
                match scan_frame(&frames[off..]) {
                    ScanStep::Complete { seq, record, consumed } => {
                        if seq <= last {
                            off += consumed;
                            continue;
                        }
                        if seq != last + 1 {
                            return Err(corrupt(
                                off,
                                format!("replication gap: want seq {}, got {seq}", last + 1),
                            ));
                        }
                        match &record {
                            Record::PublishPuzzle { id, .. }
                            | Record::ReplacePuzzle { id, .. }
                            | Record::DeletePuzzle { id } => touched.push(*id),
                            _ => {}
                        }
                        Self::apply(&self.inner, record.clone())?;
                        let got = self.engine.wal.append(&record)?;
                        if got != seq {
                            return Err(corrupt(
                                off,
                                format!("local log at seq {got} disagrees with stream seq {seq}"),
                            ));
                        }
                        last = seq;
                        applied += 1;
                        off += consumed;
                    }
                    ScanStep::Incomplete => {
                        return Err(corrupt(off, "truncated replication frame".to_owned()));
                    }
                    ScanStep::Corrupt { detail } => return Err(corrupt(off, detail)),
                }
            }
            (last, applied, touched)
        };
        if applied > 0 {
            self.engine.wal.commit(last)?;
        }
        Ok((self.engine.wal.durable_seq(), applied, touched))
    }
}

impl ProviderApi for DurableProvider {
    fn publish_puzzle(&self, record: Bytes) -> Result<PuzzleId, OsnError> {
        self.engine.logged(
            || {
                let id = self.inner.publish_puzzle(record.clone());
                Ok((id, Record::PublishPuzzle { id: id.raw(), record }))
            },
            || Self::snapshot_payload(&self.inner),
        )
    }

    fn fetch_puzzle(&self, id: PuzzleId) -> Result<Bytes, OsnError> {
        self.engine.check_alive()?;
        self.inner.fetch_puzzle(id)
    }

    fn replace_puzzle(&self, id: PuzzleId, record: Bytes) -> Result<(), OsnError> {
        self.engine.logged(
            || {
                self.inner.replace_puzzle(id, record.clone())?;
                Ok(((), Record::ReplacePuzzle { id: id.raw(), record }))
            },
            || Self::snapshot_payload(&self.inner),
        )
    }

    fn delete_puzzle(&self, id: PuzzleId) -> Result<(), OsnError> {
        self.engine.logged(
            || {
                self.inner.delete_puzzle(id)?;
                Ok(((), Record::DeletePuzzle { id: id.raw() }))
            },
            || Self::snapshot_payload(&self.inner),
        )
    }

    fn log_access(&self, user: UserId, puzzle: PuzzleId, granted: bool) -> Result<(), OsnError> {
        self.engine.logged(
            || {
                self.inner.log_access(user, puzzle, granted);
                Ok(((), Record::LogAccess { user: user.raw(), puzzle: puzzle.raw(), granted }))
            },
            || Self::snapshot_payload(&self.inner),
        )
    }

    fn post(&self, author: UserId, text: &str, puzzle: PuzzleId) -> Result<PostId, OsnError> {
        self.engine.logged(
            || {
                let id = self.inner.post(author, text, puzzle);
                Ok((
                    id,
                    Record::Post {
                        id: id.raw(),
                        author: author.raw(),
                        text: text.to_owned(),
                        puzzle: puzzle.raw(),
                    },
                ))
            },
            || Self::snapshot_payload(&self.inner),
        )
    }
}

impl ProviderBackend for DurableProvider {
    fn log_access_batch(&self, entries: Vec<(UserId, PuzzleId, bool)>) -> Result<(), OsnError> {
        if entries.is_empty() {
            return self.engine.check_alive();
        }
        let n = entries.len() as u64;
        let last_seq = {
            let _guard = self.engine.commit_mu.lock();
            if self.engine.wal.is_crashed() {
                return Err(OsnError::Transport);
            }
            self.inner.log_access_batch(entries.iter().copied());
            let mut last = 0;
            for (user, puzzle, granted) in &entries {
                last = self
                    .engine
                    .wal
                    .append(&Record::LogAccess {
                        user: user.raw(),
                        puzzle: puzzle.raw(),
                        granted: *granted,
                    })
                    .map_err(transport)?;
            }
            last
        };
        self.engine.wal.commit(last_seq).map_err(transport)?;
        self.engine.maybe_snapshot(n, || Self::snapshot_payload(&self.inner)).map_err(transport)?;
        Ok(())
    }

    fn shard_loads(&self) -> Vec<ShardLoad> {
        self.inner.shard_loads()
    }

    fn durability(&self) -> Option<DurabilityCounters> {
        Some(self.engine.counters())
    }

    fn publish_puzzle_at(&self, id: PuzzleId, record: Bytes) -> Result<(), OsnError> {
        self.engine.logged(
            || {
                self.inner.restore_puzzle(id.raw(), record.clone());
                Ok(((), Record::PublishPuzzle { id: id.raw(), record }))
            },
            || Self::snapshot_payload(&self.inner),
        )
    }

    fn repl_export(&self, after_seq: u64) -> Result<(u64, Vec<u8>), String> {
        self.engine.wal.export_frames_after(after_seq).map_err(|e| e.to_string())
    }

    fn repl_apply(&self, frames: &[u8]) -> Result<ReplApplied, String> {
        self.apply_repl_frames(frames)
            .map(|(watermark, applied, puzzles_touched)| ReplApplied {
                watermark,
                applied,
                puzzles_touched,
            })
            .map_err(|e| e.to_string())
    }

    fn repl_watermark(&self) -> u64 {
        self.engine.wal.durable_seq()
    }
}

// ---- storage host --------------------------------------------------------

/// A durable [`StorageHost`]: same read semantics, every blob mutation
/// write-ahead-logged and recovered on reopen.
pub struct DurableHost {
    inner: StorageHost,
    engine: Engine,
}

impl DurableHost {
    /// Opens (creating if needed) a blob store in `dir`, replaying
    /// snapshot + log tail into memory.
    ///
    /// # Errors
    ///
    /// Same surface as [`DurableProvider::open`].
    pub fn open(dir: impl AsRef<Path>, cfg: StoreConfig) -> Result<Self, StoreError> {
        let (wal, recovered) =
            Wal::open(dir.as_ref(), cfg.segment_bytes, cfg.group_commit, cfg.fault)?;
        let inner = StorageHost::with_shards(cfg.shards);
        if let Some((_, payload)) = recovered.snapshot {
            Self::load_snapshot(&inner, &payload)?;
        }
        for (_, record) in recovered.records {
            Self::apply(&inner, record)?;
        }
        Ok(Self { inner, engine: Engine::new(wal, cfg.snapshot_every) })
    }

    fn apply(inner: &StorageHost, record: Record) -> Result<(), StoreError> {
        match record {
            Record::PutBlob { url, data } | Record::FillBlob { url, data } => {
                inner.restore_blob(&url, data);
            }
            Record::DeleteBlob { url } => {
                let _ = inner.delete(&Url::from(url));
            }
            other => {
                return Err(StoreError::Corrupt {
                    segment: "blob log".to_owned(),
                    offset: 0,
                    detail: format!("provider record in a blob store: {other:?}"),
                });
            }
        }
        Ok(())
    }

    /// Snapshot payload: `next_id ‖ blobs (sorted by URL)`.
    fn snapshot_payload(inner: &StorageHost) -> Vec<u8> {
        let blobs = inner.export_blobs();
        let mut w = Writer::new();
        w.u64(inner.next_object_id());
        w.u32(blobs.len() as u32);
        for (url, data) in &blobs {
            w.string(url).bytes(data);
        }
        w.finish().to_vec()
    }

    fn load_snapshot(inner: &StorageHost, payload: &[u8]) -> Result<(), StoreError> {
        let mut r = Reader::new(payload);
        let next_id = r.u64()?;
        let n = r.u32()?;
        for _ in 0..n {
            let url = r.string()?.to_owned();
            let data = Bytes::copy_from_slice(r.bytes()?);
            inner.restore_blob(&url, data);
        }
        inner.bump_next_object_id(next_id);
        r.expect_end()?;
        Ok(())
    }

    /// The wrapped in-memory host (the read path). Tests only.
    pub fn in_memory(&self) -> &StorageHost {
        &self.inner
    }

    /// The underlying log, for counters and tests.
    pub fn wal(&self) -> &Wal {
        &self.engine.wal
    }

    /// Forces a snapshot (and compaction) right now.
    ///
    /// # Errors
    ///
    /// I/O failures, or [`StoreError::Crashed`] after a fault.
    pub fn snapshot_now(&self) -> Result<(), StoreError> {
        self.engine.snapshot_now(|| Self::snapshot_payload(&self.inner))
    }

    /// Durability counters for metrics export.
    pub fn durability_counters(&self) -> DurabilityCounters {
        self.engine.counters()
    }
}

impl StorageApi for DurableHost {
    fn reserve(&self) -> Result<Url, OsnError> {
        self.engine.logged(
            || {
                let url = self.inner.reserve();
                Ok((
                    url.clone(),
                    Record::PutBlob { url: url.as_str().to_owned(), data: Bytes::new() },
                ))
            },
            || Self::snapshot_payload(&self.inner),
        )
    }

    fn put(&self, data: Bytes) -> Result<Url, OsnError> {
        self.engine.logged(
            || {
                let url = self.inner.put(data.clone());
                Ok((url.clone(), Record::PutBlob { url: url.as_str().to_owned(), data }))
            },
            || Self::snapshot_payload(&self.inner),
        )
    }

    fn fill(&self, url: &Url, data: Bytes) -> Result<(), OsnError> {
        self.engine.logged(
            || {
                self.inner.fill(url, data.clone())?;
                Ok(((), Record::FillBlob { url: url.as_str().to_owned(), data }))
            },
            || Self::snapshot_payload(&self.inner),
        )
    }

    fn get(&self, url: &Url) -> Result<Bytes, OsnError> {
        self.engine.check_alive()?;
        self.inner.get(url)
    }

    fn delete(&self, url: &Url) -> Result<(), OsnError> {
        self.engine.logged(
            || {
                self.inner.delete(url)?;
                Ok(((), Record::DeleteBlob { url: url.as_str().to_owned() }))
            },
            || Self::snapshot_payload(&self.inner),
        )
    }
}

impl StorageBackend for DurableHost {
    fn shard_loads(&self) -> Vec<ShardLoad> {
        self.inner.shard_loads()
    }

    fn durability(&self) -> Option<DurabilityCounters> {
        Some(self.engine.counters())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn fresh(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sp-store-durable-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn tiny() -> StoreConfig {
        StoreConfig { segment_bytes: 256, snapshot_every: 7, ..StoreConfig::default() }
    }

    #[test]
    fn provider_state_survives_reopen() {
        let dir = fresh("provider");
        let (id, post_id);
        {
            let sp = DurableProvider::open(&dir, tiny()).unwrap();
            id = sp.publish_puzzle(Bytes::from_static(b"record-v1")).unwrap();
            sp.replace_puzzle(id, Bytes::from_static(b"record-v2")).unwrap();
            let gone = sp.publish_puzzle(Bytes::from_static(b"ephemeral")).unwrap();
            sp.delete_puzzle(gone).unwrap();
            sp.log_access(UserId::from_raw(3), id, true).unwrap();
            sp.log_access_batch(vec![
                (UserId::from_raw(4), id, false),
                (UserId::from_raw(5), id, true),
            ])
            .unwrap();
            post_id = sp.post(UserId::from_raw(3), "solve it", id).unwrap();
            let c = sp.durability_counters();
            assert!(c.durable_appends >= 7);
            assert!(c.fsync_batches >= 1);
        }
        let sp = DurableProvider::open(&dir, tiny()).unwrap();
        assert_eq!(sp.fetch_puzzle(id).unwrap(), Bytes::from_static(b"record-v2"));
        let audit = sp.in_memory().audit_log();
        assert_eq!(audit.len(), 3);
        assert_eq!(audit[0].user, UserId::from_raw(3));
        assert!(!audit[1].granted);
        let post = sp.in_memory().read_post(post_id).unwrap();
        assert_eq!(post.text, "solve it");
        // Replay bumped the id allocators: a fresh publish must not
        // collide with the replayed ones.
        let fresh_id = sp.publish_puzzle(Bytes::new()).unwrap();
        assert!(fresh_id.raw() > id.raw());
        // snapshot_every=7 fired mid-run, so recovery is snapshot + a
        // short log tail, not the whole history.
        assert!(sp.durability().unwrap().recovery_replayed_records >= 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshots_kick_in_and_recovery_still_agrees() {
        let dir = fresh("snapshot");
        {
            let sp = DurableProvider::open(&dir, tiny()).unwrap();
            for i in 0..40u64 {
                let id = sp.publish_puzzle(Bytes::from(vec![i as u8])).unwrap();
                sp.log_access(UserId::from_raw(i), id, i % 3 == 0).unwrap();
            }
            assert!(sp.durability_counters().snapshot_count >= 1, "snapshot_every=7 must fire");
        }
        let sp = DurableProvider::open(&dir, tiny()).unwrap();
        assert_eq!(sp.in_memory().puzzle_count(), 40);
        assert_eq!(sp.in_memory().audit_log().len(), 40);
        // Snapshot + tail replay, not the whole 80-record log.
        assert!(sp.durability_counters().recovery_replayed_records < 80);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn host_state_survives_reopen() {
        let dir = fresh("host");
        let (url, reserved);
        {
            let dh = DurableHost::open(&dir, tiny()).unwrap();
            url = dh.put(Bytes::from_static(b"ciphertext")).unwrap();
            reserved = dh.reserve().unwrap();
            dh.fill(&reserved, Bytes::from_static(b"late")).unwrap();
            let gone = dh.put(Bytes::from_static(b"bye")).unwrap();
            dh.delete(&gone).unwrap();
        }
        let dh = DurableHost::open(&dir, tiny()).unwrap();
        assert_eq!(dh.get(&url).unwrap(), Bytes::from_static(b"ciphertext"));
        assert_eq!(dh.get(&reserved).unwrap(), Bytes::from_static(b"late"));
        assert_eq!(dh.in_memory().len(), 2);
        let fresh_url = dh.put(Bytes::new()).unwrap();
        assert_ne!(fresh_url, url);
        assert_ne!(fresh_url, reserved);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_ids_do_not_reach_the_log() {
        let dir = fresh("errors");
        let sp = DurableProvider::open(&dir, tiny()).unwrap();
        let ghost = PuzzleId::from_raw(999);
        assert_eq!(sp.replace_puzzle(ghost, Bytes::new()).unwrap_err(), OsnError::UnknownPuzzle);
        assert_eq!(sp.delete_puzzle(ghost).unwrap_err(), OsnError::UnknownPuzzle);
        assert_eq!(sp.durability_counters().durable_appends, 0, "failed ops must not log");
        let dh = DurableHost::open(dir.join("dh"), tiny()).unwrap();
        let ghost_url = Url::from("https://dh.example/objects/404");
        assert_eq!(dh.fill(&ghost_url, Bytes::new()).unwrap_err(), OsnError::UnknownUrl);
        assert_eq!(dh.delete(&ghost_url).unwrap_err(), OsnError::UnknownUrl);
        assert_eq!(dh.durability_counters().durable_appends, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crashed_store_rejects_everything_until_reopened() {
        let dir = fresh("crashed");
        {
            let cfg = StoreConfig { fault: Some(FileFault::TornWrite { append: 2 }), ..tiny() };
            let sp = DurableProvider::open(&dir, cfg).unwrap();
            let id = sp.publish_puzzle(Bytes::from_static(b"keep")).unwrap();
            assert_eq!(
                sp.publish_puzzle(Bytes::from_static(b"torn")).unwrap_err(),
                OsnError::Transport
            );
            // Reads fail too: the process is "dead".
            assert_eq!(sp.fetch_puzzle(id).unwrap_err(), OsnError::Transport);
            assert_eq!(
                sp.log_access(UserId::from_raw(1), id, true).unwrap_err(),
                OsnError::Transport
            );
        }
        let sp = DurableProvider::open(&dir, tiny()).unwrap();
        assert_eq!(sp.in_memory().puzzle_count(), 1, "acked op survives, torn op lost");
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Replication keeps log retention: snapshots compact segments away,
    /// so replicated primaries use an effectively unbounded
    /// `snapshot_every` (full-log replication; see docs/CLUSTER.md).
    fn repl_cfg() -> StoreConfig {
        StoreConfig { snapshot_every: u64::MAX, ..StoreConfig::default() }
    }

    #[test]
    fn replication_stream_rebuilds_an_identical_replica() {
        let dir_p = fresh("repl-primary");
        let dir_r = fresh("repl-replica");
        let primary = DurableProvider::open(&dir_p, repl_cfg()).unwrap();
        let replica = DurableProvider::open(&dir_r, repl_cfg()).unwrap();

        let a = primary.publish_puzzle(Bytes::from_static(b"alpha")).unwrap();
        let b = primary.publish_puzzle(Bytes::from_static(b"beta")).unwrap();
        primary.replace_puzzle(a, Bytes::from_static(b"alpha-v2")).unwrap();
        primary.log_access(UserId::from_raw(7), a, true).unwrap();
        primary.delete_puzzle(b).unwrap();
        primary
            .publish_puzzle_at(PuzzleId::from_raw(0xabcd), Bytes::from_static(b"keyed"))
            .unwrap();

        // Ship everything; the replica acks the primary's watermark.
        let (watermark, frames) = primary.repl_export(replica.repl_watermark()).unwrap();
        let applied = replica.repl_apply(&frames).unwrap();
        assert_eq!(applied.watermark, watermark);
        assert_eq!(applied.applied, 6);
        assert!(applied.puzzles_touched.contains(&a.raw()));
        assert!(applied.puzzles_touched.contains(&0xabcd));
        assert_eq!(replica.repl_watermark(), primary.repl_watermark());

        // Same state...
        assert_eq!(replica.fetch_puzzle(a).unwrap(), Bytes::from_static(b"alpha-v2"));
        assert_eq!(replica.fetch_puzzle(b).unwrap_err(), OsnError::UnknownPuzzle);
        assert_eq!(
            replica.fetch_puzzle(PuzzleId::from_raw(0xabcd)).unwrap(),
            Bytes::from_static(b"keyed")
        );
        assert_eq!(replica.in_memory().audit_log().len(), 1);
        // ...and a byte-identical log.
        assert_eq!(primary.repl_export(0).unwrap(), replica.repl_export(0).unwrap());

        // Re-shipping the same batch is a duplicate-skipping no-op.
        let again = replica.repl_apply(&frames).unwrap();
        assert_eq!((again.watermark, again.applied), (watermark, 0));
        assert!(again.puzzles_touched.is_empty());

        // Incremental delta: only the suffix ships and applies.
        primary.log_access(UserId::from_raw(8), a, false).unwrap();
        let (w2, delta) = primary.repl_export(replica.repl_watermark()).unwrap();
        assert!(delta.len() < frames.len());
        let inc = replica.repl_apply(&delta).unwrap();
        assert_eq!((inc.watermark, inc.applied), (w2, 1));
        assert_eq!(replica.in_memory().audit_log().len(), 2);
        fs::remove_dir_all(&dir_p).unwrap();
        fs::remove_dir_all(&dir_r).unwrap();
    }

    #[test]
    fn promotion_reopens_to_the_acked_watermark() {
        let dir_p = fresh("promote-primary");
        let dir_r = fresh("promote-replica");
        let acked;
        {
            let primary = DurableProvider::open(&dir_p, repl_cfg()).unwrap();
            let replica = DurableProvider::open(&dir_r, repl_cfg()).unwrap();
            for i in 0..10u64 {
                primary
                    .publish_puzzle_at(PuzzleId::from_raw(1000 + i), Bytes::from(vec![i as u8]))
                    .unwrap();
            }
            let (_, frames) = primary.repl_export(0).unwrap();
            acked = replica.repl_apply(&frames).unwrap().watermark;
            assert_eq!(acked, 10);
        }
        // Kill both; promote the replica by reopening its directory. The
        // recovery replays exactly the acked records.
        let promoted = DurableProvider::open(&dir_r, repl_cfg()).unwrap();
        assert_eq!(promoted.durability_counters().recovery_replayed_records, acked);
        assert_eq!(promoted.repl_watermark(), acked);
        for i in 0..10u64 {
            assert_eq!(
                promoted.fetch_puzzle(PuzzleId::from_raw(1000 + i)).unwrap(),
                Bytes::from(vec![i as u8])
            );
        }
        // The promoted node keeps writing where the primary left off.
        promoted.publish_puzzle_at(PuzzleId::from_raw(2000), Bytes::from_static(b"new")).unwrap();
        assert_eq!(promoted.repl_watermark(), acked + 1);
        fs::remove_dir_all(&dir_p).unwrap();
        fs::remove_dir_all(&dir_r).unwrap();
    }

    #[test]
    fn repl_apply_rejects_gaps_and_garbage() {
        let dir_p = fresh("repl-gap-primary");
        let dir_r = fresh("repl-gap-replica");
        let primary = DurableProvider::open(&dir_p, repl_cfg()).unwrap();
        let replica = DurableProvider::open(&dir_r, repl_cfg()).unwrap();
        for i in 0..4u64 {
            primary.publish_puzzle(Bytes::from(vec![i as u8])).unwrap();
        }
        // A stream starting past the replica's watermark is a gap.
        let (_, suffix) = primary.repl_export(2).unwrap();
        let err = replica.repl_apply(&suffix).unwrap_err();
        assert!(err.contains("gap"), "want gap error, got {err}");
        assert_eq!(replica.repl_watermark(), 0, "a rejected batch applies nothing");
        // Garbage is rejected, not applied.
        assert!(replica.repl_apply(&[1, 2, 3]).is_err());
        // The honest stream still works afterwards.
        let (w, frames) = primary.repl_export(0).unwrap();
        assert_eq!(replica.repl_apply(&frames).unwrap().watermark, w);
        fs::remove_dir_all(&dir_p).unwrap();
        fs::remove_dir_all(&dir_r).unwrap();
    }

    #[test]
    fn concurrent_writers_agree_with_recovery() {
        let dir = fresh("concurrent");
        {
            let sp = std::sync::Arc::new(DurableProvider::open(&dir, tiny()).unwrap());
            crossbeam::thread::scope(|s| {
                for t in 0..4u64 {
                    let sp = sp.clone();
                    s.spawn(move |_| {
                        for i in 0..25u64 {
                            let id =
                                sp.publish_puzzle(Bytes::from(vec![t as u8, i as u8])).unwrap();
                            sp.log_access(UserId::from_raw(t), id, true).unwrap();
                        }
                    });
                }
            })
            .unwrap();
            assert_eq!(sp.in_memory().puzzle_count(), 100);
        }
        let sp = DurableProvider::open(&dir, tiny()).unwrap();
        assert_eq!(sp.in_memory().puzzle_count(), 100);
        assert_eq!(sp.in_memory().audit_log().len(), 100);
        fs::remove_dir_all(&dir).unwrap();
    }
}
