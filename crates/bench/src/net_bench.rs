//! End-to-end RPC throughput over localhost, exported as `BENCH_net.json`.
//!
//! Boots a real [`sp_net::SpService`] daemon on an ephemeral port and
//! drives the three hottest serving-path RPCs — `Verify`,
//! `DisplayPuzzle`, and `AnswerPuzzleBatch` — through two transports:
//! the sequential v1 client (one request in flight: the pre-pipelining
//! baseline) and the pipelined v2 client at a sweep of depths. The
//! workload follows the paper's §VIII parameters (50-character
//! questions, 20-character answers, threshold `k = 1`).
//!
//! The interesting comparison is `verify` at depth 16 against the v1
//! baseline: with the daemon's compute pool at 4 threads, pipelining
//! must recover both the per-request round-trip latency (head-of-line
//! blocking) and the idle compute (one request at a time can use at
//! most one worker).
//!
//! Raw loopback has a ~20µs round trip — three orders of magnitude
//! below the network delays the paper measures (§VIII plots tens of
//! milliseconds of network delay per operation) — so both transports
//! run through an in-process **delay link**: a byte-level TCP proxy
//! that forwards traffic verbatim but ships every chunk
//! [`NetBenchConfig::link_delay`] later. That is pure added latency
//! (any amount of data may be in flight), exactly what a WAN adds and
//! exactly what a serialized request/response client cannot hide.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::SeedableRng;
use social_puzzles_core::construction1::{Construction1, PuzzleResponse};
use sp_net::{ClientConfig, Daemon, DaemonConfig, PipelineConfig, SpClient, SpService};
use sp_osn::{ProviderApi, PuzzleId, ServiceProvider, Url, UserId};

use crate::workload::{paper_context, PAPER_K};

/// Schema tag written into (and required from) `BENCH_net.json`.
pub const NET_BENCH_SCHEMA: &str = "sp-bench/net/v1";

/// The RPCs every report must cover.
pub const NET_BENCH_OPS: [&str; 3] = ["verify", "display_puzzle", "answer_puzzle_batch"];

/// Sweep and sampling knobs for the serving-path comparison.
#[derive(Clone, Debug)]
pub struct NetBenchConfig {
    /// Pipeline depths to sweep on the v2 transport.
    pub depths: Vec<usize>,
    /// Daemon compute-pool threads (the acceptance numbers use 4).
    pub compute_threads: usize,
    /// Answer-sets per `AnswerPuzzleBatch` frame.
    pub batch: usize,
    /// Context size N for the benchmark puzzle.
    pub n: usize,
    /// One-way latency the delay link adds to every chunk (so the round
    /// trip costs twice this). Zero disables the link entirely.
    pub link_delay: Duration,
    /// Minimum wall time per measurement.
    pub min_time: Duration,
    /// Minimum completed requests per measurement.
    pub min_ops: u64,
    /// Whether this is the reduced CI sweep.
    pub quick: bool,
}

impl Default for NetBenchConfig {
    fn default() -> Self {
        Self {
            depths: vec![1, 4, 16, 64],
            compute_threads: 4,
            batch: 8,
            n: 5,
            link_delay: Duration::from_millis(1),
            min_time: Duration::from_millis(400),
            min_ops: 50,
            quick: false,
        }
    }
}

impl NetBenchConfig {
    /// Reduced sweep for CI smoke runs: two depths, short sampling
    /// windows. Numbers are noisy but the schema and the direction of
    /// the depth-16 speedup are still meaningful.
    pub fn quick() -> Self {
        Self {
            depths: vec![1, 16],
            min_time: Duration::from_millis(60),
            min_ops: 10,
            quick: true,
            ..Self::default()
        }
    }
}

/// One (operation, transport, depth) measurement.
#[derive(Clone, Debug)]
pub struct NetBenchEntry {
    /// RPC name (one of [`NET_BENCH_OPS`]).
    pub op: &'static str,
    /// `"v1"` (sequential baseline) or `"v2"` (pipelined).
    pub mode: &'static str,
    /// Requests in flight (always 1 for `"v1"`).
    pub depth: usize,
    /// Completed requests per second, over one socket.
    pub ops_per_s: f64,
}

/// A full sweep, ready to serialize.
#[derive(Clone, Debug)]
pub struct NetBenchReport {
    /// Whether the reduced CI sweep produced this report.
    pub quick: bool,
    /// Daemon compute-pool threads used.
    pub compute_threads: usize,
    /// One-way delay-link latency in milliseconds (0 = raw loopback).
    pub link_delay_ms: f64,
    /// All measurements, grouped by operation then depth.
    pub entries: Vec<NetBenchEntry>,
}

impl NetBenchReport {
    /// The entry for one (op, mode, depth), if measured.
    pub fn entry(&self, op: &str, mode: &str, depth: usize) -> Option<&NetBenchEntry> {
        self.entries.iter().find(|e| e.op == op && e.mode == mode && e.depth == depth)
    }

    /// Throughput of `entry` relative to the op's depth-1 v1 baseline.
    pub fn speedup_vs_v1(&self, entry: &NetBenchEntry) -> f64 {
        match self.entry(entry.op, "v1", 1) {
            Some(base) if base.ops_per_s > 0.0 => entry.ops_per_s / base.ops_per_s,
            _ => 0.0,
        }
    }
}

/// A byte-level TCP proxy that adds pure latency: every chunk read is
/// written out [`DelayLink::delay`] later, with any amount of data in
/// flight. Framing-agnostic, so v1 and v2 traffic pay the same toll.
struct DelayLink {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
}

impl DelayLink {
    fn spawn(upstream: SocketAddr, delay: Duration) -> Self {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind delay link");
        let addr = listener.local_addr().expect("local addr");
        listener.set_nonblocking(true).expect("nonblocking");
        let stop = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((client, _)) => link_connection(client, upstream, delay),
                        Err(_) => std::thread::sleep(Duration::from_millis(5)),
                    }
                }
            })
        };
        Self { addr, stop, acceptor: Some(acceptor) }
    }
}

impl Drop for DelayLink {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.acceptor.take() {
            let _ = t.join();
        }
    }
}

/// Wires one proxied connection: each direction is a reader thread
/// stamping chunks with their due time and a writer thread releasing
/// them on schedule. Threads exit on EOF/error and die with the process
/// otherwise; the bench closes every socket when it finishes.
fn link_connection(client: TcpStream, upstream: SocketAddr, delay: Duration) {
    let Ok(server) = TcpStream::connect(upstream) else { return };
    let _ = client.set_nodelay(true);
    let _ = server.set_nodelay(true);
    for (from, to) in
        [(client.try_clone(), server.try_clone()), (server.try_clone(), client.try_clone())]
    {
        let (Ok(mut from), Ok(mut to)) = (from, to) else { return };
        let (tx, rx) = mpsc::channel::<(Instant, Vec<u8>)>();
        std::thread::spawn(move || {
            let mut buf = [0u8; 16 * 1024];
            loop {
                match from.read(&mut buf) {
                    Ok(0) | Err(_) => return, // dropping tx ends the writer
                    Ok(n) => {
                        if tx.send((Instant::now() + delay, buf[..n].to_vec())).is_err() {
                            return;
                        }
                    }
                }
            }
        });
        std::thread::spawn(move || {
            while let Ok((due, chunk)) = rx.recv() {
                let now = Instant::now();
                if due > now {
                    std::thread::sleep(due - now);
                }
                if to.write_all(&chunk).and_then(|()| to.flush()).is_err() {
                    return;
                }
            }
            // Reader saw EOF: propagate the close downstream.
            let _ = to.shutdown(Shutdown::Both);
        });
    }
}

/// Everything a measurement loop needs: a live daemon, the delay link
/// in front of it, and a valid puzzle + response.
struct Rig {
    daemon: Daemon,
    link: Option<DelayLink>,
    puzzle: PuzzleId,
    response: PuzzleResponse,
}

impl Rig {
    /// The address clients should dial: the delay link if one is up.
    fn addr(&self) -> SocketAddr {
        self.link.as_ref().map_or_else(|| self.daemon.addr(), |l| l.addr)
    }

    fn boot(cfg: &NetBenchConfig) -> Self {
        let service = SpService::new(ServiceProvider::new(), Construction1::new());
        let max_depth = cfg.depths.iter().copied().max().unwrap_or(1);
        let daemon = Daemon::spawn(
            "127.0.0.1:0",
            Arc::new(service),
            DaemonConfig {
                workers: cfg.compute_threads.max(1),
                // Headroom over the deepest pipeline so overload retries
                // don't pollute the measurement.
                queue_depth: (max_depth * 2).max(64),
                ..DaemonConfig::default()
            },
        )
        .expect("bind ephemeral port");

        // Publish one paper-shaped puzzle and solve it once; every
        // measured Verify replays this known-good response.
        let c1 = Construction1::new();
        let mut rng = StdRng::seed_from_u64(2014);
        let ctx = paper_context(cfg.n, &mut rng);
        let upload = c1
            .upload_to(b"bench object", &ctx, PAPER_K, Url::from("dh://bench/0"), None, &mut rng)
            .expect("upload");
        // Setup talks straight to the daemon — only measurements pay
        // the link toll.
        let setup = SpClient::connect(daemon.addr(), client_cfg());
        let puzzle = setup.publish_puzzle(Bytes::from(upload.puzzle.to_bytes())).expect("publish");
        let displayed = setup.display_puzzle(puzzle).expect("display");
        let answers = displayed.answer(|q| ctx.answer_for(q).map(str::to_owned));
        let response = c1.answer_puzzle(&displayed, &answers);

        let link =
            (!cfg.link_delay.is_zero()).then(|| DelayLink::spawn(daemon.addr(), cfg.link_delay));
        Self { daemon, link, puzzle, response }
    }
}

fn client_cfg() -> ClientConfig {
    ClientConfig {
        // Generous deadline: a depth-64 pipeline on a loaded CI host can
        // queue a request well past the 10 s default.
        read_timeout: Duration::from_secs(60),
        backoff: Duration::from_millis(5),
        ..ClientConfig::default()
    }
}

/// Runs `op` from `threads` concurrent workers sharing one client until
/// the time and count floors are met; returns completed requests/s.
fn throughput(threads: usize, min_time: Duration, min_ops: u64, op: impl Fn(usize) + Sync) -> f64 {
    let done = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let done = &done;
            let op = &op;
            s.spawn(move || loop {
                op(t);
                let n = done.fetch_add(1, Ordering::Relaxed) + 1;
                if start.elapsed() >= min_time && n >= min_ops {
                    break;
                }
            });
        }
    });
    done.load(Ordering::Relaxed) as f64 / start.elapsed().as_secs_f64()
}

/// Runs the full serving-path sweep against a freshly booted daemon.
pub fn run(cfg: &NetBenchConfig) -> NetBenchReport {
    let rig = Rig::boot(cfg);
    let batch: Vec<PuzzleResponse> = vec![rig.response.clone(); cfg.batch.max(1)];
    let mut entries = Vec::new();

    // Baseline: the sequential v1 client, one request in flight.
    {
        let client = SpClient::connect(rig.addr(), client_cfg());
        entries.extend(measure_ops(cfg, &rig, &client, &batch, "v1", 1));
    }
    // Pipelined v2 at each depth, `depth` requests in flight per socket.
    for &depth in &cfg.depths {
        let client =
            SpClient::connect_pipelined(rig.addr(), PipelineConfig { depth, client: client_cfg() });
        entries.extend(measure_ops(cfg, &rig, &client, &batch, "v2", depth));
    }

    let link_delay_ms = cfg.link_delay.as_secs_f64() * 1e3;
    drop(rig.link);
    rig.daemon.shutdown();
    NetBenchReport {
        quick: cfg.quick,
        compute_threads: cfg.compute_threads.max(1),
        link_delay_ms,
        entries,
    }
}

/// Measures all three RPCs through one client at one concurrency level.
fn measure_ops(
    cfg: &NetBenchConfig,
    rig: &Rig,
    client: &SpClient,
    batch: &[PuzzleResponse],
    mode: &'static str,
    depth: usize,
) -> Vec<NetBenchEntry> {
    let threads = depth.max(1);
    let verify = throughput(threads, cfg.min_time, cfg.min_ops, |t| {
        client.verify(UserId::from_raw(t as u64), rig.puzzle, &rig.response).expect("verify");
    });
    let display = throughput(threads, cfg.min_time, cfg.min_ops, |_| {
        client.display_puzzle(rig.puzzle).expect("display");
    });
    let answer_batch = throughput(threads, cfg.min_time, cfg.min_ops, |t| {
        client
            .answer_puzzle_batch(UserId::from_raw(t as u64), rig.puzzle, batch)
            .expect("answer batch");
    });
    vec![
        NetBenchEntry { op: "verify", mode, depth, ops_per_s: verify },
        NetBenchEntry { op: "display_puzzle", mode, depth, ops_per_s: display },
        NetBenchEntry { op: "answer_puzzle_batch", mode, depth, ops_per_s: answer_batch },
    ]
}

/// Serializes a report to the `BENCH_net.json` document.
pub fn to_json(report: &NetBenchReport) -> String {
    fn num(v: f64) -> String {
        if v.is_finite() {
            format!("{v:.3}")
        } else {
            "0.000".to_owned()
        }
    }
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{NET_BENCH_SCHEMA}\",\n"));
    out.push_str(&format!("  \"quick\": {},\n", report.quick));
    out.push_str(&format!("  \"compute_threads\": {},\n", report.compute_threads));
    out.push_str(&format!("  \"link_delay_ms\": {},\n", num(report.link_delay_ms)));
    out.push_str("  \"entries\": [\n");
    for (i, e) in report.entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"op\": \"{}\", \"mode\": \"{}\", \"depth\": {}, \"ops_per_s\": {}, \"speedup_vs_v1\": {}}}{}\n",
            e.op,
            e.mode,
            e.depth,
            num(e.ops_per_s),
            num(report.speedup_vs_v1(e)),
            if i + 1 == report.entries.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders the report as the human-readable table the `figures` binary
/// prints alongside the JSON.
pub fn render(report: &NetBenchReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "serving path over a {:.1}ms-each-way link, {} daemon compute threads: requests/s per \
         socket\n",
        report.link_delay_ms, report.compute_threads
    ));
    out.push_str(&format!(
        "{:<20} {:>4} {:>6} {:>12} {:>12}\n",
        "op", "mode", "depth", "req/s", "vs v1"
    ));
    for e in &report.entries {
        out.push_str(&format!(
            "{:<20} {:>4} {:>6} {:>12.1} {:>11.2}x\n",
            e.op,
            e.mode,
            e.depth,
            e.ops_per_s,
            report.speedup_vs_v1(e)
        ));
    }
    out
}

/// Validates a `BENCH_net.json` document: syntactically well-formed
/// JSON, the right schema tag, both transports present, and at least one
/// entry per RPC with all fields present. Returns a description of the
/// first problem.
pub fn validate_json(doc: &str) -> Result<(), String> {
    crate::json_check::check_syntax(doc)?;
    if !doc.contains(&format!("\"schema\": \"{NET_BENCH_SCHEMA}\"")) {
        return Err(format!("missing schema tag {NET_BENCH_SCHEMA:?}"));
    }
    if !doc.contains("\"entries\": [") {
        return Err("missing entries array".into());
    }
    for op in NET_BENCH_OPS {
        if !doc.contains(&format!("\"op\": \"{op}\"")) {
            return Err(format!("no entry for RPC {op:?}"));
        }
    }
    for mode in ["v1", "v2"] {
        if !doc.contains(&format!("\"mode\": \"{mode}\"")) {
            return Err(format!("no {mode} entries — both transports must be measured"));
        }
    }
    for field in [
        "\"compute_threads\":",
        "\"link_delay_ms\":",
        "\"depth\":",
        "\"ops_per_s\":",
        "\"speedup_vs_v1\":",
    ] {
        if !doc.contains(field) {
            return Err(format!("missing the {field} field"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> NetBenchConfig {
        NetBenchConfig {
            depths: vec![1, 4],
            compute_threads: 2,
            batch: 2,
            n: 2,
            link_delay: Duration::ZERO,
            min_time: Duration::from_millis(10),
            min_ops: 2,
            quick: true,
        }
    }

    #[test]
    fn report_covers_every_rpc_on_both_transports_and_validates() {
        let report = run(&tiny());
        for op in NET_BENCH_OPS {
            assert!(report.entry(op, "v1", 1).is_some(), "{op} v1 baseline missing");
            for &d in &[1usize, 4] {
                let e = report.entry(op, "v2", d).unwrap_or_else(|| panic!("{op} v2@{d}"));
                assert!(e.ops_per_s > 0.0);
            }
        }
        let json = to_json(&report);
        validate_json(&json).expect("emitted document validates");
        let table = render(&report);
        assert!(table.contains("verify") && table.contains("vs v1"));
    }

    #[test]
    fn pipelining_beats_the_serial_baseline_over_a_delayed_link() {
        // With a 1ms-each-way link the serial client is RTT-bound at
        // ~500 req/s while a depth-4 pipeline keeps 4 requests in
        // flight; even on a loaded CI box a 1.5x margin is conservative
        // (the ideal is ~4x).
        let cfg = NetBenchConfig {
            depths: vec![4],
            link_delay: Duration::from_millis(1),
            min_time: Duration::from_millis(120),
            min_ops: 8,
            ..tiny()
        };
        let report = run(&cfg);
        let base = report.entry("verify", "v1", 1).expect("baseline").ops_per_s;
        let piped = report.entry("verify", "v2", 4).expect("pipelined").ops_per_s;
        assert!(
            piped > base * 1.5,
            "depth-4 pipelining over a delayed link only reached {piped:.0} vs {base:.0} req/s"
        );
    }

    #[test]
    fn validator_rejects_mangled_documents() {
        let report = NetBenchReport {
            quick: true,
            compute_threads: 4,
            link_delay_ms: 1.0,
            entries: vec![
                NetBenchEntry { op: "verify", mode: "v1", depth: 1, ops_per_s: 10.0 },
                NetBenchEntry { op: "verify", mode: "v2", depth: 16, ops_per_s: 40.0 },
                NetBenchEntry { op: "display_puzzle", mode: "v1", depth: 1, ops_per_s: 10.0 },
                NetBenchEntry { op: "display_puzzle", mode: "v2", depth: 16, ops_per_s: 40.0 },
                NetBenchEntry { op: "answer_puzzle_batch", mode: "v1", depth: 1, ops_per_s: 5.0 },
                NetBenchEntry { op: "answer_puzzle_batch", mode: "v2", depth: 16, ops_per_s: 20.0 },
            ],
        };
        let json = to_json(&report);
        validate_json(&json).unwrap();
        assert!(validate_json(&json[..json.len() - 4]).is_err(), "truncated");
        assert!(validate_json(&json.replace("net/v1", "net/v9")).is_err(), "wrong schema");
        assert!(validate_json(&json.replace("\"verify\"", "\"vrfy\"")).is_err(), "missing op");
        assert!(
            validate_json(&json.replace("\"mode\": \"v1\"", "\"mode\": \"vX\"")).is_err(),
            "missing baseline"
        );
        assert!(validate_json("not json").is_err());
    }

    #[test]
    fn speedup_is_relative_to_the_v1_baseline() {
        let report = NetBenchReport {
            quick: true,
            compute_threads: 4,
            link_delay_ms: 1.0,
            entries: vec![
                NetBenchEntry { op: "verify", mode: "v1", depth: 1, ops_per_s: 10.0 },
                NetBenchEntry { op: "verify", mode: "v2", depth: 16, ops_per_s: 35.0 },
            ],
        };
        let e = report.entry("verify", "v2", 16).unwrap();
        assert!((report.speedup_vs_v1(e) - 3.5).abs() < 1e-12);
        // No baseline → 0, not a panic or a bogus ratio.
        let orphan = NetBenchEntry { op: "display_puzzle", mode: "v2", depth: 4, ops_per_s: 9.0 };
        assert_eq!(report.speedup_vs_v1(&orphan), 0.0);
    }
}
