//! End-to-end RPC throughput over localhost, exported as `BENCH_net.json`.
//!
//! Boots a real [`sp_net::SpService`] daemon on an ephemeral port and
//! drives the three hottest serving-path RPCs — `Verify`,
//! `DisplayPuzzle`, and `AnswerPuzzleBatch` — through two transports:
//! the sequential v1 client (one request in flight: the pre-pipelining
//! baseline) and the pipelined v2 client at a sweep of depths. The
//! workload follows the paper's §VIII parameters (50-character
//! questions, 20-character answers, threshold `k = 1`).
//!
//! The interesting comparison is `verify` at depth 16 against the v1
//! baseline: with the daemon's compute pool at 4 threads, pipelining
//! must recover both the per-request round-trip latency (head-of-line
//! blocking) and the idle compute (one request at a time can use at
//! most one worker).
//!
//! Raw loopback has a ~20µs round trip — three orders of magnitude
//! below the network delays the paper measures (§VIII plots tens of
//! milliseconds of network delay per operation) — so both transports
//! run through an in-process **delay link**: a byte-level TCP proxy
//! that forwards traffic verbatim but ships every chunk
//! [`NetBenchConfig::link_delay`] later. That is pure added latency
//! (any amount of data may be in flight), exactly what a WAN adds and
//! exactly what a serialized request/response client cannot hide.
//!
//! The v3 schema adds the **cluster scaling sweep**: the same depth-64
//! `Verify` workload driven through a routed [`ClusterClient`] against
//! 1, 2, and 3 sharded SP daemons behind a consistent-hash ring, each
//! node fronted by its own delay link and reached over a small fixed
//! pipelined window — the per-node ceiling is the connection's
//! bandwidth-delay product, so added nodes add pipes. The committed
//! full report must show ≥ [`CLUSTER_SCALING_FLOOR`]× aggregate
//! throughput at 3 nodes.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::SeedableRng;
use social_puzzles_core::construction1::{Construction1, PuzzleResponse};
use social_puzzles_core::metrics::ServiceMetrics;
use sp_net::{
    dedup::wrap_idempotent,
    frame::{read_frame, read_frame_v2, write_frame, write_frame_v2},
    msg::{decode_response, hello_frame, is_hello_ack, SpRequest},
    ClientConfig, ClusterClient, Daemon, DaemonConfig, HashRing, PipelineConfig, Service,
    ServingModel, SpClient, SpService, DEFAULT_MAX_FRAME, DEFAULT_VNODES,
};
use sp_osn::{ProviderApi, PuzzleId, ServiceProvider, Url, UserId};

use crate::workload::{paper_context, PAPER_K};

/// Schema tag written into (and required from) `BENCH_net.json`. v2
/// added client-observed latency percentiles on every entry and the
/// reactor connection-scaling sweep; v3 added the cluster scaling sweep
/// (aggregate depth-64 `Verify` throughput at 1/2/3 sharded nodes).
pub const NET_BENCH_SCHEMA: &str = "sp-bench/net/v3";

/// Aggregate 3-node throughput must reach this multiple of the 1-node
/// figure in a full (non-quick) report — the scale-out floor
/// `--check-bench-net-json` enforces on the committed document.
pub const CLUSTER_SCALING_FLOOR: f64 = 2.5;

/// The RPCs every report must cover.
pub const NET_BENCH_OPS: [&str; 3] = ["verify", "display_puzzle", "answer_puzzle_batch"];

/// Sweep and sampling knobs for the serving-path comparison.
#[derive(Clone, Debug)]
pub struct NetBenchConfig {
    /// Pipeline depths to sweep on the v2 transport.
    pub depths: Vec<usize>,
    /// Daemon compute-pool threads (the acceptance numbers use 4).
    pub compute_threads: usize,
    /// Answer-sets per `AnswerPuzzleBatch` frame.
    pub batch: usize,
    /// Context size N for the benchmark puzzle.
    pub n: usize,
    /// One-way latency the delay link adds to every chunk (so the round
    /// trip costs twice this). Zero disables the link entirely.
    pub link_delay: Duration,
    /// Minimum wall time per measurement.
    pub min_time: Duration,
    /// Minimum completed requests per measurement.
    pub min_ops: u64,
    /// Idle-connection counts for the reactor connection-scaling sweep
    /// (empty disables the sweep).
    pub connections: Vec<usize>,
    /// Pipeline depth the scaling sweep's active client runs at.
    pub conn_depth: usize,
    /// Node counts for the cluster scaling sweep (empty disables it).
    pub cluster_nodes: Vec<usize>,
    /// Client threads driving the routed cluster closed loop.
    pub cluster_depth: usize,
    /// Pipelined in-flight window per node connection. Together with
    /// the delay link this sets the per-node ceiling at roughly
    /// `window / RTT` (the connection's bandwidth-delay product), so
    /// the sweep measures scale-out of per-node pipes rather than raw
    /// host CPU — and stays meaningful on a single-core CI box, where
    /// N daemons can never show true compute parallelism.
    pub cluster_window: usize,
    /// Pre-published puzzles the cluster sweep's `Verify` traffic is
    /// spread over (their ring keys scatter the load across nodes).
    pub cluster_puzzles: usize,
    /// Whether this is the reduced CI sweep.
    pub quick: bool,
}

impl Default for NetBenchConfig {
    fn default() -> Self {
        Self {
            depths: vec![1, 4, 16, 64],
            compute_threads: 4,
            batch: 8,
            n: 5,
            link_delay: Duration::from_millis(1),
            min_time: Duration::from_millis(400),
            min_ops: 50,
            connections: vec![64, 1_000, 10_000],
            conn_depth: 64,
            cluster_nodes: vec![1, 2, 3],
            cluster_depth: 64,
            cluster_window: 4,
            cluster_puzzles: 48,
            quick: false,
        }
    }
}

impl NetBenchConfig {
    /// Reduced sweep for CI smoke runs: two depths, short sampling
    /// windows, connection tiers that fit in-process. Numbers are noisy
    /// but the schema and the direction of the depth-16 speedup are
    /// still meaningful.
    pub fn quick() -> Self {
        Self {
            depths: vec![1, 16],
            min_time: Duration::from_millis(60),
            min_ops: 10,
            connections: vec![64, 256],
            cluster_nodes: vec![1, 3],
            cluster_puzzles: 12,
            quick: true,
            ..Self::default()
        }
    }
}

/// One (operation, transport, depth) measurement.
#[derive(Clone, Debug)]
pub struct NetBenchEntry {
    /// RPC name (one of [`NET_BENCH_OPS`]).
    pub op: &'static str,
    /// `"v1"` (sequential baseline) or `"v2"` (pipelined).
    pub mode: &'static str,
    /// Requests in flight (always 1 for `"v1"`).
    pub depth: usize,
    /// Completed requests per second, over one socket.
    pub ops_per_s: f64,
    /// Median client-observed latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile client-observed latency, milliseconds.
    pub p99_ms: f64,
}

/// One tier of the reactor connection-scaling sweep: `Verify`
/// throughput and latency through the delay link while the daemon
/// sustains `connections` parked idle sockets.
#[derive(Clone, Debug)]
pub struct ConnScaleEntry {
    /// Idle connections held open on the daemon for the whole tier.
    pub connections: usize,
    /// Pipeline depth of the active (measured) client.
    pub depth: usize,
    /// Completed `Verify` requests per second.
    pub ops_per_s: f64,
    /// Median client-observed latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile client-observed latency, milliseconds.
    pub p99_ms: f64,
}

/// One tier of the cluster scaling sweep: aggregate `Verify` throughput
/// through a routed [`ClusterClient`] over `nodes` sharded SP daemons,
/// each restricted to one compute worker so scale-out — not a wider
/// pool — is what the ratio measures.
#[derive(Clone, Debug)]
pub struct ClusterScaleEntry {
    /// Cluster members behind the consistent-hash ring.
    pub nodes: usize,
    /// Concurrent client threads driving the routed closed loop.
    pub depth: usize,
    /// Completed `Verify` requests per second, aggregated over the
    /// whole cluster.
    pub ops_per_s: f64,
    /// Median client-observed latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile client-observed latency, milliseconds.
    pub p99_ms: f64,
}

/// A full sweep, ready to serialize.
#[derive(Clone, Debug)]
pub struct NetBenchReport {
    /// Whether the reduced CI sweep produced this report.
    pub quick: bool,
    /// Daemon compute-pool threads used.
    pub compute_threads: usize,
    /// One-way delay-link latency in milliseconds (0 = raw loopback).
    pub link_delay_ms: f64,
    /// All measurements, grouped by operation then depth.
    pub entries: Vec<NetBenchEntry>,
    /// The reactor connection-scaling tiers, in sweep order.
    pub conn_scale: Vec<ConnScaleEntry>,
    /// The cluster scaling tiers, in sweep order.
    pub cluster: Vec<ClusterScaleEntry>,
    /// Per-node pipelined window the cluster sweep ran with.
    pub cluster_window: usize,
}

impl NetBenchReport {
    /// The entry for one (op, mode, depth), if measured.
    pub fn entry(&self, op: &str, mode: &str, depth: usize) -> Option<&NetBenchEntry> {
        self.entries.iter().find(|e| e.op == op && e.mode == mode && e.depth == depth)
    }

    /// Throughput of `entry` relative to the op's depth-1 v1 baseline.
    pub fn speedup_vs_v1(&self, entry: &NetBenchEntry) -> f64 {
        match self.entry(entry.op, "v1", 1) {
            Some(base) if base.ops_per_s > 0.0 => entry.ops_per_s / base.ops_per_s,
            _ => 0.0,
        }
    }

    /// Throughput of a cluster tier relative to the 1-node tier.
    pub fn speedup_vs_1node(&self, entry: &ClusterScaleEntry) -> f64 {
        match self.cluster.iter().find(|e| e.nodes == 1) {
            Some(base) if base.ops_per_s > 0.0 => entry.ops_per_s / base.ops_per_s,
            _ => 0.0,
        }
    }
}

/// A byte-level TCP proxy that adds pure latency: every chunk read is
/// written out [`DelayLink::delay`] later, with any amount of data in
/// flight. Framing-agnostic, so v1 and v2 traffic pay the same toll.
struct DelayLink {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
}

impl DelayLink {
    fn spawn(upstream: SocketAddr, delay: Duration) -> Self {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind delay link");
        let addr = listener.local_addr().expect("local addr");
        listener.set_nonblocking(true).expect("nonblocking");
        let stop = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((client, _)) => link_connection(client, upstream, delay),
                        Err(_) => std::thread::sleep(Duration::from_millis(5)),
                    }
                }
            })
        };
        Self { addr, stop, acceptor: Some(acceptor) }
    }
}

impl Drop for DelayLink {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.acceptor.take() {
            let _ = t.join();
        }
    }
}

/// Wires one proxied connection: each direction is a reader thread
/// stamping chunks with their due time and a writer thread releasing
/// them on schedule. Threads exit on EOF/error and die with the process
/// otherwise; the bench closes every socket when it finishes.
fn link_connection(client: TcpStream, upstream: SocketAddr, delay: Duration) {
    let Ok(server) = TcpStream::connect(upstream) else { return };
    let _ = client.set_nodelay(true);
    let _ = server.set_nodelay(true);
    for (from, to) in
        [(client.try_clone(), server.try_clone()), (server.try_clone(), client.try_clone())]
    {
        let (Ok(mut from), Ok(mut to)) = (from, to) else { return };
        let (tx, rx) = mpsc::channel::<(Instant, Vec<u8>)>();
        std::thread::spawn(move || {
            let mut buf = [0u8; 16 * 1024];
            loop {
                match from.read(&mut buf) {
                    Ok(0) | Err(_) => return, // dropping tx ends the writer
                    Ok(n) => {
                        if tx.send((Instant::now() + delay, buf[..n].to_vec())).is_err() {
                            return;
                        }
                    }
                }
            }
        });
        std::thread::spawn(move || {
            while let Ok((due, chunk)) = rx.recv() {
                let now = Instant::now();
                if due > now {
                    std::thread::sleep(due - now);
                }
                if to.write_all(&chunk).and_then(|()| to.flush()).is_err() {
                    return;
                }
            }
            // Reader saw EOF: propagate the close downstream.
            let _ = to.shutdown(Shutdown::Both);
        });
    }
}

/// Everything a measurement loop needs: a live daemon, the delay link
/// in front of it, and a valid puzzle + response.
struct Rig {
    daemon: Daemon,
    link: Option<DelayLink>,
    puzzle: PuzzleId,
    response: PuzzleResponse,
}

impl Rig {
    /// The address clients should dial: the delay link if one is up.
    fn addr(&self) -> SocketAddr {
        self.link.as_ref().map_or_else(|| self.daemon.addr(), |l| l.addr)
    }

    fn boot(cfg: &NetBenchConfig) -> Self {
        Self::boot_with(cfg, DaemonConfig::default())
    }

    /// `daemon_cfg` lets the connection-scaling sweep swap in the
    /// reactor serving model, a wider connection budget, and a metrics
    /// registry; workers and queue depth are still forced from `cfg`.
    fn boot_with(cfg: &NetBenchConfig, daemon_cfg: DaemonConfig) -> Self {
        let service = SpService::new(ServiceProvider::new(), Construction1::new());
        let max_depth = cfg.depths.iter().copied().max().unwrap_or(1).max(cfg.conn_depth);
        let daemon = Daemon::spawn(
            "127.0.0.1:0",
            Arc::new(service),
            DaemonConfig {
                workers: cfg.compute_threads.max(1),
                // Headroom over the deepest pipeline so overload retries
                // don't pollute the measurement.
                queue_depth: (max_depth * 2).max(64),
                ..daemon_cfg
            },
        )
        .expect("bind ephemeral port");

        // Publish one paper-shaped puzzle and solve it once; every
        // measured Verify replays this known-good response.
        let c1 = Construction1::new();
        let mut rng = StdRng::seed_from_u64(2014);
        let ctx = paper_context(cfg.n, &mut rng);
        let upload = c1
            .upload_to(b"bench object", &ctx, PAPER_K, Url::from("dh://bench/0"), None, &mut rng)
            .expect("upload");
        // Setup talks straight to the daemon — only measurements pay
        // the link toll.
        let setup = SpClient::connect(daemon.addr(), client_cfg());
        let puzzle = setup.publish_puzzle(Bytes::from(upload.puzzle.to_bytes())).expect("publish");
        let displayed = setup.display_puzzle(puzzle).expect("display");
        let answers = displayed.answer(|q| ctx.answer_for(q).map(str::to_owned));
        let response = c1.answer_puzzle(&displayed, &answers);

        let link =
            (!cfg.link_delay.is_zero()).then(|| DelayLink::spawn(daemon.addr(), cfg.link_delay));
        Self { daemon, link, puzzle, response }
    }
}

fn client_cfg() -> ClientConfig {
    ClientConfig {
        // Generous deadline: a depth-64 pipeline on a loaded CI host can
        // queue a request well past the 10 s default.
        read_timeout: Duration::from_secs(60),
        backoff: Duration::from_millis(5),
        ..ClientConfig::default()
    }
}

/// Throughput plus client-observed latency percentiles for one
/// measurement window.
struct Measure {
    ops_per_s: f64,
    p50_ms: f64,
    p99_ms: f64,
}

/// Runs `op` from `threads` concurrent workers sharing one client until
/// the time and count floors are met; every request is individually
/// timed at the caller, so the percentiles include queueing behind the
/// pipeline and the link toll — what a user of the socket experiences.
fn throughput(
    threads: usize,
    min_time: Duration,
    min_ops: u64,
    op: impl Fn(usize) + Sync,
) -> Measure {
    let done = AtomicU64::new(0);
    let lat = Mutex::new(Vec::<Duration>::new());
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let (done, lat, op) = (&done, &lat, &op);
            s.spawn(move || {
                let mut mine = Vec::new();
                loop {
                    let t0 = Instant::now();
                    op(t);
                    mine.push(t0.elapsed());
                    let n = done.fetch_add(1, Ordering::Relaxed) + 1;
                    if start.elapsed() >= min_time && n >= min_ops {
                        break;
                    }
                }
                lat.lock().expect("latency sink").extend(mine);
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    let mut lat = lat.into_inner().expect("latency sink");
    lat.sort_unstable();
    let pct = |p: f64| match lat.len() {
        0 => 0.0,
        n => lat[((n - 1) as f64 * p / 100.0).round() as usize].as_secs_f64() * 1e3,
    };
    Measure {
        ops_per_s: done.load(Ordering::Relaxed) as f64 / elapsed.max(1e-9),
        p50_ms: pct(50.0),
        p99_ms: pct(99.0),
    }
}

/// Idle sockets parked on the daemon for one connection-scaling tier:
/// held in-process while they fit comfortably under the per-process fd
/// budget (the daemon's accepted ends already live here), otherwise
/// parked in a forked `conn-hold` child re-execing the current binary —
/// fd limits are per-process, and both `spuzzle` and the `figures`
/// binary answer the `conn-hold` subcommand.
const IN_PROCESS_HOLD_MAX: usize = 4096;

enum ConnHerd {
    InProcess(Vec<TcpStream>),
    Child(std::process::Child),
}

impl ConnHerd {
    fn park(addr: SocketAddr, count: usize) -> Self {
        if count <= IN_PROCESS_HOLD_MAX {
            let held = (0..count)
                .map(|i| {
                    TcpStream::connect(addr)
                        .unwrap_or_else(|e| panic!("idle connection {i}/{count}: {e}"))
                })
                .collect();
            return ConnHerd::InProcess(held);
        }
        let exe = std::env::current_exe().expect("resolving the current binary");
        let mut child = Command::new(exe)
            .args(["conn-hold", "--addr", &addr.to_string(), "--count", &count.to_string()])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("forking conn-hold (the hosting binary must answer that subcommand)");
        let mut line = String::new();
        BufReader::new(child.stdout.take().expect("child stdout"))
            .read_line(&mut line)
            .expect("conn-hold readiness line");
        assert_eq!(line.trim(), format!("held {count}"), "conn-hold child never came up");
        ConnHerd::Child(child)
    }

    fn release(self) {
        match self {
            ConnHerd::InProcess(held) => drop(held),
            ConnHerd::Child(mut c) => {
                drop(c.stdin.take()); // EOF tells the child to let go
                let _ = c.wait();
            }
        }
    }
}

/// `conn-hold` helper body for hosting binaries: parks `count` idle
/// sockets on `addr`, prints `held N` (the parent's readiness signal),
/// and blocks until stdin reaches EOF — which also fires if the parent
/// dies, so the child never outlives its bench.
pub fn conn_hold(addr: SocketAddr, count: usize) -> Result<(), String> {
    let mut held = Vec::with_capacity(count);
    for i in 0..count {
        held.push(
            TcpStream::connect(addr)
                .map_err(|e| format!("connection {i}/{count} to {addr}: {e}"))?,
        );
    }
    println!("held {}", held.len());
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);
    drop(held);
    Ok(())
}

/// Closed-loop raw-frame load driver for the connection-scaling sweep:
/// one writer thread keeps `depth` idempotency-wrapped `Verify` frames
/// outstanding on a single v2 connection while one reader thread drains
/// completions and stamps per-request latency. Two threads total — the
/// full [`PipelinedConnection`] client parks one blocked thread per
/// slot, and on a small box those wakeups throttle the generator before
/// the daemon does; this driver measures the *server's* ceiling.
fn raw_v2_verify(
    addr: SocketAddr,
    depth: usize,
    min_time: Duration,
    min_ops: u64,
    request: &[u8],
) -> Measure {
    let mut stream = TcpStream::connect(addr).expect("raw driver connect");
    stream.set_nodelay(true).expect("nodelay");
    write_frame(&mut stream, &hello_frame(), DEFAULT_MAX_FRAME).expect("hello");
    let ack = read_frame(&mut stream, DEFAULT_MAX_FRAME).expect("hello ack").expect("ack frame");
    assert!(
        decode_response(&ack).map(is_hello_ack).unwrap_or(false),
        "daemon did not negotiate v2"
    );

    let mut reader = stream.try_clone().expect("clone raw stream");
    let sent_at = Mutex::new(std::collections::HashMap::<u64, Instant>::new());
    let inflight = Mutex::new(0usize);
    let slot_free = std::sync::Condvar::new();
    let writer_done = AtomicBool::new(false);
    let start = Instant::now();
    let mut elapsed = 0.0;
    let lat = std::thread::scope(|s| {
        let drain = s.spawn(|| {
            let mut lat = Vec::new();
            loop {
                // EOF / reset is the writer's shutdown signal once it has
                // drained the pipeline; mid-measurement it is a failure.
                let frame = match read_frame_v2(&mut reader, DEFAULT_MAX_FRAME) {
                    Ok(Some((corr, frame))) => {
                        let t0 =
                            sent_at.lock().expect("sent map").remove(&corr).expect("known corr");
                        lat.push(t0.elapsed());
                        frame
                    }
                    end => {
                        assert!(
                            writer_done.load(Ordering::Acquire),
                            "daemon closed mid-measurement: {end:?}"
                        );
                        return lat;
                    }
                };
                decode_response(&frame).expect("verify succeeds");
                *inflight.lock().expect("inflight") -= 1;
                slot_free.notify_one();
            }
        });
        for corr in 0u64.. {
            let guard = inflight.lock().expect("inflight");
            let mut guard = slot_free.wait_while(guard, |n| *n >= depth).expect("inflight wait");
            if start.elapsed() >= min_time && corr >= min_ops {
                drop(guard);
                break;
            }
            *guard += 1;
            drop(guard);
            sent_at.lock().expect("sent map").insert(corr, Instant::now());
            let payload = wrap_idempotent(corr, request);
            write_frame_v2(&mut stream, corr, &payload, DEFAULT_MAX_FRAME).expect("raw write");
        }
        // Let every outstanding response land (they all count), stop the
        // clock, then close the socket to unblock the reader.
        let guard = inflight.lock().expect("inflight");
        let _drained = slot_free.wait_while(guard, |n| *n > 0).expect("drain wait");
        elapsed = start.elapsed().as_secs_f64();
        writer_done.store(true, Ordering::Release);
        let _ = stream.shutdown(Shutdown::Both);
        drain.join().expect("raw reader thread")
    });

    let done = lat.len() as f64;
    let mut lat = lat;
    lat.sort_unstable();
    let pct = |p: f64| match lat.len() {
        0 => 0.0,
        n => lat[((n - 1) as f64 * p / 100.0).round() as usize].as_secs_f64() * 1e3,
    };
    Measure { ops_per_s: done / elapsed.max(1e-9), p50_ms: pct(50.0), p99_ms: pct(99.0) }
}

/// The connection-scaling sweep: for each C a fresh **reactor** daemon
/// sustains C parked idle connections while [`raw_v2_verify`] hammers
/// depth-`conn_depth` `Verify` traffic through the delay link. The idle
/// ends dial the daemon directly — they pay no toll and hold no link
/// threads; only the measured traffic crosses the link.
fn conn_scale_sweep(cfg: &NetBenchConfig) -> Vec<ConnScaleEntry> {
    let mut entries = Vec::new();
    for &connections in &cfg.connections {
        let metrics = ServiceMetrics::new();
        let rig = Rig::boot_with(
            cfg,
            DaemonConfig {
                serving_model: ServingModel::Reactor,
                max_connections: connections + 64,
                idle_timeout: Duration::from_secs(300),
                metrics: metrics.clone(),
                ..DaemonConfig::default()
            },
        );
        let herd = ConnHerd::park(rig.daemon.addr(), connections);
        // The kernel backlog completes handshakes before the reactor
        // owns them; wait until the daemon actually holds all C.
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let accepted = metrics.server("net.server").accepted as usize;
            if accepted >= connections {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "daemon accepted only {accepted} of {connections} idle connections"
            );
            std::thread::sleep(Duration::from_millis(10));
        }

        let depth = cfg.conn_depth.max(1);
        let request =
            SpRequest::Verify { user: 7, puzzle: rig.puzzle.raw(), response: rig.response.clone() }
                .encode();
        let m = raw_v2_verify(rig.addr(), depth, cfg.min_time, cfg.min_ops, &request);
        entries.push(ConnScaleEntry {
            connections,
            depth,
            ops_per_s: m.ops_per_s,
            p50_ms: m.p50_ms,
            p99_ms: m.p99_ms,
        });
        herd.release();
        drop(rig.link);
        rig.daemon.shutdown();
    }
    entries
}

/// One cluster-sweep member: daemon, its delay link, and the service
/// handle used to install the ring.
struct ClusterMember {
    daemon: Daemon,
    link: Option<DelayLink>,
    service: Arc<SpService<ServiceProvider>>,
}

impl ClusterMember {
    /// The address this member advertises in the ring: the delay link
    /// if one is up, so routed traffic pays the toll.
    fn advertise(&self) -> SocketAddr {
        self.link.as_ref().map_or_else(|| self.daemon.addr(), |l| l.addr)
    }
}

/// The cluster scaling sweep: for each node count, boots that many
/// clustered SP daemons behind a shared consistent-hash ring — each
/// fronted by its own delay link — pre-publishes
/// [`NetBenchConfig::cluster_puzzles`] paper-shaped puzzles whose ring
/// keys scatter them across the members, then drives depth-many
/// concurrent `Verify` threads through a routed [`ClusterClient`]
/// holding a [`NetBenchConfig::cluster_window`]-deep pipelined
/// connection per node. The per-node ceiling is that connection's
/// bandwidth-delay product (`window / RTT`), so every added node adds
/// its own pipe and the aggregate scales near-linearly — the
/// `speedup_vs_1node` column — independent of how many host cores the
/// daemons happen to share.
fn cluster_sweep(cfg: &NetBenchConfig) -> Vec<ClusterScaleEntry> {
    let depth = cfg.cluster_depth.max(1);
    let window = cfg.cluster_window.max(1);
    let mut entries = Vec::new();
    for &nodes in &cfg.cluster_nodes {
        let members: Vec<ClusterMember> = (0..nodes.max(1))
            .map(|_| {
                let service =
                    Arc::new(SpService::new(ServiceProvider::new(), Construction1::new()));
                let daemon = Daemon::spawn(
                    "127.0.0.1:0",
                    Arc::clone(&service) as Arc<dyn Service>,
                    DaemonConfig {
                        workers: 1,
                        queue_depth: (depth * 2).max(64),
                        ..DaemonConfig::default()
                    },
                )
                .expect("bind cluster member");
                let link = (!cfg.link_delay.is_zero())
                    .then(|| DelayLink::spawn(daemon.addr(), cfg.link_delay));
                ClusterMember { daemon, link, service }
            })
            .collect();
        let ring = HashRing::new(
            1,
            members.iter().map(ClusterMember::advertise).collect(),
            DEFAULT_VNODES,
        );
        for m in &members {
            m.service.enable_cluster(m.advertise(), ring.clone());
        }
        let client =
            ClusterClient::connect(ring, PipelineConfig { depth: window, client: client_cfg() });

        // One paper-shaped puzzle record, published under many URLs:
        // distinct ring keys spread ownership over the members while the
        // known-good response stays cheap to prepare.
        let c1 = Construction1::new();
        let mut rng = StdRng::seed_from_u64(2014);
        let ctx = paper_context(cfg.n, &mut rng);
        let upload = c1
            .upload_to(b"bench object", &ctx, PAPER_K, Url::from("dh://bench/0"), None, &mut rng)
            .expect("upload");
        let record = Bytes::from(upload.puzzle.to_bytes());
        let work: Vec<(PuzzleId, PuzzleResponse)> = (0..cfg.cluster_puzzles.max(1))
            .map(|i| {
                let url = Url::from(format!("dh://bench/cluster/{i}").as_str());
                let id = client.publish(&url, record.clone()).expect("routed publish");
                let displayed = client.display_puzzle(id).expect("routed display");
                let answers = displayed.answer(|q| ctx.answer_for(q).map(str::to_owned));
                (id, c1.answer_puzzle(&displayed, &answers))
            })
            .collect();

        let m = throughput(depth, cfg.min_time, cfg.min_ops, |t| {
            let (id, response) = &work[t % work.len()];
            client.verify(UserId::from_raw(t as u64), *id, response).expect("cluster verify");
        });
        entries.push(ClusterScaleEntry {
            nodes: nodes.max(1),
            depth,
            ops_per_s: m.ops_per_s,
            p50_ms: m.p50_ms,
            p99_ms: m.p99_ms,
        });
        drop(client);
        for member in members {
            drop(member.link);
            member.daemon.shutdown();
        }
    }
    entries
}

/// Runs the full serving-path sweep against a freshly booted daemon.
pub fn run(cfg: &NetBenchConfig) -> NetBenchReport {
    let rig = Rig::boot(cfg);
    let batch: Vec<PuzzleResponse> = vec![rig.response.clone(); cfg.batch.max(1)];
    let mut entries = Vec::new();

    // Baseline: the sequential v1 client, one request in flight.
    {
        let client = SpClient::connect(rig.addr(), client_cfg());
        entries.extend(measure_ops(cfg, &rig, &client, &batch, "v1", 1));
    }
    // Pipelined v2 at each depth, `depth` requests in flight per socket.
    for &depth in &cfg.depths {
        let client =
            SpClient::connect_pipelined(rig.addr(), PipelineConfig { depth, client: client_cfg() });
        entries.extend(measure_ops(cfg, &rig, &client, &batch, "v2", depth));
    }

    let link_delay_ms = cfg.link_delay.as_secs_f64() * 1e3;
    drop(rig.link);
    rig.daemon.shutdown();

    let conn_scale = conn_scale_sweep(cfg);
    let cluster = cluster_sweep(cfg);
    NetBenchReport {
        quick: cfg.quick,
        compute_threads: cfg.compute_threads.max(1),
        link_delay_ms,
        entries,
        conn_scale,
        cluster,
        cluster_window: cfg.cluster_window.max(1),
    }
}

/// Measures all three RPCs through one client at one concurrency level.
fn measure_ops(
    cfg: &NetBenchConfig,
    rig: &Rig,
    client: &SpClient,
    batch: &[PuzzleResponse],
    mode: &'static str,
    depth: usize,
) -> Vec<NetBenchEntry> {
    let threads = depth.max(1);
    let verify = throughput(threads, cfg.min_time, cfg.min_ops, |t| {
        client.verify(UserId::from_raw(t as u64), rig.puzzle, &rig.response).expect("verify");
    });
    let display = throughput(threads, cfg.min_time, cfg.min_ops, |_| {
        client.display_puzzle(rig.puzzle).expect("display");
    });
    let answer_batch = throughput(threads, cfg.min_time, cfg.min_ops, |t| {
        client
            .answer_puzzle_batch(UserId::from_raw(t as u64), rig.puzzle, batch)
            .expect("answer batch");
    });
    let entry = |op, m: Measure| NetBenchEntry {
        op,
        mode,
        depth,
        ops_per_s: m.ops_per_s,
        p50_ms: m.p50_ms,
        p99_ms: m.p99_ms,
    };
    vec![
        entry("verify", verify),
        entry("display_puzzle", display),
        entry("answer_puzzle_batch", answer_batch),
    ]
}

/// Serializes a report to the `BENCH_net.json` document.
pub fn to_json(report: &NetBenchReport) -> String {
    fn num(v: f64) -> String {
        if v.is_finite() {
            format!("{v:.3}")
        } else {
            "0.000".to_owned()
        }
    }
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{NET_BENCH_SCHEMA}\",\n"));
    out.push_str(&format!("  \"quick\": {},\n", report.quick));
    out.push_str(&format!("  \"compute_threads\": {},\n", report.compute_threads));
    out.push_str(&format!("  \"link_delay_ms\": {},\n", num(report.link_delay_ms)));
    out.push_str("  \"entries\": [\n");
    for (i, e) in report.entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"op\": \"{}\", \"mode\": \"{}\", \"depth\": {}, \"ops_per_s\": {}, \"p50_ms\": {}, \"p99_ms\": {}, \"speedup_vs_v1\": {}}}{}\n",
            e.op,
            e.mode,
            e.depth,
            num(e.ops_per_s),
            num(e.p50_ms),
            num(e.p99_ms),
            num(report.speedup_vs_v1(e)),
            if i + 1 == report.entries.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"conn_scale\": {\n");
    out.push_str("    \"serving_model\": \"reactor\",\n");
    out.push_str("    \"entries\": [\n");
    for (i, e) in report.conn_scale.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"connections\": {}, \"depth\": {}, \"ops_per_s\": {}, \"p50_ms\": {}, \"p99_ms\": {}}}{}\n",
            e.connections,
            e.depth,
            num(e.ops_per_s),
            num(e.p50_ms),
            num(e.p99_ms),
            if i + 1 == report.conn_scale.len() { "" } else { "," },
        ));
    }
    out.push_str("    ]\n  },\n");
    out.push_str("  \"cluster\": {\n");
    out.push_str("    \"workers_per_node\": 1,\n");
    out.push_str(&format!("    \"window_per_node\": {},\n", report.cluster_window));
    out.push_str("    \"entries\": [\n");
    for (i, e) in report.cluster.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"nodes\": {}, \"depth\": {}, \"ops_per_s\": {}, \"p50_ms\": {}, \"p99_ms\": {}, \"speedup_vs_1node\": {}}}{}\n",
            e.nodes,
            e.depth,
            num(e.ops_per_s),
            num(e.p50_ms),
            num(e.p99_ms),
            num(report.speedup_vs_1node(e)),
            if i + 1 == report.cluster.len() { "" } else { "," },
        ));
    }
    out.push_str("    ]\n  }\n}\n");
    out
}

/// Renders the report as the human-readable table the `figures` binary
/// prints alongside the JSON.
pub fn render(report: &NetBenchReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "serving path over a {:.1}ms-each-way link, {} daemon compute threads: requests/s per \
         socket\n",
        report.link_delay_ms, report.compute_threads
    ));
    out.push_str(&format!(
        "{:<20} {:>4} {:>6} {:>12} {:>9} {:>9} {:>12}\n",
        "op", "mode", "depth", "req/s", "p50 ms", "p99 ms", "vs v1"
    ));
    for e in &report.entries {
        out.push_str(&format!(
            "{:<20} {:>4} {:>6} {:>12.1} {:>9.2} {:>9.2} {:>11.2}x\n",
            e.op,
            e.mode,
            e.depth,
            e.ops_per_s,
            e.p50_ms,
            e.p99_ms,
            report.speedup_vs_v1(e)
        ));
    }
    if !report.conn_scale.is_empty() {
        out.push_str(
            "\nreactor connection scaling: depth-64 verify while C idle sockets sit open\n",
        );
        out.push_str(&format!(
            "{:<12} {:>6} {:>12} {:>9} {:>9}\n",
            "connections", "depth", "req/s", "p50 ms", "p99 ms"
        ));
        for e in &report.conn_scale {
            out.push_str(&format!(
                "{:<12} {:>6} {:>12.1} {:>9.2} {:>9.2}\n",
                e.connections, e.depth, e.ops_per_s, e.p50_ms, e.p99_ms
            ));
        }
    }
    if !report.cluster.is_empty() {
        out.push_str(&format!(
            "\ncluster scaling: aggregate verify through a routed client, window {} per node \
             over the delay link\n",
            report.cluster_window
        ));
        out.push_str(&format!(
            "{:<6} {:>6} {:>12} {:>9} {:>9} {:>12}\n",
            "nodes", "depth", "req/s", "p50 ms", "p99 ms", "vs 1 node"
        ));
        for e in &report.cluster {
            out.push_str(&format!(
                "{:<6} {:>6} {:>12.1} {:>9.2} {:>9.2} {:>11.2}x\n",
                e.nodes,
                e.depth,
                e.ops_per_s,
                e.p50_ms,
                e.p99_ms,
                report.speedup_vs_1node(e)
            ));
        }
    }
    out
}

/// Validates a `BENCH_net.json` document: syntactically well-formed
/// JSON, the right schema tag, both transports present, at least one
/// entry per RPC with all fields (latency percentiles included), the
/// reactor connection-scaling section, and the cluster scaling section.
/// Full (non-quick) reports must additionally show a 3-node tier
/// reaching [`CLUSTER_SCALING_FLOOR`] over the 1-node tier. Returns a
/// description of the first problem.
pub fn validate_json(doc: &str) -> Result<(), String> {
    crate::json_check::check_syntax(doc)?;
    if !doc.contains(&format!("\"schema\": \"{NET_BENCH_SCHEMA}\"")) {
        return Err(format!("missing schema tag {NET_BENCH_SCHEMA:?}"));
    }
    if !doc.contains("\"entries\": [") {
        return Err("missing entries array".into());
    }
    for op in NET_BENCH_OPS {
        if !doc.contains(&format!("\"op\": \"{op}\"")) {
            return Err(format!("no entry for RPC {op:?}"));
        }
    }
    for mode in ["v1", "v2"] {
        if !doc.contains(&format!("\"mode\": \"{mode}\"")) {
            return Err(format!("no {mode} entries — both transports must be measured"));
        }
    }
    if !doc.contains("\"conn_scale\":") || !doc.contains("\"serving_model\": \"reactor\"") {
        return Err("missing the reactor conn_scale sweep".into());
    }
    for field in [
        "\"compute_threads\":",
        "\"link_delay_ms\":",
        "\"depth\":",
        "\"ops_per_s\":",
        "\"p50_ms\":",
        "\"p99_ms\":",
        "\"speedup_vs_v1\":",
        "\"connections\":",
    ] {
        if !doc.contains(field) {
            return Err(format!("missing the {field} field"));
        }
    }
    if !doc.contains("\"cluster\":") || !doc.contains("\"nodes\": 1") {
        return Err("missing the cluster sweep (needs at least the 1-node tier)".into());
    }
    if !doc.contains("\"speedup_vs_1node\":") {
        return Err("missing the speedup_vs_1node field".into());
    }
    // Full runs are the committed acceptance numbers: the 3-node tier
    // must exist and actually scale.
    if doc.contains("\"quick\": false") {
        let speedup =
            cluster_speedup(doc, 3).ok_or("full report lacks a parseable 3-node cluster tier")?;
        if speedup < CLUSTER_SCALING_FLOOR {
            return Err(format!(
                "3-node cluster speedup {speedup:.2}x is below the {CLUSTER_SCALING_FLOOR}x floor"
            ));
        }
    }
    Ok(())
}

/// Extracts `speedup_vs_1node` from the cluster tier for `nodes`, if
/// the document has one.
fn cluster_speedup(doc: &str, nodes: usize) -> Option<f64> {
    let row = doc.lines().find(|l| l.contains(&format!("\"nodes\": {nodes},")))?;
    let rest = row.split("\"speedup_vs_1node\":").nth(1)?;
    rest.trim().trim_end_matches(['}', ',', ' ']).trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> NetBenchConfig {
        NetBenchConfig {
            depths: vec![1, 4],
            compute_threads: 2,
            batch: 2,
            n: 2,
            link_delay: Duration::ZERO,
            min_time: Duration::from_millis(10),
            min_ops: 2,
            connections: vec![8],
            conn_depth: 4,
            cluster_nodes: vec![1, 2],
            cluster_depth: 4,
            cluster_window: 2,
            cluster_puzzles: 3,
            quick: true,
        }
    }

    #[test]
    fn report_covers_every_rpc_on_both_transports_and_validates() {
        let report = run(&tiny());
        for op in NET_BENCH_OPS {
            assert!(report.entry(op, "v1", 1).is_some(), "{op} v1 baseline missing");
            for &d in &[1usize, 4] {
                let e = report.entry(op, "v2", d).unwrap_or_else(|| panic!("{op} v2@{d}"));
                assert!(e.ops_per_s > 0.0);
                assert!(e.p50_ms > 0.0 && e.p99_ms >= e.p50_ms, "bogus percentiles: {e:?}");
            }
        }
        assert_eq!(report.conn_scale.len(), 1, "one connection tier configured");
        let tier = &report.conn_scale[0];
        assert_eq!((tier.connections, tier.depth), (8, 4));
        assert!(tier.ops_per_s > 0.0 && tier.p99_ms >= tier.p50_ms, "bogus tier: {tier:?}");
        assert_eq!(report.cluster.len(), 2, "two cluster tiers configured");
        for tier in &report.cluster {
            assert!(tier.ops_per_s > 0.0, "bogus cluster tier: {tier:?}");
        }
        assert!(
            (report.speedup_vs_1node(&report.cluster[0]) - 1.0).abs() < 1e-9,
            "the 1-node tier is its own baseline"
        );
        let json = to_json(&report);
        validate_json(&json).expect("emitted document validates");
        let table = render(&report);
        assert!(table.contains("verify") && table.contains("vs v1"));
        assert!(table.contains("connections"), "conn-scale table missing");
    }

    #[test]
    fn pipelining_beats_the_serial_baseline_over_a_delayed_link() {
        // With a 1ms-each-way link the serial client is RTT-bound at
        // ~500 req/s while a depth-4 pipeline keeps 4 requests in
        // flight; even on a loaded CI box a 1.5x margin is conservative
        // (the ideal is ~4x).
        let cfg = NetBenchConfig {
            depths: vec![4],
            link_delay: Duration::from_millis(1),
            min_time: Duration::from_millis(120),
            min_ops: 8,
            ..tiny()
        };
        let report = run(&cfg);
        let base = report.entry("verify", "v1", 1).expect("baseline").ops_per_s;
        let piped = report.entry("verify", "v2", 4).expect("pipelined").ops_per_s;
        assert!(
            piped > base * 1.5,
            "depth-4 pipelining over a delayed link only reached {piped:.0} vs {base:.0} req/s"
        );
    }

    fn entry(op: &'static str, mode: &'static str, depth: usize, ops: f64) -> NetBenchEntry {
        NetBenchEntry { op, mode, depth, ops_per_s: ops, p50_ms: 2.0, p99_ms: 6.0 }
    }

    #[test]
    fn validator_rejects_mangled_documents() {
        let report = NetBenchReport {
            quick: true,
            compute_threads: 4,
            link_delay_ms: 1.0,
            entries: vec![
                entry("verify", "v1", 1, 10.0),
                entry("verify", "v2", 16, 40.0),
                entry("display_puzzle", "v1", 1, 10.0),
                entry("display_puzzle", "v2", 16, 40.0),
                entry("answer_puzzle_batch", "v1", 1, 5.0),
                entry("answer_puzzle_batch", "v2", 16, 20.0),
            ],
            conn_scale: vec![ConnScaleEntry {
                connections: 10_000,
                depth: 64,
                ops_per_s: 12_500.0,
                p50_ms: 4.0,
                p99_ms: 11.0,
            }],
            cluster: cluster_tiers(3.1),
            cluster_window: 4,
        };
        let json = to_json(&report);
        validate_json(&json).unwrap();
        assert!(validate_json(&json[..json.len() - 4]).is_err(), "truncated");
        assert!(validate_json(&json.replace("net/v3", "net/v9")).is_err(), "wrong schema");
        assert!(validate_json(&json.replace("\"verify\"", "\"vrfy\"")).is_err(), "missing op");
        assert!(
            validate_json(&json.replace("\"mode\": \"v1\"", "\"mode\": \"vX\"")).is_err(),
            "missing baseline"
        );
        assert!(
            validate_json(&json.replace("\"serving_model\": \"reactor\"", "\"x\": \"y\"")).is_err(),
            "missing reactor sweep"
        );
        assert!(
            validate_json(&json.replace("\"p99_ms\"", "\"p98_ms\"")).is_err(),
            "missing percentile column"
        );
        assert!(
            validate_json(&json.replace("\"speedup_vs_1node\"", "\"x\"")).is_err(),
            "missing cluster speedup column"
        );
        assert!(validate_json("not json").is_err());
    }

    fn cluster_tiers(three_node_ops: f64) -> Vec<ClusterScaleEntry> {
        [1.0, three_node_ops]
            .iter()
            .zip([1usize, 3])
            .map(|(&ops, nodes)| ClusterScaleEntry {
                nodes,
                depth: 64,
                ops_per_s: 100.0 * ops,
                p50_ms: 3.0,
                p99_ms: 9.0,
            })
            .collect()
    }

    #[test]
    fn full_reports_must_meet_the_cluster_scaling_floor() {
        let mut report = NetBenchReport {
            quick: false,
            compute_threads: 4,
            link_delay_ms: 1.0,
            entries: vec![
                entry("verify", "v1", 1, 10.0),
                entry("verify", "v2", 64, 40.0),
                entry("display_puzzle", "v1", 1, 10.0),
                entry("display_puzzle", "v2", 64, 40.0),
                entry("answer_puzzle_batch", "v1", 1, 5.0),
                entry("answer_puzzle_batch", "v2", 64, 20.0),
            ],
            conn_scale: vec![ConnScaleEntry {
                connections: 64,
                depth: 64,
                ops_per_s: 9_000.0,
                p50_ms: 4.0,
                p99_ms: 11.0,
            }],
            cluster: cluster_tiers(2.8),
            cluster_window: 4,
        };
        validate_json(&to_json(&report)).expect("2.8x clears the 2.5x floor");

        report.cluster = cluster_tiers(1.4);
        let err = validate_json(&to_json(&report)).unwrap_err();
        assert!(err.contains("below"), "floor violation must name the ratio: {err}");

        // A quick run with the same weak scaling still validates — the
        // floor binds only the committed full report.
        report.quick = true;
        validate_json(&to_json(&report)).expect("quick reports are exempt from the floor");

        // A full report with no 3-node tier at all is rejected.
        report.quick = false;
        report.cluster.truncate(1);
        assert!(validate_json(&to_json(&report)).is_err(), "full report needs the 3-node tier");
    }

    #[test]
    fn speedup_is_relative_to_the_v1_baseline() {
        let report = NetBenchReport {
            quick: true,
            compute_threads: 4,
            link_delay_ms: 1.0,
            entries: vec![entry("verify", "v1", 1, 10.0), entry("verify", "v2", 16, 35.0)],
            conn_scale: Vec::new(),
            cluster: Vec::new(),
            cluster_window: 4,
        };
        let e = report.entry("verify", "v2", 16).unwrap();
        assert!((report.speedup_vs_v1(e) - 3.5).abs() < 1e-12);
        // No baseline → 0, not a panic or a bogus ratio.
        let orphan = entry("display_puzzle", "v2", 4, 9.0);
        assert_eq!(report.speedup_vs_v1(&orphan), 0.0);
    }
}
