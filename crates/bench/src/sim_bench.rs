//! Simulation-engine scaling sweep, exported as `BENCH_sim.json`.
//!
//! Runs the `sp-sim` discrete-event engine at increasing population
//! sizes and reports event/decision throughput and decision latency
//! percentiles. Every sweep entry also records the run's decision-log
//! hash — the report doubles as a reproducibility receipt: re-running
//! the same sweep on any machine at any `SP_PAR_THREADS` must yield the
//! same hashes (only the timing columns may move).

use sp_sim::{run, SimConfig, SimReport};

/// Schema tag written into (and required from) `BENCH_sim.json`.
pub const SIM_BENCH_SCHEMA: &str = "sp-bench/sim/v1";

/// Sweep knobs for the simulation benchmark.
#[derive(Clone, Debug)]
pub struct SimBenchConfig {
    /// Base seed for every run in the sweep.
    pub seed: u64,
    /// Population sizes to sweep.
    pub user_counts: Vec<u64>,
    /// Whether this is the reduced CI sweep.
    pub quick: bool,
}

impl Default for SimBenchConfig {
    fn default() -> Self {
        Self { seed: 42, user_counts: vec![10_000, 100_000, 1_000_000], quick: false }
    }
}

impl SimBenchConfig {
    /// Reduced sweep for CI smoke runs: small populations, same schema.
    #[must_use]
    pub fn quick() -> Self {
        Self { seed: 42, user_counts: vec![1_000, 5_000], quick: true }
    }
}

/// One population-size measurement.
#[derive(Clone, Debug)]
pub struct SimEntry {
    /// Simulated users.
    pub users: u64,
    /// Events executed.
    pub events: u64,
    /// Events per wall-clock second.
    pub events_per_s: f64,
    /// Access decisions taken (grants + denials).
    pub decisions: u64,
    /// Decisions per wall-clock second.
    pub decisions_per_s: f64,
    /// Median decision latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile decision latency, microseconds.
    pub p99_us: f64,
    /// Attempts granted.
    pub grants: u64,
    /// Attempts denied.
    pub denials: u64,
    /// Denials stopped by the ReBAC pre-filter.
    pub prefiltered: u64,
    /// The run's decision-log hash (16 hex digits) — the
    /// reproducibility receipt.
    pub log_hash: String,
}

impl From<&SimReport> for SimEntry {
    fn from(r: &SimReport) -> Self {
        Self {
            users: r.users,
            events: r.events,
            events_per_s: r.events_per_s,
            decisions: r.decisions,
            decisions_per_s: r.decisions_per_s,
            p50_us: r.p50_us,
            p99_us: r.p99_us,
            grants: r.counters.grants,
            denials: r.counters.denials,
            prefiltered: r.counters.prefiltered,
            log_hash: r.hash_hex(),
        }
    }
}

/// A full simulation sweep, ready to serialize.
#[derive(Clone, Debug)]
pub struct SimBenchReport {
    /// Whether the reduced CI sweep produced this report.
    pub quick: bool,
    /// Base seed used for every run.
    pub seed: u64,
    /// One entry per population size, in sweep order.
    pub entries: Vec<SimEntry>,
}

/// Runs the sweep: one full simulation per population size.
///
/// # Panics
///
/// Panics if any run reports an invariant violation — a benchmark
/// over a broken protocol stack would measure nothing.
#[must_use]
pub fn run_sweep(cfg: &SimBenchConfig) -> SimBenchReport {
    let entries = cfg
        .user_counts
        .iter()
        .map(|&users| {
            let report = run(&SimConfig::new(cfg.seed, users))
                .unwrap_or_else(|e| panic!("sim invariant violated at {users} users: {e}"));
            SimEntry::from(&report)
        })
        .collect();
    SimBenchReport { quick: cfg.quick, seed: cfg.seed, entries }
}

/// Serializes a report to the `BENCH_sim.json` document.
#[must_use]
pub fn to_json(report: &SimBenchReport) -> String {
    fn num(v: f64) -> String {
        if v.is_finite() {
            format!("{v:.3}")
        } else {
            "0.000".to_owned()
        }
    }
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{SIM_BENCH_SCHEMA}\",\n"));
    out.push_str(&format!("  \"quick\": {},\n", report.quick));
    out.push_str(&format!("  \"seed\": {},\n", report.seed));
    out.push_str("  \"entries\": [\n");
    for (i, e) in report.entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"users\": {}, \"events\": {}, \"events_per_s\": {}, \"decisions\": {}, \"decisions_per_s\": {}, \"p50_us\": {}, \"p99_us\": {}, \"grants\": {}, \"denials\": {}, \"prefiltered\": {}, \"log_hash\": \"{}\"}}{}\n",
            e.users,
            e.events,
            num(e.events_per_s),
            e.decisions,
            num(e.decisions_per_s),
            num(e.p50_us),
            num(e.p99_us),
            e.grants,
            e.denials,
            e.prefiltered,
            e.log_hash,
            if i + 1 == report.entries.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders the report as the human-readable table the `figures` binary
/// prints alongside the JSON.
#[must_use]
pub fn render(report: &SimBenchReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "simulation scaling sweep (seed {}, 48 ticks, real protocol stack)\n",
        report.seed
    ));
    out.push_str(&format!(
        "{:<10} {:>8} {:>11} {:>10} {:>12} {:>9} {:>9} {:>18}\n",
        "users", "events", "events/s", "decisions", "decisions/s", "p50 µs", "p99 µs", "log hash"
    ));
    for e in &report.entries {
        out.push_str(&format!(
            "{:<10} {:>8} {:>11.1} {:>10} {:>12.1} {:>9.1} {:>9.1} {:>18}\n",
            e.users,
            e.events,
            e.events_per_s,
            e.decisions,
            e.decisions_per_s,
            e.p50_us,
            e.p99_us,
            e.log_hash,
        ));
    }
    out
}

/// Validates a `BENCH_sim.json` document: syntactically well-formed
/// JSON, the right schema tag, a non-empty sweep with all fields, and
/// well-formed 16-hex-digit log hashes. Returns a description of the
/// first problem.
///
/// # Errors
///
/// Returns a human-readable description of the first check that failed.
pub fn validate_json(doc: &str) -> Result<(), String> {
    crate::json_check::check_syntax(doc)?;
    if !doc.contains(&format!("\"schema\": \"{SIM_BENCH_SCHEMA}\"")) {
        return Err(format!("missing schema tag {SIM_BENCH_SCHEMA:?}"));
    }
    if !doc.contains("\"entries\": [") {
        return Err("missing the \"entries\": [ array".to_owned());
    }
    for field in [
        "\"seed\":",
        "\"users\":",
        "\"events\":",
        "\"events_per_s\":",
        "\"decisions\":",
        "\"decisions_per_s\":",
        "\"p50_us\":",
        "\"p99_us\":",
        "\"grants\":",
        "\"denials\":",
        "\"prefiltered\":",
        "\"log_hash\":",
    ] {
        if !doc.contains(field) {
            return Err(format!("missing the {field} field"));
        }
    }
    // Every log_hash must look like a 64-bit FNV in hex.
    for chunk in doc.split("\"log_hash\": \"").skip(1) {
        let Some(hash) = chunk.split('"').next() else {
            return Err("unterminated log_hash string".to_owned());
        };
        if hash.len() != 16 || !hash.chars().all(|c| c.is_ascii_hexdigit()) {
            return Err(format!("malformed log_hash {hash:?} (want 16 hex digits)"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SimBenchConfig {
        SimBenchConfig { seed: 7, user_counts: vec![300, 600], quick: true }
    }

    #[test]
    fn sweep_produces_validating_json_with_stable_hashes() {
        let a = run_sweep(&tiny());
        assert_eq!(a.entries.len(), 2);
        for e in &a.entries {
            assert!(e.events > 0);
            assert!(e.decisions > 0);
            assert!(e.grants > 0 && e.denials > 0, "degenerate workload: {e:?}");
            assert_eq!(e.log_hash.len(), 16);
        }
        let json = to_json(&a);
        validate_json(&json).expect("emitted document validates");
        assert!(render(&a).contains("log hash"));

        // Hashes are part of the schema contract: a re-run reproduces
        // them exactly even though the timing columns move.
        let b = run_sweep(&tiny());
        for (x, y) in a.entries.iter().zip(&b.entries) {
            assert_eq!(x.log_hash, y.log_hash);
            assert_eq!(x.decisions, y.decisions);
        }
    }

    #[test]
    fn validator_rejects_mangled_documents() {
        let report = SimBenchReport {
            quick: true,
            seed: 7,
            entries: vec![SimEntry {
                users: 300,
                events: 4_000,
                events_per_s: 1_000.0,
                decisions: 2_800,
                decisions_per_s: 700.0,
                p50_us: 12.0,
                p99_us: 80.0,
                grants: 900,
                denials: 1_900,
                prefiltered: 600,
                log_hash: "0123456789abcdef".to_owned(),
            }],
        };
        let json = to_json(&report);
        validate_json(&json).unwrap();
        assert!(validate_json(&json[..json.len() - 4]).is_err(), "truncated");
        assert!(validate_json(&json.replace("sim/v1", "sim/v9")).is_err(), "wrong schema");
        assert!(validate_json(&json.replace("\"p99_us\"", "\"p99\"")).is_err(), "missing field");
        assert!(
            validate_json(&json.replace("0123456789abcdef", "not-a-hash-value!")).is_err(),
            "malformed hash"
        );
        assert!(validate_json(&json.replace("0123456789abcdef", "0123")).is_err(), "short hash");
        assert!(validate_json("not json").is_err());
    }
}
