//! A minimal JSON syntax checker shared by every `BENCH_*.json`
//! validator (no value materialization): enough to reject truncated or
//! mangled documents in the CI smoke jobs without pulling in a serde
//! stack the workspace doesn't vendor.

/// Checks that `doc` is one syntactically well-formed JSON value with
/// nothing trailing.
///
/// # Errors
///
/// Returns a description of the first syntax problem.
pub fn check_syntax(doc: &str) -> Result<(), String> {
    let bytes = doc.as_bytes();
    let end = parse_value(bytes, skip_ws(bytes, 0))?;
    if skip_ws(bytes, end) != bytes.len() {
        return Err("trailing garbage after the top-level value".into());
    }
    Ok(())
}

fn skip_ws(b: &[u8], mut i: usize) -> usize {
    while i < b.len() && matches!(b[i], b' ' | b'\t' | b'\n' | b'\r') {
        i += 1;
    }
    i
}

fn parse_value(b: &[u8], i: usize) -> Result<usize, String> {
    match b.get(i) {
        None => Err("unexpected end of document".into()),
        Some(b'{') => parse_seq(b, i, b'}', true),
        Some(b'[') => parse_seq(b, i, b']', false),
        Some(b'"') => parse_string(b, i),
        Some(b't') => parse_lit(b, i, b"true"),
        Some(b'f') => parse_lit(b, i, b"false"),
        Some(b'n') => parse_lit(b, i, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, i),
        Some(c) => Err(format!("unexpected byte {:?} at offset {i}", *c as char)),
    }
}

fn parse_seq(b: &[u8], mut i: usize, close: u8, keyed: bool) -> Result<usize, String> {
    i = skip_ws(b, i + 1);
    if b.get(i) == Some(&close) {
        return Ok(i + 1);
    }
    loop {
        if keyed {
            i = parse_string(b, skip_ws(b, i))?;
            i = skip_ws(b, i);
            if b.get(i) != Some(&b':') {
                return Err(format!("expected ':' at offset {i}"));
            }
            i += 1;
        }
        i = parse_value(b, skip_ws(b, i))?;
        i = skip_ws(b, i);
        match b.get(i) {
            Some(b',') => i += 1,
            Some(c) if *c == close => return Ok(i + 1),
            _ => return Err(format!("expected ',' or closer at offset {i}")),
        }
    }
}

fn parse_string(b: &[u8], i: usize) -> Result<usize, String> {
    if b.get(i) != Some(&b'"') {
        return Err(format!("expected string at offset {i}"));
    }
    let mut j = i + 1;
    while let Some(&c) = b.get(j) {
        match c {
            b'"' => return Ok(j + 1),
            b'\\' => j += 2,
            _ => j += 1,
        }
    }
    Err("unterminated string".into())
}

fn parse_lit(b: &[u8], i: usize, lit: &[u8]) -> Result<usize, String> {
    if b.len() >= i + lit.len() && &b[i..i + lit.len()] == lit {
        Ok(i + lit.len())
    } else {
        Err(format!("bad literal at offset {i}"))
    }
}

fn parse_number(b: &[u8], mut i: usize) -> Result<usize, String> {
    let start = i;
    if b.get(i) == Some(&b'-') {
        i += 1;
    }
    while i < b.len() && (b[i].is_ascii_digit() || matches!(b[i], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        i += 1;
    }
    if i == start || (i == start + 1 && b[start] == b'-') {
        Err(format!("bad number at offset {start}"))
    } else {
        Ok(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_wellformed_documents() {
        for doc in [
            "{}",
            "[]",
            "null",
            "-3.5e2",
            "{\"a\": [1, 2, {\"b\": \"x\\\"y\"}], \"c\": true}",
            "  {\"k\": false}  ",
        ] {
            check_syntax(doc).unwrap_or_else(|e| panic!("{doc:?} rejected: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for doc in [
            "",
            "not json",
            "{} extra",
            "{\"a\": [1, 2,]}",
            "{\"a\" 1}",
            "{\"unterminated",
            "[1, 2",
            "-",
        ] {
            assert!(check_syntax(doc).is_err(), "{doc:?} accepted");
        }
    }
}
