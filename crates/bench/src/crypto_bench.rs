//! Slow-vs-fast crypto hot-path comparison, exported as `BENCH_crypto.json`.
//!
//! Each entry times one operation through its pre-optimization shape
//! (textbook double-and-add, per-leaf Tate pairings, serial loops — the
//! `*_reference` methods kept for differential testing) and through the
//! optimized path (fixed-base windows, product-of-pairings decrypt, batch
//! inversion, parallel map), recording ops/s for both and the speedup.
//! `N` is the number of leaves/attributes, swept over the paper's
//! context-size range; the access policy is N-of-N so decrypt touches
//! every leaf (the worst case Figure 10 measures).

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use sp_abe::{encode_qa_attribute, AccessTree, CpAbe};
use sp_bigint::{MontCtx, Uint};
use sp_field::Fp2;
use sp_pairing::{LineCache, Pairing};

/// Schema tag written into (and required from) `BENCH_crypto.json`.
///
/// v2 adds the warm line-cache pairing (`pairing_cached`) and the
/// per-kernel micro rows (`mont_square`, `fp2_mul`, `gt_pow`,
/// `split_scalar_mul`) on top of the v1 operation set.
pub const CRYPTO_BENCH_SCHEMA: &str = "sp-bench/crypto/v2";

/// The operations every report must cover.
pub const CRYPTO_BENCH_OPS: [&str; 10] = [
    "encrypt",
    "keygen",
    "decrypt",
    "pairing",
    "scalar_mul",
    "pairing_cached",
    "mont_square",
    "fp2_mul",
    "gt_pow",
    "split_scalar_mul",
];

/// Committed v1 full-sweep throughput at `N = 6` (the paper's central
/// context size), measured before the second-wave kernels landed. The
/// validator requires the committed v2 report to beat these by
/// [`KERNEL_SPEEDUP_FLOOR`].
pub const V1_PAIRING_FAST_N6: f64 = 413.019;
/// See [`V1_PAIRING_FAST_N6`].
pub const V1_DECRYPT_FAST_N6: f64 = 141.188;
/// Required improvement of the committed v2 fast paths over the v1
/// baselines above.
pub const KERNEL_SPEEDUP_FLOOR: f64 = 1.5;
/// Required warm-over-cold ratio for the `pairing_cached` row in a
/// committed (non-quick) report.
pub const CACHE_SPEEDUP_FLOOR: f64 = 2.0;

/// Sweep and sampling knobs for the crypto comparison.
#[derive(Clone, Debug)]
pub struct CryptoBenchConfig {
    /// Leaf/attribute counts to sweep.
    pub ns: Vec<usize>,
    /// Minimum timed iterations per measurement.
    pub min_iters: u32,
    /// Minimum wall time per measurement.
    pub min_time: Duration,
    /// Whether this is the reduced CI sweep.
    pub quick: bool,
}

impl Default for CryptoBenchConfig {
    fn default() -> Self {
        Self {
            ns: (2..=10).collect(),
            min_iters: 10,
            min_time: Duration::from_millis(200),
            quick: false,
        }
    }
}

impl CryptoBenchConfig {
    /// Reduced sweep for CI smoke runs: endpoint sizes only, short
    /// sampling windows. Numbers are noisy but the schema and the
    /// direction of every speedup are still meaningful.
    pub fn quick() -> Self {
        Self { ns: vec![2, 10], min_iters: 3, min_time: Duration::from_millis(20), quick: true }
    }
}

/// One (operation, N) measurement.
#[derive(Clone, Debug)]
pub struct CryptoBenchEntry {
    /// Operation name (one of [`CRYPTO_BENCH_OPS`]).
    pub op: &'static str,
    /// Leaves/attributes (for `pairing`/`scalar_mul`: group-operation
    /// count per timed iteration).
    pub n: usize,
    /// Pre-optimization throughput.
    pub slow_ops_per_s: f64,
    /// Optimized-path throughput.
    pub fast_ops_per_s: f64,
}

impl CryptoBenchEntry {
    /// Fast-over-slow throughput ratio.
    pub fn speedup(&self) -> f64 {
        if self.slow_ops_per_s > 0.0 {
            self.fast_ops_per_s / self.slow_ops_per_s
        } else {
            0.0
        }
    }
}

/// A full sweep, ready to serialize.
#[derive(Clone, Debug)]
pub struct CryptoBenchReport {
    /// Whether the reduced CI sweep produced this report.
    pub quick: bool,
    /// All measurements, grouped by operation then N.
    pub entries: Vec<CryptoBenchEntry>,
}

impl CryptoBenchReport {
    /// The entry for one (op, n), if measured.
    pub fn entry(&self, op: &str, n: usize) -> Option<&CryptoBenchEntry> {
        self.entries.iter().find(|e| e.op == op && e.n == n)
    }
}

/// Times `op` until both the iteration and wall-time floors are met,
/// returning throughput in ops/s.
fn ops_per_s<T>(cfg: &CryptoBenchConfig, mut op: impl FnMut() -> T) -> f64 {
    std::hint::black_box(op()); // warm-up (fills lazy tables / caches)
    let start = Instant::now();
    let mut iters = 0u32;
    while iters < cfg.min_iters || start.elapsed() < cfg.min_time {
        std::hint::black_box(op());
        iters += 1;
    }
    iters as f64 / start.elapsed().as_secs_f64()
}

/// Runs the full slow-vs-fast sweep.
pub fn run(cfg: &CryptoBenchConfig) -> CryptoBenchReport {
    let abe = CpAbe::insecure_test_params();
    let pairing = Pairing::insecure_test_params();
    let mut rng = StdRng::seed_from_u64(2014);
    let (pk, mk) = abe.setup(&mut rng);

    let mut entries = Vec::new();
    for &n in &cfg.ns {
        let pairs: Vec<(String, String)> =
            (0..n).map(|i| (format!("q{i}"), format!("a{i}"))).collect();
        // N-of-N: decrypt must satisfy (and pair at) every leaf.
        let tree = AccessTree::context_tree(n, &pairs).expect("valid tree");
        let attrs: Vec<String> = pairs.iter().map(|(q, a)| encode_qa_attribute(q, a)).collect();
        let m = abe.random_message(&mut rng);

        let slow = ops_per_s(cfg, || {
            let mut r = StdRng::seed_from_u64(77);
            abe.encrypt_reference(&pk, &m, &tree, &mut r).expect("encrypt")
        });
        let fast = ops_per_s(cfg, || {
            let mut r = StdRng::seed_from_u64(77);
            abe.encrypt(&pk, &m, &tree, &mut r).expect("encrypt")
        });
        entries.push(CryptoBenchEntry {
            op: "encrypt",
            n,
            slow_ops_per_s: slow,
            fast_ops_per_s: fast,
        });

        let slow = ops_per_s(cfg, || {
            let mut r = StdRng::seed_from_u64(78);
            abe.keygen_reference(&mk, &attrs, &mut r)
        });
        let fast = ops_per_s(cfg, || {
            let mut r = StdRng::seed_from_u64(78);
            abe.keygen(&mk, &attrs, &mut r)
        });
        entries.push(CryptoBenchEntry {
            op: "keygen",
            n,
            slow_ops_per_s: slow,
            fast_ops_per_s: fast,
        });

        let ct = abe.encrypt(&pk, &m, &tree, &mut rng).expect("encrypt");
        let sk = abe.keygen(&mk, &attrs, &mut rng);
        let slow = ops_per_s(cfg, || abe.decrypt_reference(&ct, &sk).expect("decrypt"));
        let fast = ops_per_s(cfg, || abe.decrypt(&ct, &sk).expect("decrypt"));
        entries.push(CryptoBenchEntry {
            op: "decrypt",
            n,
            slow_ops_per_s: slow,
            fast_ops_per_s: fast,
        });

        // N independent pairings (the per-leaf cost decrypt used to pay)
        // vs one N-term product sharing squarings and the final
        // exponentiation.
        let points: Vec<(sp_pairing::G1, sp_pairing::G1)> =
            (0..n).map(|_| (pairing.random_g1(&mut rng), pairing.random_g1(&mut rng))).collect();
        let slow = ops_per_s(cfg, || {
            points.iter().map(|(p, q)| pairing.pair_reference(p, q)).collect::<Vec<_>>()
        });
        let fast = ops_per_s(cfg, || {
            let num: Vec<(&sp_pairing::G1, &sp_pairing::G1)> =
                points.iter().map(|(p, q)| (p, q)).collect();
            pairing.pair_product(&num, &[])
        });
        entries.push(CryptoBenchEntry {
            op: "pairing",
            n,
            slow_ops_per_s: slow,
            fast_ops_per_s: fast,
        });

        // N fixed-base multiplications: textbook double-and-add on the
        // generator vs the cached window table.
        let scalars: Vec<sp_pairing::Scalar> =
            (0..n).map(|_| pairing.random_nonzero_scalar(&mut rng)).collect();
        let g = pairing.generator().clone();
        let slow =
            ops_per_s(cfg, || scalars.iter().map(|s| g.mul_uint(&s.to_uint())).collect::<Vec<_>>());
        let fast =
            ops_per_s(cfg, || scalars.iter().map(|s| pairing.mul_generator(s)).collect::<Vec<_>>());
        entries.push(CryptoBenchEntry {
            op: "scalar_mul",
            n,
            slow_ops_per_s: slow,
            fast_ops_per_s: fast,
        });
    }

    // Cold Tate pairing vs the warm line-evaluation cache: the second
    // access to a puzzle skips the Miller-walk point arithmetic and only
    // replays the stored line coefficients against the new argument.
    let p = pairing.random_g1(&mut rng);
    let q = pairing.random_g1(&mut rng);
    let slow = ops_per_s(cfg, || pairing.pair(&p, &q).expect("non-degenerate"));
    let cache = LineCache::new();
    let fast = ops_per_s(cfg, || pairing.pair_cached(&cache, b"bench", &p, &q).expect("pair"));
    entries.push(CryptoBenchEntry {
        op: "pairing_cached",
        n: 1,
        slow_ops_per_s: slow,
        fast_ops_per_s: fast,
    });

    // Per-kernel micro rows. The field kernels run in 1000-op batches
    // (n records the batch size) so the per-call timing overhead does
    // not flatten sub-microsecond speedups.
    let fq = pairing.fq().clone();
    let mctx = MontCtx::new(*fq.modulus()).expect("q is an odd prime");
    let vals: Vec<Uint<8>> = (0..1000).map(|_| *fq.random(&mut rng).mont_repr()).collect();
    let slow = ops_per_s(cfg, || vals.iter().map(|a| mctx.square_reference(a)).collect::<Vec<_>>());
    let fast = ops_per_s(cfg, || vals.iter().map(|a| mctx.square(a)).collect::<Vec<_>>());
    entries.push(CryptoBenchEntry {
        op: "mont_square",
        n: 1000,
        slow_ops_per_s: slow,
        fast_ops_per_s: fast,
    });

    let rand_fp2 =
        |rng: &mut StdRng| Fp2::new(fq.random(rng), fq.random(rng)).expect("q is 3 mod 4");
    let xs: Vec<Fp2<8>> = (0..1000).map(|_| rand_fp2(&mut rng)).collect();
    let ys: Vec<Fp2<8>> = (0..1000).map(|_| rand_fp2(&mut rng)).collect();
    let slow =
        ops_per_s(cfg, || xs.iter().zip(&ys).map(|(x, y)| x.mul_reference(y)).collect::<Vec<_>>());
    let fast = ops_per_s(cfg, || xs.iter().zip(&ys).map(|(x, y)| x * y).collect::<Vec<_>>());
    entries.push(CryptoBenchEntry {
        op: "fp2_mul",
        n: 1000,
        slow_ops_per_s: slow,
        fast_ops_per_s: fast,
    });

    // Cyclotomic exponentiation (conjugation-as-inversion NAF walk on
    // norm-1 pairing values) vs the generic square-and-multiply twin.
    let e = pairing.pair(&p, &q).expect("non-degenerate");
    let exp = pairing.random_nonzero_scalar(&mut rng).to_uint();
    let slow = ops_per_s(cfg, || e.pow_reference(&exp));
    let fast = ops_per_s(cfg, || e.pow(&exp));
    entries.push(CryptoBenchEntry {
        op: "gt_pow",
        n: 1,
        slow_ops_per_s: slow,
        fast_ops_per_s: fast,
    });

    // Half-width split + Straus interleaving vs the plain sliding window
    // on a variable base.
    let slow = ops_per_s(cfg, || p.mul_uint(&exp));
    let fast = ops_per_s(cfg, || p.mul_uint_split(&exp));
    entries.push(CryptoBenchEntry {
        op: "split_scalar_mul",
        n: 1,
        slow_ops_per_s: slow,
        fast_ops_per_s: fast,
    });

    CryptoBenchReport { quick: cfg.quick, entries }
}

/// Serializes a report to the `BENCH_crypto.json` document.
pub fn to_json(report: &CryptoBenchReport) -> String {
    fn num(v: f64) -> String {
        if v.is_finite() {
            format!("{v:.3}")
        } else {
            "0.000".to_owned()
        }
    }
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{CRYPTO_BENCH_SCHEMA}\",\n"));
    out.push_str(&format!("  \"quick\": {},\n", report.quick));
    out.push_str("  \"entries\": [\n");
    for (i, e) in report.entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"op\": \"{}\", \"n\": {}, \"slow_ops_per_s\": {}, \"fast_ops_per_s\": {}, \"speedup\": {}}}{}\n",
            e.op,
            e.n,
            num(e.slow_ops_per_s),
            num(e.fast_ops_per_s),
            num(e.speedup()),
            if i + 1 == report.entries.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders the report as the human-readable table the `figures` binary
/// prints alongside the JSON.
pub fn render(report: &CryptoBenchReport) -> String {
    let mut out = String::new();
    out.push_str("crypto hot paths: slow (reference) vs fast, ops/s\n");
    out.push_str(&format!(
        "{:<12} {:>4} {:>14} {:>14} {:>9}\n",
        "op", "N", "slow", "fast", "speedup"
    ));
    for e in &report.entries {
        out.push_str(&format!(
            "{:<12} {:>4} {:>14.1} {:>14.1} {:>8.2}x\n",
            e.op,
            e.n,
            e.slow_ops_per_s,
            e.fast_ops_per_s,
            e.speedup()
        ));
    }
    out
}

/// Extracts one numeric field from the entry for `(op, n)`, relying on
/// the fixed one-entry-per-line layout [`to_json`] emits.
fn entry_field(doc: &str, op: &str, n: usize, field: &str) -> Option<f64> {
    let line = doc.lines().find(|l| l.contains(&format!("\"op\": \"{op}\", \"n\": {n},")))?;
    let tail = line.split(&format!("\"{field}\": ")).nth(1)?;
    let num: String =
        tail.chars().take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-').collect();
    num.parse().ok()
}

/// Validates a `BENCH_crypto.json` document: syntactically well-formed
/// JSON, the v2 schema tag, and at least one entry per operation with
/// all five fields present. A committed (non-quick) report must
/// additionally clear the performance pins: the `pairing` and `decrypt`
/// fast paths at `N = 6` beat the v1 baselines by
/// [`KERNEL_SPEEDUP_FLOOR`], and the warm `pairing_cached` path runs at
/// least [`CACHE_SPEEDUP_FLOOR`]× the cold pairing. Quick reports skip
/// the pins — their sampling windows are too short to pin throughput.
/// Returns a description of the first problem.
pub fn validate_json(doc: &str) -> Result<(), String> {
    crate::json_check::check_syntax(doc)?;
    if !doc.contains(&format!("\"schema\": \"{CRYPTO_BENCH_SCHEMA}\"")) {
        return Err(format!("missing schema tag {CRYPTO_BENCH_SCHEMA:?}"));
    }
    if !doc.contains("\"entries\": [") {
        return Err("missing entries array".into());
    }
    for op in CRYPTO_BENCH_OPS {
        if !doc.contains(&format!("\"op\": \"{op}\"")) {
            return Err(format!("no entry for operation {op:?}"));
        }
    }
    for field in ["\"n\":", "\"slow_ops_per_s\":", "\"fast_ops_per_s\":", "\"speedup\":"] {
        if !doc.contains(field) {
            return Err(format!("entries are missing the {field} field"));
        }
    }
    if doc.contains("\"quick\": false") {
        for (op, baseline) in [("pairing", V1_PAIRING_FAST_N6), ("decrypt", V1_DECRYPT_FAST_N6)] {
            let fast = entry_field(doc, op, 6, "fast_ops_per_s")
                .ok_or_else(|| format!("full report lacks the {op:?} N=6 entry"))?;
            let floor = baseline * KERNEL_SPEEDUP_FLOOR;
            if fast < floor {
                return Err(format!(
                    "{op} fast path at N=6 is {fast:.1} ops/s, below the pinned \
                     {KERNEL_SPEEDUP_FLOOR}x-over-v1 floor of {floor:.1}"
                ));
            }
        }
        let warm = entry_field(doc, "pairing_cached", 1, "speedup")
            .ok_or("full report lacks the pairing_cached entry")?;
        if warm < CACHE_SPEEDUP_FLOOR {
            return Err(format!(
                "warm pairing_cached speedup is {warm:.2}x, below the pinned \
                 {CACHE_SPEEDUP_FLOOR}x-over-cold floor"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CryptoBenchConfig {
        CryptoBenchConfig {
            ns: vec![2],
            min_iters: 1,
            min_time: Duration::from_millis(1),
            quick: true,
        }
    }

    #[test]
    fn report_covers_every_op_and_serializes_validly() {
        let report = run(&tiny());
        for op in CRYPTO_BENCH_OPS {
            let e = report.entries.iter().find(|e| e.op == op).expect("op measured");
            assert!(e.slow_ops_per_s > 0.0 && e.fast_ops_per_s > 0.0);
        }
        let json = to_json(&report);
        validate_json(&json).expect("emitted document validates");
        let table = render(&report);
        assert!(table.contains("encrypt") && table.contains("speedup"));
        assert!(table.contains("pairing_cached") && table.contains("mont_square"));
    }

    #[test]
    fn validator_rejects_mangled_documents() {
        let report = run(&tiny());
        let json = to_json(&report);
        assert!(validate_json(&json[..json.len() - 4]).is_err(), "truncated");
        assert!(validate_json(&json.replace("crypto/v2", "crypto/v9")).is_err(), "wrong schema");
        assert!(validate_json(&json.replace("crypto/v2", "crypto/v1")).is_err(), "stale schema");
        assert!(validate_json(&json.replace("\"decrypt\"", "\"dec\"")).is_err(), "missing op");
        assert!(
            validate_json(&json.replace("\"pairing_cached\"", "\"pc\"")).is_err(),
            "missing v2 op"
        );
        assert!(validate_json("{\"a\": [1, 2,]}").is_err(), "trailing comma");
        assert!(validate_json("not json").is_err());
        assert!(validate_json("{} extra").is_err());
    }

    /// A hand-built "full" document exercising the committed-report
    /// pins without paying for a real full sweep.
    fn full_doc(pairing_fast: f64, decrypt_fast: f64, cache_speedup: f64) -> String {
        let mut report = run(&tiny());
        report.quick = false;
        report.entries.push(CryptoBenchEntry {
            op: "pairing",
            n: 6,
            slow_ops_per_s: 100.0,
            fast_ops_per_s: pairing_fast,
        });
        report.entries.push(CryptoBenchEntry {
            op: "decrypt",
            n: 6,
            slow_ops_per_s: 50.0,
            fast_ops_per_s: decrypt_fast,
        });
        // Overwrite the measured pairing_cached row with a synthetic one
        // at the requested warm-over-cold ratio.
        report.entries.retain(|e| e.op != "pairing_cached");
        report.entries.push(CryptoBenchEntry {
            op: "pairing_cached",
            n: 1,
            slow_ops_per_s: 100.0,
            fast_ops_per_s: 100.0 * cache_speedup,
        });
        to_json(&report)
    }

    #[test]
    fn validator_pins_full_reports_to_the_v1_baselines() {
        let good =
            full_doc(V1_PAIRING_FAST_N6 * 2.0, V1_DECRYPT_FAST_N6 * 2.0, CACHE_SPEEDUP_FLOOR + 1.0);
        validate_json(&good).expect("clears every pin");

        let slow_pairing =
            full_doc(V1_PAIRING_FAST_N6 * 1.2, V1_DECRYPT_FAST_N6 * 2.0, CACHE_SPEEDUP_FLOOR + 1.0);
        assert!(validate_json(&slow_pairing).unwrap_err().contains("pairing fast path"));

        let slow_decrypt =
            full_doc(V1_PAIRING_FAST_N6 * 2.0, V1_DECRYPT_FAST_N6 * 1.2, CACHE_SPEEDUP_FLOOR + 1.0);
        assert!(validate_json(&slow_decrypt).unwrap_err().contains("decrypt fast path"));

        let cold_cache = full_doc(V1_PAIRING_FAST_N6 * 2.0, V1_DECRYPT_FAST_N6 * 2.0, 1.1);
        assert!(validate_json(&cold_cache).unwrap_err().contains("pairing_cached speedup"));

        // Quick reports skip the pins entirely.
        let quick = run(&tiny());
        validate_json(&to_json(&quick)).expect("quick report has no pins");
    }

    #[test]
    fn speedup_is_fast_over_slow() {
        let e =
            CryptoBenchEntry { op: "encrypt", n: 2, slow_ops_per_s: 10.0, fast_ops_per_s: 30.0 };
        assert!((e.speedup() - 3.0).abs() < 1e-12);
        let z = CryptoBenchEntry { op: "encrypt", n: 2, slow_ops_per_s: 0.0, fast_ops_per_s: 30.0 };
        assert_eq!(z.speedup(), 0.0);
    }
}
