//! Prints the Figure 10 reproduction tables.
//!
//! ```text
//! cargo run -p sp-bench --release --bin figures            # all panels
//! cargo run -p sp-bench --release --bin figures -- fig10a  # one panel
//! cargo run -p sp-bench --release --bin figures -- quick   # fast sweep
//! cargo run -p sp-bench --release --bin figures -- --out dir # + CSV & SVG
//! cargo run -p sp-bench --release --bin figures -- --bench-json
//!     # slow-vs-fast crypto sweep -> BENCH_crypto.json (`quick` shrinks it)
//! cargo run -p sp-bench --bin figures -- --check-bench-json BENCH_crypto.json
//!     # validate an existing report (CI smoke)
//! cargo run -p sp-bench --release --bin figures -- --bench-net-json
//!     # end-to-end RPC pipelining sweep -> BENCH_net.json (`quick` shrinks it)
//! cargo run -p sp-bench --bin figures -- --check-bench-net-json BENCH_net.json
//!     # validate an existing network report (CI smoke)
//! cargo run -p sp-bench --release --bin figures -- --bench-store-json
//!     # WAL append/recovery sweep -> BENCH_store.json (`quick` shrinks it)
//! cargo run -p sp-bench --bin figures -- --check-bench-store-json BENCH_store.json
//!     # validate an existing storage report (CI smoke)
//! cargo run -p sp-bench --release --bin figures -- --bench-sim-json
//!     # simulation scaling sweep -> BENCH_sim.json (`quick` shrinks it)
//! cargo run -p sp-bench --bin figures -- --check-bench-sim-json BENCH_sim.json
//!     # validate an existing simulation report (CI smoke)
//! ```

use sp_bench::{
    crypto_bench, export,
    figures::{self, SweepConfig},
    net_bench, sim_bench, store_bench,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // Hidden helper mode: the net bench's connection-scaling sweep forks
    // the current binary as `conn-hold --addr A --count N` to park idle
    // client sockets in their own process (fd limits are per-process).
    if args.first().map(String::as_str) == Some("conn-hold") {
        let value = |flag: &str| {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1))
                .unwrap_or_else(|| panic!("conn-hold needs {flag}"))
        };
        let addr = value("--addr").parse().expect("conn-hold --addr");
        let count = value("--count").parse().expect("conn-hold --count");
        net_bench::conn_hold(addr, count).expect("conn-hold");
        return;
    }

    let quick = args.iter().any(|a| a == "quick");
    let jitter = args.iter().any(|a| a == "jitter");

    if let Some(i) = args.iter().position(|a| a == "--check-bench-json") {
        let path = args.get(i + 1).map(String::as_str).unwrap_or("BENCH_crypto.json");
        let doc = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
        if let Err(e) = crypto_bench::validate_json(&doc) {
            eprintln!("{path} is not a valid crypto bench report: {e}");
            std::process::exit(1);
        }
        println!("{path}: schema-valid crypto bench report");
        return;
    }

    if let Some(i) = args.iter().position(|a| a == "--check-bench-net-json") {
        let path = args.get(i + 1).map(String::as_str).unwrap_or("BENCH_net.json");
        let doc = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
        if let Err(e) = net_bench::validate_json(&doc) {
            eprintln!("{path} is not a valid net bench report: {e}");
            std::process::exit(1);
        }
        println!("{path}: schema-valid net bench report");
        return;
    }

    if let Some(i) = args.iter().position(|a| a == "--check-bench-store-json") {
        let path = args.get(i + 1).map(String::as_str).unwrap_or("BENCH_store.json");
        let doc = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
        if let Err(e) = store_bench::validate_json(&doc) {
            eprintln!("{path} is not a valid store bench report: {e}");
            std::process::exit(1);
        }
        println!("{path}: schema-valid store bench report");
        return;
    }

    if let Some(i) = args.iter().position(|a| a == "--check-bench-sim-json") {
        let path = args.get(i + 1).map(String::as_str).unwrap_or("BENCH_sim.json");
        let doc = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
        if let Err(e) = sim_bench::validate_json(&doc) {
            eprintln!("{path} is not a valid sim bench report: {e}");
            std::process::exit(1);
        }
        println!("{path}: schema-valid sim bench report");
        return;
    }

    if args.iter().any(|a| a == "--bench-sim-json") {
        let cfg = if quick {
            sim_bench::SimBenchConfig::quick()
        } else {
            sim_bench::SimBenchConfig::default()
        };
        let report = sim_bench::run_sweep(&cfg);
        print!("{}", sim_bench::render(&report));
        let json = sim_bench::to_json(&report);
        sim_bench::validate_json(&json).expect("emitted report validates");
        let path = args
            .iter()
            .position(|a| a == "--bench-out")
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
            .unwrap_or("BENCH_sim.json");
        std::fs::write(path, json).expect("writing bench json");
        eprintln!("wrote {path}");
        return;
    }

    if args.iter().any(|a| a == "--bench-store-json") {
        let cfg = if quick {
            store_bench::StoreBenchConfig::quick()
        } else {
            store_bench::StoreBenchConfig::default()
        };
        let report = store_bench::run(&cfg);
        print!("{}", store_bench::render(&report));
        let json = store_bench::to_json(&report);
        store_bench::validate_json(&json).expect("emitted report validates");
        let path = args
            .iter()
            .position(|a| a == "--bench-out")
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
            .unwrap_or("BENCH_store.json");
        std::fs::write(path, json).expect("writing bench json");
        eprintln!("wrote {path}");
        return;
    }

    if args.iter().any(|a| a == "--bench-net-json") {
        let cfg = if quick {
            net_bench::NetBenchConfig::quick()
        } else {
            net_bench::NetBenchConfig::default()
        };
        let report = net_bench::run(&cfg);
        print!("{}", net_bench::render(&report));
        let json = net_bench::to_json(&report);
        net_bench::validate_json(&json).expect("emitted report validates");
        let path = args
            .iter()
            .position(|a| a == "--bench-out")
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
            .unwrap_or("BENCH_net.json");
        std::fs::write(path, json).expect("writing bench json");
        eprintln!("wrote {path}");
        return;
    }

    if args.iter().any(|a| a == "--bench-json") {
        let cfg = if quick {
            crypto_bench::CryptoBenchConfig::quick()
        } else {
            crypto_bench::CryptoBenchConfig::default()
        };
        let report = crypto_bench::run(&cfg);
        print!("{}", crypto_bench::render(&report));
        let json = crypto_bench::to_json(&report);
        crypto_bench::validate_json(&json).expect("emitted report validates");
        let path = args
            .iter()
            .position(|a| a == "--bench-out")
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
            .unwrap_or("BENCH_crypto.json");
        std::fs::write(path, json).expect("writing bench json");
        eprintln!("wrote {path}");
        return;
    }
    let mut cfg = if quick { SweepConfig::quick() } else { SweepConfig::default() };
    if jitter {
        cfg.network_jitter = 0.25;
    }
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);

    let out_flag_value = args.iter().position(|a| a == "--out").map(|i| i + 1);
    let wanted: Vec<&str> = args
        .iter()
        .enumerate()
        .filter(|(i, _)| Some(*i) != out_flag_value)
        .filter_map(|(_, a)| a.strip_prefix("fig"))
        .filter(|sel| matches!(*sel, "10a" | "10b" | "10c" | "10d"))
        .collect();

    let panels = figures::all_panels(&cfg);
    let mut printed = 0;
    for panel in &panels {
        if wanted.is_empty() || wanted.contains(&panel.id) {
            println!("{}", figures::render(panel));
            printed += 1;
            if let Some(dir) = &out_dir {
                std::fs::create_dir_all(dir).expect("creating output dir");
                let csv = dir.join(format!("fig{}.csv", panel.id));
                let svg = dir.join(format!("fig{}.svg", panel.id));
                std::fs::write(&csv, export::to_csv(panel)).expect("writing csv");
                std::fs::write(&svg, export::to_svg(panel)).expect("writing svg");
                eprintln!("wrote {} and {}", csv.display(), svg.display());
            }
        }
    }
    if printed == 0 {
        eprintln!("unknown figure selector; available: fig10a fig10b fig10c fig10d, plus `quick`");
        std::process::exit(2);
    }
}
