//! Benchmark harness for the Social Puzzles reproduction.
//!
//! [`workload`] generates inputs with the paper's §VIII parameters
//! (100-character messages, 50-character questions, 20-character
//! answers, threshold `k = 1`, context size `N` swept from 2). [`figures`]
//! runs the end-to-end sweeps behind each panel of Figure 10 and returns
//! the same two-term series (local processing delay + network delay) the
//! paper plots; `cargo run -p sp-bench --bin figures` prints them, and
//! the Criterion benches time the same operations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crypto_bench;
pub mod export;
pub mod figures;
pub mod json_check;
pub mod net_bench;
pub mod sim_bench;
pub mod store_bench;
pub mod workload;
