//! Workload generation with the paper's §VIII parameters.
//!
//! "Experiments were performed for message lengths of 100 characters,
//! answers of 20 characters and questions of 50 characters long.
//! Measurements were taken for varying number (N) of contexts, while the
//! threshold k is set to 1."

use rand::distributions::Alphanumeric;
use rand::Rng;
use social_puzzles_core::context::Context;

/// Paper message length (characters).
pub const MESSAGE_LEN: usize = 100;
/// Paper question length (characters).
pub const QUESTION_LEN: usize = 50;
/// Paper answer length (characters).
pub const ANSWER_LEN: usize = 20;
/// Paper threshold.
pub const PAPER_K: usize = 1;
/// Paper context sweep: N from 2 upward ("As CP-ABE does not support
/// (1,1) threshold, observations start from N = 2").
pub const PAPER_N_RANGE: std::ops::RangeInclusive<usize> = 2..=10;

fn random_string<R: Rng + ?Sized>(rng: &mut R, len: usize) -> String {
    rng.sample_iter(&Alphanumeric).take(len).map(char::from).collect()
}

/// A context of `n` pairs with 50-character questions and 20-character
/// answers.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn paper_context<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Context {
    assert!(n > 0, "context needs at least one pair");
    let mut b = Context::builder();
    for i in 0..n {
        // Prefix with the index so questions stay distinct even under the
        // (astronomically unlikely) random collision.
        let q = format!("{i:02}{}", random_string(rng, QUESTION_LEN - 2));
        let a = random_string(rng, ANSWER_LEN);
        b = b.pair(q, a);
    }
    b.build().expect("nonempty, distinct questions")
}

/// A 100-character message.
pub fn paper_message<R: Rng + ?Sized>(rng: &mut R) -> Vec<u8> {
    random_string(rng, MESSAGE_LEN).into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn dimensions_match_paper() {
        let mut rng = StdRng::seed_from_u64(200);
        let ctx = paper_context(5, &mut rng);
        assert_eq!(ctx.len(), 5);
        for p in ctx.pairs() {
            assert_eq!(p.question().len(), QUESTION_LEN);
            assert_eq!(p.answer().len(), ANSWER_LEN);
        }
        assert_eq!(paper_message(&mut rng).len(), MESSAGE_LEN);
    }

    #[test]
    fn contexts_are_distinct_across_calls() {
        let mut rng = StdRng::seed_from_u64(201);
        let a = paper_context(3, &mut rng);
        let b = paper_context(3, &mut rng);
        assert_ne!(a.pairs()[0].answer(), b.pairs()[0].answer());
    }
}
