//! Durable-storage throughput and recovery sweep, exported as
//! `BENCH_store.json`.
//!
//! Two questions the `sp-store` engine must answer with numbers rather
//! than prose:
//!
//! 1. **What does group commit buy?** Every acknowledged mutation costs
//!    an fsync; with one writer that is unavoidable, but with `W`
//!    concurrent writers the group-commit leader can absorb all waiting
//!    appends into a single `fsync`, so throughput should scale with the
//!    batch size instead of the disk's sync latency. The sweep appends
//!    the same workload through both modes (`group_commit` vs.
//!    `fsync_each`) at several writer counts and reports the ratio.
//!
//! 2. **How fast is recovery?** Crash recovery replays the snapshot plus
//!    the log tail. The sweep writes logs of increasing record counts
//!    (no snapshot, the worst case), reopens the store cold, and times
//!    the full scan-verify-replay pass.
//!
//! Both measurements run against real files under the OS temp dir —
//! the same `Wal` code path the daemons use, CRC checks and all.

use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use sp_store::{Record, Wal};

/// Schema tag written into (and required from) `BENCH_store.json`.
pub const STORE_BENCH_SCHEMA: &str = "sp-bench/store/v1";

/// The two append modes every report must cover.
pub const STORE_BENCH_MODES: [&str; 2] = ["group_commit", "fsync_each"];

/// Sweep knobs for the storage benchmark.
#[derive(Clone, Debug)]
pub struct StoreBenchConfig {
    /// Concurrent writer counts to sweep for the append measurement.
    pub writers: Vec<usize>,
    /// Total appends per (writers, mode) measurement, split across the
    /// writers.
    pub appends: u64,
    /// Log sizes (record counts) to sweep for the recovery measurement.
    pub recovery_records: Vec<u64>,
    /// Segment rotation threshold, so the sweeps exercise multi-segment
    /// logs rather than one giant file.
    pub segment_bytes: u64,
    /// Whether this is the reduced CI sweep.
    pub quick: bool,
}

impl Default for StoreBenchConfig {
    fn default() -> Self {
        Self {
            writers: vec![1, 4, 16],
            appends: 4_000,
            recovery_records: vec![1_000, 10_000, 50_000],
            segment_bytes: 1 << 20,
            quick: false,
        }
    }
}

impl StoreBenchConfig {
    /// Reduced sweep for CI smoke runs: fewer writers, short logs.
    /// Numbers are noisy but the schema and the direction of the
    /// group-commit speedup are still meaningful.
    pub fn quick() -> Self {
        Self {
            writers: vec![1, 4],
            appends: 400,
            recovery_records: vec![200, 1_000],
            segment_bytes: 64 << 10,
            quick: true,
        }
    }
}

/// One (writers, mode) append-throughput measurement.
#[derive(Clone, Debug)]
pub struct AppendEntry {
    /// Concurrent writer threads.
    pub writers: usize,
    /// `"group_commit"` (batched fsyncs) or `"fsync_each"` (one fsync
    /// per append, the no-batching baseline).
    pub mode: &'static str,
    /// Acknowledged (durable) appends per second across all writers.
    pub appends_per_s: f64,
    /// Fsyncs actually issued, for the batching-ratio sanity check.
    pub fsync_batches: u64,
}

/// One recovery-time measurement: reopen a cold log of `records`
/// records and replay everything.
#[derive(Clone, Debug)]
pub struct RecoveryEntry {
    /// Records in the log at crash time.
    pub records: u64,
    /// Wall time for the reopen (scan + CRC verify + replay), in
    /// milliseconds.
    pub recovery_ms: f64,
    /// Replay rate, records per second.
    pub replayed_per_s: f64,
}

/// A full storage sweep, ready to serialize.
#[derive(Clone, Debug)]
pub struct StoreBenchReport {
    /// Whether the reduced CI sweep produced this report.
    pub quick: bool,
    /// Segment rotation threshold used.
    pub segment_bytes: u64,
    /// Append throughput, grouped by writer count then mode.
    pub append_entries: Vec<AppendEntry>,
    /// Recovery time at each log size.
    pub recovery_entries: Vec<RecoveryEntry>,
}

impl StoreBenchReport {
    /// The append entry for one (writers, mode), if measured.
    pub fn append_entry(&self, writers: usize, mode: &str) -> Option<&AppendEntry> {
        self.append_entries.iter().find(|e| e.writers == writers && e.mode == mode)
    }

    /// Throughput of `entry` relative to the same writer count with one
    /// fsync per append. Group commit with >1 writer should beat 1.0.
    pub fn speedup_vs_fsync_each(&self, entry: &AppendEntry) -> f64 {
        match self.append_entry(entry.writers, "fsync_each") {
            Some(base) if base.appends_per_s > 0.0 => entry.appends_per_s / base.appends_per_s,
            _ => 0.0,
        }
    }
}

/// A scratch directory under the OS temp dir, unique per process and
/// tag; removed (best effort) by [`Scratch::drop`].
struct Scratch {
    dir: PathBuf,
}

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("sp-store-bench-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        Self { dir }
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.dir);
    }
}

fn bench_record(writer: u64, i: u64) -> Record {
    Record::LogAccess { user: writer, puzzle: i, granted: i.is_multiple_of(2) }
}

/// Appends `appends` records split across `writers` threads, every one
/// acknowledged durable before the next; returns (appends/s, fsyncs).
fn append_throughput(
    cfg: &StoreBenchConfig,
    writers: usize,
    group_commit: bool,
    tag: &str,
) -> (f64, u64) {
    let scratch = Scratch::new(tag);
    let (wal, _) =
        Wal::open(&scratch.dir, cfg.segment_bytes, group_commit, None).expect("open bench wal");
    let wal = &wal;
    let writers = writers.max(1);
    let per = (cfg.appends / writers as u64).max(1);
    let start = Instant::now();
    std::thread::scope(|s| {
        for w in 0..writers {
            s.spawn(move || {
                for i in 0..per {
                    let seq = wal.append(&bench_record(w as u64, i)).expect("append");
                    wal.commit(seq).expect("commit");
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let total = per * writers as u64;
    (total as f64 / elapsed, wal.fsync_batch_count())
}

/// Writes a `records`-record log, closes it, and times a cold reopen.
fn recovery_time(cfg: &StoreBenchConfig, records: u64, tag: &str) -> RecoveryEntry {
    let scratch = Scratch::new(tag);
    {
        let (wal, _) =
            Wal::open(&scratch.dir, cfg.segment_bytes, true, None).expect("open bench wal");
        let mut last = 0;
        for i in 0..records {
            last = wal.append(&bench_record(0, i)).expect("append");
        }
        // One durability point at the end: the recovery measurement
        // cares about log *size*, not how it was synced.
        wal.commit(last).expect("commit");
    }
    let start = Instant::now();
    let (wal, recovered) =
        Wal::open(&scratch.dir, cfg.segment_bytes, true, None).expect("reopen bench wal");
    let elapsed = start.elapsed();
    assert_eq!(recovered.records.len() as u64, records, "recovery must replay everything");
    drop(wal);
    let secs = elapsed.as_secs_f64().max(1e-9);
    RecoveryEntry { records, recovery_ms: secs * 1e3, replayed_per_s: records as f64 / secs }
}

/// Runs the full storage sweep against scratch directories.
pub fn run(cfg: &StoreBenchConfig) -> StoreBenchReport {
    let mut append_entries = Vec::new();
    for &writers in &cfg.writers {
        for (mode, group_commit) in [("group_commit", true), ("fsync_each", false)] {
            let tag = format!("append-{writers}-{mode}");
            let (appends_per_s, fsync_batches) =
                append_throughput(cfg, writers, group_commit, &tag);
            append_entries.push(AppendEntry { writers, mode, appends_per_s, fsync_batches });
        }
    }
    let recovery_entries = cfg
        .recovery_records
        .iter()
        .map(|&records| recovery_time(cfg, records, &format!("recovery-{records}")))
        .collect();
    StoreBenchReport {
        quick: cfg.quick,
        segment_bytes: cfg.segment_bytes,
        append_entries,
        recovery_entries,
    }
}

/// Serializes a report to the `BENCH_store.json` document.
pub fn to_json(report: &StoreBenchReport) -> String {
    fn num(v: f64) -> String {
        if v.is_finite() {
            format!("{v:.3}")
        } else {
            "0.000".to_owned()
        }
    }
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{STORE_BENCH_SCHEMA}\",\n"));
    out.push_str(&format!("  \"quick\": {},\n", report.quick));
    out.push_str(&format!("  \"segment_bytes\": {},\n", report.segment_bytes));
    out.push_str("  \"append_entries\": [\n");
    for (i, e) in report.append_entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"writers\": {}, \"mode\": \"{}\", \"appends_per_s\": {}, \"fsync_batches\": {}, \"speedup_vs_fsync_each\": {}}}{}\n",
            e.writers,
            e.mode,
            num(e.appends_per_s),
            e.fsync_batches,
            num(report.speedup_vs_fsync_each(e)),
            if i + 1 == report.append_entries.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"recovery_entries\": [\n");
    for (i, e) in report.recovery_entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"records\": {}, \"recovery_ms\": {}, \"replayed_per_s\": {}}}{}\n",
            e.records,
            num(e.recovery_ms),
            num(e.replayed_per_s),
            if i + 1 == report.recovery_entries.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders the report as the human-readable tables the `figures` binary
/// prints alongside the JSON.
pub fn render(report: &StoreBenchReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "durable appends (every record fsynced before ack), {} byte segments\n",
        report.segment_bytes
    ));
    out.push_str(&format!(
        "{:<8} {:<14} {:>12} {:>8} {:>14}\n",
        "writers", "mode", "appends/s", "fsyncs", "vs fsync_each"
    ));
    for e in &report.append_entries {
        out.push_str(&format!(
            "{:<8} {:<14} {:>12.1} {:>8} {:>13.2}x\n",
            e.writers,
            e.mode,
            e.appends_per_s,
            e.fsync_batches,
            report.speedup_vs_fsync_each(e)
        ));
    }
    out.push_str("\ncold recovery (scan + CRC verify + replay, no snapshot)\n");
    out.push_str(&format!("{:<10} {:>12} {:>14}\n", "records", "recovery ms", "replayed/s"));
    for e in &report.recovery_entries {
        out.push_str(&format!(
            "{:<10} {:>12.2} {:>14.1}\n",
            e.records, e.recovery_ms, e.replayed_per_s
        ));
    }
    out
}

/// Validates a `BENCH_store.json` document: syntactically well-formed
/// JSON, the right schema tag, both append modes present, and both
/// sweeps present with all fields. Returns a description of the first
/// problem.
pub fn validate_json(doc: &str) -> Result<(), String> {
    crate::json_check::check_syntax(doc)?;
    if !doc.contains(&format!("\"schema\": \"{STORE_BENCH_SCHEMA}\"")) {
        return Err(format!("missing schema tag {STORE_BENCH_SCHEMA:?}"));
    }
    for arr in ["\"append_entries\": [", "\"recovery_entries\": ["] {
        if !doc.contains(arr) {
            return Err(format!("missing the {arr} array"));
        }
    }
    for mode in STORE_BENCH_MODES {
        if !doc.contains(&format!("\"mode\": \"{mode}\"")) {
            return Err(format!("no {mode} entries — both append modes must be measured"));
        }
    }
    for field in [
        "\"segment_bytes\":",
        "\"writers\":",
        "\"appends_per_s\":",
        "\"fsync_batches\":",
        "\"speedup_vs_fsync_each\":",
        "\"records\":",
        "\"recovery_ms\":",
        "\"replayed_per_s\":",
    ] {
        if !doc.contains(field) {
            return Err(format!("missing the {field} field"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> StoreBenchConfig {
        StoreBenchConfig {
            writers: vec![1, 2],
            appends: 24,
            recovery_records: vec![16],
            segment_bytes: 4 << 10,
            quick: true,
        }
    }

    #[test]
    fn report_covers_both_modes_and_validates() {
        let report = run(&tiny());
        for &w in &[1usize, 2] {
            for mode in STORE_BENCH_MODES {
                let e = report
                    .append_entry(w, mode)
                    .unwrap_or_else(|| panic!("missing {mode} at {w} writers"));
                assert!(e.appends_per_s > 0.0);
            }
        }
        assert_eq!(report.recovery_entries.len(), 1);
        assert_eq!(report.recovery_entries[0].records, 16);
        assert!(report.recovery_entries[0].recovery_ms > 0.0);
        let json = to_json(&report);
        validate_json(&json).expect("emitted document validates");
        let table = render(&report);
        assert!(table.contains("group_commit") && table.contains("recovery"));
    }

    #[test]
    fn fsync_each_issues_one_sync_per_append() {
        let report = run(&tiny());
        // In fsync_each mode every append syncs inline, so the batch
        // counter equals the appends; group commit must not exceed it.
        let per_writer = tiny().appends / 2;
        let strict = report.append_entry(2, "fsync_each").expect("fsync_each");
        assert_eq!(strict.fsync_batches, per_writer * 2);
        let batched = report.append_entry(2, "group_commit").expect("group_commit");
        assert!(batched.fsync_batches <= strict.fsync_batches);
    }

    #[test]
    fn validator_rejects_mangled_documents() {
        let report = StoreBenchReport {
            quick: true,
            segment_bytes: 4096,
            append_entries: vec![
                AppendEntry {
                    writers: 1,
                    mode: "group_commit",
                    appends_per_s: 100.0,
                    fsync_batches: 10,
                },
                AppendEntry {
                    writers: 1,
                    mode: "fsync_each",
                    appends_per_s: 50.0,
                    fsync_batches: 20,
                },
            ],
            recovery_entries: vec![RecoveryEntry {
                records: 100,
                recovery_ms: 2.0,
                replayed_per_s: 50_000.0,
            }],
        };
        let json = to_json(&report);
        validate_json(&json).unwrap();
        assert!(validate_json(&json[..json.len() - 4]).is_err(), "truncated");
        assert!(validate_json(&json.replace("store/v1", "store/v9")).is_err(), "wrong schema");
        assert!(
            validate_json(&json.replace("\"mode\": \"fsync_each\"", "\"mode\": \"x\"")).is_err(),
            "missing baseline mode"
        );
        assert!(
            validate_json(&json.replace("\"recovery_ms\"", "\"recoveryms\"")).is_err(),
            "missing recovery field"
        );
        assert!(validate_json("not json").is_err());
    }

    #[test]
    fn speedup_is_relative_to_fsync_each_at_the_same_writer_count() {
        let report = StoreBenchReport {
            quick: true,
            segment_bytes: 4096,
            append_entries: vec![
                AppendEntry {
                    writers: 4,
                    mode: "group_commit",
                    appends_per_s: 300.0,
                    fsync_batches: 30,
                },
                AppendEntry {
                    writers: 4,
                    mode: "fsync_each",
                    appends_per_s: 100.0,
                    fsync_batches: 120,
                },
            ],
            recovery_entries: Vec::new(),
        };
        let e = report.append_entry(4, "group_commit").unwrap();
        assert!((report.speedup_vs_fsync_each(e) - 3.0).abs() < 1e-12);
        // No baseline → 0, not a panic or a bogus ratio.
        let orphan =
            AppendEntry { writers: 8, mode: "group_commit", appends_per_s: 9.0, fsync_batches: 1 };
        assert_eq!(report.speedup_vs_fsync_each(&orphan), 0.0);
    }
}
