//! Figure export: CSV for analysis, SVG for a visual Figure 10.
//!
//! The SVG renderer draws the same stacked-bar panels the paper prints:
//! x-axis is the context size `N`, each series gets a bar per `N`,
//! stacked into its local-processing (dark) and network (light) terms.

use std::fmt::Write as _;

use crate::figures::Panel;

/// Renders a panel as CSV: `figure,series,n,local_ms,network_ms,total_ms`.
pub fn to_csv(panel: &Panel) -> String {
    let mut out = String::from("figure,series,n,local_ms,network_ms,total_ms\n");
    for series in &panel.series {
        for p in &series.points {
            let _ = writeln!(
                out,
                "{},{},{},{:.6},{:.6},{:.6}",
                panel.id,
                csv_escape(&series.label),
                p.n,
                p.local.as_secs_f64() * 1e3,
                p.network.as_secs_f64() * 1e3,
                p.total().as_secs_f64() * 1e3
            );
        }
    }
    out
}

fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// Per-series bar fill colors (local term; the network term is drawn in a
/// lighter shade of the same hue).
const SERIES_COLORS: [(&str, &str); 4] = [
    ("#1b6ca8", "#9ec9e8"),
    ("#b3541e", "#ecc19c"),
    ("#3e7d3a", "#b9dcb4"),
    ("#6a4c93", "#cabfe0"),
];

/// Renders a panel as a standalone SVG stacked-bar chart.
pub fn to_svg(panel: &Panel) -> String {
    const WIDTH: f64 = 760.0;
    const HEIGHT: f64 = 420.0;
    const MARGIN_L: f64 = 70.0;
    const MARGIN_R: f64 = 20.0;
    const MARGIN_T: f64 = 50.0;
    const MARGIN_B: f64 = 60.0;
    let plot_w = WIDTH - MARGIN_L - MARGIN_R;
    let plot_h = HEIGHT - MARGIN_T - MARGIN_B;

    let max_total_ms = panel
        .series
        .iter()
        .flat_map(|s| s.points.iter())
        .map(|p| p.total().as_secs_f64() * 1e3)
        .fold(1e-9_f64, f64::max)
        * 1.1;

    let n_values: Vec<usize> =
        panel.series.first().map(|s| s.points.iter().map(|p| p.n).collect()).unwrap_or_default();
    let groups = n_values.len().max(1) as f64;
    let series_count = panel.series.len().max(1) as f64;
    let group_w = plot_w / groups;
    let bar_w = (group_w * 0.8) / series_count;

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif">"##
    );
    let _ = writeln!(svg, r##"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"##);
    let _ = writeln!(
        svg,
        r##"<text x="{}" y="24" font-size="16" text-anchor="middle">Figure {} — {}</text>"##,
        WIDTH / 2.0,
        panel.id,
        xml_escape(panel.caption)
    );

    // Axes.
    let x0 = MARGIN_L;
    let y0 = MARGIN_T + plot_h;
    let _ = writeln!(
        svg,
        r##"<line x1="{x0}" y1="{y0}" x2="{}" y2="{y0}" stroke="black"/>"##,
        MARGIN_L + plot_w
    );
    let _ =
        writeln!(svg, r##"<line x1="{x0}" y1="{MARGIN_T}" x2="{x0}" y2="{y0}" stroke="black"/>"##);
    // Y ticks (5).
    for t in 0..=5 {
        let frac = t as f64 / 5.0;
        let y = y0 - frac * plot_h;
        let value = frac * max_total_ms;
        let _ = writeln!(
            svg,
            r##"<line x1="{}" y1="{y}" x2="{x0}" y2="{y}" stroke="black"/><text x="{}" y="{}" font-size="11" text-anchor="end">{:.1}</text>"##,
            x0 - 5.0,
            x0 - 8.0,
            y + 4.0,
            value
        );
    }
    let _ = writeln!(
        svg,
        r##"<text x="16" y="{}" font-size="12" transform="rotate(-90 16 {})" text-anchor="middle">delay (ms)</text>"##,
        MARGIN_T + plot_h / 2.0,
        MARGIN_T + plot_h / 2.0
    );
    let _ = writeln!(
        svg,
        r##"<text x="{}" y="{}" font-size="12" text-anchor="middle">context size N</text>"##,
        MARGIN_L + plot_w / 2.0,
        HEIGHT - 16.0
    );

    // Bars.
    for (si, series) in panel.series.iter().enumerate() {
        let (dark, light) = SERIES_COLORS[si % SERIES_COLORS.len()];
        for (gi, p) in series.points.iter().enumerate() {
            let local_ms = p.local.as_secs_f64() * 1e3;
            let net_ms = p.network.as_secs_f64() * 1e3;
            let x = MARGIN_L + gi as f64 * group_w + group_w * 0.1 + si as f64 * bar_w;
            let h_local = local_ms / max_total_ms * plot_h;
            let h_net = net_ms / max_total_ms * plot_h;
            // Network (bottom of stack), then local on top.
            let _ = writeln!(
                svg,
                r##"<rect x="{x:.2}" y="{:.2}" width="{bar_w:.2}" height="{h_net:.2}" fill="{light}"><title>{} N={} network {net_ms:.3} ms</title></rect>"##,
                y0 - h_net,
                xml_escape(&series.label),
                p.n
            );
            let _ = writeln!(
                svg,
                r##"<rect x="{x:.2}" y="{:.2}" width="{bar_w:.2}" height="{h_local:.2}" fill="{dark}"><title>{} N={} local {local_ms:.3} ms</title></rect>"##,
                y0 - h_net - h_local,
                xml_escape(&series.label),
                p.n
            );
        }
    }

    // X tick labels.
    for (gi, n) in n_values.iter().enumerate() {
        let x = MARGIN_L + gi as f64 * group_w + group_w / 2.0;
        let _ = writeln!(
            svg,
            r##"<text x="{x:.2}" y="{}" font-size="11" text-anchor="middle">{n}</text>"##,
            y0 + 16.0
        );
    }

    // Legend.
    let mut ly = MARGIN_T + 4.0;
    for (si, series) in panel.series.iter().enumerate() {
        let (dark, light) = SERIES_COLORS[si % SERIES_COLORS.len()];
        let lx = MARGIN_L + 12.0;
        let _ = writeln!(
            svg,
            r##"<rect x="{lx}" y="{ly}" width="12" height="12" fill="{dark}"/><rect x="{}" y="{ly}" width="12" height="12" fill="{light}"/><text x="{}" y="{}" font-size="11">{} (local / network)</text>"##,
            lx + 14.0,
            lx + 32.0,
            ly + 10.0,
            xml_escape(&series.label)
        );
        ly += 18.0;
    }

    svg.push_str("</svg>\n");
    svg
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::{fig10a, SweepConfig};

    fn panel() -> Panel {
        fig10a(&SweepConfig::quick())
    }

    #[test]
    fn csv_has_header_and_all_rows() {
        let p = panel();
        let csv = to_csv(&p);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "figure,series,n,local_ms,network_ms,total_ms");
        let expected_rows: usize = p.series.iter().map(|s| s.points.len()).sum();
        assert_eq!(lines.len(), 1 + expected_rows);
        assert!(lines[1].starts_with("10a,"));
    }

    #[test]
    fn csv_escaping() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn svg_is_structurally_sound() {
        let p = panel();
        let svg = to_svg(&p);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // Two rects per point (stacked), plus background and legend rects.
        let points: usize = p.series.iter().map(|s| s.points.len()).sum();
        let rects = svg.matches("<rect").count();
        assert!(rects >= 2 * points, "rects = {rects}, points = {points}");
        assert!(svg.contains("Figure 10a"));
        assert!(svg.contains("Impl 1"));
        assert!(svg.contains("delay (ms)"));
        // No unescaped ampersands outside entities.
        assert!(!svg.contains("& "));
    }

    #[test]
    fn svg_heights_scale_with_values() {
        let p = panel();
        let svg = to_svg(&p);
        // The Impl 2 bars are far taller than Impl 1's; crude check: the
        // maximum rect height in the file exceeds half the plot height.
        let max_h = svg
            .split("height=\"")
            .skip(1)
            .filter_map(|s| s.split('"').next()?.parse::<f64>().ok())
            .fold(0.0_f64, f64::max);
        assert!(max_h > 150.0, "tallest bar {max_h}");
    }
}
