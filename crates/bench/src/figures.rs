//! End-to-end sweeps regenerating the paper's Figure 10.
//!
//! Each function returns one panel: a set of named series over the
//! context-size axis `N`, where every point carries the local-processing
//! and network delay terms the paper stacks in its bar charts.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use social_puzzles_core::construction1::Construction1;
use social_puzzles_core::construction2::Construction2;
use social_puzzles_core::context::Context;
use social_puzzles_core::metrics::DelayBreakdown;
use social_puzzles_core::protocol::SocialPuzzleApp;
use sp_osn::DeviceProfile;

use crate::workload::{self, PAPER_K};

/// One point of a Fig. 10 series.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeriesPoint {
    /// Context size `N`.
    pub n: usize,
    /// Mean local processing delay.
    pub local: Duration,
    /// Mean network delay (incl. server-side processing).
    pub network: Duration,
}

impl SeriesPoint {
    /// Total delay.
    pub fn total(&self) -> Duration {
        self.local + self.network
    }
}

/// A named series (e.g. "Impl 1 (PC)").
#[derive(Clone, Debug)]
pub struct Series {
    /// Display label.
    pub label: String,
    /// Points in ascending `N`.
    pub points: Vec<SeriesPoint>,
}

/// One figure panel: an id ("10a"), a caption, and its series.
#[derive(Clone, Debug)]
pub struct Panel {
    /// Figure id as in the paper.
    pub id: &'static str,
    /// What the panel shows.
    pub caption: &'static str,
    /// The series.
    pub series: Vec<Series>,
}

/// Sweep configuration.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Context sizes to sweep.
    pub n_values: Vec<usize>,
    /// Repetitions per point (means are reported).
    pub repetitions: usize,
    /// RNG seed (the sweep is deterministic given the seed, up to wall
    /// clock noise in the measured local compute).
    pub seed: u64,
    /// Multiplicative network jitter fraction (0 = deterministic).
    /// Nonzero values reproduce the "instability in the measurements"
    /// the paper attributes to network unpredictability (§VIII).
    pub network_jitter: f64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            n_values: workload::PAPER_N_RANGE.collect(),
            repetitions: 3,
            seed: 42,
            network_jitter: 0.0,
        }
    }
}

impl SweepConfig {
    /// A fast configuration for tests and smoke runs.
    pub fn quick() -> Self {
        Self { n_values: vec![2, 4, 6], repetitions: 1, seed: 42, ..Self::default() }
    }

    /// The default sweep with the paper-like network instability enabled.
    pub fn jittery() -> Self {
        Self { network_jitter: 0.25, ..Self::default() }
    }
}

struct Sweeper {
    rng: StdRng,
    cfg: SweepConfig,
}

/// What one measured run contributes.
enum Who {
    Sharer,
    Receiver,
}

enum Scheme<'a> {
    C1(&'a Construction1),
    C2(&'a Construction2),
}

impl Sweeper {
    fn new(cfg: &SweepConfig) -> Self {
        Self { rng: StdRng::seed_from_u64(cfg.seed), cfg: cfg.clone() }
    }

    fn answer_all(ctx: &Context) -> impl Fn(&str) -> Option<String> + '_ {
        move |q| ctx.answer_for(q).map(str::to_owned)
    }

    /// Means over `repetitions` full share/receive rounds.
    fn measure(
        &mut self,
        scheme: &Scheme<'_>,
        who: &Who,
        device: &DeviceProfile,
        n: usize,
    ) -> SeriesPoint {
        let mut acc = DelayBreakdown::zero();
        for rep in 0..self.cfg.repetitions {
            let mut app = if self.cfg.network_jitter > 0.0 {
                let seed = self.cfg.seed ^ (n as u64) << 8 ^ rep as u64;
                SocialPuzzleApp::with_networks(
                    sp_osn::NetworkModel::wlan_to_cloud()
                        .with_jitter(seed, self.cfg.network_jitter),
                    sp_osn::NetworkModel::wlan_to_cloud_curl()
                        .with_jitter(seed.wrapping_add(1), self.cfg.network_jitter),
                )
            } else {
                SocialPuzzleApp::new()
            };
            let sharer = app.add_user("sharer");
            let friend = app.add_user("friend");
            app.befriend(sharer, friend).expect("distinct users");
            let ctx = workload::paper_context(n, &mut self.rng);
            let msg = workload::paper_message(&mut self.rng);

            let delays = match scheme {
                Scheme::C1(c1) => {
                    let share = app
                        .share_c1(c1, sharer, &msg, &ctx, PAPER_K, device, None, &mut self.rng)
                        .expect("share");
                    match who {
                        Who::Sharer => share.delays,
                        Who::Receiver => {
                            app.receive_c1(
                                c1,
                                friend,
                                &share,
                                Self::answer_all(&ctx),
                                device,
                                &mut self.rng,
                            )
                            .expect("receive")
                            .delays
                        }
                    }
                }
                Scheme::C2(c2) => {
                    let share = app
                        .share_c2(c2, sharer, &msg, &ctx, PAPER_K, device, &mut self.rng)
                        .expect("share");
                    match who {
                        Who::Sharer => share.delays,
                        Who::Receiver => {
                            app.receive_c2(
                                c2,
                                friend,
                                &share,
                                Self::answer_all(&ctx),
                                device,
                                &mut self.rng,
                            )
                            .expect("receive")
                            .delays
                        }
                    }
                }
            };
            acc = acc + delays;
        }
        let reps = self.cfg.repetitions as u32;
        SeriesPoint { n, local: acc.local_processing / reps, network: acc.network / reps }
    }

    fn series(
        &mut self,
        label: &str,
        scheme: &Scheme<'_>,
        who: &Who,
        device: &DeviceProfile,
    ) -> Series {
        let n_values = self.cfg.n_values.clone();
        Series {
            label: label.to_owned(),
            points: n_values.into_iter().map(|n| self.measure(scheme, who, device, n)).collect(),
        }
    }
}

/// Fig. 10(a): sharer overhead, Impl 1 vs Impl 2, on the PC.
pub fn fig10a(cfg: &SweepConfig) -> Panel {
    let mut sw = Sweeper::new(cfg);
    let c1 = Construction1::new();
    let c2 = Construction2::insecure_test_params();
    let pc = DeviceProfile::pc();
    Panel {
        id: "10a",
        caption: "Sharer's overhead: I1 vs I2 on PC",
        series: vec![
            sw.series("Impl 1 (Shamir)", &Scheme::C1(&c1), &Who::Sharer, &pc),
            sw.series("Impl 2 (CP-ABE)", &Scheme::C2(&c2), &Who::Sharer, &pc),
        ],
    }
}

/// Fig. 10(b): receiver overhead, Impl 1 vs Impl 2, on the PC.
pub fn fig10b(cfg: &SweepConfig) -> Panel {
    let mut sw = Sweeper::new(cfg);
    let c1 = Construction1::new();
    let c2 = Construction2::insecure_test_params();
    let pc = DeviceProfile::pc();
    Panel {
        id: "10b",
        caption: "Receiver's overhead: I1 vs I2 on PC",
        series: vec![
            sw.series("Impl 1 (Shamir)", &Scheme::C1(&c1), &Who::Receiver, &pc),
            sw.series("Impl 2 (CP-ABE)", &Scheme::C2(&c2), &Who::Receiver, &pc),
        ],
    }
}

/// Fig. 10(c): sharer overhead, PC vs tablet, Impl 1 only.
pub fn fig10c(cfg: &SweepConfig) -> Panel {
    let mut sw = Sweeper::new(cfg);
    let c1 = Construction1::new();
    Panel {
        id: "10c",
        caption: "Sharer's overhead: PC vs Tablet for I1",
        series: vec![
            sw.series("PC", &Scheme::C1(&c1), &Who::Sharer, &DeviceProfile::pc()),
            sw.series("Tablet", &Scheme::C1(&c1), &Who::Sharer, &DeviceProfile::tablet()),
        ],
    }
}

/// Fig. 10(d): receiver overhead, PC vs tablet, Impl 1 only.
pub fn fig10d(cfg: &SweepConfig) -> Panel {
    let mut sw = Sweeper::new(cfg);
    let c1 = Construction1::new();
    Panel {
        id: "10d",
        caption: "Receiver's overhead: PC vs Tablet for I1",
        series: vec![
            sw.series("PC", &Scheme::C1(&c1), &Who::Receiver, &DeviceProfile::pc()),
            sw.series("Tablet", &Scheme::C1(&c1), &Who::Receiver, &DeviceProfile::tablet()),
        ],
    }
}

/// All four panels.
pub fn all_panels(cfg: &SweepConfig) -> Vec<Panel> {
    vec![fig10a(cfg), fig10b(cfg), fig10c(cfg), fig10d(cfg)]
}

/// Renders a panel as the text table the `figures` binary prints.
pub fn render(panel: &Panel) -> String {
    let mut out = String::new();
    out.push_str(&format!("Figure {} — {}\n", panel.id, panel.caption));
    out.push_str(&format!(
        "{:>4} | {:<28} | {:>12} | {:>12} | {:>12}\n",
        "N", "series", "local (ms)", "network (ms)", "total (ms)"
    ));
    out.push_str(&"-".repeat(84));
    out.push('\n');
    for series in &panel.series {
        for p in &series.points {
            out.push_str(&format!(
                "{:>4} | {:<28} | {:>12.3} | {:>12.3} | {:>12.3}\n",
                p.n,
                series.label,
                p.local.as_secs_f64() * 1e3,
                p.network.as_secs_f64() * 1e3,
                p.total().as_secs_f64() * 1e3
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10a_shape_i2_dominates_i1() {
        // The paper's headline: I2's network delay is worst; I1 combined
        // delay extremely low.
        let panel = fig10a(&SweepConfig::quick());
        let i1 = &panel.series[0];
        let i2 = &panel.series[1];
        for (p1, p2) in i1.points.iter().zip(&i2.points) {
            assert!(p2.network > p1.network * 5, "I2 network must dwarf I1 at N = {}", p1.n);
            assert!(p2.total() > p1.total(), "I2 total higher at N = {}", p1.n);
        }
    }

    #[test]
    fn fig10b_shape_receiver_i2_higher_but_closer() {
        let panel = fig10b(&SweepConfig::quick());
        let i1 = &panel.series[0];
        let i2 = &panel.series[1];
        for (p1, p2) in i1.points.iter().zip(&i2.points) {
            assert!(p2.total() > p1.total(), "I2 stays slower at N = {}", p1.n);
        }
        // "noticeably high at the sharer and comparatively lower at the
        // receivers": receiver I2 network < sharer I2 network.
        let sharer = fig10a(&SweepConfig::quick());
        let recv_net = i2.points[0].network;
        let share_net = sharer.series[1].points[0].network;
        assert!(recv_net < share_net);
    }

    #[test]
    fn fig10c_d_shape_tablet_slower_locally() {
        // Both series run the same code on the same machine; only the 5x
        // device scale separates them. A single point pair measures mere
        // microseconds at quick-config sizes, so scheduler noise can
        // invert one comparison. Compare the panel-wide aggregate (the
        // shape the figure actually shows) and allow a bounded number of
        // re-measurements before declaring the shape wrong.
        let tablet_beats_pc = |panel: &Panel| -> bool {
            let sum = |s: &Series| s.points.iter().map(|p| p.local).sum::<Duration>();
            sum(&panel.series[1]) > sum(&panel.series[0])
        };
        for (id, make) in [("10c", fig10c as fn(&SweepConfig) -> Panel), ("10d", fig10d)] {
            let ok = (0..3).any(|_| tablet_beats_pc(&make(&SweepConfig::quick())));
            assert!(ok, "tablet aggregate local processing must exceed PC in {id}");
        }
    }

    #[test]
    fn jitter_produces_unstable_network_terms() {
        // Deterministic sweeps give identical network delays for equal
        // payload sizes; the jittered config makes them wobble — the
        // paper's "instability in the measurements".
        let mut cfg = SweepConfig::quick();
        cfg.network_jitter = 0.25;
        cfg.repetitions = 1;
        let jittered = fig10a(&cfg);
        let clean = fig10a(&SweepConfig::quick());
        // I1 network grows strictly monotonically without jitter…
        let clean_nets: Vec<_> = clean.series[0].points.iter().map(|p| p.network).collect();
        assert!(clean_nets.windows(2).all(|w| w[0] <= w[1]));
        // …and the jittered run differs from the clean one somewhere.
        let jit_nets: Vec<_> = jittered.series[0].points.iter().map(|p| p.network).collect();
        assert_ne!(clean_nets, jit_nets);
        // Jitter is bounded: at most +25% over the clean value.
        for (c, j) in clean_nets.iter().zip(&jit_nets) {
            assert!(*j >= *c && *j <= c.mul_f64(1.26), "clean {c:?} vs jittered {j:?}");
        }
    }

    #[test]
    fn render_contains_all_points() {
        let panel = fig10a(&SweepConfig::quick());
        let text = render(&panel);
        assert!(text.contains("Figure 10a"));
        assert!(text.contains("Impl 1"));
        assert!(text.contains("Impl 2"));
        for n in SweepConfig::quick().n_values {
            assert!(
                text.contains(&format!("\n{n:>4} |")) || text.starts_with(&format!("{n:>4} |")),
                "missing N = {n}"
            );
        }
    }
}
