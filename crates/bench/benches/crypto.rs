//! Criterion side-by-side of the crypto hot paths: every optimized
//! routine against the reference shape it replaced (textbook
//! double-and-add, per-leaf pairings, serial per-leaf loops). The
//! `figures --bench-json` binary runs the same comparison and writes
//! `BENCH_crypto.json`; this harness is for interactive profiling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sp_abe::{encode_qa_attribute, AccessTree, CpAbe};
use sp_pairing::{LineCache, Pairing, G1};

/// `SP_BENCH_QUICK=1` shrinks sampling to a smoke pass (CI uses this to
/// prove the benches run without paying for stable statistics).
fn configure(group: &mut criterion::BenchmarkGroup<'_>) {
    if std::env::var_os("SP_BENCH_QUICK").is_some() {
        group.sample_size(2);
        group.warm_up_time(std::time::Duration::from_millis(10));
        group.measurement_time(std::time::Duration::from_millis(50));
    } else {
        group.sample_size(10);
        group.warm_up_time(std::time::Duration::from_secs(1));
        group.measurement_time(std::time::Duration::from_secs(3));
    }
}

fn bench_abe_slow_vs_fast(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto_abe");
    configure(&mut group);
    let abe = CpAbe::insecure_test_params();
    let mut rng = StdRng::seed_from_u64(20);
    let (pk, mk) = abe.setup(&mut rng);
    for n in [2usize, 6, 10] {
        let pairs: Vec<(String, String)> =
            (0..n).map(|i| (format!("q{i}"), format!("a{i}"))).collect();
        let tree = AccessTree::context_tree(n, &pairs).expect("valid");
        let attrs: Vec<String> = pairs.iter().map(|(q, a)| encode_qa_attribute(q, a)).collect();
        let m = abe.random_message(&mut rng);

        group.bench_with_input(BenchmarkId::new("encrypt_slow", n), &n, |b, _| {
            b.iter(|| {
                let mut r = StdRng::seed_from_u64(21);
                abe.encrypt_reference(&pk, &m, &tree, &mut r).expect("encrypt")
            })
        });
        group.bench_with_input(BenchmarkId::new("encrypt_fast", n), &n, |b, _| {
            b.iter(|| {
                let mut r = StdRng::seed_from_u64(21);
                abe.encrypt(&pk, &m, &tree, &mut r).expect("encrypt")
            })
        });
        group.bench_with_input(BenchmarkId::new("keygen_slow", n), &n, |b, _| {
            b.iter(|| {
                let mut r = StdRng::seed_from_u64(22);
                abe.keygen_reference(&mk, &attrs, &mut r)
            })
        });
        group.bench_with_input(BenchmarkId::new("keygen_fast", n), &n, |b, _| {
            b.iter(|| {
                let mut r = StdRng::seed_from_u64(22);
                abe.keygen(&mk, &attrs, &mut r)
            })
        });

        let ct = abe.encrypt(&pk, &m, &tree, &mut rng).expect("encrypt");
        let sk = abe.keygen(&mk, &attrs, &mut rng);
        group.bench_with_input(BenchmarkId::new("decrypt_slow", n), &n, |b, _| {
            b.iter(|| abe.decrypt_reference(&ct, &sk).expect("decrypt"))
        });
        group.bench_with_input(BenchmarkId::new("decrypt_fast", n), &n, |b, _| {
            b.iter(|| abe.decrypt(&ct, &sk).expect("decrypt"))
        });
    }
    group.finish();
}

fn bench_group_ops_slow_vs_fast(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto_group_ops");
    configure(&mut group);
    let pairing = Pairing::insecure_test_params();
    let mut rng = StdRng::seed_from_u64(23);
    for n in [2usize, 10] {
        let points: Vec<(G1, G1)> =
            (0..n).map(|_| (pairing.random_g1(&mut rng), pairing.random_g1(&mut rng))).collect();
        group.bench_with_input(BenchmarkId::new("pairings_individual", n), &n, |b, _| {
            b.iter(|| points.iter().map(|(p, q)| pairing.pair_reference(p, q)).collect::<Vec<_>>())
        });
        group.bench_with_input(BenchmarkId::new("pairings_product", n), &n, |b, _| {
            b.iter(|| {
                let num: Vec<(&G1, &G1)> = points.iter().map(|(p, q)| (p, q)).collect();
                pairing.pair_product(&num, &[])
            })
        });
    }
    let p = pairing.random_g1(&mut rng);
    let q = pairing.random_g1(&mut rng);
    group.bench_function("pairing_cold", |b| b.iter(|| pairing.pair(&p, &q).expect("pair")));
    let cache = LineCache::new();
    pairing.pair_cached(&cache, b"bench", &p, &q).expect("pair");
    group.bench_function("pairing_cached_warm", |b| {
        b.iter(|| pairing.pair_cached(&cache, b"bench", &p, &q).expect("pair"))
    });
    let s = pairing.random_nonzero_scalar(&mut rng);
    let g = pairing.generator().clone();
    group.bench_function("scalar_mul_textbook", |b| b.iter(|| g.mul_uint(&s.to_uint())));
    group.bench_function("scalar_mul_fixed_base", |b| b.iter(|| pairing.mul_generator(&s)));
    group.finish();
}

criterion_group!(crypto, bench_abe_slow_vs_fast, bench_group_ops_slow_vs_fast);
criterion_main!(crypto);
