//! Criterion benches for each Figure 10 panel: one benchmark per
//! (figure, implementation/device, N) cell, timing the full party-side
//! protocol flow the paper measures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use social_puzzles_core::construction1::Construction1;
use social_puzzles_core::construction2::Construction2;
use social_puzzles_core::context::Context;
use social_puzzles_core::protocol::SocialPuzzleApp;
use sp_bench::workload::{self, PAPER_K};
use sp_osn::DeviceProfile;

const N_VALUES: [usize; 3] = [2, 6, 10];

fn answer_all(ctx: &Context) -> impl Fn(&str) -> Option<String> + '_ {
    move |q| ctx.answer_for(q).map(str::to_owned)
}

fn fig10a_sharer(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10a_sharer_pc");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    let c1 = Construction1::new();
    let c2 = Construction2::insecure_test_params();
    let pc = DeviceProfile::pc();
    for n in N_VALUES {
        group.bench_with_input(BenchmarkId::new("impl1", n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                let mut app = SocialPuzzleApp::new();
                let sharer = app.add_user("s");
                let ctx = workload::paper_context(n, &mut rng);
                let msg = workload::paper_message(&mut rng);
                app.share_c1(&c1, sharer, &msg, &ctx, PAPER_K, &pc, None, &mut rng).expect("share")
            });
        });
        group.bench_with_input(BenchmarkId::new("impl2", n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| {
                let mut app = SocialPuzzleApp::new();
                let sharer = app.add_user("s");
                let ctx = workload::paper_context(n, &mut rng);
                let msg = workload::paper_message(&mut rng);
                app.share_c2(&c2, sharer, &msg, &ctx, PAPER_K, &pc, &mut rng).expect("share")
            });
        });
    }
    group.finish();
}

fn fig10b_receiver(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10b_receiver_pc");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    let c1 = Construction1::new();
    let c2 = Construction2::insecure_test_params();
    let pc = DeviceProfile::pc();
    for n in N_VALUES {
        group.bench_with_input(BenchmarkId::new("impl1", n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(3);
            let mut app = SocialPuzzleApp::new();
            let sharer = app.add_user("s");
            let ctx = workload::paper_context(n, &mut rng);
            let msg = workload::paper_message(&mut rng);
            let share =
                app.share_c1(&c1, sharer, &msg, &ctx, PAPER_K, &pc, None, &mut rng).expect("share");
            b.iter(|| {
                app.receive_c1(&c1, sharer, &share, answer_all(&ctx), &pc, &mut rng)
                    .expect("receive")
            });
        });
        group.bench_with_input(BenchmarkId::new("impl2", n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(4);
            let mut app = SocialPuzzleApp::new();
            let sharer = app.add_user("s");
            let ctx = workload::paper_context(n, &mut rng);
            let msg = workload::paper_message(&mut rng);
            let share =
                app.share_c2(&c2, sharer, &msg, &ctx, PAPER_K, &pc, &mut rng).expect("share");
            b.iter(|| {
                app.receive_c2(&c2, sharer, &share, answer_all(&ctx), &pc, &mut rng)
                    .expect("receive")
            });
        });
    }
    group.finish();
}

fn fig10c_sharer_devices(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10c_sharer_i1_devices");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    let c1 = Construction1::new();
    for n in N_VALUES {
        for device in [DeviceProfile::pc(), DeviceProfile::tablet()] {
            let label = if device.compute_scale() > 1.0 { "tablet" } else { "pc" };
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
                let mut rng = StdRng::seed_from_u64(5);
                b.iter(|| {
                    let mut app = SocialPuzzleApp::new();
                    let sharer = app.add_user("s");
                    let ctx = workload::paper_context(n, &mut rng);
                    let msg = workload::paper_message(&mut rng);
                    app.share_c1(&c1, sharer, &msg, &ctx, PAPER_K, &device, None, &mut rng)
                        .expect("share")
                });
            });
        }
    }
    group.finish();
}

fn fig10d_receiver_devices(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10d_receiver_i1_devices");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    let c1 = Construction1::new();
    for n in N_VALUES {
        for device in [DeviceProfile::pc(), DeviceProfile::tablet()] {
            let label = if device.compute_scale() > 1.0 { "tablet" } else { "pc" };
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
                let mut rng = StdRng::seed_from_u64(6);
                let mut app = SocialPuzzleApp::new();
                let sharer = app.add_user("s");
                let ctx = workload::paper_context(n, &mut rng);
                let msg = workload::paper_message(&mut rng);
                let share = app
                    .share_c1(&c1, sharer, &msg, &ctx, PAPER_K, &device, None, &mut rng)
                    .expect("share");
                b.iter(|| {
                    app.receive_c1(&c1, sharer, &share, answer_all(&ctx), &device, &mut rng)
                        .expect("receive")
                });
            });
        }
    }
    group.finish();
}

criterion_group!(
    fig10,
    fig10a_sharer,
    fig10b_receiver,
    fig10c_sharer_devices,
    fig10d_receiver_devices
);
criterion_main!(fig10);
