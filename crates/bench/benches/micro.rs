//! Microbenchmarks of the building blocks: field/pairing arithmetic,
//! Shamir, CP-ABE primitives, symmetric crypto, and answer hashing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use social_puzzles_core::hash::HashAlg;
use sp_abe::{AccessTree, CpAbe};
use sp_crypto::modes::{cbc_encrypt, ctr_xor};
use sp_crypto::sha256::sha256;
use sp_pairing::Pairing;
use sp_shamir::ShamirScheme;

fn bench_pairing(c: &mut Criterion) {
    let mut group = c.benchmark_group("pairing");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    let pairing = Pairing::insecure_test_params();
    let mut rng = StdRng::seed_from_u64(10);
    let p = pairing.random_g1(&mut rng);
    let q = pairing.random_g1(&mut rng);
    let s = pairing.random_nonzero_scalar(&mut rng);
    group.bench_function("tate_pairing", |b| b.iter(|| pairing.pair(&p, &q)));
    group.bench_function("g1_scalar_mul", |b| b.iter(|| pairing.mul(&p, &s)));
    group.bench_function("hash_to_g1", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            pairing.hash_to_g1(&i.to_be_bytes())
        })
    });
    let e = pairing.pair(&p, &q).expect("non-degenerate");
    group.bench_function("gt_pow", |b| b.iter(|| e.pow_scalar(&s)));
    group.finish();
}

fn bench_shamir(c: &mut Criterion) {
    let mut group = c.benchmark_group("shamir");
    let scheme = ShamirScheme::default_field();
    let mut rng = StdRng::seed_from_u64(11);
    for (k, n) in [(1usize, 2usize), (5, 10), (10, 20)] {
        let secret = scheme.random_secret(&mut rng);
        group.bench_with_input(
            BenchmarkId::new("split", format!("{k}of{n}")),
            &(k, n),
            |b, &(k, n)| {
                let mut rng = StdRng::seed_from_u64(12);
                b.iter(|| scheme.split(&secret, k, n, &mut rng).expect("valid"))
            },
        );
        let shares = scheme.split(&secret, k, n, &mut rng).expect("valid");
        group.bench_with_input(
            BenchmarkId::new("reconstruct", format!("{k}of{n}")),
            &k,
            |b, &k| b.iter(|| scheme.reconstruct(&shares[..k]).expect("enough")),
        );
    }
    group.finish();
}

fn bench_abe(c: &mut Criterion) {
    let mut group = c.benchmark_group("cp_abe");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    let abe = CpAbe::insecure_test_params();
    let mut rng = StdRng::seed_from_u64(13);
    let (pk, mk) = abe.setup(&mut rng);
    for n in [2usize, 6, 10] {
        let pairs: Vec<(String, String)> =
            (0..n).map(|i| (format!("q{i}"), format!("a{i}"))).collect();
        let tree = AccessTree::context_tree(1, &pairs).expect("valid");
        let m = abe.random_message(&mut rng);
        group.bench_with_input(BenchmarkId::new("encrypt", n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(14);
            b.iter(|| abe.encrypt(&pk, &m, &tree, &mut rng).expect("encrypt"))
        });
        let ct = abe.encrypt(&pk, &m, &tree, &mut rng).expect("encrypt");
        let attrs = vec![sp_abe::encode_qa_attribute("q0", "a0")];
        group.bench_with_input(BenchmarkId::new("keygen_1attr", n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(15);
            b.iter(|| abe.keygen(&mk, &attrs, &mut rng))
        });
        let sk = abe.keygen(&mk, &attrs, &mut rng);
        group.bench_with_input(BenchmarkId::new("decrypt", n), &n, |b, _| {
            b.iter(|| abe.decrypt(&ct, &sk).expect("decrypt"))
        });
    }
    group.bench_function("setup", |b| {
        let mut rng = StdRng::seed_from_u64(16);
        b.iter(|| abe.setup(&mut rng))
    });
    group.finish();
}

fn bench_symmetric(c: &mut Criterion) {
    let mut group = c.benchmark_group("symmetric");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    let key = [7u8; 32];
    let iv = [9u8; 16];
    for size in [100usize, 10_000, 1_000_000] {
        let data = vec![0xabu8; size];
        group.bench_with_input(BenchmarkId::new("aes256_cbc", size), &size, |b, _| {
            b.iter(|| cbc_encrypt(&key, &iv, &data).expect("valid key"))
        });
        group.bench_with_input(BenchmarkId::new("aes256_ctr", size), &size, |b, _| {
            b.iter(|| ctr_xor(&key, &iv, &data).expect("valid key"))
        });
        group.bench_with_input(BenchmarkId::new("sha256", size), &size, |b, _| {
            b.iter(|| sha256(&data))
        });
    }
    group.finish();
}

fn bench_answer_hashes(c: &mut Criterion) {
    // The per-answer cost that dominates Construction 1's local
    // processing; the paper's two prototypes picked different hashes.
    let mut group = c.benchmark_group("answer_hash");
    let key = [1u8; 16];
    let answer = "a-twenty-char-answer";
    for (name, alg) in [
        ("sha256", HashAlg::Sha256),
        ("sha3_cryptojs_style", HashAlg::Sha3),
        ("sha1_openssl_style", HashAlg::Sha1),
    ] {
        group.bench_function(name, |b| b.iter(|| alg.answer_hash(answer, &key)));
    }
    group.finish();
}

criterion_group!(
    micro,
    bench_pairing,
    bench_shamir,
    bench_abe,
    bench_symmetric,
    bench_answer_hashes
);
criterion_main!(micro);
