//! Service-provider throughput: how many verify requests per second can
//! one SP sustain for each scheme?
//!
//! The paper argues its SP does only cheap hash comparisons ("much of the
//! access control functionality is performed locally on the client … which
//! is more efficient", §II); this bench quantifies that: the SP-side cost
//! of a Construction-1/2 verify is hash-compare work, independent of any
//! cryptography, so a single server scales to large social networks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use social_puzzles_core::construction1::Construction1;
use social_puzzles_core::construction2::Construction2;
use sp_bench::workload::{self, PAPER_K};

fn bench_sp_verify_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sp_verify_throughput");
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.throughput(Throughput::Elements(1));

    for n in [2usize, 10] {
        // Construction 1: SP matches salted hashes against the record.
        {
            let c1 = Construction1::new();
            let mut rng = StdRng::seed_from_u64(30);
            let ctx = workload::paper_context(n, &mut rng);
            let up = c1.upload(b"obj", &ctx, PAPER_K, &mut rng).unwrap();
            let displayed = c1.display_puzzle(&up.puzzle, &mut rng);
            let answers = displayed.answer(|q| ctx.answer_for(q).map(str::to_owned));
            let response = c1.answer_puzzle(&displayed, &answers);
            group.bench_with_input(BenchmarkId::new("c1_verify", n), &n, |b, _| {
                b.iter(|| c1.verify(&up.puzzle, &response).expect("verifies"))
            });
        }
        // Construction 2: SP matches verification hashes.
        {
            let c2 = Construction2::insecure_test_params();
            let mut rng = StdRng::seed_from_u64(31);
            let ctx = workload::paper_context(n, &mut rng);
            let up = c2.upload(b"obj", &ctx, PAPER_K, &mut rng).unwrap();
            let details = up.record.public_details();
            let answers = details.answer(|q| ctx.answer_for(q).map(str::to_owned));
            let response = c2.answer_puzzle(&details, &answers);
            group.bench_with_input(BenchmarkId::new("c2_verify", n), &n, |b, _| {
                b.iter(|| c2.verify(&up.record, &response).expect("verifies"))
            });
        }
    }
    group.finish();
}

fn bench_receiver_answer_hashing(c: &mut Criterion) {
    // Client-side cost of answering — the other half of the "SP does
    // almost nothing" story.
    let mut group = c.benchmark_group("receiver_answer_hashing");
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    let c1 = Construction1::new();
    let mut rng = StdRng::seed_from_u64(32);
    for n in [2usize, 10] {
        let ctx = workload::paper_context(n, &mut rng);
        let up = c1.upload(b"obj", &ctx, PAPER_K, &mut rng).unwrap();
        let displayed = c1.display_puzzle(&up.puzzle, &mut rng);
        let answers = displayed.answer(|q| ctx.answer_for(q).map(str::to_owned));
        group.bench_with_input(BenchmarkId::new("answer_puzzle", n), &n, |b, _| {
            b.iter(|| c1.answer_puzzle(&displayed, &answers))
        });
    }
    group.finish();
}

criterion_group!(throughput, bench_sp_verify_throughput, bench_receiver_answer_hashing);
criterion_main!(throughput);
