//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * thresholded constructions vs the §I trivial all-context baseline,
//! * Construction 1 vs Construction 2 crossover in context size `N`,
//! * DOS-protection signature on vs off (Construction 1 upload),
//! * Implementation-2 toolkit file padding on vs off (how much of the
//!   Fig. 10(a) gap is file overhead vs protocol content).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use social_puzzles_core::construction1::Construction1;
use social_puzzles_core::construction2::Construction2;
use social_puzzles_core::protocol::SocialPuzzleApp;
use social_puzzles_core::sign::SigningKey;
use social_puzzles_core::trivial;
use sp_bench::workload::{self, PAPER_K};
use sp_osn::DeviceProfile;
use sp_pairing::Pairing;

fn bench_vs_trivial(c: &mut Criterion) {
    let mut group = c.benchmark_group("vs_trivial_baseline");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    let c1 = Construction1::new();
    let mut rng = StdRng::seed_from_u64(20);
    let ctx = workload::paper_context(6, &mut rng);
    let msg = workload::paper_message(&mut rng);
    group.bench_function("trivial_encrypt", |b| {
        let mut rng = StdRng::seed_from_u64(21);
        b.iter(|| trivial::encrypt(&msg, &ctx, &mut rng))
    });
    group.bench_function("c1_upload_k1", |b| {
        let mut rng = StdRng::seed_from_u64(22);
        b.iter(|| c1.upload(&msg, &ctx, PAPER_K, &mut rng).expect("upload"))
    });
    group.finish();
}

fn bench_c1_vs_c2_local(c: &mut Criterion) {
    // Pure local processing crossover (no network model): where does the
    // CP-ABE construction's pairing cost diverge from Shamir+hashes?
    let mut group = c.benchmark_group("c1_vs_c2_local_upload");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    let c1 = Construction1::new();
    let c2 = Construction2::insecure_test_params();
    for n in [2usize, 6, 10] {
        group.bench_with_input(BenchmarkId::new("c1", n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(23);
            let ctx = workload::paper_context(n, &mut rng);
            let msg = workload::paper_message(&mut rng);
            b.iter(|| c1.upload(&msg, &ctx, PAPER_K, &mut rng).expect("upload"))
        });
        group.bench_with_input(BenchmarkId::new("c2", n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(24);
            let ctx = workload::paper_context(n, &mut rng);
            let msg = workload::paper_message(&mut rng);
            b.iter(|| c2.upload(&msg, &ctx, PAPER_K, &mut rng).expect("upload"))
        });
    }
    group.finish();
}

fn bench_signature_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("c1_dos_signature");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    let c1 = Construction1::new();
    let pairing = Pairing::insecure_test_params();
    let mut rng = StdRng::seed_from_u64(25);
    let sk = SigningKey::generate(&pairing, &mut rng);
    let ctx = workload::paper_context(6, &mut rng);
    let msg = workload::paper_message(&mut rng);
    group.bench_function("unsigned", |b| {
        let mut rng = StdRng::seed_from_u64(26);
        b.iter(|| c1.upload(&msg, &ctx, PAPER_K, &mut rng).expect("upload"))
    });
    group.bench_function("signed", |b| {
        let mut rng = StdRng::seed_from_u64(27);
        b.iter(|| {
            c1.upload_to(
                &msg,
                &ctx,
                PAPER_K,
                sp_osn::Url::from("https://dh.example/o/1"),
                Some(&sk),
                &mut rng,
            )
            .expect("upload")
        })
    });
    group.finish();
}

fn bench_i2_pad_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("i2_file_pad");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    let c2 = Construction2::insecure_test_params();
    for pad in [0u64, 150_000] {
        group.bench_with_input(BenchmarkId::new("share_c2_pad", pad), &pad, |b, &pad| {
            let mut rng = StdRng::seed_from_u64(28);
            b.iter(|| {
                let mut app = SocialPuzzleApp::new();
                app.set_i2_file_pad(pad);
                let sharer = app.add_user("s");
                let ctx = workload::paper_context(4, &mut rng);
                let msg = workload::paper_message(&mut rng);
                app.share_c2(&c2, sharer, &msg, &ctx, PAPER_K, &DeviceProfile::pc(), &mut rng)
                    .expect("share")
            })
        });
    }
    group.finish();
}

criterion_group!(
    ablation,
    bench_vs_trivial,
    bench_c1_vs_c2_local,
    bench_signature_overhead,
    bench_i2_pad_ablation
);
criterion_main!(ablation);
