//! The `(k, n)` sharing scheme.

use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

use rand::Rng;
use sp_bigint::Uint;
use sp_field::{batch_invert, FieldCtx, Fp};

use crate::error::ShamirError;
use crate::poly::Polynomial;
use crate::share::Share;

/// A Shamir secret-sharing scheme bound to a sharing field.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Clone)]
pub struct ShamirScheme {
    field: Arc<FieldCtx<4>>,
}

impl ShamirScheme {
    /// Creates a scheme over the given field.
    pub fn new(field: Arc<FieldCtx<4>>) -> Self {
        Self { field }
    }

    /// Creates a scheme over the default 255-bit field
    /// (`p = 2^255 − 19`).
    pub fn default_field() -> Self {
        let p =
            Uint::<4>::from_hex("7fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffed")
                .expect("valid hex constant");
        Self { field: FieldCtx::new(p).expect("2^255 - 19 is odd") }
    }

    /// The sharing field.
    pub fn field(&self) -> &Arc<FieldCtx<4>> {
        &self.field
    }

    /// Samples a uniformly random secret.
    pub fn random_secret<R: Rng + ?Sized>(&self, rng: &mut R) -> Fp<4> {
        self.field.random(rng)
    }

    /// Splits `secret` into `n` shares with reconstruction threshold `k`,
    /// using random distinct nonzero abscissas (§V-A).
    ///
    /// # Errors
    ///
    /// Returns [`ShamirError::BadThreshold`] unless `0 < k <= n`.
    pub fn split<R: Rng + ?Sized>(
        &self,
        secret: &Fp<4>,
        k: usize,
        n: usize,
        rng: &mut R,
    ) -> Result<Vec<Share>, ShamirError> {
        if k == 0 || k > n {
            return Err(ShamirError::BadThreshold);
        }
        // n < p always holds for practical n against a 255-bit field, but
        // guard the degenerate tiny-field case used in tests.
        if Uint::<4>::from_u64(n as u64) >= *self.field.modulus() {
            return Err(ShamirError::BadThreshold);
        }
        let poly = Polynomial::random_with_constant(secret.clone(), k, &self.field, rng);
        let mut used: HashSet<Vec<u8>> = HashSet::with_capacity(n);
        let mut shares = Vec::with_capacity(n);
        while shares.len() < n {
            let x = self.field.random_nonzero(rng);
            if !used.insert(x.to_be_bytes()) {
                continue;
            }
            let y = poly.eval(&x);
            shares.push(Share::new(x, y));
        }
        Ok(shares)
    }

    /// Reconstructs the secret from shares by Lagrange interpolation at
    /// zero. All supplied shares are used; pass exactly the threshold
    /// number (extra consistent shares are harmless).
    ///
    /// # Errors
    ///
    /// Returns [`ShamirError::NotEnoughShares`] for an empty slice and
    /// [`ShamirError::DuplicateShare`] if two shares collide in `x`.
    pub fn reconstruct(&self, shares: &[Share]) -> Result<Fp<4>, ShamirError> {
        if shares.is_empty() {
            return Err(ShamirError::NotEnoughShares);
        }
        let mut seen = HashSet::with_capacity(shares.len());
        for s in shares {
            if !seen.insert(s.x().to_be_bytes()) {
                return Err(ShamirError::DuplicateShare);
            }
        }
        // P(0) = Σ_j y_j · γ_j with all γ denominators inverted at once.
        let xs: Vec<Fp<4>> = shares.iter().map(|s| s.x().clone()).collect();
        let gammas = self.lagrange_coefficients_at_zero(&xs)?;
        let mut acc = self.field.zero();
        for (share, gamma) in shares.iter().zip(&gammas) {
            acc = &acc + &(share.y() * gamma);
        }
        Ok(acc)
    }

    /// All Lagrange basis coefficients `γ_j = ℓ_j(0)` for the abscissa
    /// multiset `xs`, computed with a **single** field inversion (batch
    /// Montgomery inversion over the `k` denominators) instead of one
    /// extended-GCD per coefficient. Hot in CP-ABE decryption, where every
    /// threshold gate needs its full coefficient vector.
    ///
    /// # Errors
    ///
    /// Returns [`ShamirError::DuplicateShare`] if abscissas collide.
    pub fn lagrange_coefficients_at_zero(&self, xs: &[Fp<4>]) -> Result<Vec<Fp<4>>, ShamirError> {
        // γ_j = Π_{j' ≠ j} x_{j'} / (x_{j'} − x_j): both products pick up
        // (−1)^{k−1} relative to the (0 − x)/(x_j − x) form, so the signs
        // cancel.
        let mut nums = Vec::with_capacity(xs.len());
        let mut dens = Vec::with_capacity(xs.len());
        for (j, xj) in xs.iter().enumerate() {
            let mut num = self.field.one();
            let mut den = self.field.one();
            for (jp, x) in xs.iter().enumerate() {
                if jp == j {
                    continue;
                }
                num = &num * x;
                den = &den * &(x - xj);
            }
            if den.is_zero() {
                return Err(ShamirError::DuplicateShare);
            }
            nums.push(num);
            dens.push(den);
        }
        batch_invert(&mut dens);
        Ok(nums.iter().zip(&dens).map(|(n, d)| n * d).collect())
    }

    /// Evaluates the Lagrange basis coefficient `γ_j` for interpolating at
    /// `target` from the abscissa multiset `xs` (exposed for the CP-ABE
    /// layer, which combines *exponents* with the same coefficients).
    ///
    /// # Errors
    ///
    /// Returns [`ShamirError::DuplicateShare`] if abscissas collide.
    pub fn lagrange_coefficient(
        &self,
        xs: &[Fp<4>],
        j: usize,
        target: &Fp<4>,
    ) -> Result<Fp<4>, ShamirError> {
        let mut num = self.field.one();
        let mut den = self.field.one();
        for (jp, x) in xs.iter().enumerate() {
            if jp == j {
                continue;
            }
            num = &num * &(target - x);
            den = &den * &(&xs[j] - x);
        }
        // ℓ_j(target) = Π (target − x_{j'}) / (x_j − x_{j'})
        Ok(&num * &den.invert().map_err(|_| ShamirError::DuplicateShare)?)
    }
}

impl fmt::Debug for ShamirScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ShamirScheme(p = {})", self.field.modulus())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};

    fn scheme() -> ShamirScheme {
        ShamirScheme::default_field()
    }

    #[test]
    fn split_reconstruct_exact_threshold() {
        let s = scheme();
        let mut rng = StdRng::seed_from_u64(60);
        for (k, n) in [(1usize, 1usize), (1, 5), (2, 3), (3, 5), (5, 5), (4, 10)] {
            let secret = s.random_secret(&mut rng);
            let shares = s.split(&secret, k, n, &mut rng).unwrap();
            assert_eq!(shares.len(), n);
            assert_eq!(s.reconstruct(&shares[..k]).unwrap(), secret, "(k,n)=({k},{n})");
        }
    }

    #[test]
    fn any_k_subset_reconstructs() {
        let s = scheme();
        let mut rng = StdRng::seed_from_u64(61);
        let secret = s.random_secret(&mut rng);
        let shares = s.split(&secret, 3, 6, &mut rng).unwrap();
        for _ in 0..10 {
            let mut subset = shares.clone();
            subset.shuffle(&mut rng);
            subset.truncate(3);
            assert_eq!(s.reconstruct(&subset).unwrap(), secret);
        }
    }

    #[test]
    fn extra_shares_are_consistent() {
        let s = scheme();
        let mut rng = StdRng::seed_from_u64(62);
        let secret = s.random_secret(&mut rng);
        let shares = s.split(&secret, 2, 5, &mut rng).unwrap();
        assert_eq!(s.reconstruct(&shares).unwrap(), secret);
    }

    #[test]
    fn fewer_than_k_shares_give_wrong_secret() {
        // Interpolating k−1 shares of a degree-(k−1) polynomial yields a
        // lower-degree fit that almost surely misses the constant term.
        let s = scheme();
        let mut rng = StdRng::seed_from_u64(63);
        let secret = s.random_secret(&mut rng);
        let shares = s.split(&secret, 3, 5, &mut rng).unwrap();
        let wrong = s.reconstruct(&shares[..2]).unwrap();
        assert_ne!(wrong, secret);
    }

    #[test]
    fn abscissas_are_distinct_and_nonzero() {
        let s = scheme();
        let mut rng = StdRng::seed_from_u64(64);
        let secret = s.random_secret(&mut rng);
        let shares = s.split(&secret, 2, 50, &mut rng).unwrap();
        let mut seen = std::collections::HashSet::new();
        for sh in &shares {
            assert!(!sh.x().is_zero(), "x = 0 would leak the secret directly");
            assert!(seen.insert(sh.x().to_be_bytes()));
        }
    }

    #[test]
    fn threshold_validation() {
        let s = scheme();
        let mut rng = StdRng::seed_from_u64(65);
        let secret = s.random_secret(&mut rng);
        assert_eq!(s.split(&secret, 0, 5, &mut rng).unwrap_err(), ShamirError::BadThreshold);
        assert_eq!(s.split(&secret, 6, 5, &mut rng).unwrap_err(), ShamirError::BadThreshold);
    }

    #[test]
    fn tiny_field_n_bound() {
        let f = FieldCtx::new(Uint::<4>::from_u64(7)).unwrap();
        let s = ShamirScheme::new(f.clone());
        let mut rng = StdRng::seed_from_u64(66);
        let secret = f.from_u64(3);
        assert_eq!(s.split(&secret, 2, 7, &mut rng).unwrap_err(), ShamirError::BadThreshold);
        // n < p is fine (n = 6 distinct nonzero abscissas exist mod 7).
        assert!(s.split(&secret, 2, 6, &mut rng).is_ok());
    }

    #[test]
    fn reconstruct_error_paths() {
        let s = scheme();
        let mut rng = StdRng::seed_from_u64(67);
        assert_eq!(s.reconstruct(&[]).unwrap_err(), ShamirError::NotEnoughShares);
        let secret = s.random_secret(&mut rng);
        let shares = s.split(&secret, 2, 2, &mut rng).unwrap();
        let dup = vec![shares[0].clone(), shares[0].clone()];
        assert_eq!(s.reconstruct(&dup).unwrap_err(), ShamirError::DuplicateShare);
    }

    #[test]
    fn tampered_share_changes_secret() {
        let s = scheme();
        let mut rng = StdRng::seed_from_u64(68);
        let secret = s.random_secret(&mut rng);
        let mut shares = s.split(&secret, 2, 2, &mut rng).unwrap();
        let bad_y = shares[0].y() + &s.field().one();
        shares[0] = Share::new(shares[0].x().clone(), bad_y);
        assert_ne!(s.reconstruct(&shares).unwrap(), secret);
    }

    #[test]
    fn lagrange_coefficient_interpolates() {
        // Check γ_j against direct polynomial evaluation at a nonzero target.
        let s = scheme();
        let f = s.field().clone();
        let mut rng = StdRng::seed_from_u64(69);
        // Both even and odd factor counts (k = 2 catches sign errors that
        // k = 3 hides).
        for k in [2usize, 3, 4] {
            let poly = Polynomial::random_with_constant(f.from_u64(11), k, &f, &mut rng);
            let xs: Vec<_> = (1u64..=k as u64).map(|v| f.from_u64(v)).collect();
            for target in [f.zero(), f.from_u64(10)] {
                let mut acc = f.zero();
                for (j, x) in xs.iter().enumerate() {
                    let gamma = s.lagrange_coefficient(&xs, j, &target).unwrap();
                    acc = &acc + &(&poly.eval(x) * &gamma);
                }
                assert_eq!(acc, poly.eval(&target), "k = {k}");
            }
        }
    }

    #[test]
    fn batch_coefficients_match_per_coefficient_path() {
        let s = scheme();
        let f = s.field().clone();
        let mut rng = StdRng::seed_from_u64(71);
        for k in [1usize, 2, 3, 7] {
            let xs: Vec<_> = (0..k).map(|_| f.random_nonzero(&mut rng)).collect();
            let batch = s.lagrange_coefficients_at_zero(&xs).unwrap();
            assert_eq!(batch.len(), k);
            for (j, gamma) in batch.iter().enumerate() {
                assert_eq!(
                    *gamma,
                    s.lagrange_coefficient(&xs, j, &f.zero()).unwrap(),
                    "k={k} j={j}"
                );
            }
        }
        // Colliding abscissas are rejected.
        let dup = vec![f.from_u64(3), f.from_u64(3)];
        assert_eq!(s.lagrange_coefficients_at_zero(&dup).unwrap_err(), ShamirError::DuplicateShare);
    }

    #[test]
    fn information_theoretic_blinding_shape() {
        // With k = 2, a single share is consistent with ANY secret: for a
        // fixed share (x0, y0) and any candidate secret m, the line through
        // (0, m) and (x0, y0) exists. We exhibit the consistency instead of
        // enumerating: reconstructing from 1 share equals y0-at-0 linear fit,
        // and differs from the real secret with overwhelming probability.
        let s = scheme();
        let mut rng = StdRng::seed_from_u64(70);
        for _ in 0..10 {
            let secret = s.random_secret(&mut rng);
            let shares = s.split(&secret, 2, 2, &mut rng).unwrap();
            assert_ne!(s.reconstruct(&shares[..1]).unwrap(), secret);
        }
    }
}
