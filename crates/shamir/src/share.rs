//! Individual shares.

use std::fmt;
use std::sync::Arc;

use sp_field::{FieldCtx, Fp};

use crate::error::ShamirError;

/// One Shamir share: the point `(x, y)` with `y = P(x)` on the sharing
/// polynomial.
#[derive(Clone, PartialEq, Eq)]
pub struct Share {
    x: Fp<4>,
    y: Fp<4>,
}

impl Share {
    /// Builds a share from its coordinates.
    pub fn new(x: Fp<4>, y: Fp<4>) -> Self {
        Self { x, y }
    }

    /// The abscissa.
    pub fn x(&self) -> &Fp<4> {
        &self.x
    }

    /// The polynomial value at `x`.
    pub fn y(&self) -> &Fp<4> {
        &self.y
    }

    /// Fixed-length encoding `x ‖ y` (64 bytes).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = self.x.to_be_bytes();
        out.extend_from_slice(&self.y.to_be_bytes());
        out
    }

    /// Decodes a share produced by [`Share::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`ShamirError::BadEncoding`] if the length is not 64 bytes.
    pub fn from_bytes(ctx: &Arc<FieldCtx<4>>, bytes: &[u8]) -> Result<Self, ShamirError> {
        if bytes.len() != 64 {
            return Err(ShamirError::BadEncoding);
        }
        let x = ctx.from_be_bytes(&bytes[..32]).map_err(|_| ShamirError::BadEncoding)?;
        let y = ctx.from_be_bytes(&bytes[32..]).map_err(|_| ShamirError::BadEncoding)?;
        Ok(Self { x, y })
    }
}

impl fmt::Debug for Share {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Deliberately omit y — shares are secret material.
        write!(f, "Share(x = {}, y = <hidden>)", self.x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_bigint::Uint;

    #[test]
    fn roundtrip_and_hiding_debug() {
        let ctx = FieldCtx::new(Uint::<4>::from_u64(1_000_003)).unwrap();
        let s = Share::new(ctx.from_u64(3), ctx.from_u64(123_456));
        let bytes = s.to_bytes();
        assert_eq!(bytes.len(), 64);
        assert_eq!(Share::from_bytes(&ctx, &bytes).unwrap(), s);
        assert!(Share::from_bytes(&ctx, &bytes[..63]).is_err());
        let dbg = format!("{s:?}");
        assert!(dbg.contains("hidden"));
        assert!(!dbg.contains("1e240"), "y must not leak: {dbg}"); // 123456 = 0x1e240
    }
}
