//! Polynomials over the sharing field.

use std::fmt;
use std::sync::Arc;

use rand::Rng;
use sp_field::{FieldCtx, Fp};

/// A polynomial over `F_p` with coefficients in ascending degree order
/// (`coeffs[0]` is the constant term).
#[derive(Clone, PartialEq, Eq)]
pub struct Polynomial {
    coeffs: Vec<Fp<4>>,
}

impl Polynomial {
    /// Builds a polynomial from ascending-degree coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs` is empty.
    pub fn new(coeffs: Vec<Fp<4>>) -> Self {
        assert!(!coeffs.is_empty(), "polynomial needs at least a constant term");
        Self { coeffs }
    }

    /// Samples a uniformly random polynomial of degree `< k` with the
    /// given constant term — the Shamir sharing polynomial.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn random_with_constant<R: Rng + ?Sized>(
        constant: Fp<4>,
        k: usize,
        ctx: &Arc<FieldCtx<4>>,
        rng: &mut R,
    ) -> Self {
        assert!(k > 0, "threshold must be positive");
        let mut coeffs = Vec::with_capacity(k);
        coeffs.push(constant);
        for _ in 1..k {
            coeffs.push(ctx.random(rng));
        }
        Self { coeffs }
    }

    /// Evaluates at `x` by Horner's rule.
    pub fn eval(&self, x: &Fp<4>) -> Fp<4> {
        let mut acc = self.coeffs.last().expect("nonempty").clone();
        for c in self.coeffs.iter().rev().skip(1) {
            acc = &(&acc * x) + c;
        }
        acc
    }

    /// The constant term `P(0)`.
    pub fn constant(&self) -> &Fp<4> {
        &self.coeffs[0]
    }

    /// All coefficients in ascending degree order. Exposed for verifiable
    /// secret sharing, where the dealer commits to each coefficient.
    pub fn coefficients(&self) -> &[Fp<4>] {
        &self.coeffs
    }

    /// Degree bound: the number of coefficients (degree `< len`).
    pub fn len(&self) -> usize {
        self.coeffs.len()
    }

    /// Whether the polynomial has no coefficients (never true by
    /// construction).
    pub fn is_empty(&self) -> bool {
        self.coeffs.is_empty()
    }
}

impl fmt::Debug for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Polynomial(degree < {})", self.coeffs.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use sp_bigint::Uint;

    fn field() -> Arc<FieldCtx<4>> {
        FieldCtx::new(Uint::from_u64(1_000_003)).unwrap()
    }

    #[test]
    fn eval_constant() {
        let f = field();
        let p = Polynomial::new(vec![f.from_u64(42)]);
        assert_eq!(p.eval(&f.from_u64(0)), f.from_u64(42));
        assert_eq!(p.eval(&f.from_u64(999)), f.from_u64(42));
    }

    #[test]
    fn eval_known_polynomial() {
        let f = field();
        // p(x) = 7 + 3x + 2x²
        let p = Polynomial::new(vec![f.from_u64(7), f.from_u64(3), f.from_u64(2)]);
        assert_eq!(p.eval(&f.from_u64(0)), f.from_u64(7));
        assert_eq!(p.eval(&f.from_u64(1)), f.from_u64(12));
        assert_eq!(p.eval(&f.from_u64(10)), f.from_u64(7 + 30 + 200));
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn random_constant_is_fixed() {
        let f = field();
        let mut rng = StdRng::seed_from_u64(50);
        for k in 1..6 {
            let p = Polynomial::random_with_constant(f.from_u64(5), k, &f, &mut rng);
            assert_eq!(p.constant(), &f.from_u64(5));
            assert_eq!(p.eval(&f.zero()), f.from_u64(5));
            assert_eq!(p.len(), k);
        }
    }

    #[test]
    #[should_panic(expected = "at least a constant")]
    fn rejects_empty() {
        let _ = Polynomial::new(vec![]);
    }
}
