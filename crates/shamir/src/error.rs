//! Error types.

use std::error::Error;
use std::fmt;

/// Errors produced by secret splitting and reconstruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ShamirError {
    /// The threshold/share-count pair is invalid (`k = 0`, `k > n`, or `n`
    /// too large for the field).
    BadThreshold,
    /// Fewer shares than the implied threshold were supplied.
    NotEnoughShares,
    /// Two supplied shares have the same abscissa.
    DuplicateShare,
    /// A share encoding was malformed.
    BadEncoding,
}

impl fmt::Display for ShamirError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadThreshold => f.write_str("threshold must satisfy 0 < k <= n < field size"),
            Self::NotEnoughShares => f.write_str("not enough shares to reconstruct"),
            Self::DuplicateShare => f.write_str("duplicate share abscissa"),
            Self::BadEncoding => f.write_str("invalid share encoding"),
        }
    }
}

impl Error for ShamirError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            ShamirError::BadThreshold,
            ShamirError::NotEnoughShares,
            ShamirError::DuplicateShare,
            ShamirError::BadEncoding,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
