//! Shamir `(k, n)` threshold secret sharing over a prime field.
//!
//! Implements §III-B of the paper: a secret `M ∈ F_p` is embedded as the
//! constant term of a random degree-`(k−1)` polynomial `P`; each share is
//! a point `(s_i, P(s_i))` at a *random nonzero abscissa* (§V-A uses
//! random `s_i` rather than `1..n`, so a blinded share leaks nothing about
//! its index), and any `k` shares recover `M = P(0)` by Lagrange
//! interpolation.
//!
//! # Example
//!
//! ```
//! use rand::SeedableRng;
//! use sp_shamir::ShamirScheme;
//!
//! let scheme = ShamirScheme::default_field();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let secret = scheme.random_secret(&mut rng);
//! let shares = scheme.split(&secret, 3, 5, &mut rng)?;
//! let recovered = scheme.reconstruct(&shares[1..4])?;
//! assert_eq!(recovered, secret);
//! # Ok::<(), sp_shamir::ShamirError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod poly;
mod scheme;
mod share;

pub use error::ShamirError;
pub use poly::Polynomial;
pub use scheme::ShamirScheme;
pub use share::Share;
