//! OSN substrate scenario test: a day in the life of the simulated
//! platform — users, friendships, posts, blobs, traffic accounting and
//! the audit log, all interacting.

use bytes::Bytes;
use sp_osn::{NetworkModel, ServiceProvider, SocialGraph, StorageHost};

#[test]
fn a_day_on_the_platform() {
    let mut graph = SocialGraph::new();
    let sp = ServiceProvider::new();
    let dh = StorageHost::new();
    let net = NetworkModel::wlan_to_cloud();

    // Morning: three users sign up; two friendships form.
    let ana = graph.add_user("ana");
    let bo = graph.add_user("bo");
    let cai = graph.add_user("cai");
    graph.befriend(ana, bo).unwrap();
    graph.befriend(bo, cai).unwrap();

    // Ana shares two puzzles; Bo shares one.
    let mut puzzle_ids = Vec::new();
    for (author, label) in [(ana, "ana-1"), (ana, "ana-2"), (bo, "bo-1")] {
        let blob_url = dh.put(Bytes::from(format!("encrypted:{label}")));
        let record = Bytes::from(format!("record:{label}:{blob_url}"));
        net.request_duration(record.len() as u64, 64);
        let pid = sp.publish_puzzle(record);
        sp.post(author, format!("new puzzle {label}"), pid);
        puzzle_ids.push(pid);
    }
    assert_eq!(sp.puzzle_count(), 3);
    assert_eq!(dh.len(), 3);

    // Feeds respect the (symmetric, non-transitive) friendship graph.
    let bo_feed = sp.feed(bo, |a| graph.are_friends(bo, a));
    assert_eq!(bo_feed.len(), 3, "bo sees ana's two posts and his own");
    let cai_feed = sp.feed(cai, |a| graph.are_friends(cai, a));
    assert_eq!(cai_feed.len(), 1, "cai only sees bo's post");
    let ana_feed = sp.feed(ana, |a| graph.are_friends(ana, a));
    assert_eq!(ana_feed.len(), 3);

    // Afternoon: access attempts land in the audit log.
    sp.log_access(bo, puzzle_ids[0], true);
    sp.log_access(cai, puzzle_ids[2], false);
    let log = sp.audit_log();
    assert_eq!(log.len(), 2);
    assert!(log[0].granted && !log[1].granted);
    assert_eq!(log[0].seq, 0);
    assert_eq!(log[1].seq, 1);

    // Evening: ana unfriends bo; bo's feed loses her posts.
    graph.unfriend(ana, bo).unwrap();
    let bo_feed = sp.feed(bo, |a| graph.are_friends(bo, a));
    assert_eq!(bo_feed.len(), 1, "only bo's own post remains");

    // A sharer deletes one puzzle; the DH blob outlives it until the
    // sharer deletes that too (they are separate services).
    sp.delete_puzzle(puzzle_ids[1]).unwrap();
    assert_eq!(sp.puzzle_count(), 2);
    assert_eq!(dh.len(), 3);

    // Traffic accounting saw every publish request.
    let stats = net.stats();
    assert_eq!(stats.requests, 3);
    assert!(stats.bytes_up > 0);
}

#[test]
fn concurrent_mixed_workload() {
    let sp = ServiceProvider::new();
    let dh = StorageHost::new();
    let mut graph = SocialGraph::new();
    let users: Vec<_> = (0..8).map(|i| graph.add_user(format!("u{i}"))).collect();

    crossbeam::thread::scope(|s| {
        for (t, &user) in users.iter().enumerate() {
            let sp = sp.clone();
            let dh = dh.clone();
            s.spawn(move |_| {
                for i in 0..25 {
                    let url = dh.put(Bytes::from(vec![t as u8, i as u8]));
                    let pid = sp.publish_puzzle(Bytes::from(url.as_str().to_owned()));
                    sp.post(user, format!("post {t}/{i}"), pid);
                    sp.log_access(user, pid, i % 2 == 0);
                }
            });
        }
    })
    .unwrap();

    assert_eq!(sp.puzzle_count(), 200);
    assert_eq!(dh.len(), 200);
    let log = sp.audit_log();
    assert_eq!(log.len(), 200);
    // Sequence numbers are unique and dense.
    let mut seqs: Vec<u64> = log.iter().map(|e| e.seq).collect();
    seqs.sort_unstable();
    seqs.dedup();
    assert_eq!(seqs.len(), 200);
    assert_eq!(*seqs.last().unwrap(), 199);
}
