//! Deterministic network delay model and traffic accounting.
//!
//! Fig. 10's "network delay" is dominated by three terms the paper calls
//! out explicitly: request round trips, payload size over the 802.11n
//! uplink (60 Mbps), and the per-request overhead of the transfer library
//! (cURL, blamed for Implementation 2's instability). The model charges
//! exactly those terms, deterministically, from the *actual byte sizes*
//! the constructions produce.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Network parameters for one client ↔ server path.
#[derive(Clone, Debug)]
pub struct NetworkModel {
    /// Round-trip latency charged once per request.
    pub rtt: Duration,
    /// Uplink bandwidth in bits per second.
    pub uplink_bps: u64,
    /// Downlink bandwidth in bits per second.
    pub downlink_bps: u64,
    /// Fixed per-request software overhead (TLS handshake reuse, HTTP
    /// framing, transfer-library setup).
    pub per_request_overhead: Duration,
    stats: Arc<Mutex<TrafficStats>>,
    /// Deterministic jitter: each request's duration is scaled by a
    /// factor drawn from `[1, 1 + jitter_fraction]`. Zero by default.
    jitter: Option<Arc<Mutex<(StdRng, f64)>>>,
}

/// Cumulative traffic counters for a [`NetworkModel`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Total bytes sent client → server.
    pub bytes_up: u64,
    /// Total bytes sent server → client.
    pub bytes_down: u64,
    /// Number of requests issued.
    pub requests: u64,
}

impl NetworkModel {
    /// Builds a model from raw parameters.
    pub fn new(
        rtt: Duration,
        uplink_bps: u64,
        downlink_bps: u64,
        per_request_overhead: Duration,
    ) -> Self {
        Self {
            rtt,
            uplink_bps,
            downlink_bps,
            per_request_overhead,
            stats: Arc::new(Mutex::new(TrafficStats::default())),
            jitter: None,
        }
    }

    /// Enables deterministic multiplicative jitter: each request duration
    /// is scaled by a factor in `[1, 1 + fraction]` drawn from a seeded
    /// RNG. Reproduces the "instability in the measurements … due to the
    /// unpredictability of the communication network speed" the paper
    /// observes in its Implementation-2 runs (§VIII).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is negative or not finite.
    pub fn with_jitter(mut self, seed: u64, fraction: f64) -> Self {
        assert!(fraction.is_finite() && fraction >= 0.0, "jitter fraction must be >= 0");
        self.jitter = Some(Arc::new(Mutex::new((StdRng::seed_from_u64(seed), fraction))));
        self
    }

    /// The paper's experimental path: 802.11n WLAN (60 Mbps link rate) to
    /// an Amazon EC2 server. Downlink goodput is set near the link rate;
    /// uplink goodput to the distant cloud is substantially lower (TCP
    /// over a long RTT), which is what makes Fig. 10(a)'s sharer-side
    /// uploads dominate. RTT and per-request overhead are calibrated so
    /// small requests land in the tens-of-milliseconds regime visible in
    /// Fig. 10(a,b).
    pub fn wlan_to_cloud() -> Self {
        Self::new(Duration::from_millis(40), 20_000_000, 60_000_000, Duration::from_millis(15))
    }

    /// A heavier-overhead variant modelling the cURL multi-file uploads
    /// used by Implementation 2 (§VIII blames cURL for additional
    /// overhead and instability).
    pub fn wlan_to_cloud_curl() -> Self {
        Self::new(Duration::from_millis(40), 20_000_000, 60_000_000, Duration::from_millis(60))
    }

    /// A model that charges no time at all — for deployments over real
    /// sockets, where latency is incurred by the wire rather than
    /// simulated. Traffic is still accounted.
    pub fn zero() -> Self {
        Self::new(Duration::ZERO, u64::MAX, u64::MAX, Duration::ZERO)
    }

    /// The time one request takes: RTT + overhead + transfer time of both
    /// directions, and records the traffic.
    pub fn request_duration(&self, bytes_up: u64, bytes_down: u64) -> Duration {
        {
            let mut s = self.stats.lock();
            s.bytes_up += bytes_up;
            s.bytes_down += bytes_down;
            s.requests += 1;
        }
        let up = Duration::from_secs_f64(bytes_up as f64 * 8.0 / self.uplink_bps as f64);
        let down = Duration::from_secs_f64(bytes_down as f64 * 8.0 / self.downlink_bps as f64);
        let base = self.rtt + self.per_request_overhead + up + down;
        match &self.jitter {
            None => base,
            Some(j) => {
                let mut guard = j.lock();
                let fraction = guard.1;
                let factor = 1.0 + guard.0.gen::<f64>() * fraction;
                base.mul_f64(factor)
            }
        }
    }

    /// Snapshot of the cumulative traffic counters.
    pub fn stats(&self) -> TrafficStats {
        *self.stats.lock()
    }

    /// Resets the traffic counters.
    pub fn reset_stats(&self) {
        *self.stats.lock() = TrafficStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_scales_with_bytes() {
        let net = NetworkModel::wlan_to_cloud();
        let small = net.request_duration(1_000, 100);
        let large = net.request_duration(600_000, 100);
        assert!(large > small);
        // 600 KB up at 20 Mbps ≈ 240 ms, plus 100 B down at 60 Mbps.
        let transfer = large - net.rtt - net.per_request_overhead;
        let expect = Duration::from_secs_f64(600_000.0 * 8.0 / 20e6 + 100.0 * 8.0 / 60e6);
        let diff = transfer.abs_diff(expect);
        assert!(diff < Duration::from_millis(1), "diff = {diff:?}");
    }

    #[test]
    fn zero_byte_request_still_costs_rtt() {
        let net = NetworkModel::wlan_to_cloud();
        let d = net.request_duration(0, 0);
        assert_eq!(d, net.rtt + net.per_request_overhead);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let net = NetworkModel::wlan_to_cloud();
        net.request_duration(100, 50);
        net.request_duration(200, 25);
        let s = net.stats();
        assert_eq!(s.bytes_up, 300);
        assert_eq!(s.bytes_down, 75);
        assert_eq!(s.requests, 2);
        net.reset_stats();
        assert_eq!(net.stats(), TrafficStats::default());
    }

    #[test]
    fn stats_shared_across_clones() {
        let net = NetworkModel::wlan_to_cloud();
        let clone = net.clone();
        net.request_duration(10, 0);
        clone.request_duration(20, 0);
        assert_eq!(net.stats().bytes_up, 30);
    }

    #[test]
    fn curl_variant_is_slower_per_request() {
        let a = NetworkModel::wlan_to_cloud();
        let b = NetworkModel::wlan_to_cloud_curl();
        assert!(b.request_duration(1000, 100) > a.request_duration(1000, 100));
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let a = NetworkModel::wlan_to_cloud().with_jitter(7, 0.5);
        let b = NetworkModel::wlan_to_cloud().with_jitter(7, 0.5);
        let base = NetworkModel::wlan_to_cloud();
        let base_d = base.request_duration(10_000, 100);
        let mut varied = false;
        let mut last = Duration::ZERO;
        for _ in 0..20 {
            let da = a.request_duration(10_000, 100);
            let db = b.request_duration(10_000, 100);
            assert_eq!(da, db, "same seed, same sequence");
            assert!(da >= base_d && da <= base_d.mul_f64(1.5 + 1e-9), "bounded: {da:?}");
            if !last.is_zero() && da != last {
                varied = true;
            }
            last = da;
        }
        assert!(varied, "jitter must actually vary across requests");
    }

    #[test]
    fn jitter_is_deterministic_across_varied_sequences() {
        // Two identically-seeded models must charge *identical* durations
        // for an identical sequence of requests, even when the sizes vary
        // request to request — a benchmark replay must be reproducible.
        let a = NetworkModel::wlan_to_cloud_curl().with_jitter(42, 0.3);
        let b = NetworkModel::wlan_to_cloud_curl().with_jitter(42, 0.3);
        let sizes: [(u64, u64); 6] =
            [(600_000, 64), (200, 512), (0, 0), (5_000, 5_000), (1, 1_000_000), (333, 77)];
        let run_a: Vec<Duration> = sizes.iter().map(|&(u, d)| a.request_duration(u, d)).collect();
        let run_b: Vec<Duration> = sizes.iter().map(|&(u, d)| b.request_duration(u, d)).collect();
        assert_eq!(run_a, run_b, "same seed + same request sequence = same charges");
        // A different seed diverges somewhere on the same sequence.
        let c = NetworkModel::wlan_to_cloud_curl().with_jitter(43, 0.3);
        let run_c: Vec<Duration> = sizes.iter().map(|&(u, d)| c.request_duration(u, d)).collect();
        assert_ne!(run_a, run_c, "different seed must not replay the same factors");
        // Traffic accounting is identical regardless of jitter.
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.stats(), c.stats());
    }

    #[test]
    fn zero_model_charges_nothing_but_counts_traffic() {
        let net = NetworkModel::zero();
        assert_eq!(net.request_duration(1_000_000, 1_000_000), Duration::ZERO);
        let s = net.stats();
        assert_eq!(s.requests, 1);
        assert_eq!(s.bytes_up, 1_000_000);
    }

    #[test]
    fn zero_jitter_equals_no_jitter() {
        let j = NetworkModel::wlan_to_cloud().with_jitter(1, 0.0);
        let p = NetworkModel::wlan_to_cloud();
        assert_eq!(j.request_duration(5_000, 100), p.request_duration(5_000, 100));
    }

    #[test]
    fn concurrent_accounting() {
        let net = NetworkModel::wlan_to_cloud();
        crossbeam::thread::scope(|s| {
            for _ in 0..8 {
                let n = net.clone();
                s.spawn(move |_| {
                    for _ in 0..100 {
                        n.request_duration(1, 1);
                    }
                });
            }
        })
        .unwrap();
        let stats = net.stats();
        assert_eq!(stats.requests, 800);
        assert_eq!(stats.bytes_up, 800);
    }
}
