//! Lock-striped sharded key→value store.
//!
//! The SP and DH daemons serve every request from in-memory state; a single
//! coarse `RwLock` serializes all cores on the hot `Verify` path. This
//! module stripes the state across `n` independently locked shards selected
//! by key hash (the paper's `URL_O` / puzzle-id space), so unrelated
//! requests proceed in parallel while per-key operations keep the exact
//! observable semantics of the single-map version.
//!
//! Every shard carries relaxed atomic load counters — reads, writes, and
//! how many acquisitions actually contended (failed the `try_` fast path) —
//! which the service layer exports through
//! `social_puzzles_core::metrics::ServiceMetrics`.

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

/// Default stripe count for SP/DH state: enough for the daemons' bounded
/// worker pools (≤ 64 workers) without wasting memory per instance.
pub const DEFAULT_SHARDS: usize = 16;

/// Upper bound on stripes; beyond this the per-shard bookkeeping costs more
/// than the parallelism buys.
pub const MAX_SHARDS: usize = 1024;

/// Aggregated load/contention counters for one shard.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardLoad {
    /// Read-lock acquisitions.
    pub reads: u64,
    /// Write-lock acquisitions.
    pub writes: u64,
    /// Acquisitions (read or write) that found the lock held and had to
    /// block — the contention signal sharding exists to reduce.
    pub contended: u64,
}

/// Keys that can pick a shard. The hash must be stable across processes so
/// load observations are comparable between runs.
pub trait ShardKey: Hash + Eq {
    /// Stable 64-bit hash used to pick the key's shard.
    fn shard_hash(&self) -> u64;
}

impl ShardKey for u64 {
    fn shard_hash(&self) -> u64 {
        // SplitMix64 finalizer: sequential ids spread over all shards.
        let mut z = self.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl ShardKey for String {
    fn shard_hash(&self) -> u64 {
        fnv1a(self.as_bytes())
    }
}

/// FNV-1a over bytes — the stable string hash used to stripe `URL_O`s.
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        acc ^= b as u64;
        acc = acc.wrapping_mul(0x0000_0100_0000_01b3);
    }
    acc
}

struct Shard<K, V> {
    map: RwLock<HashMap<K, V>>,
    reads: AtomicU64,
    writes: AtomicU64,
    contended: AtomicU64,
}

impl<K, V> Default for Shard<K, V> {
    fn default() -> Self {
        Self {
            map: RwLock::new(HashMap::new()),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            contended: AtomicU64::new(0),
        }
    }
}

/// A hash map striped over independently locked shards.
pub struct ShardedMap<K, V> {
    shards: Box<[Shard<K, V>]>,
    mask: u64,
}

impl<K: ShardKey, V> ShardedMap<K, V> {
    /// Builds a map with `shards` stripes, rounded up to a power of two and
    /// clamped to `[1, MAX_SHARDS]`.
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.clamp(1, MAX_SHARDS).next_power_of_two();
        let shards: Box<[Shard<K, V>]> = (0..n).map(|_| Shard::default()).collect();
        Self { mask: n as u64 - 1, shards }
    }

    /// Stripe count (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index a key maps to.
    pub fn shard_index(&self, key: &K) -> usize {
        (key.shard_hash() & self.mask) as usize
    }

    fn shard(&self, key: &K) -> &Shard<K, V> {
        &self.shards[self.shard_index(key)]
    }

    fn read_shard<'a>(&self, shard: &'a Shard<K, V>) -> ReadGuard<'a, K, V> {
        shard.reads.fetch_add(1, Ordering::Relaxed);
        match shard.map.try_read() {
            Some(guard) => guard,
            None => {
                shard.contended.fetch_add(1, Ordering::Relaxed);
                shard.map.read()
            }
        }
    }

    fn write_shard<'a>(&self, shard: &'a Shard<K, V>) -> WriteGuard<'a, K, V> {
        shard.writes.fetch_add(1, Ordering::Relaxed);
        match shard.map.try_write() {
            Some(guard) => guard,
            None => {
                shard.contended.fetch_add(1, Ordering::Relaxed);
                shard.map.write()
            }
        }
    }

    /// Inserts or replaces, returning the previous value if any.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        let shard = self.shard(&key);
        self.write_shard(shard).insert(key, value)
    }

    /// Removes a key, returning its value if present.
    pub fn remove(&self, key: &K) -> Option<V> {
        let shard = self.shard(key);
        self.write_shard(shard).remove(key)
    }

    /// Runs `f` on the value under the shard's write lock; `None` when the
    /// key is absent.
    pub fn update<T>(&self, key: &K, f: impl FnOnce(&mut V) -> T) -> Option<T> {
        let shard = self.shard(key);
        self.write_shard(shard).get_mut(key).map(f)
    }

    /// Runs `f` on the value under the shard's read lock; `None` when the
    /// key is absent.
    pub fn with<T>(&self, key: &K, f: impl FnOnce(&V) -> T) -> Option<T> {
        let shard = self.shard(key);
        self.read_shard(shard).get(key).map(f)
    }

    /// Total entries across all shards. Not a consistent snapshot: shards
    /// are counted one at a time, like iterating a concurrent map.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| self.read_shard(s).len()).sum()
    }

    /// Whether every shard is empty (same snapshot caveat as [`len`]).
    ///
    /// [`len`]: ShardedMap::len
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| self.read_shard(s).is_empty())
    }

    /// Visits every `(key, value)` pair, shard by shard — the snapshot
    /// export path. Not a consistent cross-shard snapshot (same caveat as
    /// [`len`]); callers needing consistency must quiesce writers first.
    ///
    /// [`len`]: ShardedMap::len
    pub fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        for s in self.shards.iter() {
            let guard = self.read_shard(s);
            for (k, v) in guard.iter() {
                f(k, v);
            }
        }
    }

    /// Folds `f` over all values, shard by shard.
    pub fn fold_values<B>(&self, init: B, mut f: impl FnMut(B, &V) -> B) -> B {
        let mut acc = init;
        for s in self.shards.iter() {
            let guard = self.read_shard(s);
            for v in guard.values() {
                acc = f(acc, v);
            }
        }
        acc
    }

    /// Per-shard load counters, index-aligned with shard numbers.
    pub fn loads(&self) -> Vec<ShardLoad> {
        self.shards
            .iter()
            .map(|s| ShardLoad {
                reads: s.reads.load(Ordering::Relaxed),
                writes: s.writes.load(Ordering::Relaxed),
                contended: s.contended.load(Ordering::Relaxed),
            })
            .collect()
    }
}

impl<K: ShardKey, V: Clone> ShardedMap<K, V> {
    /// Clones the value for a key.
    pub fn get(&self, key: &K) -> Option<V> {
        self.with(key, V::clone)
    }
}

impl<K: ShardKey, V> Default for ShardedMap<K, V> {
    fn default() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }
}

impl<K, V> fmt::Debug for ShardedMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedMap").field("shards", &self.shards.len()).finish_non_exhaustive()
    }
}

type ReadGuard<'a, K, V> = parking_lot::RwLockReadGuard<'a, HashMap<K, V>>;
type WriteGuard<'a, K, V> = parking_lot::RwLockWriteGuard<'a, HashMap<K, V>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_map_semantics() {
        let m: ShardedMap<u64, String> = ShardedMap::with_shards(8);
        assert!(m.is_empty());
        assert_eq!(m.insert(1, "a".into()), None);
        assert_eq!(m.insert(1, "b".into()), Some("a".into()));
        assert_eq!(m.get(&1), Some("b".into()));
        assert_eq!(m.len(), 1);
        assert_eq!(m.update(&1, |v| v.push('!')), Some(()));
        assert_eq!(m.get(&1), Some("b!".into()));
        assert_eq!(m.remove(&1), Some("b!".into()));
        assert_eq!(m.remove(&1), None);
        assert_eq!(m.update(&1, |_| ()), None);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(ShardedMap::<u64, ()>::with_shards(0).shard_count(), 1);
        assert_eq!(ShardedMap::<u64, ()>::with_shards(3).shard_count(), 4);
        assert_eq!(ShardedMap::<u64, ()>::with_shards(16).shard_count(), 16);
        assert_eq!(ShardedMap::<u64, ()>::with_shards(9999).shard_count(), MAX_SHARDS);
    }

    #[test]
    fn sequential_ids_spread_over_shards() {
        let m: ShardedMap<u64, ()> = ShardedMap::with_shards(16);
        let mut hit = vec![false; m.shard_count()];
        for id in 0..64u64 {
            hit[m.shard_index(&id)] = true;
        }
        let used = hit.iter().filter(|&&h| h).count();
        assert!(used >= 12, "ids clump onto {used}/16 shards");
    }

    #[test]
    fn string_keys_spread_over_shards() {
        let m: ShardedMap<String, ()> = ShardedMap::with_shards(16);
        let mut hit = vec![false; m.shard_count()];
        for id in 0..64u64 {
            hit[m.shard_index(&format!("https://dh.example/objects/{id}"))] = true;
        }
        let used = hit.iter().filter(|&&h| h).count();
        assert!(used >= 12, "urls clump onto {used}/16 shards");
    }

    #[test]
    fn loads_observe_reads_and_writes() {
        let m: ShardedMap<u64, u32> = ShardedMap::with_shards(4);
        m.insert(7, 1);
        m.get(&7);
        m.get(&7);
        let loads = m.loads();
        let ix = m.shard_index(&7);
        assert_eq!(loads[ix].writes, 1);
        assert_eq!(loads[ix].reads, 2);
        let total: u64 = loads.iter().map(|l| l.reads + l.writes).sum();
        assert_eq!(total, 3, "only the touched shard sees traffic");
    }

    #[test]
    fn fold_values_sees_everything() {
        let m: ShardedMap<u64, usize> = ShardedMap::with_shards(8);
        for i in 0..100 {
            m.insert(i, i as usize);
        }
        let sum = m.fold_values(0usize, |acc, v| acc + v);
        assert_eq!(sum, (0..100).sum());
        assert_eq!(m.len(), 100);
    }

    #[test]
    fn concurrent_mixed_load_keeps_consistency() {
        let m = std::sync::Arc::new(ShardedMap::<u64, u64>::with_shards(16));
        crossbeam::thread::scope(|s| {
            for t in 0..8u64 {
                let m = m.clone();
                s.spawn(move |_| {
                    for i in 0..200u64 {
                        let key = t * 1000 + i;
                        m.insert(key, key);
                        assert_eq!(m.get(&key), Some(key));
                        m.update(&key, |v| *v += 1);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(m.len(), 1600);
        let ok = m.fold_values(true, |acc, _| acc);
        assert!(ok);
    }
}
