//! A simulated online social network (OSN) substrate.
//!
//! The paper's prototypes run as a Facebook canvas application backed by
//! a server on Amazon EC2 (§VII). This crate simulates every piece of
//! that environment the protocols interact with, so the constructions in
//! `social-puzzles-core` run end-to-end and the benchmark harness can
//! regenerate Figure 10 with byte-accurate transfer sizes:
//!
//! * [`SocialGraph`] — users with *symmetric* friendships (§IV-A),
//! * [`ServiceProvider`] — the SP: puzzle database and a hyperlink feed
//!   (the "post on the sharer's wall" step),
//! * [`StorageHost`] — the DH: a URL-addressed blob store, logically
//!   separate from the SP,
//! * [`TupleStore`] — Zanzibar-style relationship tuples ([`rebac`]):
//!   the ReBAC pre-filter gating who may *attempt* a puzzle, composed
//!   with the paper's k-of-N knowledge-based decision,
//! * [`NetworkModel`] / [`TrafficStats`] — deterministic latency +
//!   bandwidth accounting calibrated to the paper's 802.11n/60 Mbps setup,
//! * [`DeviceProfile`] — PC vs tablet compute scaling for Fig. 10(c, d).
//!
//! # Example
//!
//! ```
//! use sp_osn::{NetworkModel, SocialGraph};
//!
//! let mut graph = SocialGraph::new();
//! let alice = graph.add_user("alice");
//! let bob = graph.add_user("bob");
//! graph.befriend(alice, bob)?;
//! assert!(graph.are_friends(alice, bob));
//! assert!(graph.are_friends(bob, alice), "friendship is symmetric");
//!
//! let net = NetworkModel::wlan_to_cloud();
//! let upload = net.request_duration(600_000, 200); // ~600 KB up
//! let tiny = net.request_duration(500, 200);
//! assert!(upload > tiny);
//! # Ok::<(), sp_osn::OsnError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod api;
mod device;
mod error;
mod graph;
mod network;
mod provider;
pub mod rebac;
pub mod shard;
mod storage;

pub use api::{
    DurabilityCounters, ProviderApi, ProviderBackend, ReplApplied, StorageApi, StorageBackend,
};
pub use device::DeviceProfile;
pub use error::OsnError;
pub use graph::{SocialGraph, UserId};
pub use network::{NetworkModel, TrafficStats};
pub use provider::{AuditEntry, Post, PostId, PuzzleId, ServiceProvider};
pub use rebac::{RelObject, RelSubject, RelTuple, TupleStore};
pub use shard::{ShardLoad, ShardedMap, DEFAULT_SHARDS};
pub use storage::{StorageHost, Url};
