//! Users and the symmetric friendship graph.

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use crate::error::OsnError;

/// Opaque user identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct UserId(u64);

impl UserId {
    /// Constructs an id from a raw value — only for tests that need a
    /// user id without a graph.
    #[doc(hidden)]
    pub fn from_raw_for_tests(v: u64) -> Self {
        UserId(v)
    }

    /// Reconstructs an id from its raw value — for transport layers that
    /// carry ids over the wire. The graph still decides whether the id
    /// names a registered user.
    pub fn from_raw(v: u64) -> Self {
        UserId(v)
    }

    /// The raw value, for wire encoding.
    pub fn raw(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "user#{}", self.0)
    }
}

#[derive(Clone, Debug)]
struct UserRecord {
    name: String,
    friends: BTreeSet<UserId>,
}

/// A symmetric social graph (§IV-A: "if a user a has another user b in her
/// friend list, then user b has user a as her friend as well").
#[derive(Clone, Debug, Default)]
pub struct SocialGraph {
    users: HashMap<UserId, UserRecord>,
    next_id: u64,
}

impl SocialGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new user and returns their id.
    pub fn add_user(&mut self, name: impl Into<String>) -> UserId {
        let id = UserId(self.next_id);
        self.next_id += 1;
        self.users.insert(id, UserRecord { name: name.into(), friends: BTreeSet::new() });
        id
    }

    /// The user's display name.
    ///
    /// # Errors
    ///
    /// Returns [`OsnError::UnknownUser`] for unregistered ids.
    pub fn name(&self, user: UserId) -> Result<&str, OsnError> {
        Ok(&self.users.get(&user).ok_or(OsnError::UnknownUser)?.name)
    }

    /// Number of registered users.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// Whether the graph has no users.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// Creates a symmetric friendship between `a` and `b` (idempotent).
    ///
    /// # Errors
    ///
    /// Returns [`OsnError::UnknownUser`] if either id is unregistered, or
    /// [`OsnError::SelfFriendship`] if `a == b`.
    pub fn befriend(&mut self, a: UserId, b: UserId) -> Result<(), OsnError> {
        if a == b {
            return Err(OsnError::SelfFriendship);
        }
        if !self.users.contains_key(&a) || !self.users.contains_key(&b) {
            return Err(OsnError::UnknownUser);
        }
        self.users.get_mut(&a).expect("checked").friends.insert(b);
        self.users.get_mut(&b).expect("checked").friends.insert(a);
        Ok(())
    }

    /// Removes the friendship in both directions (idempotent).
    ///
    /// # Errors
    ///
    /// Returns [`OsnError::UnknownUser`] if either id is unregistered.
    pub fn unfriend(&mut self, a: UserId, b: UserId) -> Result<(), OsnError> {
        if !self.users.contains_key(&a) || !self.users.contains_key(&b) {
            return Err(OsnError::UnknownUser);
        }
        self.users.get_mut(&a).expect("checked").friends.remove(&b);
        self.users.get_mut(&b).expect("checked").friends.remove(&a);
        Ok(())
    }

    /// Whether `a` and `b` are friends.
    pub fn are_friends(&self, a: UserId, b: UserId) -> bool {
        self.users.get(&a).map(|r| r.friends.contains(&b)).unwrap_or(false)
    }

    /// The user's friend list (the sharer's social network `S_T`).
    ///
    /// # Errors
    ///
    /// Returns [`OsnError::UnknownUser`] for unregistered ids.
    pub fn friends(&self, user: UserId) -> Result<Vec<UserId>, OsnError> {
        Ok(self.users.get(&user).ok_or(OsnError::UnknownUser)?.friends.iter().copied().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_name() {
        let mut g = SocialGraph::new();
        assert!(g.is_empty());
        let a = g.add_user("alice");
        let b = g.add_user("bob");
        assert_ne!(a, b);
        assert_eq!(g.name(a).unwrap(), "alice");
        assert_eq!(g.name(b).unwrap(), "bob");
        assert_eq!(g.len(), 2);
        let ghost = UserId(999);
        assert_eq!(g.name(ghost).unwrap_err(), OsnError::UnknownUser);
    }

    #[test]
    fn friendship_is_symmetric() {
        let mut g = SocialGraph::new();
        let a = g.add_user("a");
        let b = g.add_user("b");
        assert!(!g.are_friends(a, b));
        g.befriend(a, b).unwrap();
        assert!(g.are_friends(a, b));
        assert!(g.are_friends(b, a));
        assert_eq!(g.friends(a).unwrap(), vec![b]);
        assert_eq!(g.friends(b).unwrap(), vec![a]);
    }

    #[test]
    fn befriend_errors() {
        let mut g = SocialGraph::new();
        let a = g.add_user("a");
        assert_eq!(g.befriend(a, a).unwrap_err(), OsnError::SelfFriendship);
        assert_eq!(g.befriend(a, UserId(42)).unwrap_err(), OsnError::UnknownUser);
    }

    #[test]
    fn unfriend_both_directions() {
        let mut g = SocialGraph::new();
        let a = g.add_user("a");
        let b = g.add_user("b");
        g.befriend(a, b).unwrap();
        g.unfriend(a, b).unwrap();
        assert!(!g.are_friends(a, b));
        assert!(!g.are_friends(b, a));
        // Idempotent.
        g.unfriend(a, b).unwrap();
    }

    #[test]
    fn befriend_is_idempotent() {
        let mut g = SocialGraph::new();
        let a = g.add_user("a");
        let b = g.add_user("b");
        g.befriend(a, b).unwrap();
        g.befriend(b, a).unwrap();
        assert_eq!(g.friends(a).unwrap().len(), 1);
    }

    #[test]
    fn larger_network() {
        let mut g = SocialGraph::new();
        let sharer = g.add_user("sharer");
        let friends: Vec<UserId> = (0..20).map(|i| g.add_user(format!("friend{i}"))).collect();
        for &f in &friends {
            g.befriend(sharer, f).unwrap();
        }
        assert_eq!(g.friends(sharer).unwrap().len(), 20);
        // Friends of the sharer are not automatically friends of each other.
        assert!(!g.are_friends(friends[0], friends[1]));
    }
}
