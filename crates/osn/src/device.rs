//! Client device compute profiles.
//!
//! Fig. 10(c, d) compares the prototype on a quad-core 2.5 GHz PC against
//! a Nexus 7 tablet. The tablet has no architectural difference the
//! protocols care about — it is simply slower at the same JavaScript — so
//! the simulation models it as a multiplicative compute scale applied to
//! measured local processing time.

use std::time::{Duration, Instant};

/// A client device: a name and a compute slowdown relative to the
/// reference PC.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceProfile {
    name: String,
    compute_scale: f64,
}

impl DeviceProfile {
    /// Builds a custom profile.
    ///
    /// # Panics
    ///
    /// Panics if `compute_scale` is not finite and positive.
    pub fn new(name: impl Into<String>, compute_scale: f64) -> Self {
        assert!(compute_scale.is_finite() && compute_scale > 0.0, "compute scale must be positive");
        Self { name: name.into(), compute_scale }
    }

    /// The paper's PC: quad-core 2.5 GHz, scale 1.0.
    pub fn pc() -> Self {
        Self::new("PC (quad 2.5 GHz)", 1.0)
    }

    /// The paper's Nexus 7 tablet: same code, roughly 5× slower at
    /// browser-side crypto.
    pub fn tablet() -> Self {
        Self::new("Nexus 7 tablet", 5.0)
    }

    /// The profile name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The compute slowdown factor.
    pub fn compute_scale(&self) -> f64 {
        self.compute_scale
    }

    /// Runs `f`, returning its output and the *device-scaled* duration.
    pub fn run<T>(&self, f: impl FnOnce() -> T) -> (T, Duration) {
        let start = Instant::now();
        let out = f();
        let elapsed = start.elapsed();
        (out, self.scale(elapsed))
    }

    /// Scales an already-measured duration to this device.
    pub fn scale(&self, measured: Duration) -> Duration {
        measured.mul_f64(self.compute_scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert_eq!(DeviceProfile::pc().compute_scale(), 1.0);
        assert!(DeviceProfile::tablet().compute_scale() > 1.0);
        assert!(DeviceProfile::tablet().name().contains("Nexus"));
    }

    #[test]
    fn scaling() {
        let tablet = DeviceProfile::tablet();
        let d = Duration::from_millis(10);
        assert_eq!(tablet.scale(d), Duration::from_millis(50));
        let pc = DeviceProfile::pc();
        assert_eq!(pc.scale(d), d);
    }

    #[test]
    fn run_returns_output_and_scaled_time() {
        let dev = DeviceProfile::new("slowpoke", 3.0);
        let (value, scaled) = dev.run(|| {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(value, 42);
        assert!(scaled >= Duration::from_millis(15), "scaled = {scaled:?}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_scale() {
        let _ = DeviceProfile::new("bad", 0.0);
    }
}
