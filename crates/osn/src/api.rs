//! Backend abstraction: the service-provider and storage-host APIs.
//!
//! The paper's architecture (§IV-A, Fig. 6) is a *networked* three-party
//! system: clients talk to an untrusted service provider (puzzle
//! database, feed) and to a storage host (`URL_O` blobs). These traits
//! capture exactly the surface the protocol drivers in
//! `social-puzzles-core` need, so a driver runs unchanged against
//!
//! * the in-memory [`ServiceProvider`] / [`StorageHost`] (tests,
//!   benchmarks, simulation), or
//! * `sp-net`'s remote clients speaking the framed TCP protocol to real
//!   daemons.
//!
//! Every method returns a [`Result`] even where the in-memory backend
//! cannot fail: a remote backend can always fail with
//! [`OsnError::Transport`].

use bytes::Bytes;

use crate::error::OsnError;
use crate::graph::UserId;
use crate::provider::{PostId, PuzzleId, ServiceProvider};
use crate::shard::ShardLoad;
use crate::storage::{StorageHost, Url};

/// Durability counters a persistent backend exports: how many mutations
/// were logged, how fsyncs batched, and what recovery replayed. All zero
/// until the first corresponding event.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DurabilityCounters {
    /// Records appended to the write-ahead log.
    pub durable_appends: u64,
    /// Physical fsync calls that made one or more appends durable —
    /// under group commit this is ≤ `durable_appends`.
    pub fsync_batches: u64,
    /// Log records replayed by the last recovery-on-startup.
    pub recovery_replayed_records: u64,
    /// Snapshots written since startup.
    pub snapshot_count: u64,
}

/// The service-provider surface the protocol drivers use: opaque puzzle
/// records, the access-attempt audit log, and the hyperlink feed.
pub trait ProviderApi {
    /// Stores an opaque puzzle record, returning its id.
    ///
    /// # Errors
    ///
    /// Remote backends return [`OsnError::Transport`] on wire failures.
    fn publish_puzzle(&self, record: Bytes) -> Result<PuzzleId, OsnError>;

    /// Fetches a puzzle record.
    ///
    /// # Errors
    ///
    /// Returns [`OsnError::UnknownPuzzle`] for unknown ids.
    fn fetch_puzzle(&self, id: PuzzleId) -> Result<Bytes, OsnError>;

    /// Replaces a puzzle record in place (sharer refresh, §VI-C).
    ///
    /// # Errors
    ///
    /// Returns [`OsnError::UnknownPuzzle`] for unknown ids.
    fn replace_puzzle(&self, id: PuzzleId, record: Bytes) -> Result<(), OsnError>;

    /// Deletes a puzzle record.
    ///
    /// # Errors
    ///
    /// Returns [`OsnError::UnknownPuzzle`] for unknown ids.
    fn delete_puzzle(&self, id: PuzzleId) -> Result<(), OsnError>;

    /// Records an access attempt in the SP's audit log.
    ///
    /// # Errors
    ///
    /// Remote backends return [`OsnError::Transport`] on wire failures.
    fn log_access(&self, user: UserId, puzzle: PuzzleId, granted: bool) -> Result<(), OsnError>;

    /// Posts a hyperlink to the author's wall.
    ///
    /// # Errors
    ///
    /// Remote backends return [`OsnError::Transport`] on wire failures.
    fn post(&self, author: UserId, text: &str, puzzle: PuzzleId) -> Result<PostId, OsnError>;
}

/// The storage-host surface: a URL-addressed blob store.
pub trait StorageApi {
    /// Reserves a URL with empty content, to be filled later.
    ///
    /// # Errors
    ///
    /// Remote backends return [`OsnError::Transport`] on wire failures.
    fn reserve(&self) -> Result<Url, OsnError>;

    /// Stores a blob, returning its public URL.
    ///
    /// # Errors
    ///
    /// Remote backends return [`OsnError::Transport`] on wire failures.
    fn put(&self, data: Bytes) -> Result<Url, OsnError>;

    /// Fills (or replaces) the content at a previously issued URL.
    ///
    /// # Errors
    ///
    /// Returns [`OsnError::UnknownUrl`] if the URL was never issued.
    fn fill(&self, url: &Url, data: Bytes) -> Result<(), OsnError>;

    /// Fetches a blob.
    ///
    /// # Errors
    ///
    /// Returns [`OsnError::UnknownUrl`] if nothing is stored at `url`.
    fn get(&self, url: &Url) -> Result<Bytes, OsnError>;

    /// Deletes a blob.
    ///
    /// # Errors
    ///
    /// Returns [`OsnError::UnknownUrl`] if nothing is stored at `url`.
    fn delete(&self, url: &Url) -> Result<(), OsnError>;
}

/// The outcome of applying one replication batch to a backend: the new
/// durable watermark plus which puzzle records the batch touched (so a
/// serving layer can invalidate caches without peeking inside the
/// opaque frame stream).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReplApplied {
    /// Highest sequence number durable after the apply (the ack).
    pub watermark: u64,
    /// Records actually applied (duplicates below the watermark are
    /// skipped and not counted).
    pub applied: u64,
    /// Raw puzzle ids whose records were created, replaced, or deleted.
    pub puzzles_touched: Vec<u64>,
}

/// What a *service* hosting a provider backend needs beyond the driver
/// surface: batched audit logging, shard observability, and (for durable
/// backends) durability counters. In-memory and durable backends both
/// implement this, so `sp-net`'s `SpService` is generic over it.
///
/// The cluster hooks (`publish_puzzle_at`, `repl_*`) have conservative
/// defaults so existing backends keep compiling; a durable backend
/// overrides them to expose its write-ahead log as a replication
/// stream. The frame bytes are opaque at this layer — `sp-net` ships
/// them without depending on the storage crate.
pub trait ProviderBackend: ProviderApi {
    /// Records many access attempts as one contiguous audit batch.
    ///
    /// # Errors
    ///
    /// Durable backends return [`OsnError::Transport`] on log failures.
    fn log_access_batch(&self, entries: Vec<(UserId, PuzzleId, bool)>) -> Result<(), OsnError>;

    /// Per-shard load counters for the puzzle table.
    fn shard_loads(&self) -> Vec<ShardLoad>;

    /// Durability counters; `None` for purely in-memory backends.
    fn durability(&self) -> Option<DurabilityCounters> {
        None
    }

    /// Stores a puzzle record under a **caller-chosen** id (cluster
    /// mode derives ids from `URL_O`, so they are stable across nodes
    /// and rebalances). Overwrites any existing record at that id —
    /// retried publishes and key migrations are idempotent.
    ///
    /// # Errors
    ///
    /// Durable backends return [`OsnError::Transport`] on log failures.
    fn publish_puzzle_at(&self, id: PuzzleId, record: Bytes) -> Result<(), OsnError>;

    /// Exports the committed log records after `after_seq` as
    /// concatenated CRC-framed bytes, returning `(durable watermark,
    /// frames)`. Only meaningful on durable backends.
    ///
    /// # Errors
    ///
    /// The default (in-memory) answer is "replication unsupported";
    /// durable backends also fail when `after_seq` predates their
    /// oldest retained segment (the replica must be reseeded).
    fn repl_export(&self, after_seq: u64) -> Result<(u64, Vec<u8>), String> {
        let _ = after_seq;
        Err("replication unsupported: backend has no write-ahead log".into())
    }

    /// Applies a batch of exported frames (contiguous seqs starting at
    /// or below this backend's watermark + 1) to local state *and* the
    /// local log, keeping replica and primary logs byte-identical.
    ///
    /// # Errors
    ///
    /// The default (in-memory) answer is "replication unsupported";
    /// durable backends fail on gaps, corrupt frames, or log errors.
    fn repl_apply(&self, frames: &[u8]) -> Result<ReplApplied, String> {
        let _ = frames;
        Err("replication unsupported: backend has no write-ahead log".into())
    }

    /// The durable log watermark (highest fsynced seq); 0 when nothing
    /// is durable or the backend keeps no log.
    fn repl_watermark(&self) -> u64 {
        0
    }
}

/// The storage-host analogue of [`ProviderBackend`].
pub trait StorageBackend: StorageApi {
    /// Per-shard load counters for the blob store.
    fn shard_loads(&self) -> Vec<ShardLoad>;

    /// Durability counters; `None` for purely in-memory backends.
    fn durability(&self) -> Option<DurabilityCounters> {
        None
    }
}

impl ProviderApi for ServiceProvider {
    fn publish_puzzle(&self, record: Bytes) -> Result<PuzzleId, OsnError> {
        Ok(ServiceProvider::publish_puzzle(self, record))
    }

    fn fetch_puzzle(&self, id: PuzzleId) -> Result<Bytes, OsnError> {
        ServiceProvider::fetch_puzzle(self, id)
    }

    fn replace_puzzle(&self, id: PuzzleId, record: Bytes) -> Result<(), OsnError> {
        ServiceProvider::replace_puzzle(self, id, record)
    }

    fn delete_puzzle(&self, id: PuzzleId) -> Result<(), OsnError> {
        ServiceProvider::delete_puzzle(self, id)
    }

    fn log_access(&self, user: UserId, puzzle: PuzzleId, granted: bool) -> Result<(), OsnError> {
        ServiceProvider::log_access(self, user, puzzle, granted);
        Ok(())
    }

    fn post(&self, author: UserId, text: &str, puzzle: PuzzleId) -> Result<PostId, OsnError> {
        Ok(ServiceProvider::post(self, author, text, puzzle))
    }
}

impl ProviderBackend for ServiceProvider {
    fn log_access_batch(&self, entries: Vec<(UserId, PuzzleId, bool)>) -> Result<(), OsnError> {
        ServiceProvider::log_access_batch(self, entries);
        Ok(())
    }

    fn shard_loads(&self) -> Vec<ShardLoad> {
        ServiceProvider::shard_loads(self)
    }

    fn publish_puzzle_at(&self, id: PuzzleId, record: Bytes) -> Result<(), OsnError> {
        ServiceProvider::restore_puzzle(self, id.raw(), record);
        Ok(())
    }
}

impl StorageApi for StorageHost {
    fn reserve(&self) -> Result<Url, OsnError> {
        Ok(StorageHost::reserve(self))
    }

    fn put(&self, data: Bytes) -> Result<Url, OsnError> {
        Ok(StorageHost::put(self, data))
    }

    fn fill(&self, url: &Url, data: Bytes) -> Result<(), OsnError> {
        StorageHost::fill(self, url, data)
    }

    fn get(&self, url: &Url) -> Result<Bytes, OsnError> {
        StorageHost::get(self, url)
    }

    fn delete(&self, url: &Url) -> Result<(), OsnError> {
        StorageHost::delete(self, url)
    }
}

impl StorageBackend for StorageHost {
    fn shard_loads(&self) -> Vec<ShardLoad> {
        StorageHost::shard_loads(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exercises both in-memory backends exclusively through the traits —
    /// the same code path a generic protocol driver takes.
    fn roundtrip<P: ProviderApi, D: StorageApi>(sp: &P, dh: &D) {
        let url = dh.put(Bytes::from_static(b"blob")).unwrap();
        assert_eq!(dh.get(&url).unwrap(), Bytes::from_static(b"blob"));
        let spare = dh.reserve().unwrap();
        dh.fill(&spare, Bytes::from_static(b"late")).unwrap();
        assert_eq!(dh.get(&spare).unwrap(), Bytes::from_static(b"late"));
        dh.delete(&spare).unwrap();
        assert_eq!(dh.get(&spare).unwrap_err(), OsnError::UnknownUrl);

        let id = sp.publish_puzzle(Bytes::from_static(b"record")).unwrap();
        assert_eq!(sp.fetch_puzzle(id).unwrap(), Bytes::from_static(b"record"));
        sp.replace_puzzle(id, Bytes::from_static(b"v2")).unwrap();
        assert_eq!(sp.fetch_puzzle(id).unwrap(), Bytes::from_static(b"v2"));
        let user = UserId::from_raw(7);
        sp.log_access(user, id, true).unwrap();
        let post = sp.post(user, "hi", id).unwrap();
        let _ = post;
        sp.delete_puzzle(id).unwrap();
        assert_eq!(sp.fetch_puzzle(id).unwrap_err(), OsnError::UnknownPuzzle);
    }

    #[test]
    fn in_memory_backends_implement_the_traits() {
        let sp = ServiceProvider::new();
        let dh = StorageHost::new();
        roundtrip(&sp, &dh);
        // The trait path shares state with the inherent path.
        assert_eq!(sp.audit_log().len(), 1);
        assert_eq!(sp.puzzle_count(), 0);
    }

    #[test]
    fn in_memory_backends_expose_backend_surface() {
        fn backend<P: ProviderBackend, D: StorageBackend>(sp: &P, dh: &D) {
            let id = sp.publish_puzzle(Bytes::new()).unwrap();
            let u = UserId::from_raw(1);
            sp.log_access_batch(vec![(u, id, true), (u, id, false)]).unwrap();
            assert!(!ProviderBackend::shard_loads(sp).is_empty());
            assert!(!StorageBackend::shard_loads(dh).is_empty());
            assert_eq!(sp.durability(), None, "in-memory backends report no durability");
            assert_eq!(dh.durability(), None);
            // Cluster hooks: caller-chosen ids store and overwrite;
            // replication stays unsupported without a log.
            let at = PuzzleId::from_raw(0xfeed_f00d);
            sp.publish_puzzle_at(at, Bytes::from_static(b"v1")).unwrap();
            sp.publish_puzzle_at(at, Bytes::from_static(b"v2")).unwrap();
            assert_eq!(sp.fetch_puzzle(at).unwrap(), Bytes::from_static(b"v2"));
            assert_eq!(sp.repl_watermark(), 0);
            assert!(sp.repl_export(0).unwrap_err().contains("unsupported"));
            assert!(sp.repl_apply(&[]).unwrap_err().contains("unsupported"));
        }
        let sp = ServiceProvider::new();
        let dh = StorageHost::new();
        backend(&sp, &dh);
        assert_eq!(sp.audit_log().len(), 2);
        assert_eq!(DurabilityCounters::default().durable_appends, 0);
    }

    #[test]
    fn ids_roundtrip_raw_values() {
        let p = PuzzleId::from_raw(42);
        assert_eq!(p.raw(), 42);
        assert_eq!(PuzzleId::from_raw(p.raw()), p);
        let post = PostId::from_raw(9);
        assert_eq!(post.raw(), 9);
        let u = UserId::from_raw(3);
        assert_eq!(u.raw(), 3);
        assert_eq!(u, UserId::from_raw_for_tests(3));
    }
}
