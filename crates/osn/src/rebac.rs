//! Zanzibar-style relationship tuples: a ReBAC pre-filter for puzzles.
//!
//! The paper's access decision is purely knowledge-based — anyone who
//! can answer `k` of `N` context questions opens the object. Real OSNs
//! compose that with *relationship*-based control: "friends-of-friends
//! may attempt this puzzle, k-of-N context still required to open".
//! This module supplies the relationship half as a tuple store in the
//! style of Google's Zanzibar: facts of the form
//! `object#relation@subject`, where the subject is either a concrete
//! user or a *userset* pointer (`object#relation`) that delegates to
//! another relation.
//!
//! ```text
//! circle:42#member@user:7                  direct membership
//! puzzle:9#attempter@circle:42#member      every member of circle 42
//!                                          may attempt puzzle 9
//! ```
//!
//! [`TupleStore::check`] answers "does subject S have relation R on
//! object O" by direct lookup plus recursive userset expansion, with a
//! visited set so delegation cycles terminate. [`TupleStore::check_naive`]
//! is the deliberately-slow oracle twin (fresh allocations, no early
//! exit) kept for differential checking by the simulator.
//!
//! The store is the *pre-filter*: the simulator (and eventually the SP
//! daemon) consults it before `DisplayPuzzle`, and only relationship-
//! authorized receivers get to attempt the knowledge-based puzzle at
//! all. Revoking a tuple therefore takes effect on the *next attempt*,
//! independent of the puzzle's own lifetime.

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::UserId;

/// A namespaced object a relation can attach to, e.g. `circle:42` or
/// `puzzle:9`. Namespaces are static strings because the set of
/// namespaces is a schema decision, not runtime data.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelObject {
    /// Schema namespace, e.g. `"circle"` or `"puzzle"`.
    pub namespace: &'static str,
    /// Object id within the namespace.
    pub id: u64,
}

impl RelObject {
    /// A namespaced object.
    #[must_use]
    pub fn new(namespace: &'static str, id: u64) -> Self {
        Self { namespace, id }
    }
}

impl fmt::Display for RelObject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.namespace, self.id)
    }
}

/// The subject side of a tuple: a concrete user, or a userset pointer
/// delegating to everyone holding `relation` on `object`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RelSubject {
    /// A concrete user.
    User(UserId),
    /// A userset: all subjects with `relation` on `object`, expanded
    /// recursively at check time.
    Set {
        /// The object whose relation is delegated to.
        object: RelObject,
        /// The delegated relation.
        relation: &'static str,
    },
}

impl fmt::Display for RelSubject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::User(u) => write!(f, "user:{}", u.raw()),
            Self::Set { object, relation } => write!(f, "{object}#{relation}"),
        }
    }
}

/// One relationship fact: `object#relation@subject`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RelTuple {
    /// The object the relation attaches to.
    pub object: RelObject,
    /// The relation name, e.g. `"member"` or `"attempter"`.
    pub relation: &'static str,
    /// Who holds the relation.
    pub subject: RelSubject,
}

impl RelTuple {
    /// A relationship fact.
    #[must_use]
    pub fn new(object: RelObject, relation: &'static str, subject: RelSubject) -> Self {
        Self { object, relation, subject }
    }
}

impl fmt::Display for RelTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}@{}", self.object, self.relation, self.subject)
    }
}

/// An in-memory tuple store with recursive userset expansion.
///
/// Writes (`grant`/`revoke`) are idempotent; reads (`check`) are pure.
/// The store keeps tuples indexed by `(object, relation)` so a check
/// touches only the relations it expands.
#[derive(Default, Debug)]
pub struct TupleStore {
    tuples: HashMap<(RelObject, &'static str), HashSet<RelSubject>>,
    len: usize,
}

impl TupleStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tuples currently stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the store holds no tuples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Adds a tuple. Returns `true` if it was not already present.
    pub fn grant(&mut self, tuple: RelTuple) -> bool {
        let fresh =
            self.tuples.entry((tuple.object, tuple.relation)).or_default().insert(tuple.subject);
        if fresh {
            self.len += 1;
        }
        fresh
    }

    /// Removes a tuple. Returns `true` if it was present.
    pub fn revoke(&mut self, tuple: RelTuple) -> bool {
        let key = (tuple.object, tuple.relation);
        let Some(set) = self.tuples.get_mut(&key) else {
            return false;
        };
        let removed = set.remove(&tuple.subject);
        if removed {
            self.len -= 1;
            if set.is_empty() {
                self.tuples.remove(&key);
            }
        }
        removed
    }

    /// Removes every tuple on `object#relation`, returning how many.
    pub fn revoke_all(&mut self, object: RelObject, relation: &'static str) -> usize {
        let removed = self.tuples.remove(&(object, relation)).map_or(0, |s| s.len());
        self.len -= removed;
        removed
    }

    /// Does `user` hold `relation` on `object`, directly or through any
    /// chain of userset delegations? Cycles in the delegation graph are
    /// tolerated (a visited set cuts them); a cycle simply grants
    /// nothing by itself.
    #[must_use]
    pub fn check(&self, object: RelObject, relation: &'static str, user: UserId) -> bool {
        let mut visited = HashSet::new();
        self.check_inner(object, relation, user, &mut visited)
    }

    fn check_inner(
        &self,
        object: RelObject,
        relation: &'static str,
        user: UserId,
        visited: &mut HashSet<(RelObject, &'static str)>,
    ) -> bool {
        if !visited.insert((object, relation)) {
            return false;
        }
        let Some(subjects) = self.tuples.get(&(object, relation)) else {
            return false;
        };
        if subjects.contains(&RelSubject::User(user)) {
            return true;
        }
        subjects.iter().any(|s| match s {
            RelSubject::User(_) => false,
            RelSubject::Set { object: o, relation: r } => self.check_inner(*o, r, user, visited),
        })
    }

    /// The slow oracle twin of [`TupleStore::check`]: a breadth-first
    /// frontier expansion that materializes every reachable userset
    /// before answering, with none of `check`'s early exits. Used by the
    /// simulator's sampled differential pass — the two must always
    /// agree.
    #[must_use]
    pub fn check_naive(&self, object: RelObject, relation: &'static str, user: UserId) -> bool {
        let mut frontier = vec![(object, relation)];
        let mut seen: HashSet<(RelObject, &'static str)> = frontier.iter().copied().collect();
        let mut granted = false;
        while let Some((o, r)) = frontier.pop() {
            for subject in self.tuples.get(&(o, r)).into_iter().flatten() {
                match subject {
                    RelSubject::User(u) => {
                        if *u == user {
                            granted = true;
                        }
                    }
                    RelSubject::Set { object: o2, relation: r2 } => {
                        if seen.insert((*o2, r2)) {
                            frontier.push((*o2, r2));
                        }
                    }
                }
            }
        }
        granted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn user(raw: u64) -> UserId {
        UserId::from_raw(raw)
    }

    #[test]
    fn direct_grant_and_revoke() {
        let mut store = TupleStore::new();
        let circle = RelObject::new("circle", 42);
        let t = RelTuple::new(circle, "member", RelSubject::User(user(7)));
        assert!(!store.check(circle, "member", user(7)));
        assert!(store.grant(t));
        assert!(!store.grant(t), "grant is idempotent");
        assert_eq!(store.len(), 1);
        assert!(store.check(circle, "member", user(7)));
        assert!(!store.check(circle, "member", user(8)));
        assert!(!store.check(circle, "owner", user(7)));
        assert!(store.revoke(t));
        assert!(!store.revoke(t), "revoke is idempotent");
        assert!(store.is_empty());
        assert!(!store.check(circle, "member", user(7)));
    }

    #[test]
    fn userset_indirection_spans_namespaces() {
        let mut store = TupleStore::new();
        let circle = RelObject::new("circle", 1);
        let puzzle = RelObject::new("puzzle", 9);
        store.grant(RelTuple::new(circle, "member", RelSubject::User(user(3))));
        store.grant(RelTuple::new(
            puzzle,
            "attempter",
            RelSubject::Set { object: circle, relation: "member" },
        ));
        assert!(store.check(puzzle, "attempter", user(3)));
        assert!(!store.check(puzzle, "attempter", user(4)));
        // Revoking the *membership* revokes the derived attempt right.
        store.revoke(RelTuple::new(circle, "member", RelSubject::User(user(3))));
        assert!(!store.check(puzzle, "attempter", user(3)));
    }

    #[test]
    fn delegation_cycles_terminate_and_grant_nothing() {
        let mut store = TupleStore::new();
        let a = RelObject::new("circle", 1);
        let b = RelObject::new("circle", 2);
        store.grant(RelTuple::new(a, "member", RelSubject::Set { object: b, relation: "member" }));
        store.grant(RelTuple::new(b, "member", RelSubject::Set { object: a, relation: "member" }));
        assert!(!store.check(a, "member", user(1)));
        // A concrete user anywhere in the cycle is reachable from both.
        store.grant(RelTuple::new(b, "member", RelSubject::User(user(1))));
        assert!(store.check(a, "member", user(1)));
        assert!(store.check(b, "member", user(1)));
    }

    #[test]
    fn revoke_all_clears_one_relation_only() {
        let mut store = TupleStore::new();
        let circle = RelObject::new("circle", 5);
        for u in 0..4 {
            store.grant(RelTuple::new(circle, "member", RelSubject::User(user(u))));
        }
        store.grant(RelTuple::new(circle, "owner", RelSubject::User(user(0))));
        assert_eq!(store.revoke_all(circle, "member"), 4);
        assert_eq!(store.len(), 1);
        assert!(!store.check(circle, "member", user(0)));
        assert!(store.check(circle, "owner", user(0)));
    }

    #[test]
    fn naive_oracle_agrees_with_check() {
        // A deterministic pseudo-random tuple soup, including cycles,
        // cross-namespace delegation, and dangling usersets.
        let mut store = TupleStore::new();
        let mut state = 0x5EEDu64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let relations = ["member", "attempter", "viewer"];
        for _ in 0..300 {
            let object =
                RelObject::new(if next() % 2 == 0 { "circle" } else { "puzzle" }, next() % 12);
            let relation = relations[(next() % 3) as usize];
            let subject = if next() % 3 == 0 {
                RelSubject::Set {
                    object: RelObject::new(
                        if next() % 2 == 0 { "circle" } else { "puzzle" },
                        next() % 12,
                    ),
                    relation: relations[(next() % 3) as usize],
                }
            } else {
                RelSubject::User(user(next() % 20))
            };
            store.grant(RelTuple::new(object, relation, subject));
        }
        for ns in ["circle", "puzzle"] {
            for id in 0..12 {
                for relation in relations {
                    for u in 0..20 {
                        let object = RelObject::new(ns, id);
                        assert_eq!(
                            store.check(object, relation, user(u)),
                            store.check_naive(object, relation, user(u)),
                            "divergence at {object}#{relation}@user:{u}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn display_matches_zanzibar_notation() {
        let t = RelTuple::new(
            RelObject::new("puzzle", 9),
            "attempter",
            RelSubject::Set { object: RelObject::new("circle", 42), relation: "member" },
        );
        assert_eq!(t.to_string(), "puzzle:9#attempter@circle:42#member");
        let d = RelTuple::new(RelObject::new("circle", 42), "member", RelSubject::User(user(7)));
        assert_eq!(d.to_string(), "circle:42#member@user:7");
    }
}
