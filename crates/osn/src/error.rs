//! Error types.

use std::error::Error;
use std::fmt;

/// Errors produced by the OSN simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum OsnError {
    /// The referenced user does not exist.
    UnknownUser,
    /// A user cannot befriend themselves.
    SelfFriendship,
    /// The referenced puzzle record does not exist.
    UnknownPuzzle,
    /// The referenced blob URL does not exist.
    UnknownUrl,
    /// The referenced post does not exist.
    UnknownPost,
    /// A URL string was syntactically unacceptable (e.g. empty).
    InvalidUrl,
    /// A remote backend could not be reached or answered garbage. The
    /// in-memory backends never produce this; transport layers
    /// (`sp-net`) map their I/O and protocol failures onto it.
    Transport,
}

impl fmt::Display for OsnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownUser => f.write_str("unknown user id"),
            Self::SelfFriendship => f.write_str("a user cannot befriend themselves"),
            Self::UnknownPuzzle => f.write_str("unknown puzzle id"),
            Self::UnknownUrl => f.write_str("unknown storage url"),
            Self::UnknownPost => f.write_str("unknown post id"),
            Self::InvalidUrl => f.write_str("invalid url string"),
            Self::Transport => f.write_str("backend transport failure"),
        }
    }
}

impl Error for OsnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            OsnError::UnknownUser,
            OsnError::SelfFriendship,
            OsnError::UnknownPuzzle,
            OsnError::UnknownUrl,
            OsnError::UnknownPost,
            OsnError::InvalidUrl,
            OsnError::Transport,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
