//! The storage host (DH): a URL-addressed blob store.
//!
//! Logically separate from the service provider (§IV-A); the encrypted
//! object `O_{K_O}` lives here and is publicly fetchable by anyone who
//! knows `URL_O`. The store also exposes tampering hooks used by the
//! malicious-DH adversary tests (§VI-B).
//!
//! Blobs are striped across independently locked shards keyed by the
//! FNV-1a hash of `URL_O` ([`crate::shard`]), so concurrent receivers
//! fetching different albums never serialize on one lock.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;

use crate::error::OsnError;
use crate::shard::{ShardLoad, ShardedMap, DEFAULT_SHARDS};

/// A web resource locator for a stored blob.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Url(String);

impl Url {
    /// The string form.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Parses a URL string, rejecting empty input.
    ///
    /// The blob store is deliberately liberal about URL *syntax* (any
    /// nonempty token a storage host hands out is addressable), but an
    /// empty string is never a valid locator and usually signals a
    /// decoding bug upstream — transport layers call this on
    /// wire-received strings.
    ///
    /// # Errors
    ///
    /// Returns [`OsnError::InvalidUrl`] when `s` is empty.
    pub fn parse(s: impl Into<String>) -> Result<Self, OsnError> {
        let s = s.into();
        if s.is_empty() {
            return Err(OsnError::InvalidUrl);
        }
        Ok(Url(s))
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Url {
    fn from(s: &str) -> Self {
        Url(s.to_owned())
    }
}

impl From<String> for Url {
    fn from(s: String) -> Self {
        Url(s)
    }
}

#[derive(Debug)]
struct StoreInner {
    blobs: ShardedMap<String, Bytes>,
    next_id: AtomicU64,
}

/// The storage host. Cheap to clone (shared state), safe to use from
/// concurrent receiver simulations.
#[derive(Clone, Debug)]
pub struct StorageHost {
    inner: Arc<StoreInner>,
}

impl Default for StorageHost {
    fn default() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }
}

impl StorageHost {
    /// Creates an empty host with the default shard count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty host whose blob store is striped across `shards`
    /// locks (rounded up to a power of two; `1` reproduces the old
    /// single-lock behavior, which the benchmarks use as baseline).
    pub fn with_shards(shards: usize) -> Self {
        Self {
            inner: Arc::new(StoreInner {
                blobs: ShardedMap::with_shards(shards),
                next_id: AtomicU64::new(0),
            }),
        }
    }

    /// Number of lock stripes in the blob store.
    pub fn shard_count(&self) -> usize {
        self.inner.blobs.shard_count()
    }

    /// Per-shard load counters, index-aligned with shard numbers.
    pub fn shard_loads(&self) -> Vec<ShardLoad> {
        self.inner.blobs.loads()
    }

    /// Stores a blob, returning its public URL.
    pub fn put(&self, data: Bytes) -> Url {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let url = format!("https://dh.example/objects/{id}");
        self.inner.blobs.insert(url.clone(), data);
        Url(url)
    }

    /// Reserves a URL with empty content, to be filled by
    /// [`StorageHost::fill`] — the "create resource, then upload" pattern
    /// protocol drivers need when the URL must be known before the
    /// payload is finalized (e.g. because the payload's metadata signs
    /// the URL).
    pub fn reserve(&self) -> Url {
        self.put(Bytes::new())
    }

    /// Fills (or replaces) the content at a previously issued URL.
    ///
    /// # Errors
    ///
    /// Returns [`OsnError::UnknownUrl`] if the URL was never issued.
    pub fn fill(&self, url: &Url, data: Bytes) -> Result<(), OsnError> {
        self.tamper(url, data)
    }

    /// Fetches a blob.
    ///
    /// # Errors
    ///
    /// Returns [`OsnError::UnknownUrl`] if nothing is stored at `url`.
    pub fn get(&self, url: &Url) -> Result<Bytes, OsnError> {
        self.inner.blobs.get(&url.0).ok_or(OsnError::UnknownUrl)
    }

    /// Fetches many blobs, one result per input URL in order — the
    /// batched album fetch. A missing URL fails its own slot without
    /// affecting the others.
    pub fn get_batch(&self, urls: &[Url]) -> Vec<Result<Bytes, OsnError>> {
        urls.iter().map(|u| self.get(u)).collect()
    }

    /// Deletes a blob (a malicious-DH denial of service).
    ///
    /// # Errors
    ///
    /// Returns [`OsnError::UnknownUrl`] if nothing is stored at `url`.
    pub fn delete(&self, url: &Url) -> Result<(), OsnError> {
        self.inner.blobs.remove(&url.0).map(|_| ()).ok_or(OsnError::UnknownUrl)
    }

    /// Overwrites a blob in place (a malicious-DH tampering attack).
    ///
    /// # Errors
    ///
    /// Returns [`OsnError::UnknownUrl`] if nothing is stored at `url`.
    pub fn tamper(&self, url: &Url, data: Bytes) -> Result<(), OsnError> {
        self.inner.blobs.update(&url.0, |slot| *slot = data).ok_or(OsnError::UnknownUrl)
    }

    /// Number of stored blobs.
    pub fn len(&self) -> usize {
        self.inner.blobs.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.blobs.is_empty()
    }

    /// Total stored bytes (what a curious DH can see: sizes only).
    pub fn total_bytes(&self) -> usize {
        self.inner.blobs.fold_values(0usize, |acc, b| acc + b.len())
    }

    // ---- durability hooks ------------------------------------------------

    /// Every stored blob as `(url, data)`, sorted by URL so snapshots are
    /// byte-deterministic regardless of shard layout.
    pub fn export_blobs(&self) -> Vec<(String, Bytes)> {
        let mut out = Vec::with_capacity(self.len());
        self.inner.blobs.for_each(|url, data| out.push((url.clone(), data.clone())));
        out.sort_unstable();
        out
    }

    /// The next object id the host would mint into a URL.
    pub fn next_object_id(&self) -> u64 {
        self.inner.next_id.load(Ordering::Relaxed)
    }

    /// Raises the URL id allocator so future [`StorageHost::put`] calls
    /// mint ids strictly above `at_least`. Never lowers it.
    pub fn bump_next_object_id(&self, at_least: u64) {
        self.inner.next_id.fetch_max(at_least, Ordering::Relaxed);
    }

    /// Re-inserts a blob under its original URL (snapshot / log replay).
    /// If the URL carries a numeric id minted by [`StorageHost::put`],
    /// the id allocator is bumped past it so replayed and fresh blobs
    /// never collide.
    pub fn restore_blob(&self, url: &str, data: Bytes) {
        if let Some(id) = url.rsplit('/').next().and_then(|tail| tail.parse::<u64>().ok()) {
            self.bump_next_object_id(id + 1);
        }
        self.inner.blobs.insert(url.to_owned(), data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let dh = StorageHost::new();
        let url = dh.put(Bytes::from_static(b"encrypted object"));
        assert_eq!(dh.get(&url).unwrap(), Bytes::from_static(b"encrypted object"));
        assert_eq!(dh.len(), 1);
        assert_eq!(dh.total_bytes(), 16);
    }

    #[test]
    fn urls_are_unique() {
        let dh = StorageHost::new();
        let u1 = dh.put(Bytes::from_static(b"a"));
        let u2 = dh.put(Bytes::from_static(b"a"));
        assert_ne!(u1, u2);
    }

    #[test]
    fn missing_url() {
        let dh = StorageHost::new();
        let ghost = Url::from("https://dh.example/objects/404");
        assert_eq!(dh.get(&ghost).unwrap_err(), OsnError::UnknownUrl);
        assert_eq!(dh.delete(&ghost).unwrap_err(), OsnError::UnknownUrl);
        assert_eq!(dh.tamper(&ghost, Bytes::new()).unwrap_err(), OsnError::UnknownUrl);
    }

    #[test]
    fn delete_and_tamper() {
        let dh = StorageHost::new();
        let url = dh.put(Bytes::from_static(b"original"));
        dh.tamper(&url, Bytes::from_static(b"evil")).unwrap();
        assert_eq!(dh.get(&url).unwrap(), Bytes::from_static(b"evil"));
        dh.delete(&url).unwrap();
        assert!(dh.is_empty());
        assert_eq!(dh.get(&url).unwrap_err(), OsnError::UnknownUrl);
    }

    #[test]
    fn url_parse_rejects_empty() {
        assert_eq!(Url::parse("").unwrap_err(), OsnError::InvalidUrl);
        assert_eq!(Url::parse(String::new()).unwrap_err(), OsnError::InvalidUrl);
        let u = Url::parse("https://dh.example/objects/7").unwrap();
        assert_eq!(u.as_str(), "https://dh.example/objects/7");
    }

    #[test]
    fn url_from_string_and_str_agree() {
        let owned = Url::from(String::from("https://dh.example/x"));
        let borrowed = Url::from("https://dh.example/x");
        assert_eq!(owned, borrowed);
        assert_eq!(owned.to_string(), "https://dh.example/x");
        // From<String> does not allocate a second buffer — it is usable in
        // the same positions as From<&str>.
        let via_parse = Url::parse("https://dh.example/x").unwrap();
        assert_eq!(via_parse, owned);
    }

    #[test]
    fn shared_across_clones() {
        let dh = StorageHost::new();
        let clone = dh.clone();
        let url = dh.put(Bytes::from_static(b"x"));
        assert_eq!(clone.get(&url).unwrap(), Bytes::from_static(b"x"));
    }

    #[test]
    fn concurrent_puts() {
        let dh = StorageHost::new();
        crossbeam::thread::scope(|s| {
            for i in 0..8u8 {
                let d = dh.clone();
                s.spawn(move |_| {
                    for j in 0..50u8 {
                        d.put(Bytes::copy_from_slice(&[i, j]));
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(dh.len(), 400);
    }

    #[test]
    fn get_batch_is_per_slot() {
        let dh = StorageHost::new();
        let ok = dh.put(Bytes::from_static(b"here"));
        let ghost = Url::from("https://dh.example/objects/404");
        let out = dh.get_batch(&[ok.clone(), ghost, ok]);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].as_ref().unwrap(), &Bytes::from_static(b"here"));
        assert_eq!(out[1].as_ref().unwrap_err(), &OsnError::UnknownUrl);
        assert_eq!(out[2].as_ref().unwrap(), &Bytes::from_static(b"here"));
        assert!(dh.get_batch(&[]).is_empty());
    }

    #[test]
    fn sharded_and_single_lock_agree() {
        for shards in [1, 16] {
            let dh = StorageHost::with_shards(shards);
            assert_eq!(dh.shard_count(), shards);
            let urls: Vec<Url> = (0..40).map(|i| dh.put(Bytes::from(vec![i as u8]))).collect();
            assert_eq!(dh.len(), 40);
            assert_eq!(dh.total_bytes(), 40);
            for (i, u) in urls.iter().enumerate() {
                assert_eq!(dh.get(u).unwrap(), vec![i as u8]);
            }
            let loads = dh.shard_loads();
            assert_eq!(loads.len(), shards);
            let writes: u64 = loads.iter().map(|l| l.writes).sum();
            assert_eq!(writes, 40);
        }
    }
}
