//! The service provider (SP): puzzle database and hyperlink feed.
//!
//! The SP stores *opaque* puzzle records — the social-puzzles layer
//! serializes its (hashed, blinded) puzzle state into bytes before
//! handing it over, which is exactly the surveillance-resistance boundary
//! of §IV-B: the SP sees ciphertext-like bytes, sizes, and the feed
//! metadata, never answers or keys.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::RwLock;

use crate::error::OsnError;
use crate::graph::UserId;

/// Identifier the SP assigns to a stored puzzle.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PuzzleId(u64);

impl PuzzleId {
    /// Reconstructs an id from its raw value — for transport layers that
    /// carry ids over the wire. An id fabricated out of thin air simply
    /// fails lookups with [`OsnError::UnknownPuzzle`].
    pub fn from_raw(v: u64) -> Self {
        PuzzleId(v)
    }

    /// The raw value, for wire encoding.
    pub fn raw(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for PuzzleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "puzzle#{}", self.0)
    }
}

/// Identifier of a feed post.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PostId(u64);

impl PostId {
    /// Reconstructs an id from its raw value (wire transport).
    pub fn from_raw(v: u64) -> Self {
        PostId(v)
    }

    /// The raw value, for wire encoding.
    pub fn raw(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for PostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "post#{}", self.0)
    }
}

/// A feed post: the hyperlink a sharer's friends click to reach the
/// puzzle interface (Fig. 6).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Post {
    /// The posting user.
    pub author: UserId,
    /// Human-readable text.
    pub text: String,
    /// The puzzle this post links to.
    pub puzzle: PuzzleId,
}

/// One entry of the SP's access-attempt log.
///
/// Surveillance resistance (§IV-B) protects the *content* — object bytes
/// and answers. The SP still observes this **metadata**: who attempted
/// which puzzle and whether the threshold was met. The log makes that
/// residual leakage explicit and testable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AuditEntry {
    /// Monotonic sequence number.
    pub seq: u64,
    /// The attempting user.
    pub user: UserId,
    /// The attempted puzzle.
    pub puzzle: PuzzleId,
    /// Whether the SP granted access (≥ threshold verified).
    pub granted: bool,
}

#[derive(Debug, Default)]
struct ProviderState {
    puzzles: HashMap<u64, Bytes>,
    posts: HashMap<u64, Post>,
    feed_order: Vec<PostId>,
    audit: Vec<AuditEntry>,
    next_puzzle: u64,
    next_post: u64,
}

/// The service provider. Cheap to clone (shared state).
#[derive(Clone, Debug, Default)]
pub struct ServiceProvider {
    state: Arc<RwLock<ProviderState>>,
}

impl ServiceProvider {
    /// Creates an empty provider.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores an opaque puzzle record, returning its id.
    pub fn publish_puzzle(&self, record: Bytes) -> PuzzleId {
        let mut st = self.state.write();
        let id = st.next_puzzle;
        st.next_puzzle += 1;
        st.puzzles.insert(id, record);
        PuzzleId(id)
    }

    /// Fetches a puzzle record.
    ///
    /// # Errors
    ///
    /// Returns [`OsnError::UnknownPuzzle`] for unknown ids.
    pub fn fetch_puzzle(&self, id: PuzzleId) -> Result<Bytes, OsnError> {
        self.state.read().puzzles.get(&id.0).cloned().ok_or(OsnError::UnknownPuzzle)
    }

    /// Replaces a puzzle record in place (sharer update, or a malicious-SP
    /// tampering attack — §VI-A).
    ///
    /// # Errors
    ///
    /// Returns [`OsnError::UnknownPuzzle`] for unknown ids.
    pub fn replace_puzzle(&self, id: PuzzleId, record: Bytes) -> Result<(), OsnError> {
        let mut st = self.state.write();
        match st.puzzles.get_mut(&id.0) {
            Some(slot) => {
                *slot = record;
                Ok(())
            }
            None => Err(OsnError::UnknownPuzzle),
        }
    }

    /// Deletes a puzzle record.
    ///
    /// # Errors
    ///
    /// Returns [`OsnError::UnknownPuzzle`] for unknown ids.
    pub fn delete_puzzle(&self, id: PuzzleId) -> Result<(), OsnError> {
        self.state.write().puzzles.remove(&id.0).map(|_| ()).ok_or(OsnError::UnknownPuzzle)
    }

    /// Number of stored puzzles.
    pub fn puzzle_count(&self) -> usize {
        self.state.read().puzzles.len()
    }

    /// Records an access attempt in the audit log (called by the verify
    /// endpoint).
    pub fn log_access(&self, user: UserId, puzzle: PuzzleId, granted: bool) {
        let mut st = self.state.write();
        let seq = st.audit.len() as u64;
        st.audit.push(AuditEntry { seq, user, puzzle, granted });
    }

    /// The full audit log — what a curious (or subpoenaed) SP can hand
    /// over: access metadata, never content.
    pub fn audit_log(&self) -> Vec<AuditEntry> {
        self.state.read().audit.clone()
    }

    /// Posts a hyperlink to the author's wall.
    pub fn post(&self, author: UserId, text: impl Into<String>, puzzle: PuzzleId) -> PostId {
        let mut st = self.state.write();
        let id = PostId(st.next_post);
        st.next_post += 1;
        st.posts.insert(id.0, Post { author, text: text.into(), puzzle });
        st.feed_order.push(id);
        id
    }

    /// Reads a single post.
    ///
    /// # Errors
    ///
    /// Returns [`OsnError::UnknownPost`] for unknown ids.
    pub fn read_post(&self, id: PostId) -> Result<Post, OsnError> {
        self.state.read().posts.get(&id.0).cloned().ok_or(OsnError::UnknownPost)
    }

    /// The feed a viewer sees: posts authored by their friends (and
    /// themselves), newest last. Friendship is supplied by the caller so
    /// the provider itself stays graph-agnostic.
    pub fn feed(&self, viewer: UserId, is_visible: impl Fn(UserId) -> bool) -> Vec<(PostId, Post)> {
        let st = self.state.read();
        st.feed_order
            .iter()
            .filter_map(|id| {
                let post = st.posts.get(&id.0)?;
                if post.author == viewer || is_visible(post.author) {
                    Some((*id, post.clone()))
                } else {
                    None
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SocialGraph;

    #[test]
    fn puzzle_lifecycle() {
        let sp = ServiceProvider::new();
        let id = sp.publish_puzzle(Bytes::from_static(b"opaque record"));
        assert_eq!(sp.fetch_puzzle(id).unwrap(), Bytes::from_static(b"opaque record"));
        sp.replace_puzzle(id, Bytes::from_static(b"v2")).unwrap();
        assert_eq!(sp.fetch_puzzle(id).unwrap(), Bytes::from_static(b"v2"));
        assert_eq!(sp.puzzle_count(), 1);
        sp.delete_puzzle(id).unwrap();
        assert_eq!(sp.fetch_puzzle(id).unwrap_err(), OsnError::UnknownPuzzle);
        assert_eq!(sp.replace_puzzle(id, Bytes::new()).unwrap_err(), OsnError::UnknownPuzzle);
        assert_eq!(sp.delete_puzzle(id).unwrap_err(), OsnError::UnknownPuzzle);
    }

    #[test]
    fn feed_respects_visibility() {
        let mut g = SocialGraph::new();
        let sharer = g.add_user("sharer");
        let friend = g.add_user("friend");
        let stranger = g.add_user("stranger");
        g.befriend(sharer, friend).unwrap();

        let sp = ServiceProvider::new();
        let pid = sp.publish_puzzle(Bytes::from_static(b"r"));
        sp.post(sharer, "solve my puzzle!", pid);

        let friend_feed = sp.feed(friend, |author| g.are_friends(friend, author));
        assert_eq!(friend_feed.len(), 1);
        assert_eq!(friend_feed[0].1.text, "solve my puzzle!");
        assert_eq!(friend_feed[0].1.puzzle, pid);

        let stranger_feed = sp.feed(stranger, |author| g.are_friends(stranger, author));
        assert!(stranger_feed.is_empty(), "non-friends do not see the post");

        let own_feed = sp.feed(sharer, |author| g.are_friends(sharer, author));
        assert_eq!(own_feed.len(), 1, "authors see their own posts");
    }

    #[test]
    fn read_post_and_errors() {
        let sp = ServiceProvider::new();
        let pid = sp.publish_puzzle(Bytes::new());
        let post_id = sp.post(UserId::from_raw_for_tests(0), "hi", pid);
        assert_eq!(sp.read_post(post_id).unwrap().text, "hi");
        assert_eq!(sp.read_post(PostId(99)).unwrap_err(), OsnError::UnknownPost);
    }

    #[test]
    fn feed_order_is_chronological() {
        let sp = ServiceProvider::new();
        let u = UserId::from_raw_for_tests(0);
        let pid = sp.publish_puzzle(Bytes::new());
        sp.post(u, "first", pid);
        sp.post(u, "second", pid);
        let feed = sp.feed(u, |_| true);
        assert_eq!(feed[0].1.text, "first");
        assert_eq!(feed[1].1.text, "second");
    }
}
