//! The service provider (SP): puzzle database and hyperlink feed.
//!
//! The SP stores *opaque* puzzle records — the social-puzzles layer
//! serializes its (hashed, blinded) puzzle state into bytes before
//! handing it over, which is exactly the surveillance-resistance boundary
//! of §IV-B: the SP sees ciphertext-like bytes, sizes, and the feed
//! metadata, never answers or keys.
//!
//! The puzzle table is the hot path — every `Verify` does at least one
//! lookup — so it is striped across independently locked shards
//! ([`crate::shard`]). The feed and audit log stay behind their own
//! coarse locks: they are orders of magnitude colder and the audit log
//! needs a single monotonic sequence anyway.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::RwLock;

use crate::error::OsnError;
use crate::graph::UserId;
use crate::shard::{ShardLoad, ShardedMap, DEFAULT_SHARDS};

/// Identifier the SP assigns to a stored puzzle.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PuzzleId(u64);

impl PuzzleId {
    /// Reconstructs an id from its raw value — for transport layers that
    /// carry ids over the wire. An id fabricated out of thin air simply
    /// fails lookups with [`OsnError::UnknownPuzzle`].
    pub fn from_raw(v: u64) -> Self {
        PuzzleId(v)
    }

    /// The raw value, for wire encoding.
    pub fn raw(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for PuzzleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "puzzle#{}", self.0)
    }
}

/// Identifier of a feed post.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PostId(u64);

impl PostId {
    /// Reconstructs an id from its raw value (wire transport).
    pub fn from_raw(v: u64) -> Self {
        PostId(v)
    }

    /// The raw value, for wire encoding.
    pub fn raw(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for PostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "post#{}", self.0)
    }
}

/// A feed post: the hyperlink a sharer's friends click to reach the
/// puzzle interface (Fig. 6).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Post {
    /// The posting user.
    pub author: UserId,
    /// Human-readable text.
    pub text: String,
    /// The puzzle this post links to.
    pub puzzle: PuzzleId,
}

/// One entry of the SP's access-attempt log.
///
/// Surveillance resistance (§IV-B) protects the *content* — object bytes
/// and answers. The SP still observes this **metadata**: who attempted
/// which puzzle and whether the threshold was met. The log makes that
/// residual leakage explicit and testable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AuditEntry {
    /// Monotonic sequence number.
    pub seq: u64,
    /// The attempting user.
    pub user: UserId,
    /// The attempted puzzle.
    pub puzzle: PuzzleId,
    /// Whether the SP granted access (≥ threshold verified).
    pub granted: bool,
}

#[derive(Debug, Default)]
struct FeedState {
    posts: HashMap<u64, Post>,
    feed_order: Vec<PostId>,
    next_post: u64,
}

#[derive(Debug)]
struct ProviderInner {
    puzzles: ShardedMap<u64, Bytes>,
    next_puzzle: AtomicU64,
    feed: RwLock<FeedState>,
    audit: RwLock<Vec<AuditEntry>>,
}

/// The service provider. Cheap to clone (shared state).
#[derive(Clone, Debug)]
pub struct ServiceProvider {
    inner: Arc<ProviderInner>,
}

impl Default for ServiceProvider {
    fn default() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }
}

impl ServiceProvider {
    /// Creates an empty provider with the default shard count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty provider whose puzzle table is striped across
    /// `shards` locks (rounded up to a power of two; `1` reproduces the
    /// old single-lock behavior, which the benchmarks use as baseline).
    pub fn with_shards(shards: usize) -> Self {
        Self {
            inner: Arc::new(ProviderInner {
                puzzles: ShardedMap::with_shards(shards),
                next_puzzle: AtomicU64::new(0),
                feed: RwLock::new(FeedState::default()),
                audit: RwLock::new(Vec::new()),
            }),
        }
    }

    /// Number of lock stripes in the puzzle table.
    pub fn shard_count(&self) -> usize {
        self.inner.puzzles.shard_count()
    }

    /// Per-shard load counters for the puzzle table, index-aligned with
    /// shard numbers — the contention evidence the daemons export.
    pub fn shard_loads(&self) -> Vec<ShardLoad> {
        self.inner.puzzles.loads()
    }

    /// Stores an opaque puzzle record, returning its id.
    pub fn publish_puzzle(&self, record: Bytes) -> PuzzleId {
        let id = self.inner.next_puzzle.fetch_add(1, Ordering::Relaxed);
        self.inner.puzzles.insert(id, record);
        PuzzleId(id)
    }

    /// Fetches a puzzle record.
    ///
    /// # Errors
    ///
    /// Returns [`OsnError::UnknownPuzzle`] for unknown ids.
    pub fn fetch_puzzle(&self, id: PuzzleId) -> Result<Bytes, OsnError> {
        self.inner.puzzles.get(&id.0).ok_or(OsnError::UnknownPuzzle)
    }

    /// Replaces a puzzle record in place (sharer update, or a malicious-SP
    /// tampering attack — §VI-A).
    ///
    /// # Errors
    ///
    /// Returns [`OsnError::UnknownPuzzle`] for unknown ids.
    pub fn replace_puzzle(&self, id: PuzzleId, record: Bytes) -> Result<(), OsnError> {
        self.inner.puzzles.update(&id.0, |slot| *slot = record).ok_or(OsnError::UnknownPuzzle)
    }

    /// Deletes a puzzle record.
    ///
    /// # Errors
    ///
    /// Returns [`OsnError::UnknownPuzzle`] for unknown ids.
    pub fn delete_puzzle(&self, id: PuzzleId) -> Result<(), OsnError> {
        self.inner.puzzles.remove(&id.0).map(|_| ()).ok_or(OsnError::UnknownPuzzle)
    }

    /// Number of stored puzzles.
    pub fn puzzle_count(&self) -> usize {
        self.inner.puzzles.len()
    }

    /// Records an access attempt in the audit log (called by the verify
    /// endpoint).
    pub fn log_access(&self, user: UserId, puzzle: PuzzleId, granted: bool) {
        self.log_access_batch([(user, puzzle, granted)]);
    }

    /// Records many access attempts under one audit-lock acquisition —
    /// the batched verify endpoint logs a whole frame at once, keeping
    /// its entries contiguous in the log.
    pub fn log_access_batch(&self, entries: impl IntoIterator<Item = (UserId, PuzzleId, bool)>) {
        let mut audit = self.inner.audit.write();
        for (user, puzzle, granted) in entries {
            let seq = audit.len() as u64;
            audit.push(AuditEntry { seq, user, puzzle, granted });
        }
    }

    /// The full audit log — what a curious (or subpoenaed) SP can hand
    /// over: access metadata, never content.
    pub fn audit_log(&self) -> Vec<AuditEntry> {
        self.inner.audit.read().clone()
    }

    /// Posts a hyperlink to the author's wall.
    pub fn post(&self, author: UserId, text: impl Into<String>, puzzle: PuzzleId) -> PostId {
        let mut feed = self.inner.feed.write();
        let id = PostId(feed.next_post);
        feed.next_post += 1;
        feed.posts.insert(id.0, Post { author, text: text.into(), puzzle });
        feed.feed_order.push(id);
        id
    }

    /// Reads a single post.
    ///
    /// # Errors
    ///
    /// Returns [`OsnError::UnknownPost`] for unknown ids.
    pub fn read_post(&self, id: PostId) -> Result<Post, OsnError> {
        self.inner.feed.read().posts.get(&id.0).cloned().ok_or(OsnError::UnknownPost)
    }

    /// The feed a viewer sees: posts authored by their friends (and
    /// themselves), newest last. Friendship is supplied by the caller so
    /// the provider itself stays graph-agnostic.
    pub fn feed(&self, viewer: UserId, is_visible: impl Fn(UserId) -> bool) -> Vec<(PostId, Post)> {
        let feed = self.inner.feed.read();
        feed.feed_order
            .iter()
            .filter_map(|id| {
                let post = feed.posts.get(&id.0)?;
                if post.author == viewer || is_visible(post.author) {
                    Some((*id, post.clone()))
                } else {
                    None
                }
            })
            .collect()
    }

    // ---- durability hooks ------------------------------------------------
    //
    // The export/restore pairs below exist for `sp-store`'s snapshot and
    // write-ahead-log replay: a durable wrapper drains the in-memory state
    // into a snapshot and reconstructs it — ids included — on recovery.

    /// Every stored puzzle as `(raw id, record)`, sorted by id so
    /// snapshots are byte-deterministic regardless of shard layout.
    pub fn export_puzzles(&self) -> Vec<(u64, Bytes)> {
        let mut out = Vec::with_capacity(self.puzzle_count());
        self.inner.puzzles.for_each(|id, record| out.push((*id, record.clone())));
        out.sort_unstable_by_key(|(id, _)| *id);
        out
    }

    /// The next puzzle id the provider would assign.
    pub fn next_puzzle_id(&self) -> u64 {
        self.inner.next_puzzle.load(Ordering::Relaxed)
    }

    /// Raises the id allocator so future [`ServiceProvider::publish_puzzle`]
    /// calls assign ids strictly above `at_least`. Never lowers it.
    pub fn bump_next_puzzle_id(&self, at_least: u64) {
        self.inner.next_puzzle.fetch_max(at_least, Ordering::Relaxed);
    }

    /// Re-inserts a puzzle under its original id (snapshot / log replay),
    /// bumping the id allocator past it.
    pub fn restore_puzzle(&self, id: u64, record: Bytes) {
        self.inner.puzzles.insert(id, record);
        self.bump_next_puzzle_id(id + 1);
    }

    /// The feed in posting order as `(next id, posts)` — each post as
    /// `(raw id, post)`.
    pub fn export_posts(&self) -> (u64, Vec<(u64, Post)>) {
        let feed = self.inner.feed.read();
        let posts = feed
            .feed_order
            .iter()
            .filter_map(|id| feed.posts.get(&id.0).map(|p| (id.0, p.clone())))
            .collect();
        (feed.next_post, posts)
    }

    /// Re-inserts a post under its original id at the end of the feed
    /// (snapshot / log replay), bumping the id allocator past it.
    pub fn restore_post(&self, id: u64, author: UserId, text: impl Into<String>, puzzle: PuzzleId) {
        let mut feed = self.inner.feed.write();
        feed.next_post = feed.next_post.max(id + 1);
        feed.posts.insert(id, Post { author, text: text.into(), puzzle });
        feed.feed_order.push(PostId(id));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SocialGraph;

    #[test]
    fn puzzle_lifecycle() {
        let sp = ServiceProvider::new();
        let id = sp.publish_puzzle(Bytes::from_static(b"opaque record"));
        assert_eq!(sp.fetch_puzzle(id).unwrap(), Bytes::from_static(b"opaque record"));
        sp.replace_puzzle(id, Bytes::from_static(b"v2")).unwrap();
        assert_eq!(sp.fetch_puzzle(id).unwrap(), Bytes::from_static(b"v2"));
        assert_eq!(sp.puzzle_count(), 1);
        sp.delete_puzzle(id).unwrap();
        assert_eq!(sp.fetch_puzzle(id).unwrap_err(), OsnError::UnknownPuzzle);
        assert_eq!(sp.replace_puzzle(id, Bytes::new()).unwrap_err(), OsnError::UnknownPuzzle);
        assert_eq!(sp.delete_puzzle(id).unwrap_err(), OsnError::UnknownPuzzle);
    }

    #[test]
    fn feed_respects_visibility() {
        let mut g = SocialGraph::new();
        let sharer = g.add_user("sharer");
        let friend = g.add_user("friend");
        let stranger = g.add_user("stranger");
        g.befriend(sharer, friend).unwrap();

        let sp = ServiceProvider::new();
        let pid = sp.publish_puzzle(Bytes::from_static(b"r"));
        sp.post(sharer, "solve my puzzle!", pid);

        let friend_feed = sp.feed(friend, |author| g.are_friends(friend, author));
        assert_eq!(friend_feed.len(), 1);
        assert_eq!(friend_feed[0].1.text, "solve my puzzle!");
        assert_eq!(friend_feed[0].1.puzzle, pid);

        let stranger_feed = sp.feed(stranger, |author| g.are_friends(stranger, author));
        assert!(stranger_feed.is_empty(), "non-friends do not see the post");

        let own_feed = sp.feed(sharer, |author| g.are_friends(sharer, author));
        assert_eq!(own_feed.len(), 1, "authors see their own posts");
    }

    #[test]
    fn read_post_and_errors() {
        let sp = ServiceProvider::new();
        let pid = sp.publish_puzzle(Bytes::new());
        let post_id = sp.post(UserId::from_raw_for_tests(0), "hi", pid);
        assert_eq!(sp.read_post(post_id).unwrap().text, "hi");
        assert_eq!(sp.read_post(PostId(99)).unwrap_err(), OsnError::UnknownPost);
    }

    #[test]
    fn feed_order_is_chronological() {
        let sp = ServiceProvider::new();
        let u = UserId::from_raw_for_tests(0);
        let pid = sp.publish_puzzle(Bytes::new());
        sp.post(u, "first", pid);
        sp.post(u, "second", pid);
        let feed = sp.feed(u, |_| true);
        assert_eq!(feed[0].1.text, "first");
        assert_eq!(feed[1].1.text, "second");
    }

    #[test]
    fn single_shard_matches_sharded_semantics() {
        for shards in [1, 4, 16] {
            let sp = ServiceProvider::with_shards(shards);
            assert_eq!(sp.shard_count(), shards);
            let ids: Vec<PuzzleId> =
                (0..20).map(|i| sp.publish_puzzle(Bytes::from(vec![i as u8]))).collect();
            assert_eq!(sp.puzzle_count(), 20);
            for (i, id) in ids.iter().enumerate() {
                assert_eq!(sp.fetch_puzzle(*id).unwrap(), vec![i as u8]);
            }
        }
    }

    #[test]
    fn ids_stay_unique_across_threads() {
        let sp = ServiceProvider::with_shards(16);
        let ids = std::sync::Mutex::new(Vec::new());
        crossbeam::thread::scope(|s| {
            for _ in 0..8 {
                let sp = sp.clone();
                let ids = &ids;
                s.spawn(move |_| {
                    let mine: Vec<u64> =
                        (0..50).map(|_| sp.publish_puzzle(Bytes::new()).raw()).collect();
                    ids.lock().unwrap().extend(mine);
                });
            }
        })
        .unwrap();
        let mut all = ids.into_inner().unwrap();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 400, "puzzle ids collided across threads");
        assert_eq!(sp.puzzle_count(), 400);
    }

    #[test]
    fn audit_batch_is_contiguous_and_sequenced() {
        let sp = ServiceProvider::new();
        let u = UserId::from_raw_for_tests(0);
        let pid = sp.publish_puzzle(Bytes::new());
        sp.log_access(u, pid, true);
        sp.log_access_batch((0..3).map(|i| (u, pid, i % 2 == 0)));
        let log = sp.audit_log();
        assert_eq!(log.len(), 4);
        for (i, entry) in log.iter().enumerate() {
            assert_eq!(entry.seq, i as u64);
        }
        assert!(log[1].granted);
        assert!(!log[2].granted);
    }

    #[test]
    fn shard_loads_expose_puzzle_traffic() {
        let sp = ServiceProvider::with_shards(4);
        let id = sp.publish_puzzle(Bytes::new());
        sp.fetch_puzzle(id).unwrap();
        let loads = sp.shard_loads();
        assert_eq!(loads.len(), 4);
        let writes: u64 = loads.iter().map(|l| l.writes).sum();
        let reads: u64 = loads.iter().map(|l| l.reads).sum();
        assert_eq!(writes, 1);
        assert_eq!(reads, 1);
    }
}
