//! Simulation parameters.

/// Everything that shapes a simulation run. Two configs with equal
/// fields produce byte-identical decision logs — the struct *is* the
/// reproduction recipe, together with nothing else.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Base seed: the only source of randomness in the run.
    pub seed: u64,
    /// Total simulated users, joined in per-tick blocks across the run.
    pub users: u64,
    /// Total events across the whole run (default `max(4000, users/25)`).
    pub events: u64,
    /// Simulated hours; the day/night wave has a 24-tick period.
    pub ticks: u32,
    /// Zipf-like skew exponent for object popularity and sharer choice
    /// (`> 1` skews harder toward the popular head).
    pub zipf_s: f64,
    /// Every `oracle_sample`-th attempt is re-evaluated sequentially by
    /// the slow oracle and must match exactly.
    pub oracle_sample: u64,
    /// Live-share ring capacity: older shares are evicted (their
    /// relationship tuples revoked) once this many are live.
    pub max_live_shares: usize,
    /// Shard count for the SP and DH backends.
    pub shards: usize,
    /// Construction-2 hot-puzzle probe: after the main run, this many
    /// CP-ABE `Access` cycles are driven Zipfian-style against a small
    /// set of C2 puzzles, exercising the Miller line-evaluation cache
    /// (the report carries its hit rate). `0` disables the probe.
    pub c2_probe: u64,
    /// Real-socket probe: after the main run, this many full
    /// share→attempt cycles are replayed through `sp-net` daemons on
    /// loopback (the same `SocialPuzzleApp` driver, remote backends).
    /// Sequential and seeded from its own stream, so the decision log
    /// stays deterministic. `0` disables the probe.
    pub socket_probe: u64,
}

impl SimConfig {
    /// The standard workload for `users` simulated users at `seed`:
    /// 48 ticks (two simulated days), `max(4000, users/25)` events.
    #[must_use]
    pub fn new(seed: u64, users: u64) -> Self {
        Self {
            seed,
            users: users.max(8),
            events: (users / 25).max(4_000),
            ticks: 48,
            zipf_s: 1.2,
            oracle_sample: 16,
            max_live_shares: 4_096,
            shards: 16,
            c2_probe: 24,
            socket_probe: 16,
        }
    }

    /// A seconds-scale run for unit tests and smoke checks.
    #[must_use]
    pub fn quick() -> Self {
        Self { events: 1_200, socket_probe: 4, ..Self::new(7, 2_000) }
    }
}
