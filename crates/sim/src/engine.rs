//! The discrete-event simulation engine.
//!
//! One run is a sequence of *ticks* (simulated hours). Each tick:
//!
//! 1. **Join block** — a slice of the configured population registers.
//! 2. **Phase A (sequential)** — the tick's mutation events execute in
//!    event order: shares (Construction 1 uploads through the real
//!    [`SocialPuzzleApp`]), friendships forming and dissolving, device
//!    churn, relationship-tuple grants and revocations. Attempt events
//!    are *parameterized* here (reader, answer plan, ReBAC pre-filter
//!    decision, per-event RNG seed) but not yet executed.
//! 3. **Phase B (parallel)** — every attempt runs through the real
//!    `DisplayPuzzle → AnswerPuzzle → Verify → Access` pipeline via
//!    [`sp_par::parallel_map`]. Each attempt owns a private RNG derived
//!    from `(seed, "attempt", event_id)`, and `parallel_map` returns
//!    results in input order — so the decision log is identical at any
//!    `SP_PAR_THREADS`.
//!
//! The access decision composes two layers, checked after every event:
//!
//! * **ReBAC pre-filter** — may this reader *attempt* the puzzle at
//!   all? `reader == sharer`, or [`TupleStore::check`] on
//!   `puzzle:<id>#attempter` (direct grants plus the sharer's
//!   `circle#member` userset).
//! * **k-of-N knowledge** — of the questions the SP chose to display,
//!   did the reader answer at least `k` correctly?
//!
//! The invariant, asserted per attempt: `granted ⟺ pre-filter allowed
//! ∧ correct answers given ≥ k` — and a granted attempt must decrypt
//! the exact original object bytes. A sampled subset is additionally
//! re-executed sequentially (the slow oracle) and must match the
//! parallel result bit for bit, and the tuple store's fast `check` must
//! agree with its naive frontier-expansion twin.

use std::cell::Cell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::f64::consts::PI;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::Rng;
use social_puzzles_core::construction1::Construction1;
use social_puzzles_core::construction2::Construction2;
use social_puzzles_core::context::Context;
use social_puzzles_core::metrics::CryptoCounters;
use social_puzzles_core::protocol::{ShareReport, SocialPuzzleApp};
use social_puzzles_core::SocialPuzzleError;
use sp_net::{ClientConfig, Daemon, DaemonConfig, DhClient, DhService, SpClient, SpService};
use sp_osn::{
    DeviceProfile, RelObject, RelSubject, RelTuple, ServiceProvider, StorageHost, TupleStore,
    UserId,
};
use sp_par::parallel_map;
use sp_testkit::seed::SeedSplit;
use sp_testkit::strategies::{AnswerKind, AnswerPlan};

use crate::config::SimConfig;
use crate::log::DecisionLog;

/// ReBAC schema: the sharer's social circle.
const CIRCLE: &str = "circle";
/// ReBAC schema: a shared puzzle.
const PUZZLE: &str = "puzzle";
/// Relation: membership in a circle.
const MEMBER: &str = "member";
/// Relation: the right to attempt a puzzle.
const ATTEMPTER: &str = "attempter";

// Log entry kind codes (second field of every entry).
const K_JOIN: u64 = 0;
const K_SHARE: u64 = 1;
const K_ATTEMPT: u64 = 2;
const K_BEFRIEND: u64 = 3;
const K_UNFRIEND: u64 = 4;
const K_CHURN: u64 = 5;
const K_GRANT: u64 = 6;
const K_REVOKE: u64 = 7;
const K_NOOP: u64 = 8;
const K_C2PROBE: u64 = 9;
const K_SOCKETPROBE: u64 = 10;

/// Hot C2 puzzles the post-run probe cycles over.
const C2_PROBE_PUZZLES: usize = 3;

/// A live share: everything an attempt needs, frozen at share time.
/// Held behind `Arc` so ring eviction mid-tick cannot invalidate an
/// already-parameterized attempt.
struct LiveShare {
    /// Global share sequence number — the `puzzle:<id>` ReBAC object.
    id: u64,
    sharer: UserId,
    report: ShareReport,
    context: Context,
    k: usize,
    object: Vec<u8>,
    /// Question text → context index, for the answerer closure.
    question_index: HashMap<String, usize>,
}

/// One attempt, fully parameterized in phase A.
struct AttemptParams {
    event_id: u64,
    reader: UserId,
    share: Arc<LiveShare>,
    plan: AnswerPlan,
    /// The ReBAC pre-filter decision, taken sequentially at event time
    /// (so it reflects every mutation earlier in the tick).
    prefilter_allowed: bool,
    tablet: bool,
}

/// What actually happened when an attempt ran.
struct AttemptOutcome {
    granted: bool,
    /// Correct answers the reader actually gave (over the *displayed*
    /// subset — the SP displays a random `r ∈ [k, n]` questions, so
    /// this can be less than the plan's total correct count).
    correct_given: u64,
    /// `true` when denied, or granted with the exact original bytes.
    object_ok: bool,
    latency: Duration,
    /// A protocol error other than the expected threshold denial.
    error: Option<String>,
}

/// Aggregate workload/outcome counters for one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimCounters {
    /// Objects shared (Construction 1 uploads).
    pub shares: u64,
    /// Attempts granted access.
    pub grants: u64,
    /// Attempts denied access (pre-filter or threshold).
    pub denials: u64,
    /// Denials where the ReBAC pre-filter stopped the attempt before
    /// the puzzle was even displayed.
    pub prefiltered: u64,
    /// Friendships formed / dissolved by workload events.
    pub befriends: u64,
    /// Friendships dissolved.
    pub unfriends: u64,
    /// Device-kind flips (PC ↔ tablet).
    pub device_churns: u64,
    /// Direct `attempter` tuples granted mid-run.
    pub tuple_grants: u64,
    /// Tuples revoked mid-run (each immediately followed by a forced
    /// all-correct attempt by the revoked subject).
    pub tuple_revokes: u64,
    /// Revocations that removed the subject's *last* authorization path
    /// — the forced attempt was denied despite perfect answers.
    pub revocation_flips: u64,
    /// Attempts re-executed by the sequential slow oracle.
    pub oracle_checks: u64,
    /// Events that degenerated to no-ops (e.g. unfriend with no
    /// friends); still logged, still deterministic.
    pub noops: u64,
    /// Construction-2 probe accesses executed after the main run.
    pub c2_probes: u64,
    /// Probe accesses that were (deliberately) denied below threshold.
    pub c2_probe_denials: u64,
    /// Share→attempt cycles replayed through real loopback sockets
    /// after the main run.
    pub socket_probes: u64,
    /// Socket-probe attempts that were (deliberately) denied below
    /// threshold.
    pub socket_probe_denials: u64,
}

/// The outcome of a completed run: counters, determinism hash, and
/// wall-clock performance (the only part that varies between runs).
#[derive(Clone, Debug)]
pub struct SimReport {
    /// The base seed.
    pub seed: u64,
    /// Configured population.
    pub users: u64,
    /// Events executed.
    pub events: u64,
    /// Ticks executed.
    pub ticks: u32,
    /// Workload/outcome counters.
    pub counters: SimCounters,
    /// Access decisions taken (grants + denials).
    pub decisions: u64,
    /// The canonical event/decision log hash — identical for identical
    /// configs, at any thread count.
    pub log_hash: u64,
    /// Entries folded into the hash.
    pub log_entries: u64,
    /// Wall-clock run time in seconds.
    pub elapsed_s: f64,
    /// Events per wall-clock second.
    pub events_per_s: f64,
    /// Decisions per wall-clock second.
    pub decisions_per_s: f64,
    /// Median decision latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile decision latency, microseconds.
    pub p99_us: f64,
    /// Miller line-evaluation cache hits recorded during the C2 probe.
    pub c2_cache_hits: u64,
    /// Line-evaluation cache misses recorded during the C2 probe.
    pub c2_cache_misses: u64,
}

impl SimReport {
    /// The log hash as `spuzzle sim` prints it.
    #[must_use]
    pub fn hash_hex(&self) -> String {
        format!("{:016x}", self.log_hash)
    }

    /// Line-cache hit fraction over the C2 probe, in `[0, 1]`.
    #[must_use]
    pub fn c2_cache_hit_rate(&self) -> f64 {
        let total = self.c2_cache_hits + self.c2_cache_misses;
        if total == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.c2_cache_hits as f64 / total as f64
            }
        }
    }
}

/// Splits `total` across weights, exactly (largest-remainder by
/// cumulative rounding: per-slot error never exceeds one unit and the
/// slots always sum to `total`).
fn apportion(total: u64, weights: &[f64]) -> Vec<u64> {
    let sum: f64 = weights.iter().sum();
    let mut out = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    let mut assigned = 0u64;
    for w in weights {
        acc += w;
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let target = ((total as f64 * acc / sum).round() as u64).min(total);
        out.push(target.saturating_sub(assigned));
        assigned = assigned.max(target);
    }
    if let Some(last) = out.last_mut() {
        *last += total - assigned;
    }
    out
}

/// The day/night load wave: a 24-tick sinusoid bottoming at ~0.35 of
/// peak, so nighttime ticks still carry traffic.
fn day_night_wave(ticks: u32) -> Vec<f64> {
    (0..ticks).map(|t| 0.35 + 0.65 * (1.0 - (2.0 * PI * f64::from(t) / 24.0).cos()) / 2.0).collect()
}

/// Evaluates one attempt through the real protocol pipeline. Pure up to
/// the derived RNG: called from the parallel phase *and* re-called
/// sequentially as the slow oracle, and must produce the same decision
/// both times.
fn eval_attempt(
    app: &SocialPuzzleApp<ServiceProvider, StorageHost>,
    c1: &Construction1,
    split: SeedSplit,
    att: &AttemptParams,
) -> AttemptOutcome {
    let start = Instant::now();
    if !att.prefilter_allowed {
        // The ReBAC layer stops the attempt before DisplayPuzzle.
        return AttemptOutcome {
            granted: false,
            correct_given: 0,
            object_ok: true,
            latency: start.elapsed(),
            error: None,
        };
    }
    let mut rng = split.stream_n("attempt", att.event_id);
    let correct_given = Cell::new(0u64);
    let share = &att.share;
    let answerer = |q: &str| -> Option<String> {
        let idx = *share.question_index.get(q)?;
        let truth = share.context.pairs()[idx].answer();
        match att.plan.kinds.get(idx)? {
            AnswerKind::Correct => {
                correct_given.set(correct_given.get() + 1);
                Some(truth.to_string())
            }
            AnswerKind::Wrong => Some(format!("{truth}✗wrong")),
            AnswerKind::Skip => None,
        }
    };
    let device = if att.tablet { DeviceProfile::tablet() } else { DeviceProfile::pc() };
    let result = app.receive_c1(c1, att.reader, &share.report, answerer, &device, &mut rng);
    let latency = start.elapsed();
    match result {
        Ok(recv) => AttemptOutcome {
            granted: true,
            correct_given: correct_given.get(),
            object_ok: recv.object == share.object,
            latency,
            error: None,
        },
        Err(SocialPuzzleError::NotEnoughCorrectAnswers) => AttemptOutcome {
            granted: false,
            correct_given: correct_given.get(),
            object_ok: true,
            latency,
            error: None,
        },
        Err(e) => AttemptOutcome {
            granted: false,
            correct_given: correct_given.get(),
            object_ok: false,
            latency,
            error: Some(e.to_string()),
        },
    }
}

/// The per-attempt invariant: the composed decision, the object bytes,
/// and the plan-level bounds that hold regardless of which subset the
/// SP displayed.
fn check_attempt(att: &AttemptParams, out: &AttemptOutcome) -> Result<(), String> {
    let who = format!(
        "event {} reader {} puzzle {} (k={} of n={})",
        att.event_id,
        att.reader.raw(),
        att.share.id,
        att.share.k,
        att.share.context.len()
    );
    if let Some(e) = &out.error {
        return Err(format!("{who}: unexpected protocol error: {e}"));
    }
    let expected = att.prefilter_allowed && out.correct_given >= att.share.k as u64;
    if out.granted != expected {
        return Err(format!(
            "{who}: granted={} but prefilter={} and correct_given={}",
            out.granted, att.prefilter_allowed, out.correct_given
        ));
    }
    if out.granted && !out.object_ok {
        return Err(format!("{who}: granted but decrypted the wrong object"));
    }
    if att.plan.correct_count() < att.share.k && out.granted {
        return Err(format!("{who}: reader without k correct answers was granted"));
    }
    let all_correct = att.plan.kinds.iter().all(|k| *k == AnswerKind::Correct);
    if all_correct && att.prefilter_allowed && !out.granted {
        return Err(format!("{who}: authorized reader with full context was denied"));
    }
    Ok(())
}

/// The simulation state machine.
struct Simulation {
    cfg: SimConfig,
    split: SeedSplit,
    app: SocialPuzzleApp<ServiceProvider, StorageHost>,
    c1: Construction1,
    tuples: TupleStore,
    shares: VecDeque<Arc<LiveShare>>,
    /// Per-share direct `attempter` grants, for revocation targeting.
    direct_grants: HashMap<u64, Vec<UserId>>,
    /// Sharers whose circle has been materialized into tuples.
    has_circle: HashSet<u64>,
    /// Device kind per user (indexed by raw id): `true` = tablet.
    tablet: Vec<bool>,
    joined: u64,
    share_seq: u64,
    next_event: u64,
    log: DecisionLog,
    stats: SimCounters,
    latencies: Vec<Duration>,
    /// Line-cache (hits, misses) recorded by the post-run C2 probe.
    c2_cache_traffic: (u64, u64),
}

enum EventKind {
    Share,
    Attempt,
    Befriend,
    Unfriend,
    DeviceChurn,
    TupleGrant,
    TupleRevoke,
}

fn weighted_kind(rng: &mut StdRng) -> EventKind {
    match rng.gen_range(0u32..100) {
        0..=7 => EventKind::Share,         // 8%
        8..=77 => EventKind::Attempt,      // 70%
        78..=87 => EventKind::Befriend,    // 10%
        88..=90 => EventKind::Unfriend,    // 3%
        91..=94 => EventKind::DeviceChurn, // 4%
        95..=96 => EventKind::TupleGrant,  // 2%
        _ => EventKind::TupleRevoke,       // 3%
    }
}

impl Simulation {
    fn new(cfg: SimConfig) -> Self {
        let split = SeedSplit::new(cfg.seed);
        let app = SocialPuzzleApp::with_backends(
            ServiceProvider::with_shards(cfg.shards),
            StorageHost::with_shards(cfg.shards),
        );
        Self {
            cfg,
            split,
            app,
            c1: Construction1::new(),
            tuples: TupleStore::new(),
            shares: VecDeque::new(),
            direct_grants: HashMap::new(),
            has_circle: HashSet::new(),
            tablet: Vec::new(),
            joined: 0,
            share_seq: 0,
            next_event: 0,
            log: DecisionLog::new(),
            stats: SimCounters::default(),
            latencies: Vec::new(),
            c2_cache_traffic: (0, 0),
        }
    }

    fn random_user(&self, rng: &mut StdRng) -> UserId {
        UserId::from_raw(rng.gen_range(0..self.joined))
    }

    /// Zipf-like draw over `len`: index 0 (the popular head) is hit
    /// hardest; skew grows with `zipf_s`.
    fn zipf_index(&self, len: u64, rng: &mut StdRng) -> u64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let idx = (len as f64 * u.powf(self.cfg.zipf_s)) as u64;
        idx.min(len - 1)
    }

    /// Popular sharers are the early adopters (low ids).
    fn zipf_user(&self, rng: &mut StdRng) -> UserId {
        UserId::from_raw(self.zipf_index(self.joined, rng))
    }

    /// Popular objects are the freshest shares.
    fn zipf_share(&self, rng: &mut StdRng) -> Arc<LiveShare> {
        let len = self.shares.len() as u64;
        let idx = self.zipf_index(len, rng);
        #[allow(clippy::cast_possible_truncation)]
        let pos = (len - 1 - idx) as usize;
        Arc::clone(&self.shares[pos])
    }

    /// Materializes the sharer's circle on their first share: grows a
    /// friend set if they are isolated, then mirrors every friendship
    /// into `circle:<sharer>#member` tuples.
    fn ensure_circle(&mut self, sharer: UserId, rng: &mut StdRng) {
        if !self.has_circle.insert(sharer.raw()) {
            return;
        }
        let want = rng.gen_range(2u64..=16);
        for _ in 0..want {
            let f = self.random_user(rng);
            if f != sharer {
                let _ = self.app.befriend(sharer, f);
            }
        }
        let circle = RelObject::new(CIRCLE, sharer.raw());
        for f in self.app.graph().friends(sharer).unwrap_or_default() {
            self.tuples.grant(RelTuple::new(circle, MEMBER, RelSubject::User(f)));
        }
    }

    fn ev_share(&mut self, event_id: u64, rng: &mut StdRng) -> Result<(), String> {
        let sharer = self.zipf_user(rng);
        self.ensure_circle(sharer, rng);
        let id = self.share_seq;
        self.share_seq += 1;

        let n = rng.gen_range(2usize..=6);
        let k = rng.gen_range(1usize..=n);
        let mut builder = Context::builder();
        for i in 0..n {
            builder = builder.pair(format!("q{id}-{i}?"), format!("a{id}-{i}"));
        }
        let context = builder.build().map_err(|e| format!("event {event_id}: context: {e}"))?;
        let object = format!("obj-{id}-u{}", sharer.raw()).into_bytes();
        let report = self
            .app
            .share_c1(&self.c1, sharer, &object, &context, k, &DeviceProfile::pc(), None, rng)
            .map_err(|e| format!("event {event_id}: share_c1: {e}"))?;

        // Policy: the sharer's circle may attempt, plus 0–2 direct grants.
        let puzzle = RelObject::new(PUZZLE, id);
        self.tuples.grant(RelTuple::new(
            puzzle,
            ATTEMPTER,
            RelSubject::Set { object: RelObject::new(CIRCLE, sharer.raw()), relation: MEMBER },
        ));
        let mut directs = Vec::new();
        for _ in 0..rng.gen_range(0u32..=2) {
            let u = self.random_user(rng);
            self.tuples.grant(RelTuple::new(puzzle, ATTEMPTER, RelSubject::User(u)));
            directs.push(u);
        }
        self.direct_grants.insert(id, directs);

        let question_index = context
            .pairs()
            .iter()
            .enumerate()
            .map(|(i, p)| (p.question().to_string(), i))
            .collect();
        self.shares.push_back(Arc::new(LiveShare {
            id,
            sharer,
            report,
            context,
            k,
            object,
            question_index,
        }));
        if self.shares.len() > self.cfg.max_live_shares {
            let old = self.shares.pop_front().expect("non-empty");
            self.tuples.revoke_all(RelObject::new(PUZZLE, old.id), ATTEMPTER);
            self.direct_grants.remove(&old.id);
        }

        self.stats.shares += 1;
        self.log.record(&[event_id, K_SHARE, sharer.raw(), id, n as u64, k as u64]);
        Ok(())
    }

    fn ev_attempt_params(&mut self, event_id: u64, rng: &mut StdRng) -> AttemptParams {
        let share = self.zipf_share(rng);
        let roll = rng.gen_range(0u32..100);
        let reader = if roll < 5 {
            share.sharer
        } else if roll < 60 {
            let friends = self.app.graph().friends(share.sharer).unwrap_or_default();
            if friends.is_empty() {
                self.random_user(rng)
            } else {
                friends[rng.gen_range(0..friends.len())]
            }
        } else {
            self.random_user(rng)
        };
        let kinds = (0..share.context.len())
            .map(|_| match rng.gen_range(0u32..100) {
                0..=61 => AnswerKind::Correct,
                62..=86 => AnswerKind::Wrong,
                _ => AnswerKind::Skip,
            })
            .collect();
        let prefilter_allowed = reader == share.sharer
            || self.tuples.check(RelObject::new(PUZZLE, share.id), ATTEMPTER, reader);
        let tablet = self.tablet[reader.raw() as usize];
        AttemptParams {
            event_id,
            reader,
            share,
            plan: AnswerPlan { kinds },
            prefilter_allowed,
            tablet,
        }
    }

    fn ev_befriend(&mut self, event_id: u64, rng: &mut StdRng) {
        let a = self.random_user(rng);
        let b = self.random_user(rng);
        if a == b || self.app.befriend(a, b).is_err() {
            self.stats.noops += 1;
            self.log.record(&[event_id, K_NOOP]);
            return;
        }
        // Keep materialized circles in sync with the graph.
        if self.has_circle.contains(&a.raw()) {
            self.tuples.grant(RelTuple::new(
                RelObject::new(CIRCLE, a.raw()),
                MEMBER,
                RelSubject::User(b),
            ));
        }
        if self.has_circle.contains(&b.raw()) {
            self.tuples.grant(RelTuple::new(
                RelObject::new(CIRCLE, b.raw()),
                MEMBER,
                RelSubject::User(a),
            ));
        }
        self.stats.befriends += 1;
        self.log.record(&[event_id, K_BEFRIEND, a.raw(), b.raw()]);
    }

    fn ev_unfriend(&mut self, event_id: u64, rng: &mut StdRng) {
        let a = self.random_user(rng);
        let friends = self.app.graph().friends(a).unwrap_or_default();
        if friends.is_empty() {
            self.stats.noops += 1;
            self.log.record(&[event_id, K_NOOP]);
            return;
        }
        let b = friends[rng.gen_range(0..friends.len())];
        let _ = self.app.unfriend(a, b);
        self.tuples.revoke(RelTuple::new(
            RelObject::new(CIRCLE, a.raw()),
            MEMBER,
            RelSubject::User(b),
        ));
        self.tuples.revoke(RelTuple::new(
            RelObject::new(CIRCLE, b.raw()),
            MEMBER,
            RelSubject::User(a),
        ));
        self.stats.unfriends += 1;
        self.log.record(&[event_id, K_UNFRIEND, a.raw(), b.raw()]);
    }

    fn ev_churn(&mut self, event_id: u64, rng: &mut StdRng) {
        let u = self.random_user(rng);
        let slot = &mut self.tablet[u.raw() as usize];
        *slot = !*slot;
        self.stats.device_churns += 1;
        self.log.record(&[event_id, K_CHURN, u.raw(), u64::from(*slot)]);
    }

    fn ev_tuple_grant(&mut self, event_id: u64, rng: &mut StdRng) {
        let share = self.zipf_share(rng);
        let u = self.random_user(rng);
        self.tuples.grant(RelTuple::new(
            RelObject::new(PUZZLE, share.id),
            ATTEMPTER,
            RelSubject::User(u),
        ));
        self.direct_grants.entry(share.id).or_default().push(u);
        self.stats.tuple_grants += 1;
        self.log.record(&[event_id, K_GRANT, share.id, u.raw()]);
    }

    /// Revokes one authorization path on a popular puzzle, then forces
    /// the revoked subject to attempt *immediately* with perfect
    /// answers — revocation must gate the very next attempt.
    fn ev_tuple_revoke(&mut self, event_id: u64, rng: &mut StdRng) -> Result<(), String> {
        let share = self.zipf_share(rng);
        let puzzle = RelObject::new(PUZZLE, share.id);

        // Prefer a direct grant; fall back to a circle membership.
        let direct = match self.direct_grants.get_mut(&share.id) {
            Some(v) if !v.is_empty() => Some(v.swap_remove(rng.gen_range(0..v.len()))),
            _ => None,
        };
        let (subject, via_circle) = if let Some(u) = direct {
            self.tuples.revoke(RelTuple::new(puzzle, ATTEMPTER, RelSubject::User(u)));
            (u, false)
        } else {
            let members = self.app.graph().friends(share.sharer).unwrap_or_default();
            if members.is_empty() {
                self.stats.noops += 1;
                self.log.record(&[event_id, K_NOOP]);
                return Ok(());
            }
            let u = members[rng.gen_range(0..members.len())];
            self.tuples.revoke(RelTuple::new(
                RelObject::new(CIRCLE, share.sharer.raw()),
                MEMBER,
                RelSubject::User(u),
            ));
            (u, true)
        };

        let allowed = subject == share.sharer || self.tuples.check(puzzle, ATTEMPTER, subject);
        let naive = subject == share.sharer || self.tuples.check_naive(puzzle, ATTEMPTER, subject);
        if allowed != naive {
            return Err(format!(
                "event {event_id}: rebac oracle divergence on {puzzle}#{ATTEMPTER}@user:{} \
                 (check={allowed}, naive={naive})",
                subject.raw()
            ));
        }
        if !allowed {
            self.stats.revocation_flips += 1;
        }

        let att = AttemptParams {
            event_id,
            reader: subject,
            share: Arc::clone(&share),
            plan: AnswerPlan { kinds: vec![AnswerKind::Correct; share.context.len()] },
            prefilter_allowed: allowed,
            tablet: self.tablet[subject.raw() as usize],
        };
        let out = eval_attempt(&self.app, &self.c1, self.split, &att);
        check_attempt(&att, &out)?;
        self.tally(&att, &out);
        self.latencies.push(out.latency);
        self.stats.tuple_revokes += 1;
        self.log.record(&[
            event_id,
            K_REVOKE,
            share.id,
            subject.raw(),
            u64::from(via_circle),
            u64::from(allowed),
            u64::from(out.granted),
        ]);
        Ok(())
    }

    fn tally(&mut self, att: &AttemptParams, out: &AttemptOutcome) {
        if out.granted {
            self.stats.grants += 1;
        } else {
            self.stats.denials += 1;
            if !att.prefilter_allowed {
                self.stats.prefiltered += 1;
            }
        }
    }

    fn tick(&mut self, t: u64, joins: u64, events: u64) -> Result<(), String> {
        for _ in 0..joins {
            let u = self.app.add_user(String::new());
            debug_assert_eq!(u.raw(), self.joined);
            self.joined += 1;
            self.tablet.push(false);
        }
        self.log.record(&[t, K_JOIN, joins, self.joined]);

        // Phase A: sequential mutations; attempts are parameterized.
        let mut attempts: Vec<AttemptParams> = Vec::new();
        for _ in 0..events {
            let event_id = self.next_event;
            self.next_event += 1;
            let mut rng = self.split.stream_n("event", event_id);
            if self.joined < 2 {
                self.stats.noops += 1;
                self.log.record(&[event_id, K_NOOP]);
                continue;
            }
            let mut kind = weighted_kind(&mut rng);
            if self.shares.is_empty()
                && matches!(
                    kind,
                    EventKind::Attempt | EventKind::TupleGrant | EventKind::TupleRevoke
                )
            {
                kind = EventKind::Share;
            }
            match kind {
                EventKind::Share => self.ev_share(event_id, &mut rng)?,
                EventKind::Attempt => {
                    let att = self.ev_attempt_params(event_id, &mut rng);
                    attempts.push(att);
                }
                EventKind::Befriend => self.ev_befriend(event_id, &mut rng),
                EventKind::Unfriend => self.ev_unfriend(event_id, &mut rng),
                EventKind::DeviceChurn => self.ev_churn(event_id, &mut rng),
                EventKind::TupleGrant => self.ev_tuple_grant(event_id, &mut rng),
                EventKind::TupleRevoke => self.ev_tuple_revoke(event_id, &mut rng)?,
            }
        }

        // Phase B: the tick's attempts, in parallel, results in event
        // order regardless of SP_PAR_THREADS.
        let outcomes = {
            let app = &self.app;
            let c1 = &self.c1;
            let split = self.split;
            parallel_map(&attempts, |att| eval_attempt(app, c1, split, att))
        };
        for (att, out) in attempts.iter().zip(&outcomes) {
            check_attempt(att, out)?;
            self.tally(att, out);
            self.latencies.push(out.latency);
            self.log.record(&[
                att.event_id,
                K_ATTEMPT,
                att.reader.raw(),
                att.share.id,
                u64::from(att.prefilter_allowed),
                u64::from(out.granted),
                out.correct_given,
                att.share.k as u64,
            ]);
            if self.cfg.oracle_sample > 0 && att.event_id % self.cfg.oracle_sample == 0 {
                // Slow oracle: the same attempt, sequentially, from the
                // same derived seed — decision and tally must match.
                let redo = eval_attempt(&self.app, &self.c1, self.split, att);
                if redo.granted != out.granted || redo.correct_given != out.correct_given {
                    return Err(format!(
                        "event {}: sequential oracle diverged from parallel run \
                         (granted {} vs {}, correct {} vs {})",
                        att.event_id,
                        redo.granted,
                        out.granted,
                        redo.correct_given,
                        out.correct_given
                    ));
                }
                let puzzle = RelObject::new(PUZZLE, att.share.id);
                if self.tuples.check(puzzle, ATTEMPTER, att.reader)
                    != self.tuples.check_naive(puzzle, ATTEMPTER, att.reader)
                {
                    return Err(format!(
                        "event {}: rebac check/naive divergence on {puzzle}",
                        att.event_id
                    ));
                }
                self.stats.oracle_checks += 1;
            }
        }
        Ok(())
    }

    /// The post-run Construction-2 probe: shares a few CP-ABE puzzles,
    /// then drives `cfg.c2_probe` `Verify → Access` cycles against them
    /// with Zipfian puzzle choice — the workload whose repeated
    /// decryptions of a hot puzzle the Miller line-evaluation cache is
    /// built for. Sequential and seeded from its own stream, so the
    /// decision log stays thread-count independent; every granted access
    /// must recover the exact object bytes, every fifth access answers
    /// below threshold and must be denied.
    fn c2_probe(&mut self) -> Result<(), String> {
        let n = self.cfg.c2_probe;
        if n == 0 || self.joined == 0 {
            return Ok(());
        }
        let c2 = Construction2::insecure_test_params();
        let mut rng = self.split.stream("c2-probe");
        let before = CryptoCounters::snapshot_process();

        let mut puzzles = Vec::with_capacity(C2_PROBE_PUZZLES);
        for i in 0..C2_PROBE_PUZZLES {
            let sharer = self.zipf_user(&mut rng);
            let mut builder = Context::builder();
            for j in 0..3 {
                builder = builder.pair(format!("c2q{i}-{j}?"), format!("c2a{i}-{j}"));
            }
            let context = builder.build().map_err(|e| format!("c2 probe context: {e}"))?;
            let object = format!("c2-obj-{i}").into_bytes();
            let report = self
                .app
                .share_c2(&c2, sharer, &object, &context, 2, &DeviceProfile::pc(), &mut rng)
                .map_err(|e| format!("c2 probe share: {e}"))?;
            puzzles.push((report, context, object));
        }

        for ev in 0..n {
            #[allow(clippy::cast_possible_truncation)]
            let idx = self.zipf_index(puzzles.len() as u64, &mut rng) as usize;
            let (report, context, object) = &puzzles[idx];
            let deny = ev % 5 == 4;
            let reader = self.zipf_user(&mut rng);
            let answerer = |q: &str| -> Option<String> {
                let pos = context.pairs().iter().position(|p| p.question() == q)?;
                if deny && pos > 0 {
                    // Withhold all but the first answer: 1 < k = 2.
                    return None;
                }
                Some(context.pairs()[pos].answer().to_string())
            };
            let result =
                self.app.receive_c2(&c2, reader, report, answerer, &DeviceProfile::pc(), &mut rng);
            match (deny, result) {
                (false, Ok(recv)) => {
                    if recv.object != *object {
                        return Err(format!("c2 probe {ev}: granted the wrong object bytes"));
                    }
                }
                (true, Err(SocialPuzzleError::NotEnoughCorrectAnswers)) => {
                    self.stats.c2_probe_denials += 1;
                }
                (d, r) => {
                    return Err(format!(
                        "c2 probe {ev}: deny={d} but outcome was {:?}",
                        r.map(|recv| recv.object.len())
                    ));
                }
            }
            self.stats.c2_probes += 1;
            self.log.record(&[ev, K_C2PROBE, idx as u64, u64::from(!deny)]);
        }

        let after = CryptoCounters::snapshot_process();
        self.c2_cache_traffic = (
            after.line_cache_hits - before.line_cache_hits,
            after.line_cache_misses - before.line_cache_misses,
        );
        Ok(())
    }

    /// The post-run real-socket probe: boots actual `sp-net` SP and DH
    /// daemons on loopback ports and replays `cfg.socket_probe` full
    /// share→attempt cycles through them — the same `SocialPuzzleApp`
    /// driver the in-process run uses, now with every `DisplayPuzzle`,
    /// `Verify`, and blob operation crossing a real TCP frame. Every
    /// fourth attempt withholds answers below threshold and must be
    /// denied. Sequential and seeded from its own stream: the network
    /// carries the traffic but never influences a decision, so the
    /// decision log stays deterministic.
    fn socket_probe(&mut self) -> Result<(), String> {
        let n = self.cfg.socket_probe;
        if n == 0 || self.joined == 0 {
            return Ok(());
        }
        let sp_daemon = Daemon::spawn(
            "127.0.0.1:0",
            Arc::new(SpService::new(
                ServiceProvider::with_shards(self.cfg.shards),
                Construction1::new(),
            )),
            DaemonConfig::default(),
        )
        .map_err(|e| format!("socket probe: sp daemon: {e}"))?;
        let dh_daemon = Daemon::spawn(
            "127.0.0.1:0",
            Arc::new(DhService::new(StorageHost::with_shards(self.cfg.shards))),
            DaemonConfig::default(),
        )
        .map_err(|e| format!("socket probe: dh daemon: {e}"))?;
        let app = SocialPuzzleApp::with_backends(
            SpClient::connect(sp_daemon.addr(), ClientConfig::default()),
            DhClient::connect(dh_daemon.addr(), ClientConfig::default()),
        );
        let mut rng = self.split.stream("socket-probe");

        for ev in 0..n {
            let sharer = self.zipf_user(&mut rng);
            let reader = self.zipf_user(&mut rng);
            let mut builder = Context::builder();
            for j in 0..3 {
                builder = builder.pair(format!("sq{ev}-{j}?"), format!("sa{ev}-{j}"));
            }
            let context = builder.build().map_err(|e| format!("socket probe context: {e}"))?;
            let object = format!("sock-obj-{ev}").into_bytes();
            let share = app
                .share_c1(
                    &self.c1,
                    sharer,
                    &object,
                    &context,
                    2,
                    &DeviceProfile::pc(),
                    None,
                    &mut rng,
                )
                .map_err(|e| format!("socket probe share: {e}"))?;
            let deny = ev % 4 == 3;
            let answerer = |q: &str| -> Option<String> {
                let pos = context.pairs().iter().position(|p| p.question() == q)?;
                if deny && pos > 0 {
                    // Withhold all but the first answer: 1 < k = 2.
                    return None;
                }
                Some(context.pairs()[pos].answer().to_string())
            };
            let result =
                app.receive_c1(&self.c1, reader, &share, answerer, &DeviceProfile::pc(), &mut rng);
            match (deny, result) {
                (false, Ok(recv)) => {
                    if recv.object != object {
                        return Err(format!("socket probe {ev}: granted the wrong object bytes"));
                    }
                }
                (true, Err(SocialPuzzleError::NotEnoughCorrectAnswers)) => {
                    self.stats.socket_probe_denials += 1;
                }
                (d, r) => {
                    return Err(format!(
                        "socket probe {ev}: deny={d} but outcome was {:?}",
                        r.map(|recv| recv.object.len())
                    ));
                }
            }
            self.stats.socket_probes += 1;
            self.log.record(&[ev, K_SOCKETPROBE, u64::from(!deny)]);
        }
        sp_daemon.shutdown();
        dh_daemon.shutdown();
        Ok(())
    }

    fn into_report(mut self, elapsed: Duration) -> SimReport {
        self.latencies.sort_unstable();
        let pct = |p: f64| -> f64 {
            if self.latencies.is_empty() {
                return 0.0;
            }
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let idx = ((self.latencies.len() - 1) as f64 * p).round() as usize;
            self.latencies[idx].as_secs_f64() * 1e6
        };
        let decisions = self.stats.grants + self.stats.denials;
        let elapsed_s = elapsed.as_secs_f64().max(1e-9);
        SimReport {
            seed: self.cfg.seed,
            users: self.cfg.users,
            events: self.next_event,
            ticks: self.cfg.ticks,
            counters: self.stats,
            decisions,
            log_hash: self.log.hash(),
            log_entries: self.log.entries(),
            elapsed_s,
            #[allow(clippy::cast_precision_loss)]
            events_per_s: self.next_event as f64 / elapsed_s,
            #[allow(clippy::cast_precision_loss)]
            decisions_per_s: decisions as f64 / elapsed_s,
            p50_us: pct(0.50),
            p99_us: pct(0.99),
            c2_cache_hits: self.c2_cache_traffic.0,
            c2_cache_misses: self.c2_cache_traffic.1,
        }
    }
}

/// Runs one simulation to completion.
///
/// # Errors
///
/// Returns a human-readable description of the first invariant
/// violation — a failed run means the protocol stack, not the
/// simulator, broke its contract.
pub fn run(cfg: &SimConfig) -> Result<SimReport, String> {
    let start = Instant::now();
    let mut sim = Simulation::new(cfg.clone());
    let wave = day_night_wave(cfg.ticks);
    let alloc = apportion(cfg.events, &wave);
    let joins = apportion(cfg.users, &vec![1.0; cfg.ticks as usize]);
    for t in 0..cfg.ticks as usize {
        sim.tick(t as u64, joins[t], alloc[t])?;
    }
    sim.c2_probe()?;
    sim.socket_probe()?;
    Ok(sim.into_report(start.elapsed()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SimConfig {
        SimConfig {
            users: 300,
            events: 600,
            ticks: 12,
            oracle_sample: 8,
            max_live_shares: 48,
            shards: 4,
            socket_probe: 4,
            ..SimConfig::new(11, 300)
        }
    }

    #[test]
    fn apportion_is_exact() {
        let wave = day_night_wave(48);
        let alloc = apportion(10_007, &wave);
        assert_eq!(alloc.iter().sum::<u64>(), 10_007);
        assert_eq!(alloc.len(), 48);
        // The wave actually shapes the allocation: peak ≫ trough.
        let peak = *alloc.iter().max().unwrap();
        let trough = *alloc.iter().min().unwrap();
        assert!(peak > 2 * trough, "peak {peak} vs trough {trough}");
    }

    #[test]
    fn same_seed_same_hash() {
        let cfg = small();
        let a = run(&cfg).expect("run a");
        let b = run(&cfg).expect("run b");
        assert_eq!(a.log_hash, b.log_hash);
        assert_eq!(a.log_entries, b.log_entries);
        assert_eq!(a.counters, b.counters);
    }

    #[test]
    fn different_seed_different_hash() {
        let a = run(&small()).expect("run a");
        let b = run(&SimConfig { seed: 12, ..small() }).expect("run b");
        assert_ne!(a.log_hash, b.log_hash);
    }

    #[test]
    fn thread_count_does_not_change_the_hash() {
        // worker_count() re-reads SP_PAR_THREADS on every call, so the
        // env var takes effect immediately. The hash must not notice.
        let cfg = small();
        std::env::set_var("SP_PAR_THREADS", "1");
        let serial = run(&cfg).expect("serial run");
        std::env::set_var("SP_PAR_THREADS", "4");
        let parallel = run(&cfg).expect("parallel run");
        std::env::remove_var("SP_PAR_THREADS");
        assert_eq!(serial.log_hash, parallel.log_hash);
        assert_eq!(serial.counters, parallel.counters);
    }

    #[test]
    fn workload_exercises_every_event_kind() {
        let report = run(&small()).expect("run");
        let c = report.counters;
        assert!(c.shares > 0, "no shares: {c:?}");
        assert!(c.grants > 0, "no grants: {c:?}");
        assert!(c.denials > 0, "no denials: {c:?}");
        assert!(c.prefiltered > 0, "rebac pre-filter never fired: {c:?}");
        assert!(c.befriends > 0, "no befriends: {c:?}");
        assert!(c.unfriends > 0, "no unfriends: {c:?}");
        assert!(c.device_churns > 0, "no device churn: {c:?}");
        assert!(c.tuple_grants > 0, "no tuple grants: {c:?}");
        assert!(c.tuple_revokes > 0, "no tuple revokes: {c:?}");
        assert!(c.revocation_flips > 0, "no revocation ever took effect: {c:?}");
        assert!(c.oracle_checks > 0, "oracle never sampled: {c:?}");
        assert_eq!(report.decisions, c.grants + c.denials);
        assert!(report.log_entries > 0);
        assert_eq!(report.hash_hex(), format!("{:016x}", report.log_hash));
    }

    #[test]
    fn c2_probe_hits_the_line_cache() {
        let cfg = small();
        let report = run(&cfg).expect("run");
        let c = report.counters;
        assert_eq!(c.c2_probes, cfg.c2_probe, "probe did not run to completion: {c:?}");
        assert!(c.c2_probe_denials > 0, "below-threshold probes never denied: {c:?}");
        // Every probe decrypt pairs against the same small puzzle set, so
        // after the first (cold) pass the line cache must be serving hits.
        // Counter deltas are measured around the probe but the counters are
        // process-global, so concurrent tests can only inflate them — a
        // lower bound is the strongest safe assertion.
        assert!(report.c2_cache_misses > 0, "probe never exercised the pairing path");
        assert!(
            report.c2_cache_hits > report.c2_cache_misses,
            "Zipfian probe should be hit-dominated: {} hits / {} misses",
            report.c2_cache_hits,
            report.c2_cache_misses
        );
        assert!(report.c2_cache_hit_rate() > 0.0);

        // The probe is seeded and sequential: reruns agree exactly.
        let again = run(&cfg).expect("rerun");
        assert_eq!(again.counters.c2_probes, c.c2_probes);
        assert_eq!(again.counters.c2_probe_denials, c.c2_probe_denials);
    }

    #[test]
    fn c2_probe_can_be_disabled() {
        let report = run(&SimConfig { c2_probe: 0, ..small() }).expect("run");
        assert_eq!(report.counters.c2_probes, 0);
        assert_eq!(report.c2_cache_hits, 0);
        assert_eq!(report.c2_cache_misses, 0);
    }

    #[test]
    fn socket_probe_replays_attempts_over_real_sockets_deterministically() {
        let cfg = SimConfig { socket_probe: 8, ..small() };
        let report = run(&cfg).expect("run");
        let c = report.counters;
        assert_eq!(c.socket_probes, 8, "probe did not run to completion: {c:?}");
        assert_eq!(c.socket_probe_denials, 2, "every fourth probe is denied: {c:?}");
        // Same config → same hash: the network carried the traffic but
        // never influenced a decision.
        let again = run(&cfg).expect("rerun");
        assert_eq!(again.log_hash, report.log_hash);
        assert_eq!(again.counters, c);
    }

    #[test]
    fn socket_probe_can_be_disabled_and_changes_the_log_when_on() {
        let off = run(&SimConfig { socket_probe: 0, ..small() }).expect("off");
        assert_eq!(off.counters.socket_probes, 0);
        let on = run(&SimConfig { socket_probe: 4, ..small() }).expect("on");
        assert_eq!(on.counters.socket_probes, 4);
        // The probe's decisions are part of the canonical log.
        assert_eq!(on.log_entries, off.log_entries + 4);
        assert_ne!(on.log_hash, off.log_hash);
    }
}
