//! # sp-sim — deterministic OSN simulation engine
//!
//! Drives up to a million simulated users through the *real*
//! social-puzzles protocol stack — [`SocialPuzzleApp`] over sharded
//! in-process SP/DH backends, Construction 1 share/receive, the
//! Zanzibar-style [`TupleStore`] relationship layer — and asserts
//! access-decision invariants after every single event.
//!
//! The headline contract: a run is fully determined by its
//! [`SimConfig`]. Same config → byte-identical decision-log hash,
//! across process restarts and across any `SP_PAR_THREADS` setting.
//! See `docs/SIMULATION.md` for the event model and the invariant list.
//!
//! [`SocialPuzzleApp`]: social_puzzles_core::protocol::SocialPuzzleApp
//! [`TupleStore`]: sp_osn::TupleStore

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod log;

pub use config::SimConfig;
pub use engine::{run, SimCounters, SimReport};
pub use log::DecisionLog;
