//! The canonical event/decision log hash.
//!
//! The simulator's headline property — same seed, same hash, any
//! `SP_PAR_THREADS` — needs a log representation with no room for
//! incidental divergence. Entries are sequences of `u64` fields,
//! folded into a running FNV-1a 64 as `len ‖ field…` (length-prefixed
//! so `[1,2]+[3]` and `[1]+[2,3]` cannot collide), in event order.
//! Wall-clock values (latencies, throughput) are never logged: they
//! belong in the report, not the hash.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An order-sensitive rolling hash over canonical log entries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecisionLog {
    hash: u64,
    entries: u64,
}

impl Default for DecisionLog {
    fn default() -> Self {
        Self::new()
    }
}

impl DecisionLog {
    /// An empty log.
    #[must_use]
    pub fn new() -> Self {
        Self { hash: FNV_OFFSET, entries: 0 }
    }

    fn fold(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.hash ^= u64::from(b);
            self.hash = self.hash.wrapping_mul(FNV_PRIME);
        }
    }

    /// Appends one entry: a length-prefixed field sequence.
    pub fn record(&mut self, fields: &[u64]) {
        self.fold(fields.len() as u64);
        for &f in fields {
            self.fold(f);
        }
        self.entries += 1;
    }

    /// The running hash.
    #[must_use]
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// The running hash, formatted the way `spuzzle sim` prints it.
    #[must_use]
    pub fn hash_hex(&self) -> String {
        format!("{:016x}", self.hash)
    }

    /// How many entries have been recorded.
    #[must_use]
    pub fn entries(&self) -> u64 {
        self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_and_boundaries_matter() {
        let mut a = DecisionLog::new();
        a.record(&[1, 2]);
        a.record(&[3]);
        let mut b = DecisionLog::new();
        b.record(&[1]);
        b.record(&[2, 3]);
        assert_ne!(a.hash(), b.hash(), "length prefix must separate entries");

        let mut c = DecisionLog::new();
        c.record(&[3]);
        c.record(&[1, 2]);
        assert_ne!(a.hash(), c.hash(), "entry order must matter");

        let mut d = DecisionLog::new();
        d.record(&[1, 2]);
        d.record(&[3]);
        assert_eq!(a.hash(), d.hash(), "same entries, same hash");
        assert_eq!(a.entries(), 2);
        assert_eq!(a.hash_hex(), format!("{:016x}", a.hash()));
    }
}
