//! Property-based tests of big-integer arithmetic laws (crate-local;
//! the workspace-level suite has cross-crate variants).

use proptest::prelude::*;
use sp_bigint::{div_rem, modops, prime, MontCtx, Uint};

type U8 = Uint<8>;

fn u8_from(limbs: [u64; 8]) -> U8 {
    U8::from_limbs(limbs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mul_distributes_over_add_512(a in any::<[u64; 8]>(), b in any::<[u64; 8]>(), c in any::<[u64; 8]>()) {
        // (a + b)·c ≡ a·c + b·c  (mod 2^512): check the low halves.
        let (a, b, c) = (u8_from(a), u8_from(b), u8_from(c));
        let lhs = a.wrapping_add(&b).wrapping_mul(&c);
        let rhs = a.wrapping_mul(&c).wrapping_add(&b.wrapping_mul(&c));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn widening_mul_matches_schoolbook_low(a in any::<[u64; 8]>(), b in any::<u64>()) {
        // a · b (single limb) via widening_mul agrees with mul_u64.
        let a = u8_from(a);
        let (lo1, hi1) = a.widening_mul(&U8::from_u64(b));
        let (lo2, carry) = a.mul_u64(b);
        prop_assert_eq!(lo1, lo2);
        prop_assert_eq!(hi1.low_u64(), carry);
    }

    #[test]
    fn rem_u64_matches_div_rem(a in any::<[u64; 8]>(), m in 1u64..) {
        let a = u8_from(a);
        prop_assert_eq!(a.rem_u64(m), div_rem(&a, &U8::from_u64(m)).1.low_u64());
    }

    #[test]
    fn shl_shr_compose(a in any::<[u64; 8]>(), s in 0u32..512, t in 0u32..512) {
        let a = u8_from(a);
        // shr(s) then shr(t) == shr(s + t) (saturating at width).
        let both = a.shr(s).shr(t);
        let combined = if s.checked_add(t).map(|v| v >= 512).unwrap_or(true) {
            U8::ZERO
        } else {
            a.shr(s + t)
        };
        prop_assert_eq!(both, combined);
    }

    #[test]
    fn bit_len_is_consistent(a in any::<[u64; 8]>()) {
        let a = u8_from(a);
        let bits = a.bit_len();
        if bits > 0 {
            prop_assert!(a.bit(bits - 1));
        }
        prop_assert!(!a.bit(bits));
        if bits < 512 {
            prop_assert!(a < U8::ONE.shl(bits));
        }
    }

    #[test]
    fn montgomery_mul_matches_wide_reduce(a in any::<[u64; 8]>(), b in any::<[u64; 8]>()) {
        // Validate Montgomery multiplication against an independent
        // route: plain widening multiply + bit-serial wide reduction.
        let p = U8::from_hex(
            "ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff\
             fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffdc7",
        ).unwrap(); // 2^512 - 569, prime
        let ctx = MontCtx::new(p).unwrap();
        let a = div_rem(&u8_from(a), &p).1;
        let b = div_rem(&u8_from(b), &p).1;
        let (lo, hi) = a.widening_mul(&b);
        let expected = sp_bigint::reduce_wide(&hi, &lo, &p);
        let got = ctx.from_mont(&ctx.mul(&ctx.to_mont(&a), &ctx.to_mont(&b)));
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn fermat_for_random_bases(a in any::<[u64; 4]>()) {
        let p = Uint::<4>::from_hex(
            "7fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffed"
        ).unwrap();
        let ctx = MontCtx::new(p).unwrap();
        let a = div_rem(&Uint::from_limbs(a), &p).1;
        prop_assume!(!a.is_zero());
        let pm1 = p.wrapping_sub(&Uint::ONE);
        prop_assert_eq!(ctx.pow_canonical(&a, &pm1), Uint::ONE);
    }

    #[test]
    fn jacobi_multiplicativity(a in any::<[u64; 4]>(), b in any::<[u64; 4]>()) {
        let p = Uint::<4>::from_u64(1_000_003);
        let a = div_rem(&Uint::from_limbs(a), &p).1;
        let b = div_rem(&Uint::from_limbs(b), &p).1;
        let ab = div_rem(&a.wrapping_mul(&b), &p).1;
        prop_assert_eq!(
            modops::jacobi(&ab, &p),
            modops::jacobi(&a, &p) * modops::jacobi(&b, &p)
        );
    }
}

#[test]
fn generated_primes_pass_independent_mr_rounds() {
    use rand::{rngs::StdRng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(77);
    for bits in [48u32, 96, 160] {
        let p: Uint<4> = prime::random_prime(bits, &mut rng);
        let mut rng2 = StdRng::seed_from_u64(0xD00D);
        assert!(prime::miller_rabin(&p, 40, &mut rng2), "{p} (bits = {bits})");
    }
}

// Kernel-equivalence suite: the specialized Montgomery kernels (SOS
// squaring, length-bounded wide multiply/square, double-width modular
// subtract) must agree with their reference twins over moduli of every
// significant limb count 1..=8 — the truncated-length dispatch is
// exactly where a wrong loop bound or carry placement would hide.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn truncated_kernels_match_reference_twins(
        n_limbs in any::<[u64; 8]>(),
        len in 1usize..=8,
        a in any::<[u64; 8]>(),
        b in any::<[u64; 8]>(),
    ) {
        // A random odd modulus with exactly `len` significant limbs.
        let mut nl = n_limbs;
        for l in &mut nl[len..] {
            *l = 0;
        }
        nl[len - 1] |= 1;
        nl[0] |= 0b11; // odd, and > 1 even at len == 1
        let n = u8_from(nl);
        let ctx = MontCtx::new(n).unwrap();
        let a = ctx.to_mont(&div_rem(&u8_from(a), &n).1);
        let b = ctx.to_mont(&div_rem(&u8_from(b), &n).1);

        // Dedicated squaring == fused multiply == retained reference.
        prop_assert_eq!(ctx.square(&a), ctx.mul(&a, &a));
        prop_assert_eq!(ctx.square(&a), ctx.square_reference(&a));

        // Separated wide multiply + reduction == fused CIOS multiply.
        let wide = ctx.wide_mul(&a, &b);
        prop_assert_eq!(ctx.montgomery_reduce(&wide.0, &wide.1), ctx.mul(&a, &b));
        prop_assert_eq!(ctx.wide_square(&a), ctx.wide_mul(&a, &a));

        // Double-width subtract: reducing `a·b − b·b (mod n·R)` must
        // land on the difference of the separately reduced products.
        let diff = ctx.wide_sub(wide, &ctx.wide_mul(&b, &b));
        prop_assert_eq!(
            ctx.montgomery_reduce(&diff.0, &diff.1),
            ctx.sub(&ctx.mul(&a, &b), &ctx.mul(&b, &b))
        );
    }
}
