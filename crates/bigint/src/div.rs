//! Division and wide reduction.
//!
//! These are bit-serial shift-subtract routines: simple, obviously correct
//! and fast enough for the setup-time operations that need them (parameter
//! generation, hashing into fields, Montgomery-context construction). Hot
//! loops use Montgomery multiplication instead and never divide.

use crate::uint::Uint;

/// Divides `a` by `d`, returning `(quotient, remainder)`.
///
/// # Panics
///
/// Panics if `d` is zero.
pub fn div_rem<const L: usize>(a: &Uint<L>, d: &Uint<L>) -> (Uint<L>, Uint<L>) {
    assert!(!d.is_zero(), "division by zero");
    if a < d {
        return (Uint::ZERO, *a);
    }
    let mut quotient = Uint::ZERO;
    let mut rem = Uint::ZERO;
    let bits = a.bit_len();
    for i in (0..bits).rev() {
        rem = rem.shl1().0;
        if a.bit(i) {
            rem = rem.wrapping_add(&Uint::ONE);
        }
        if rem >= *d {
            rem = rem.wrapping_sub(d);
            quotient = quotient.wrapping_add(&Uint::ONE.shl(i));
        }
    }
    (quotient, rem)
}

/// Reduces the double-width value `hi · 2^(64·L) + lo` modulo `d`,
/// returning the remainder.
///
/// # Panics
///
/// Panics if `d` is zero.
pub fn reduce_wide<const L: usize>(hi: &Uint<L>, lo: &Uint<L>, d: &Uint<L>) -> Uint<L> {
    assert!(!d.is_zero(), "division by zero");
    // Start from the high half reduced (it may exceed d), then shift in the
    // low half bit by bit. The running remainder always stays below d, so a
    // single conditional subtraction after each shift suffices; the shift
    // carry bit must be folded in because `rem < d <= 2^(64L)` can still
    // have its top bit set.
    let mut rem = div_rem(hi, d).1;
    for i in (0..Uint::<L>::BITS).rev() {
        let (shifted, carry) = rem.shl1();
        rem = shifted;
        if lo.bit(i) {
            rem = rem.wrapping_add(&Uint::ONE);
        }
        if carry || rem >= *d {
            rem = rem.wrapping_sub(d);
        }
    }
    rem
}

/// Reduces a single-width value modulo `d` (convenience wrapper).
///
/// # Panics
///
/// Panics if `d` is zero.
pub fn reduce<const L: usize>(a: &Uint<L>, d: &Uint<L>) -> Uint<L> {
    div_rem(a, d).1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    type U4 = Uint<4>;

    #[test]
    fn small_division() {
        let a = U4::from_u64(1000);
        let d = U4::from_u64(37);
        let (q, r) = div_rem(&a, &d);
        assert_eq!(q, U4::from_u64(27));
        assert_eq!(r, U4::from_u64(1));
    }

    #[test]
    fn divide_by_larger() {
        let (q, r) = div_rem(&U4::from_u64(5), &U4::from_u64(100));
        assert!(q.is_zero());
        assert_eq!(r, U4::from_u64(5));
    }

    #[test]
    fn divide_exact() {
        let d = U4::from_hex("deadbeefcafebabe").unwrap();
        let (a, _) = d.mul_u64(123_456_789);
        let (q, r) = div_rem(&a, &d);
        assert_eq!(q, U4::from_u64(123_456_789));
        assert!(r.is_zero());
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn divide_by_zero_panics() {
        let _ = div_rem(&U4::ONE, &U4::ZERO);
    }

    #[test]
    fn random_reconstruction() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..50 {
            let a = U4::random(&mut rng);
            let dbits = rng.gen_range(1..=256);
            let d = U4::random_bits(&mut rng, dbits);
            let (q, r) = div_rem(&a, &d);
            assert!(r < d);
            // a == q*d + r (within 256 bits; q*d never overflows since q <= a/d)
            let (lo, hi) = q.widening_mul(&d);
            assert!(hi.is_zero());
            assert_eq!(lo.wrapping_add(&r), a);
        }
    }

    #[test]
    fn wide_reduction_matches_composition() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..30 {
            let a = U4::random(&mut rng);
            let b = U4::random(&mut rng);
            // Keep d below 255 bits so the independent doubling route below
            // never overflows 256-bit arithmetic mid-step.
            let dbits = rng.gen_range(64..=255);
            let d = U4::random_bits(&mut rng, dbits);
            let (lo, hi) = a.widening_mul(&b);
            let r = reduce_wide(&hi, &lo, &d);
            assert!(r < d);
            // Independent route: (hi mod d) * 2^256 mod d via 256 modular
            // doublings, then add (lo mod d).
            let mut acc = div_rem(&hi, &d).1;
            for _ in 0..256 {
                acc = acc.shl1().0;
                if acc >= d {
                    acc = acc.wrapping_sub(&d);
                }
            }
            let mut expected = acc.wrapping_add(&div_rem(&lo, &d).1);
            if expected >= d {
                expected = expected.wrapping_sub(&d);
            }
            assert_eq!(r, expected);
        }
    }

    #[test]
    fn wide_reduction_zero_hi() {
        let lo = U4::from_u64(1_000_000);
        let d = U4::from_u64(997);
        assert_eq!(reduce_wide(&U4::ZERO, &lo, &d), U4::from_u64(1_000_000 % 997));
    }
}
