//! Fixed-width big unsigned integers and modular arithmetic.
//!
//! This crate is the number-theoretic substrate of the social-puzzles
//! workspace. It provides:
//!
//! * [`Uint`] — a stack-allocated, little-endian-limbed unsigned integer of
//!   `L` 64-bit limbs (`L = 4` gives 256 bits, `L = 8` gives 512 bits),
//! * [`MontCtx`] — a Montgomery-multiplication context for a fixed odd
//!   modulus, with modular exponentiation,
//! * [`modops`] — modular inverse (binary extended GCD), Jacobi symbol and
//!   square roots modulo primes `p ≡ 3 (mod 4)`,
//! * [`prime`] — Miller–Rabin primality testing and prime generation,
//!   including the Solinas prime and the PBC *Type-A* curve-order
//!   generation procedure used by the pairing crate.
//!
//! Everything is implemented from scratch on top of `u64`/`u128`
//! arithmetic; the only external dependency is [`rand`] for randomized
//! primality witnesses and prime generation.
//!
//! # Security note
//!
//! Operations are **not constant-time**: comparisons short-circuit,
//! modular reduction branches, and exponentiation is plain
//! square-and-multiply. That matches the research-reproduction goal of
//! this workspace (the paper's own prototypes are JavaScript and a
//! stock toolkit); do not use this crate where timing side channels
//! matter. The one deliberately constant-time primitive in the workspace
//! is `sp_crypto::ct::ct_eq`, used for hash comparisons at the service
//! provider.
//!
//! # Example
//!
//! ```
//! use sp_bigint::{Uint, MontCtx};
//!
//! // Arithmetic modulo a small odd prime, via Montgomery form.
//! let p = Uint::<4>::from_u64(1_000_003);
//! let ctx = MontCtx::new(p).expect("odd modulus");
//! let a = ctx.to_mont(&Uint::from_u64(123_456));
//! let b = ctx.to_mont(&Uint::from_u64(654_321));
//! let ab = ctx.mul(&a, &b);
//! assert_eq!(ctx.from_mont(&ab), Uint::from_u64(123_456u64 * 654_321 % 1_000_003));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod div;
mod error;
mod mont;
mod uint;

pub mod modops;
pub mod prime;

pub use div::{div_rem, reduce_wide};
pub use error::BigIntError;
pub use mont::MontCtx;
pub use uint::Uint;
