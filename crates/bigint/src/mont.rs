//! Montgomery multiplication context.

use crate::error::BigIntError;
use crate::uint::{adc, mac, Uint};

/// Precomputed context for arithmetic modulo a fixed odd modulus `n`, with
/// operands kept in Montgomery form (`x·R mod n`).
///
/// `R = 2^(64·len)` where `len` is the number of *significant* limbs of
/// `n`, not the container width `L`. All kernels loop over `len` limbs
/// only, so a 264-bit modulus carried in a 512-bit `Uint<8>` pays
/// 5-limb arithmetic (25 macs per product row-set instead of 64). When
/// the modulus fills the container the loops degenerate to the classic
/// full-width forms. Each kernel dispatches on `len` to an
/// `#[inline(always)]` body so constant propagation unrolls the limb
/// loops and elides the bounds checks per size.
///
/// # Example
///
/// ```
/// use sp_bigint::{MontCtx, Uint};
///
/// let p = Uint::<4>::from_u64(101);
/// let ctx = MontCtx::new(p)?;
/// let x = ctx.to_mont(&Uint::from_u64(17));
/// let x5 = ctx.pow(&x, &Uint::<4>::from_u64(5));
/// assert_eq!(ctx.from_mont(&x5), Uint::from_u64(17u64.pow(5) % 101));
/// # Ok::<(), sp_bigint::BigIntError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MontCtx<const L: usize> {
    n: Uint<L>,
    /// `-n^{-1} mod 2^64`.
    n_prime: u64,
    /// `R mod n` — the Montgomery form of `1`.
    one: Uint<L>,
    /// `R² mod n` — used to convert into Montgomery form.
    r2: Uint<L>,
    /// Significant limbs of `n`; `R = 2^(64·len)`.
    len: usize,
}

impl<const L: usize> MontCtx<L> {
    /// Creates a context for the odd modulus `n > 1`.
    ///
    /// # Errors
    ///
    /// Returns [`BigIntError::EvenModulus`] if `n` is even or `n <= 1`.
    pub fn new(n: Uint<L>) -> Result<Self, BigIntError> {
        if !n.is_odd() || n == Uint::ONE {
            return Err(BigIntError::EvenModulus);
        }
        // n' = -n^{-1} mod 2^64 via Newton–Hensel lifting.
        let n0 = n.limbs()[0];
        let mut inv: u64 = 1;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        let n_prime = inv.wrapping_neg();
        let len = (n.bit_len() as usize).div_ceil(64);
        // R mod n by 64·len modular doublings of 1 (n > 1, so 1 is
        // reduced), then R² mod n by 64·len more.
        let double_mod = |mut x: Uint<L>, rounds: usize| {
            for _ in 0..rounds {
                let (shifted, carry) = x.shl1();
                x = shifted;
                if carry || x >= n {
                    x = x.wrapping_sub(&n);
                }
            }
            x
        };
        let one = double_mod(Uint::ONE, 64 * len);
        let r2 = double_mod(one, 64 * len);
        Ok(Self { n, n_prime, one, r2, len })
    }

    /// Routes a kernel to a monomorphic copy per significant-limb count:
    /// the callee is `#[inline(always)]`, so each arm's constant `len`
    /// propagates, unrolling the limb loops and eliding bounds checks.
    /// The fallback arm covers container widths beyond 8 limbs.
    fn dispatch<T>(&self, f: impl Fn(&Self, usize) -> T) -> T {
        match self.len {
            1 => f(self, 1),
            2 => f(self, 2),
            3 => f(self, 3),
            4 => f(self, 4),
            5 => f(self, 5),
            6 => f(self, 6),
            7 => f(self, 7),
            8 => f(self, 8),
            len => f(self, len),
        }
    }

    /// The modulus.
    pub fn modulus(&self) -> &Uint<L> {
        &self.n
    }

    /// The Montgomery form of `1` (`R mod n`).
    pub fn one(&self) -> &Uint<L> {
        &self.one
    }

    /// Converts a canonical residue into Montgomery form.
    ///
    /// # Panics
    ///
    /// Debug-panics if `x >= n`.
    pub fn to_mont(&self, x: &Uint<L>) -> Uint<L> {
        debug_assert!(x < &self.n, "to_mont: operand must be reduced");
        self.mul(x, &self.r2)
    }

    /// Converts a Montgomery-form value back to a canonical residue.
    pub fn from_mont(&self, x: &Uint<L>) -> Uint<L> {
        self.mul(x, &Uint::ONE)
    }

    /// Montgomery multiplication: `a·b·R^{-1} mod n` (CIOS algorithm,
    /// looping over the `len` significant limbs only).
    pub fn mul(&self, a: &Uint<L>, b: &Uint<L>) -> Uint<L> {
        self.dispatch(|s, len| s.mul_impl(a, b, len))
    }

    #[allow(clippy::needless_range_loop)] // lockstep limb indexing
    #[inline(always)]
    fn mul_impl(&self, a: &Uint<L>, b: &Uint<L>, len: usize) -> Uint<L> {
        let al = a.limbs();
        let bl = b.limbs();
        let nl = self.n.limbs();
        let mut t = [0u64; L];
        let mut t_hi: u64 = 0; // limb `len`
        for i in 0..len {
            // t += a[i] * b
            let mut carry = 0u64;
            for j in 0..len {
                let (lo, c) = mac(t[j], al[i], bl[j], carry);
                t[j] = lo;
                carry = c;
            }
            let (s, overflow) = adc(t_hi, carry, 0);
            t_hi = s;
            // m = t[0] * n' mod 2^64; t = (t + m*n) / 2^64
            let m = t[0].wrapping_mul(self.n_prime);
            let (_, mut carry) = mac(t[0], m, nl[0], 0);
            for j in 1..len {
                let (lo, c) = mac(t[j], m, nl[j], carry);
                t[j - 1] = lo;
                carry = c;
            }
            let (s, c) = adc(t_hi, carry, 0);
            t[len - 1] = s;
            t_hi = overflow + c;
        }
        self.correct(t, t_hi, len)
    }

    /// Final CIOS/REDC correction: the value `carry·R + t` lies in
    /// `[0, 2n)`; subtract `n` once if needed. The borrow out of limb
    /// `len` cancels against `carry`, so the subtraction runs over the
    /// significant limbs only and any final borrow is dropped.
    #[inline(always)]
    fn correct(&self, mut t: [u64; L], carry: u64, len: usize) -> Uint<L> {
        if carry == 1 || Uint::from_limbs(t) >= self.n {
            let nl = self.n.limbs();
            let mut borrow = false;
            for j in 0..len {
                let (d, b1) = t[j].overflowing_sub(nl[j]);
                let (d, b2) = d.overflowing_sub(u64::from(borrow));
                t[j] = d;
                borrow = b1 || b2;
            }
        }
        Uint::from_limbs(t)
    }

    /// Montgomery reduction of a double-width value `t = hi·2^(64·L) + lo`
    /// with `t < n·R` (`R = 2^(64·L)`): returns `t·R^{-1} mod n`, fully
    /// reduced.
    ///
    /// This is the reduction half of an SOS (separated operand scanning)
    /// multiply; pair it with [`MontCtx::wide_mul`] or
    /// [`MontCtx::wide_square`] to defer reduction across a chain of
    /// double-width additions and subtractions (lazy reduction), paying
    /// one reduction per output instead of one per product.
    pub fn montgomery_reduce(&self, lo: &Uint<L>, hi: &Uint<L>) -> Uint<L> {
        self.dispatch(|s, len| s.reduce_impl(lo, hi, len))
    }

    #[inline(always)]
    fn reduce_impl(&self, lo: &Uint<L>, hi: &Uint<L>, len: usize) -> Uint<L> {
        // Flat 2L-limb accumulator as two stack halves; every index is
        // routed to the right half explicitly.
        let mut lo = *lo.limbs();
        let mut hi = *hi.limbs();
        let top = self.reduce_rounds(&mut lo, &mut hi, len);
        // The reduced value is limbs len..2·len of the accumulator.
        let mut t = [0u64; L];
        for (j, tj) in t.iter_mut().enumerate().take(len) {
            let k = len + j;
            *tj = if k < L { lo[k] } else { hi[k - L] };
        }
        self.correct(t, top, len)
    }

    /// The `len` REDC rounds over the flat accumulator `lo ‖ hi`,
    /// in place; returns the final carry (the bit at limb `2·len`).
    #[inline(always)]
    fn reduce_rounds(&self, lo: &mut [u64; L], hi: &mut [u64; L], len: usize) -> u64 {
        let nl = self.n.limbs();
        let mut top = 0u64;
        for i in 0..len {
            // m = w[i]·n' mod 2^64; adding m·n·2^(64·i) zeroes limb i.
            let m = lo[i].wrapping_mul(self.n_prime);
            let mut carry = 0u64;
            // Limbs of the m·n row below the half boundary...
            let split = len.min(L - i);
            for j in 0..split {
                let (v, c) = mac(lo[i + j], m, nl[j], carry);
                lo[i + j] = v;
                carry = c;
            }
            // ...and the rest in the high half.
            for j in split..len {
                let (v, c) = mac(hi[i + j - L], m, nl[j], carry);
                hi[i + j - L] = v;
                carry = c;
            }
            // Absorb this round's carry plus the running carry from the
            // previous round into limb i+len; the carry-out belongs at
            // limb i+len+1, which is exactly where the next round lands.
            let k = i + len;
            let w = if k < L { &mut lo[k] } else { &mut hi[k - L] };
            let (v, c) = adc(*w, carry, top);
            *w = v;
            top = c;
        }
        top
    }

    /// Montgomery squaring: a dedicated SOS kernel (halved partial
    /// products, then one wide reduction) rather than the generic CIOS
    /// multiply on equal operands. The wide square and the reduction
    /// share one stack frame so the 2L-limb intermediate is never moved.
    pub fn square(&self, a: &Uint<L>) -> Uint<L> {
        self.dispatch(|s, len| s.square_impl(a, len))
    }

    #[inline(always)]
    fn square_impl(&self, a: &Uint<L>, len: usize) -> Uint<L> {
        let (mut lo, mut hi) = self.square_wide(a.limbs(), len);
        let top = self.reduce_rounds(&mut lo, &mut hi, len);
        let mut t = [0u64; L];
        for (j, tj) in t.iter_mut().enumerate().take(len) {
            let k = len + j;
            *tj = if k < L { lo[k] } else { hi[k - L] };
        }
        self.correct(t, top, len)
    }

    /// The wide-squaring pass shared by [`MontCtx::square`] and
    /// [`MontCtx::wide_square`]: halved off-diagonal partial products,
    /// then one doubling-plus-diagonal sweep.
    #[inline(always)]
    fn square_wide(&self, al: &[u64; L], len: usize) -> ([u64; L], [u64; L]) {
        let mut lo = [0u64; L];
        let mut hi = [0u64; L];
        // Off-diagonal partial products, each pair counted once.
        for i in 0..len {
            let mut carry = 0u64;
            let split = (L - i).clamp(i + 1, len);
            for j in i + 1..split {
                let (v, c) = mac(lo[i + j], al[i], al[j], carry);
                lo[i + j] = v;
                carry = c;
            }
            for j in split..len {
                let (v, c) = mac(hi[i + j - L], al[i], al[j], carry);
                hi[i + j - L] = v;
                carry = c;
            }
            let k = i + len;
            if k < L {
                lo[k] = carry;
            } else {
                hi[k - L] = carry;
            }
        }
        // Double the off-diagonal sum and add the diagonal a_i² terms in
        // one pass: limbs 2i and 2i+1 receive a_i²'s low and high words.
        let mut shift_carry = 0u64;
        let mut diag_carry = 0u64;
        for (i, &ai) in al.iter().enumerate().take(len) {
            let (d_lo, d_hi) = {
                let p = u128::from(ai) * u128::from(ai);
                (p as u64, (p >> 64) as u64)
            };
            for (k, d) in [(2 * i, d_lo), (2 * i + 1, d_hi)] {
                let w = if k < L { &mut lo[k] } else { &mut hi[k - L] };
                let doubled = (*w << 1) | shift_carry;
                shift_carry = *w >> 63;
                let (v, c) = adc(doubled, d, diag_carry);
                *w = v;
                diag_carry = c;
            }
        }
        debug_assert_eq!(shift_carry, 0, "doubled cross terms exceed 2·len limbs");
        debug_assert_eq!(diag_carry, 0, "square exceeds 2·len limbs");
        (lo, hi)
    }

    /// Reference twin of [`MontCtx::square`]: the generic multiply applied
    /// to equal operands. Retained for differential testing.
    pub fn square_reference(&self, a: &Uint<L>) -> Uint<L> {
        self.mul(a, a)
    }

    /// Double-width product `a·b` of two reduced residues, as
    /// `(low, high)` halves split at limb `L`. Unlike
    /// [`Uint::widening_mul`] this loops over the modulus' significant
    /// limbs only; feed the result to [`MontCtx::montgomery_reduce`]
    /// (directly or after [`MontCtx::wide_sub`] combines) for
    /// lazy-reduction chains.
    pub fn wide_mul(&self, a: &Uint<L>, b: &Uint<L>) -> (Uint<L>, Uint<L>) {
        self.dispatch(|s, len| s.wide_mul_impl(a, b, len))
    }

    #[inline(always)]
    fn wide_mul_impl(&self, a: &Uint<L>, b: &Uint<L>, len: usize) -> (Uint<L>, Uint<L>) {
        let al = a.limbs();
        let bl = b.limbs();
        let mut lo = [0u64; L];
        let mut hi = [0u64; L];
        for i in 0..len {
            let mut carry = 0u64;
            let split = len.min(L - i);
            for j in 0..split {
                let (v, c) = mac(lo[i + j], al[i], bl[j], carry);
                lo[i + j] = v;
                carry = c;
            }
            for j in split..len {
                let (v, c) = mac(hi[i + j - L], al[i], bl[j], carry);
                hi[i + j - L] = v;
                carry = c;
            }
            let k = i + len;
            if k < L {
                lo[k] = carry;
            } else {
                hi[k - L] = carry;
            }
        }
        (Uint::from_limbs(lo), Uint::from_limbs(hi))
    }

    /// Double-width square `a²` of a reduced residue (halved partial
    /// products): the SOS squaring front half, `len`-bounded like
    /// [`MontCtx::wide_mul`].
    pub fn wide_square(&self, a: &Uint<L>) -> (Uint<L>, Uint<L>) {
        let (lo, hi) = self.dispatch(|s, len| s.square_wide(a.limbs(), len));
        (Uint::from_limbs(lo), Uint::from_limbs(hi))
    }

    /// Double-width modular subtraction `a − b`, adding `n·R` to cancel a
    /// borrow so the result stays in `[0, n·R)` — the input domain
    /// [`MontCtx::montgomery_reduce`] requires.
    pub fn wide_sub(&self, a: (Uint<L>, Uint<L>), b: &(Uint<L>, Uint<L>)) -> (Uint<L>, Uint<L>) {
        let (lo, borrow_lo) = a.0.overflowing_sub(&b.0);
        let (hi, borrow_hi) = a.1.overflowing_sub(&b.1);
        let (hi, borrow_chain) =
            if borrow_lo { hi.overflowing_sub(&Uint::ONE) } else { (hi, false) };
        if !(borrow_hi || borrow_chain) {
            return (lo, hi);
        }
        // n enters at limb `len` (that is `n·R`), and the carry rides the
        // wrapped borrow's all-ones upper limbs off the top, where it
        // cancels against the borrow.
        let len = self.len;
        let nl = self.n.limbs();
        let mut lo = *lo.limbs();
        let mut hi = *hi.limbs();
        let mut carry = 0u64;
        for (j, &nj) in nl.iter().enumerate().take(len) {
            let k = len + j;
            let w = if k < L { &mut lo[k] } else { &mut hi[k - L] };
            let (v, c) = adc(*w, nj, carry);
            *w = v;
            carry = c;
        }
        let mut k = 2 * len;
        while carry != 0 && k < 2 * L {
            let w = if k < L { &mut lo[k] } else { &mut hi[k - L] };
            let (v, c) = adc(*w, 0, carry);
            *w = v;
            carry = c;
            k += 1;
        }
        (Uint::from_limbs(lo), Uint::from_limbs(hi))
    }

    /// Modular addition of two reduced residues (works in either domain).
    pub fn add(&self, a: &Uint<L>, b: &Uint<L>) -> Uint<L> {
        let (sum, carry) = a.overflowing_add(b);
        if carry || sum >= self.n {
            sum.wrapping_sub(&self.n)
        } else {
            sum
        }
    }

    /// Modular subtraction of two reduced residues (works in either domain).
    pub fn sub(&self, a: &Uint<L>, b: &Uint<L>) -> Uint<L> {
        let (diff, borrow) = a.overflowing_sub(b);
        if borrow {
            diff.wrapping_add(&self.n)
        } else {
            diff
        }
    }

    /// Modular negation of a reduced residue (works in either domain).
    pub fn neg(&self, a: &Uint<L>) -> Uint<L> {
        if a.is_zero() {
            Uint::ZERO
        } else {
            self.n.wrapping_sub(a)
        }
    }

    /// Modular exponentiation: `base^exp · R mod n` for `base` in
    /// Montgomery form (square-and-multiply, most-significant bit first).
    pub fn pow<const E: usize>(&self, base: &Uint<L>, exp: &Uint<E>) -> Uint<L> {
        let bits = exp.bit_len();
        if bits == 0 {
            return self.one;
        }
        let mut acc = *base;
        for i in (0..bits - 1).rev() {
            acc = self.square(&acc);
            if exp.bit(i) {
                acc = self.mul(&acc, base);
            }
        }
        acc
    }

    /// Convenience: `base^exp mod n` entirely in the canonical domain.
    pub fn pow_canonical<const E: usize>(&self, base: &Uint<L>, exp: &Uint<E>) -> Uint<L> {
        let bm = self.to_mont(base);
        self.from_mont(&self.pow(&bm, exp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    type U4 = Uint<4>;

    fn ctx_1e6_3() -> MontCtx<4> {
        MontCtx::new(U4::from_u64(1_000_003)).unwrap()
    }

    #[test]
    fn rejects_even_and_one() {
        assert_eq!(MontCtx::new(U4::from_u64(10)), Err(BigIntError::EvenModulus));
        assert_eq!(MontCtx::new(U4::ONE), Err(BigIntError::EvenModulus));
        assert!(MontCtx::new(U4::from_u64(3)).is_ok());
    }

    #[test]
    fn roundtrip() {
        let ctx = ctx_1e6_3();
        for v in [0u64, 1, 2, 999_999, 1_000_002] {
            let x = U4::from_u64(v);
            assert_eq!(ctx.from_mont(&ctx.to_mont(&x)), x);
        }
    }

    #[test]
    fn mul_matches_u64() {
        let ctx = ctx_1e6_3();
        let a = 123_456u64;
        let b = 654_321u64;
        let am = ctx.to_mont(&U4::from_u64(a));
        let bm = ctx.to_mont(&U4::from_u64(b));
        assert_eq!(ctx.from_mont(&ctx.mul(&am, &bm)), U4::from_u64(a * b % 1_000_003));
    }

    #[test]
    fn add_sub_neg() {
        let ctx = ctx_1e6_3();
        let a = U4::from_u64(1_000_000);
        let b = U4::from_u64(7);
        assert_eq!(ctx.add(&a, &b), U4::from_u64(4));
        assert_eq!(ctx.sub(&b, &a), U4::from_u64(1_000_003 + 7 - 1_000_000));
        assert_eq!(ctx.neg(&b), U4::from_u64(1_000_003 - 7));
        assert_eq!(ctx.neg(&U4::ZERO), U4::ZERO);
        assert_eq!(ctx.add(&ctx.neg(&a), &a), U4::ZERO);
    }

    #[test]
    fn pow_small() {
        let ctx = ctx_1e6_3();
        let b = ctx.to_mont(&U4::from_u64(2));
        assert_eq!(
            ctx.from_mont(&ctx.pow(&b, &U4::from_u64(20))),
            U4::from_u64((1u64 << 20) % 1_000_003)
        );
        assert_eq!(ctx.from_mont(&ctx.pow(&b, &U4::ZERO)), U4::ONE);
        assert_eq!(ctx.from_mont(&ctx.pow(&b, &U4::ONE)), U4::from_u64(2));
    }

    #[test]
    fn fermat_little_theorem_large_prime() {
        // p = 2^255 - 19 is prime; a^(p-1) = 1 mod p.
        let p = U4::from_hex("7fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffed")
            .unwrap();
        let ctx = MontCtx::new(p).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let pm1 = p.wrapping_sub(&U4::ONE);
        for _ in 0..4 {
            let a = U4::random_below(&mut rng, &p);
            if a.is_zero() {
                continue;
            }
            assert_eq!(ctx.pow_canonical(&a, &pm1), U4::ONE);
        }
    }

    #[test]
    fn distributivity_randomized() {
        let p = U4::from_hex("ffffffff00000001000000000000000000000000ffffffffffffffffffffffff")
            .unwrap(); // NIST P-256 prime
        let ctx = MontCtx::new(p).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let a = ctx.to_mont(&U4::random_below(&mut rng, &p));
            let b = ctx.to_mont(&U4::random_below(&mut rng, &p));
            let c = ctx.to_mont(&U4::random_below(&mut rng, &p));
            let left = ctx.mul(&a, &ctx.add(&b, &c));
            let right = ctx.add(&ctx.mul(&a, &b), &ctx.mul(&a, &c));
            assert_eq!(left, right);
        }
    }

    #[test]
    fn wide_modulus_512() {
        let p = Uint::<8>::from_hex(
            "ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff\
             fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffdc7",
        )
        .unwrap(); // 2^512 - 569, a known prime
        let ctx = MontCtx::new(p).unwrap();
        let a = Uint::<8>::from_u64(3);
        let pm1 = p.wrapping_sub(&Uint::ONE);
        assert_eq!(ctx.pow_canonical(&a, &pm1), Uint::ONE);
    }

    #[test]
    fn one_is_identity() {
        let ctx = ctx_1e6_3();
        let x = ctx.to_mont(&U4::from_u64(424_242));
        assert_eq!(ctx.mul(&x, ctx.one()), x);
    }

    #[test]
    fn square_matches_reference_randomized() {
        // Across small, 255-bit, 256-bit, and 512-bit moduli the SOS
        // squaring must agree with the CIOS multiply bit-for-bit.
        let p255 = U4::from_hex("7fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffed")
            .unwrap();
        let p256 = U4::from_hex("ffffffff00000001000000000000000000000000ffffffffffffffffffffffff")
            .unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        for p in [U4::from_u64(1_000_003), p255, p256] {
            let ctx = MontCtx::new(p).unwrap();
            for _ in 0..100 {
                let a = U4::random_below(&mut rng, &p);
                assert_eq!(ctx.square(&a), ctx.square_reference(&a));
            }
        }
        let p512 = Uint::<8>::from_hex(
            "ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff\
             fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffdc7",
        )
        .unwrap();
        let ctx = MontCtx::new(p512).unwrap();
        for _ in 0..100 {
            let a = Uint::<8>::random_below(&mut rng, &p512);
            assert_eq!(ctx.square(&a), ctx.square_reference(&a));
        }
    }

    #[test]
    fn montgomery_reduce_matches_cios_mul() {
        // REDC over a widening product must equal the interleaved CIOS
        // multiply for any pair of reduced operands.
        let p = U4::from_hex("ffffffff00000001000000000000000000000000ffffffffffffffffffffffff")
            .unwrap();
        let ctx = MontCtx::new(p).unwrap();
        let mut rng = StdRng::seed_from_u64(22);
        for _ in 0..200 {
            let a = U4::random_below(&mut rng, &p);
            let b = U4::random_below(&mut rng, &p);
            let (lo, hi) = a.widening_mul(&b);
            assert_eq!(ctx.montgomery_reduce(&lo, &hi), ctx.mul(&a, &b));
        }
        // Degenerate inputs.
        assert_eq!(ctx.montgomery_reduce(&U4::ZERO, &U4::ZERO), U4::ZERO);
        let one_r = *ctx.one();
        let (lo, hi) = one_r.widening_mul(ctx.one());
        assert_eq!(ctx.montgomery_reduce(&lo, &hi), one_r);
    }
}
