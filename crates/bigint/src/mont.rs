//! Montgomery multiplication context.

use crate::div::reduce_wide;
use crate::error::BigIntError;
use crate::uint::{adc, mac, Uint};

/// Precomputed context for arithmetic modulo a fixed odd modulus `n`, with
/// operands kept in Montgomery form (`x·R mod n` for `R = 2^(64·L)`).
///
/// # Example
///
/// ```
/// use sp_bigint::{MontCtx, Uint};
///
/// let p = Uint::<4>::from_u64(101);
/// let ctx = MontCtx::new(p)?;
/// let x = ctx.to_mont(&Uint::from_u64(17));
/// let x5 = ctx.pow(&x, &Uint::<4>::from_u64(5));
/// assert_eq!(ctx.from_mont(&x5), Uint::from_u64(17u64.pow(5) % 101));
/// # Ok::<(), sp_bigint::BigIntError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MontCtx<const L: usize> {
    n: Uint<L>,
    /// `-n^{-1} mod 2^64`.
    n_prime: u64,
    /// `R mod n` — the Montgomery form of `1`.
    one: Uint<L>,
    /// `R² mod n` — used to convert into Montgomery form.
    r2: Uint<L>,
}

impl<const L: usize> MontCtx<L> {
    /// Creates a context for the odd modulus `n > 1`.
    ///
    /// # Errors
    ///
    /// Returns [`BigIntError::EvenModulus`] if `n` is even or `n <= 1`.
    pub fn new(n: Uint<L>) -> Result<Self, BigIntError> {
        if !n.is_odd() || n == Uint::ONE {
            return Err(BigIntError::EvenModulus);
        }
        // n' = -n^{-1} mod 2^64 via Newton–Hensel lifting.
        let n0 = n.limbs()[0];
        let mut inv: u64 = 1;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        let n_prime = inv.wrapping_neg();
        // R mod n: reduce the (L+1)-limb value 2^(64L).
        let one = reduce_wide(&Uint::ONE, &Uint::ZERO, &n);
        // R² mod n by 64·L modular doublings of R mod n.
        let mut r2 = one;
        for _ in 0..(64 * L) {
            let (shifted, carry) = r2.shl1();
            r2 = shifted;
            if carry || r2 >= n {
                r2 = r2.wrapping_sub(&n);
            }
        }
        Ok(Self { n, n_prime, one, r2 })
    }

    /// The modulus.
    pub fn modulus(&self) -> &Uint<L> {
        &self.n
    }

    /// The Montgomery form of `1` (`R mod n`).
    pub fn one(&self) -> &Uint<L> {
        &self.one
    }

    /// Converts a canonical residue into Montgomery form.
    ///
    /// # Panics
    ///
    /// Debug-panics if `x >= n`.
    pub fn to_mont(&self, x: &Uint<L>) -> Uint<L> {
        debug_assert!(x < &self.n, "to_mont: operand must be reduced");
        self.mul(x, &self.r2)
    }

    /// Converts a Montgomery-form value back to a canonical residue.
    pub fn from_mont(&self, x: &Uint<L>) -> Uint<L> {
        self.mul(x, &Uint::ONE)
    }

    /// Montgomery multiplication: `a·b·R^{-1} mod n` (CIOS algorithm).
    #[allow(clippy::needless_range_loop)] // lockstep limb indexing
    pub fn mul(&self, a: &Uint<L>, b: &Uint<L>) -> Uint<L> {
        let al = a.limbs();
        let bl = b.limbs();
        let nl = self.n.limbs();
        let mut t = [0u64; L];
        let mut t_hi: u64 = 0; // limb L
        for i in 0..L {
            // t += a[i] * b
            let mut carry = 0u64;
            for j in 0..L {
                let (lo, c) = mac(t[j], al[i], bl[j], carry);
                t[j] = lo;
                carry = c;
            }
            let (s, overflow) = adc(t_hi, carry, 0);
            t_hi = s;
            // m = t[0] * n' mod 2^64; t = (t + m*n) / 2^64
            let m = t[0].wrapping_mul(self.n_prime);
            let (_, mut carry) = mac(t[0], m, nl[0], 0);
            for j in 1..L {
                let (lo, c) = mac(t[j], m, nl[j], carry);
                t[j - 1] = lo;
                carry = c;
            }
            let (s, c) = adc(t_hi, carry, 0);
            t[L - 1] = s;
            t_hi = overflow + c;
        }
        let mut result = Uint::from_limbs(t);
        if t_hi == 1 || result >= self.n {
            result = result.wrapping_sub(&self.n);
        }
        result
    }

    /// Montgomery squaring.
    pub fn square(&self, a: &Uint<L>) -> Uint<L> {
        self.mul(a, a)
    }

    /// Modular addition of two reduced residues (works in either domain).
    pub fn add(&self, a: &Uint<L>, b: &Uint<L>) -> Uint<L> {
        let (sum, carry) = a.overflowing_add(b);
        if carry || sum >= self.n {
            sum.wrapping_sub(&self.n)
        } else {
            sum
        }
    }

    /// Modular subtraction of two reduced residues (works in either domain).
    pub fn sub(&self, a: &Uint<L>, b: &Uint<L>) -> Uint<L> {
        let (diff, borrow) = a.overflowing_sub(b);
        if borrow {
            diff.wrapping_add(&self.n)
        } else {
            diff
        }
    }

    /// Modular negation of a reduced residue (works in either domain).
    pub fn neg(&self, a: &Uint<L>) -> Uint<L> {
        if a.is_zero() {
            Uint::ZERO
        } else {
            self.n.wrapping_sub(a)
        }
    }

    /// Modular exponentiation: `base^exp · R mod n` for `base` in
    /// Montgomery form (square-and-multiply, most-significant bit first).
    pub fn pow<const E: usize>(&self, base: &Uint<L>, exp: &Uint<E>) -> Uint<L> {
        let bits = exp.bit_len();
        if bits == 0 {
            return self.one;
        }
        let mut acc = *base;
        for i in (0..bits - 1).rev() {
            acc = self.square(&acc);
            if exp.bit(i) {
                acc = self.mul(&acc, base);
            }
        }
        acc
    }

    /// Convenience: `base^exp mod n` entirely in the canonical domain.
    pub fn pow_canonical<const E: usize>(&self, base: &Uint<L>, exp: &Uint<E>) -> Uint<L> {
        let bm = self.to_mont(base);
        self.from_mont(&self.pow(&bm, exp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    type U4 = Uint<4>;

    fn ctx_1e6_3() -> MontCtx<4> {
        MontCtx::new(U4::from_u64(1_000_003)).unwrap()
    }

    #[test]
    fn rejects_even_and_one() {
        assert_eq!(MontCtx::new(U4::from_u64(10)), Err(BigIntError::EvenModulus));
        assert_eq!(MontCtx::new(U4::ONE), Err(BigIntError::EvenModulus));
        assert!(MontCtx::new(U4::from_u64(3)).is_ok());
    }

    #[test]
    fn roundtrip() {
        let ctx = ctx_1e6_3();
        for v in [0u64, 1, 2, 999_999, 1_000_002] {
            let x = U4::from_u64(v);
            assert_eq!(ctx.from_mont(&ctx.to_mont(&x)), x);
        }
    }

    #[test]
    fn mul_matches_u64() {
        let ctx = ctx_1e6_3();
        let a = 123_456u64;
        let b = 654_321u64;
        let am = ctx.to_mont(&U4::from_u64(a));
        let bm = ctx.to_mont(&U4::from_u64(b));
        assert_eq!(ctx.from_mont(&ctx.mul(&am, &bm)), U4::from_u64(a * b % 1_000_003));
    }

    #[test]
    fn add_sub_neg() {
        let ctx = ctx_1e6_3();
        let a = U4::from_u64(1_000_000);
        let b = U4::from_u64(7);
        assert_eq!(ctx.add(&a, &b), U4::from_u64(4));
        assert_eq!(ctx.sub(&b, &a), U4::from_u64(1_000_003 + 7 - 1_000_000));
        assert_eq!(ctx.neg(&b), U4::from_u64(1_000_003 - 7));
        assert_eq!(ctx.neg(&U4::ZERO), U4::ZERO);
        assert_eq!(ctx.add(&ctx.neg(&a), &a), U4::ZERO);
    }

    #[test]
    fn pow_small() {
        let ctx = ctx_1e6_3();
        let b = ctx.to_mont(&U4::from_u64(2));
        assert_eq!(
            ctx.from_mont(&ctx.pow(&b, &U4::from_u64(20))),
            U4::from_u64((1u64 << 20) % 1_000_003)
        );
        assert_eq!(ctx.from_mont(&ctx.pow(&b, &U4::ZERO)), U4::ONE);
        assert_eq!(ctx.from_mont(&ctx.pow(&b, &U4::ONE)), U4::from_u64(2));
    }

    #[test]
    fn fermat_little_theorem_large_prime() {
        // p = 2^255 - 19 is prime; a^(p-1) = 1 mod p.
        let p = U4::from_hex("7fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffed")
            .unwrap();
        let ctx = MontCtx::new(p).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let pm1 = p.wrapping_sub(&U4::ONE);
        for _ in 0..4 {
            let a = U4::random_below(&mut rng, &p);
            if a.is_zero() {
                continue;
            }
            assert_eq!(ctx.pow_canonical(&a, &pm1), U4::ONE);
        }
    }

    #[test]
    fn distributivity_randomized() {
        let p = U4::from_hex("ffffffff00000001000000000000000000000000ffffffffffffffffffffffff")
            .unwrap(); // NIST P-256 prime
        let ctx = MontCtx::new(p).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let a = ctx.to_mont(&U4::random_below(&mut rng, &p));
            let b = ctx.to_mont(&U4::random_below(&mut rng, &p));
            let c = ctx.to_mont(&U4::random_below(&mut rng, &p));
            let left = ctx.mul(&a, &ctx.add(&b, &c));
            let right = ctx.add(&ctx.mul(&a, &b), &ctx.mul(&a, &c));
            assert_eq!(left, right);
        }
    }

    #[test]
    fn wide_modulus_512() {
        let p = Uint::<8>::from_hex(
            "ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff\
             fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffdc7",
        )
        .unwrap(); // 2^512 - 569, a known prime
        let ctx = MontCtx::new(p).unwrap();
        let a = Uint::<8>::from_u64(3);
        let pm1 = p.wrapping_sub(&Uint::ONE);
        assert_eq!(ctx.pow_canonical(&a, &pm1), Uint::ONE);
    }

    #[test]
    fn one_is_identity() {
        let ctx = ctx_1e6_3();
        let x = ctx.to_mont(&U4::from_u64(424_242));
        assert_eq!(ctx.mul(&x, ctx.one()), x);
    }
}
