//! Error types.

use std::error::Error;
use std::fmt;

/// Errors produced by big-integer parsing and construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum BigIntError {
    /// A digit outside the expected radix was encountered.
    InvalidDigit,
    /// The encoded value does not fit in the target width.
    ValueTooLarge,
    /// A Montgomery context requires an odd modulus greater than one.
    EvenModulus,
}

impl fmt::Display for BigIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidDigit => f.write_str("invalid digit in number literal"),
            Self::ValueTooLarge => f.write_str("value does not fit in the target width"),
            Self::EvenModulus => f.write_str("modulus must be odd and greater than one"),
        }
    }
}

impl Error for BigIntError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        for e in [BigIntError::InvalidDigit, BigIntError::ValueTooLarge, BigIntError::EvenModulus] {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<BigIntError>();
    }
}
