//! The fixed-width unsigned integer type.

// Limb kernels index several arrays in lockstep; iterator chains would
// obscure the carry propagation.
#![allow(clippy::needless_range_loop)]

use std::cmp::Ordering;
use std::fmt;

use rand::Rng;

use crate::error::BigIntError;

/// A fixed-width unsigned integer of `L` little-endian 64-bit limbs.
///
/// `Uint<4>` is a 256-bit integer, `Uint<8>` a 512-bit integer. All
/// arithmetic is constant-width: operations either wrap (the `wrapping_*`
/// family), report overflow (`overflowing_*`), or panic on debug overflow
/// where documented.
///
/// # Example
///
/// ```
/// use sp_bigint::Uint;
///
/// let a = Uint::<4>::from_u64(7);
/// let b = Uint::<4>::from_u64(9);
/// assert_eq!(a.wrapping_add(&b), Uint::from_u64(16));
/// assert!(a < b);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Uint<const L: usize> {
    limbs: [u64; L],
}

impl<const L: usize> Uint<L> {
    /// The value `0`.
    pub const ZERO: Self = Self { limbs: [0; L] };

    /// The value `1`.
    pub const ONE: Self = {
        let mut limbs = [0u64; L];
        limbs[0] = 1;
        Self { limbs }
    };

    /// The largest representable value, `2^(64·L) − 1`.
    pub const MAX: Self = Self { limbs: [u64::MAX; L] };

    /// Number of bits in the representation.
    pub const BITS: u32 = 64 * L as u32;

    /// Creates a value from a single `u64`.
    pub const fn from_u64(v: u64) -> Self {
        let mut limbs = [0u64; L];
        limbs[0] = v;
        Self { limbs }
    }

    /// Creates a value from little-endian limbs.
    pub const fn from_limbs(limbs: [u64; L]) -> Self {
        Self { limbs }
    }

    /// Borrows the little-endian limbs.
    pub const fn limbs(&self) -> &[u64; L] {
        &self.limbs
    }

    /// Returns the little-endian limbs by value.
    pub const fn into_limbs(self) -> [u64; L] {
        self.limbs
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// Returns `true` if the value is odd.
    pub const fn is_odd(&self) -> bool {
        self.limbs[0] & 1 == 1
    }

    /// Returns `true` if the value is even.
    pub const fn is_even(&self) -> bool {
        self.limbs[0] & 1 == 0
    }

    /// Returns bit `i` (0 = least significant). Bits at or beyond
    /// [`Self::BITS`] read as zero.
    pub fn bit(&self, i: u32) -> bool {
        if i >= Self::BITS {
            return false;
        }
        (self.limbs[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    /// Returns the minimal number of bits needed to represent the value
    /// (`0` for zero).
    pub fn bit_len(&self) -> u32 {
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            if limb != 0 {
                return 64 * i as u32 + (64 - limb.leading_zeros());
            }
        }
        0
    }

    /// Returns the number of trailing zero bits (`BITS` for zero).
    pub fn trailing_zeros(&self) -> u32 {
        let mut count = 0;
        for &limb in &self.limbs {
            if limb == 0 {
                count += 64;
            } else {
                return count + limb.trailing_zeros();
            }
        }
        count
    }

    /// Addition returning the sum and a carry flag.
    pub fn overflowing_add(&self, rhs: &Self) -> (Self, bool) {
        let mut out = [0u64; L];
        let mut carry = 0u64;
        for i in 0..L {
            let (s, c) = adc(self.limbs[i], rhs.limbs[i], carry);
            out[i] = s;
            carry = c;
        }
        (Self { limbs: out }, carry == 1)
    }

    /// Wrapping addition.
    pub fn wrapping_add(&self, rhs: &Self) -> Self {
        self.overflowing_add(rhs).0
    }

    /// Subtraction returning the difference and a borrow flag.
    pub fn overflowing_sub(&self, rhs: &Self) -> (Self, bool) {
        let mut out = [0u64; L];
        let mut borrow = 0u64;
        for i in 0..L {
            let (d, b) = sbb(self.limbs[i], rhs.limbs[i], borrow);
            out[i] = d;
            borrow = b;
        }
        (Self { limbs: out }, borrow == 1)
    }

    /// Wrapping subtraction.
    pub fn wrapping_sub(&self, rhs: &Self) -> Self {
        self.overflowing_sub(rhs).0
    }

    /// Checked subtraction: `None` if `rhs > self`.
    pub fn checked_sub(&self, rhs: &Self) -> Option<Self> {
        let (d, borrow) = self.overflowing_sub(rhs);
        if borrow {
            None
        } else {
            Some(d)
        }
    }

    /// Checked addition: `None` on overflow.
    pub fn checked_add(&self, rhs: &Self) -> Option<Self> {
        let (s, carry) = self.overflowing_add(rhs);
        if carry {
            None
        } else {
            Some(s)
        }
    }

    /// Full (widening) multiplication: returns `(lo, hi)` with
    /// `self · rhs = hi · 2^(64·L) + lo`.
    ///
    /// The `2L`-limb accumulator lives on the stack as two `L`-limb
    /// halves (const generics cannot express `[u64; 2·L]`), with the
    /// inner loop split at the half boundary so every access indexes one
    /// array directly — this kernel sits under every lazy-reduction
    /// field operation and must not allocate.
    pub fn widening_mul(&self, rhs: &Self) -> (Self, Self) {
        let mut lo = [0u64; L];
        let mut hi = [0u64; L];
        for i in 0..L {
            let a = self.limbs[i];
            let mut carry = 0u64;
            // Limbs i..L of this row land in the low half...
            for j in 0..L - i {
                let (v, c) = mac(lo[i + j], a, rhs.limbs[j], carry);
                lo[i + j] = v;
                carry = c;
            }
            // ...limbs L..i+L in the high half.
            for j in L - i..L {
                let (v, c) = mac(hi[i + j - L], a, rhs.limbs[j], carry);
                hi[i + j - L] = v;
                carry = c;
            }
            hi[i] = carry;
        }
        (Self { limbs: lo }, Self { limbs: hi })
    }

    /// Wrapping (truncating) multiplication.
    pub fn wrapping_mul(&self, rhs: &Self) -> Self {
        self.widening_mul(rhs).0
    }

    /// Full (widening) squaring: returns `(lo, hi)` with
    /// `self² = hi · 2^(64·L) + lo`.
    ///
    /// Uses the halved-partial-product schoolbook (SOS): each off-diagonal
    /// product `a_i·a_j` with `i < j` is accumulated once, the accumulator
    /// is doubled, and the diagonal squares `a_i²` are added last — about
    /// half the single-limb multiplies of [`Uint::widening_mul`] on equal
    /// operands. The accumulator lives on the stack as two `L`-limb halves
    /// (const generics cannot express `[u64; 2·L]`), with the loops split
    /// at the half boundary so every access indexes one array directly.
    pub fn widening_square(&self) -> (Self, Self) {
        let a = &self.limbs;
        let mut lo = [0u64; L];
        let mut hi = [0u64; L];
        // Off-diagonal partial products, each pair counted once. At
        // iteration i the highest index previously written is (i-1)+L, so
        // storing the carry at i+L never clobbers earlier contributions.
        for i in 0..L {
            let mut carry = 0u64;
            // k = i + j crosses into the high half at j = L - i.
            let split = (L - i).max(i + 1);
            for j in i + 1..split {
                let (v, c) = mac(lo[i + j], a[i], a[j], carry);
                lo[i + j] = v;
                carry = c;
            }
            for j in split..L {
                let (v, c) = mac(hi[i + j - L], a[i], a[j], carry);
                hi[i + j - L] = v;
                carry = c;
            }
            hi[i] = carry;
        }
        // Double the off-diagonal sum; it is bounded by self²/2, so the
        // shift cannot carry out of limb 2L-1.
        let mut carry = 0u64;
        for v in lo.iter_mut().chain(hi.iter_mut()) {
            let prev = *v;
            *v = (prev << 1) | carry;
            carry = prev >> 63;
        }
        debug_assert_eq!(carry, 0, "doubled cross terms exceed 2L limbs");
        // Add the diagonal terms a_i².
        let mut carry = 0u64;
        for i in 0..L {
            let k = 2 * i;
            let w_k = if k < L { &mut lo[k] } else { &mut hi[k - L] };
            let (v, c) = mac(*w_k, a[i], a[i], carry);
            *w_k = v;
            let k1 = k + 1;
            let w_k1 = if k1 < L { &mut lo[k1] } else { &mut hi[k1 - L] };
            let (v, c2) = adc(*w_k1, c, 0);
            *w_k1 = v;
            carry = c2;
        }
        debug_assert_eq!(carry, 0, "square exceeds 2L limbs");
        (Self { limbs: lo }, Self { limbs: hi })
    }

    /// Multiplication by a `u64`, returning `(lo, carry_limb)`.
    pub fn mul_u64(&self, rhs: u64) -> (Self, u64) {
        let mut out = [0u64; L];
        let mut carry = 0u64;
        for i in 0..L {
            let (lo, c) = mac(0, self.limbs[i], rhs, carry);
            out[i] = lo;
            carry = c;
        }
        (Self { limbs: out }, carry)
    }

    /// Left shift by one bit, returning the shifted value and the bit
    /// shifted out of the top.
    pub fn shl1(&self) -> (Self, bool) {
        let mut out = [0u64; L];
        let mut carry = 0u64;
        for i in 0..L {
            out[i] = (self.limbs[i] << 1) | carry;
            carry = self.limbs[i] >> 63;
        }
        (Self { limbs: out }, carry == 1)
    }

    /// Right shift by one bit (the low bit is discarded).
    pub fn shr1(&self) -> Self {
        let mut out = [0u64; L];
        let mut carry = 0u64;
        for i in (0..L).rev() {
            out[i] = (self.limbs[i] >> 1) | (carry << 63);
            carry = self.limbs[i] & 1;
        }
        Self { limbs: out }
    }

    /// Left shift by `n` bits (wrapping; bits shifted past the top are
    /// lost). Shifts of `n >= BITS` yield zero.
    pub fn shl(&self, n: u32) -> Self {
        if n >= Self::BITS {
            return Self::ZERO;
        }
        let limb_shift = (n / 64) as usize;
        let bit_shift = n % 64;
        let mut out = [0u64; L];
        for i in (limb_shift..L).rev() {
            let src = i - limb_shift;
            let mut v = self.limbs[src] << bit_shift;
            if bit_shift > 0 && src > 0 {
                v |= self.limbs[src - 1] >> (64 - bit_shift);
            }
            out[i] = v;
        }
        Self { limbs: out }
    }

    /// Right shift by `n` bits. Shifts of `n >= BITS` yield zero.
    pub fn shr(&self, n: u32) -> Self {
        if n >= Self::BITS {
            return Self::ZERO;
        }
        let limb_shift = (n / 64) as usize;
        let bit_shift = n % 64;
        let mut out = [0u64; L];
        for i in 0..L - limb_shift {
            let src = i + limb_shift;
            let mut v = self.limbs[src] >> bit_shift;
            if bit_shift > 0 && src + 1 < L {
                v |= self.limbs[src + 1] << (64 - bit_shift);
            }
            out[i] = v;
        }
        Self { limbs: out }
    }

    /// Interprets `bytes` (big-endian) as an integer. Errors if the slice
    /// is longer than `8·L` bytes or encodes a value that does not fit.
    ///
    /// # Errors
    ///
    /// Returns [`BigIntError::ValueTooLarge`] if the encoded value exceeds
    /// the width of the type.
    pub fn from_be_bytes(bytes: &[u8]) -> Result<Self, BigIntError> {
        if bytes.len() > 8 * L {
            // Leading zeros are acceptable; anything else overflows.
            let excess = bytes.len() - 8 * L;
            if bytes[..excess].iter().any(|&b| b != 0) {
                return Err(BigIntError::ValueTooLarge);
            }
            return Self::from_be_bytes(&bytes[excess..]);
        }
        let mut limbs = [0u64; L];
        for (i, &b) in bytes.iter().rev().enumerate() {
            limbs[i / 8] |= u64::from(b) << (8 * (i % 8));
        }
        Ok(Self { limbs })
    }

    /// Big-endian byte encoding, always `8·L` bytes.
    pub fn to_be_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 * L);
        self.write_be_bytes(&mut out);
        out
    }

    /// Appends the big-endian encoding (`8·L` bytes) to `out` without an
    /// intermediate allocation — the hot serialize paths (point and
    /// ciphertext encoding) pre-size one buffer and stream limbs into it.
    pub fn write_be_bytes(&self, out: &mut Vec<u8>) {
        for limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
    }

    /// Parses a (possibly `0x`-prefixed) hexadecimal string.
    ///
    /// # Errors
    ///
    /// Returns [`BigIntError::InvalidDigit`] for non-hex characters and
    /// [`BigIntError::ValueTooLarge`] if the value does not fit.
    pub fn from_hex(s: &str) -> Result<Self, BigIntError> {
        let s = s.strip_prefix("0x").unwrap_or(s);
        if s.is_empty() {
            return Err(BigIntError::InvalidDigit);
        }
        let mut out = Self::ZERO;
        for ch in s.chars() {
            let d = ch.to_digit(16).ok_or(BigIntError::InvalidDigit)? as u64;
            if out.shr(Self::BITS - 4).limbs[0] != 0 {
                return Err(BigIntError::ValueTooLarge);
            }
            out = out.shl(4);
            out.limbs[0] |= d;
        }
        Ok(out)
    }

    /// Lowercase hexadecimal encoding without leading zeros (at least one
    /// digit).
    pub fn to_hex(&self) -> String {
        let mut s = String::new();
        for limb in self.limbs.iter().rev() {
            if s.is_empty() {
                if *limb != 0 {
                    s = format!("{limb:x}");
                }
            } else {
                s.push_str(&format!("{limb:016x}"));
            }
        }
        if s.is_empty() {
            s.push('0');
        }
        s
    }

    /// Parses a decimal string.
    ///
    /// # Errors
    ///
    /// Returns [`BigIntError::InvalidDigit`] for non-decimal characters and
    /// [`BigIntError::ValueTooLarge`] on overflow.
    pub fn from_dec(s: &str) -> Result<Self, BigIntError> {
        if s.is_empty() {
            return Err(BigIntError::InvalidDigit);
        }
        let mut out = Self::ZERO;
        for ch in s.chars() {
            let d = ch.to_digit(10).ok_or(BigIntError::InvalidDigit)? as u64;
            let (m, carry) = out.mul_u64(10);
            if carry != 0 {
                return Err(BigIntError::ValueTooLarge);
            }
            let (sum, c) = m.overflowing_add(&Self::from_u64(d));
            if c {
                return Err(BigIntError::ValueTooLarge);
            }
            out = sum;
        }
        Ok(out)
    }

    /// Uniformly random value in `[0, 2^(64·L))`.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut limbs = [0u64; L];
        for limb in &mut limbs {
            *limb = rng.gen();
        }
        Self { limbs }
    }

    /// Uniformly random value in `[0, bound)` by rejection sampling.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn random_below<R: Rng + ?Sized>(rng: &mut R, bound: &Self) -> Self {
        assert!(!bound.is_zero(), "random_below: bound must be nonzero");
        let bits = bound.bit_len();
        loop {
            let mut candidate = Self::random(rng);
            // Mask to the bound's bit length so the acceptance rate is >= 1/2.
            if bits < Self::BITS {
                candidate = candidate.shr(Self::BITS - bits);
            }
            if candidate < *bound {
                return candidate;
            }
        }
    }

    /// Uniformly random value with exactly `bits` bits (top bit set).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or exceeds the width.
    pub fn random_bits<R: Rng + ?Sized>(rng: &mut R, bits: u32) -> Self {
        assert!(bits > 0 && bits <= Self::BITS, "random_bits: bad bit count");
        let mut v = Self::random(rng).shr(Self::BITS - bits);
        let top = bits - 1;
        v.limbs[(top / 64) as usize] |= 1u64 << (top % 64);
        v
    }

    /// Widens into a larger limb count. `M` must be at least `L`.
    ///
    /// # Panics
    ///
    /// Panics if `M < L`.
    pub fn widen<const M: usize>(&self) -> Uint<M> {
        assert!(M >= L, "widen: target must be at least as wide");
        let mut limbs = [0u64; M];
        limbs[..L].copy_from_slice(&self.limbs);
        Uint::from_limbs(limbs)
    }

    /// Truncates into a smaller limb count, verifying nothing is lost.
    ///
    /// # Errors
    ///
    /// Returns [`BigIntError::ValueTooLarge`] if high limbs are nonzero.
    pub fn truncate<const M: usize>(&self) -> Result<Uint<M>, BigIntError> {
        if self.limbs[M.min(L)..].iter().any(|&l| l != 0) {
            return Err(BigIntError::ValueTooLarge);
        }
        let mut limbs = [0u64; M];
        let n = M.min(L);
        limbs[..n].copy_from_slice(&self.limbs[..n]);
        Ok(Uint::from_limbs(limbs))
    }

    /// The low 64 bits as a `u64`.
    pub const fn low_u64(&self) -> u64 {
        self.limbs[0]
    }

    /// Remainder modulo a `u64` divisor.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn rem_u64(&self, m: u64) -> u64 {
        assert!(m != 0, "division by zero");
        let mut rem: u64 = 0;
        for &limb in self.limbs.iter().rev() {
            let acc = (u128::from(rem) << 64) | u128::from(limb);
            rem = (acc % u128::from(m)) as u64;
        }
        rem
    }
}

impl<const L: usize> Default for Uint<L> {
    fn default() -> Self {
        Self::ZERO
    }
}

impl<const L: usize> Ord for Uint<L> {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..L).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl<const L: usize> PartialOrd for Uint<L> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<const L: usize> fmt::Debug for Uint<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Uint<{L}>(0x{})", self.to_hex())
    }
}

impl<const L: usize> fmt::Display for Uint<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl<const L: usize> fmt::LowerHex for Uint<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl<const L: usize> From<u64> for Uint<L> {
    fn from(v: u64) -> Self {
        Self::from_u64(v)
    }
}

/// `a + b + carry`, returning `(sum, carry_out)` with `carry_out ∈ {0, 1}`.
#[inline(always)]
pub(crate) fn adc(a: u64, b: u64, carry: u64) -> (u64, u64) {
    let t = u128::from(a) + u128::from(b) + u128::from(carry);
    (t as u64, (t >> 64) as u64)
}

/// `a - b - borrow`, returning `(diff, borrow_out)` with `borrow_out ∈ {0, 1}`.
#[inline(always)]
pub(crate) fn sbb(a: u64, b: u64, borrow: u64) -> (u64, u64) {
    let t = u128::from(a).wrapping_sub(u128::from(b)).wrapping_sub(u128::from(borrow));
    (t as u64, (t >> 64) as u64 & 1)
}

/// `acc + b·c + carry`, returning `(lo, hi)`.
#[inline(always)]
pub(crate) fn mac(acc: u64, b: u64, c: u64, carry: u64) -> (u64, u64) {
    let t = u128::from(acc) + u128::from(b) * u128::from(c) + u128::from(carry);
    (t as u64, (t >> 64) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    type U4 = Uint<4>;

    #[test]
    fn constants() {
        assert!(U4::ZERO.is_zero());
        assert!(!U4::ONE.is_zero());
        assert!(U4::ONE.is_odd());
        assert_eq!(U4::BITS, 256);
        assert_eq!(U4::MAX.bit_len(), 256);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = U4::from_hex("ffffffffffffffffffffffffffffffff").unwrap();
        let b = U4::from_u64(1);
        let s = a.wrapping_add(&b);
        assert_eq!(s.bit_len(), 129);
        assert_eq!(s.wrapping_sub(&b), a);
    }

    #[test]
    fn overflow_flags() {
        let (v, c) = U4::MAX.overflowing_add(&U4::ONE);
        assert!(c);
        assert!(v.is_zero());
        let (v, b) = U4::ZERO.overflowing_sub(&U4::ONE);
        assert!(b);
        assert_eq!(v, U4::MAX);
        assert!(U4::ZERO.checked_sub(&U4::ONE).is_none());
        assert!(U4::MAX.checked_add(&U4::ONE).is_none());
    }

    #[test]
    fn widening_mul_small() {
        let a = U4::from_u64(u64::MAX);
        let (lo, hi) = a.widening_mul(&a);
        assert!(hi.is_zero());
        // (2^64-1)^2 = 2^128 - 2^65 + 1
        let expect = U4::from_hex("fffffffffffffffe0000000000000001").unwrap();
        assert_eq!(lo, expect);
    }

    #[test]
    fn widening_mul_max() {
        let (lo, hi) = U4::MAX.widening_mul(&U4::MAX);
        // (R-1)^2 = R^2 - 2R + 1 where R = 2^256.
        assert_eq!(lo, U4::ONE);
        assert_eq!(hi, U4::MAX.wrapping_sub(&U4::ONE));
    }

    #[test]
    fn widening_square_matches_mul_edges() {
        for v in [U4::ZERO, U4::ONE, U4::MAX, U4::from_u64(u64::MAX), U4::ONE.shl(200)] {
            assert_eq!(v.widening_square(), v.widening_mul(&v));
        }
        let w = Uint::<8>::MAX;
        assert_eq!(w.widening_square(), w.widening_mul(&w));
    }

    #[test]
    fn widening_square_matches_mul_randomized() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..200 {
            let a = U4::random(&mut rng);
            assert_eq!(a.widening_square(), a.widening_mul(&a));
            let b = Uint::<8>::random(&mut rng);
            assert_eq!(b.widening_square(), b.widening_mul(&b));
        }
    }

    #[test]
    fn shifts() {
        let a = U4::from_u64(1);
        assert!(a.shl(255).bit(255));
        assert_eq!(a.shl(255).shr(255), a);
        assert_eq!(a.shl(256), U4::ZERO);
        let b = U4::from_hex("123456789abcdef0123456789abcdef0").unwrap();
        assert_eq!(b.shl(64).shr(64), b);
        assert_eq!(b.shl1().0, b.shl(1));
        assert_eq!(b.shr1(), b.shr(1));
    }

    #[test]
    fn shl1_carry_out() {
        let top = U4::ONE.shl(255);
        let (v, carry) = top.shl1();
        assert!(carry);
        assert!(v.is_zero());
    }

    #[test]
    fn bit_len_and_bits() {
        assert_eq!(U4::ZERO.bit_len(), 0);
        assert_eq!(U4::ONE.bit_len(), 1);
        assert_eq!(U4::from_u64(0x8000_0000_0000_0000).bit_len(), 64);
        let v = U4::ONE.shl(200);
        assert_eq!(v.bit_len(), 201);
        assert!(v.bit(200));
        assert!(!v.bit(199));
        assert!(!v.bit(1000));
    }

    #[test]
    fn trailing_zeros() {
        assert_eq!(U4::ZERO.trailing_zeros(), 256);
        assert_eq!(U4::ONE.trailing_zeros(), 0);
        assert_eq!(U4::ONE.shl(130).trailing_zeros(), 130);
    }

    #[test]
    fn hex_roundtrip() {
        let cases = [
            "0",
            "1",
            "deadbeef",
            "123456789abcdef0fedcba9876543210",
            "ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff",
        ];
        for c in cases {
            let v = U4::from_hex(c).unwrap();
            assert_eq!(v.to_hex(), c);
        }
        assert!(U4::from_hex("xyz").is_err());
        assert!(U4::from_hex(&"f".repeat(65)).is_err());
        assert_eq!(U4::from_hex("0xff").unwrap(), U4::from_u64(255));
    }

    #[test]
    fn dec_parse() {
        assert_eq!(U4::from_dec("0").unwrap(), U4::ZERO);
        assert_eq!(
            U4::from_dec("730750818665451621361119245571504901405976559617").unwrap(),
            // 2^159 + 2^107 + 1
            U4::ONE.shl(159).wrapping_add(&U4::ONE.shl(107)).wrapping_add(&U4::ONE)
        );
        assert!(U4::from_dec("12a").is_err());
    }

    #[test]
    fn be_bytes_roundtrip() {
        let v = U4::from_hex("0102030405060708090a0b0c0d0e0f10").unwrap();
        let bytes = v.to_be_bytes();
        assert_eq!(bytes.len(), 32);
        assert_eq!(U4::from_be_bytes(&bytes).unwrap(), v);
        // Short input is zero-extended on the left.
        assert_eq!(U4::from_be_bytes(&[0xff]).unwrap(), U4::from_u64(255));
        // Oversized input with zero padding is fine; nonzero overflow is not.
        let mut long = vec![0u8; 33];
        long[32] = 7;
        assert_eq!(U4::from_be_bytes(&long).unwrap(), U4::from_u64(7));
        long[0] = 1;
        assert!(U4::from_be_bytes(&long).is_err());
    }

    #[test]
    fn widen_truncate() {
        let v = U4::from_hex("ffeeddccbbaa99887766554433221100").unwrap();
        let w: Uint<8> = v.widen();
        assert_eq!(w.to_hex(), v.to_hex());
        let back: U4 = w.truncate().unwrap();
        assert_eq!(back, v);
        let big: Uint<8> = Uint::ONE.shl(400);
        assert!(big.truncate::<4>().is_err());
    }

    #[test]
    fn random_below_in_range() {
        let mut rng = StdRng::seed_from_u64(42);
        let bound = U4::from_u64(1000);
        for _ in 0..200 {
            let v = U4::random_below(&mut rng, &bound);
            assert!(v < bound);
        }
    }

    #[test]
    fn random_bits_has_exact_length() {
        let mut rng = StdRng::seed_from_u64(7);
        for bits in [1u32, 5, 64, 65, 130, 256] {
            let v = U4::random_bits(&mut rng, bits);
            assert_eq!(v.bit_len(), bits);
        }
    }

    #[test]
    fn ordering_is_numeric() {
        let small = U4::from_u64(5);
        let big = U4::ONE.shl(128);
        assert!(small < big);
        assert!(big > small);
        assert_eq!(small.cmp(&small), Ordering::Equal);
    }

    #[test]
    fn mul_u64_carry() {
        let (lo, carry) = U4::MAX.mul_u64(2);
        assert_eq!(carry, 1);
        assert_eq!(lo, U4::MAX.wrapping_sub(&U4::ONE));
    }

    #[test]
    fn debug_display_nonempty() {
        assert!(!format!("{:?}", U4::ZERO).is_empty());
        assert_eq!(format!("{}", U4::from_u64(255)), "0xff");
        assert_eq!(format!("{:x}", U4::from_u64(255)), "ff");
    }
}
