//! Modular inverse, Jacobi symbol, and prime-field square roots.

use crate::mont::MontCtx;
use crate::uint::Uint;

/// Computes `a^{-1} mod n` for odd `n` using the binary extended GCD.
///
/// Returns `None` if `gcd(a, n) != 1` (including `a == 0`).
///
/// # Panics
///
/// Panics if `n` is even or `n <= 1`.
pub fn mod_inv<const L: usize>(a: &Uint<L>, n: &Uint<L>) -> Option<Uint<L>> {
    assert!(n.is_odd() && *n > Uint::ONE, "mod_inv: modulus must be odd and > 1");
    if a.is_zero() {
        return None;
    }
    let a = crate::div::reduce(a, n);
    if a.is_zero() {
        return None;
    }

    // Invariants: x1·a ≡ u (mod n), x2·a ≡ v (mod n).
    let mut u = a;
    let mut v = *n;
    let mut x1 = Uint::<L>::ONE;
    let mut x2 = Uint::<L>::ZERO;

    while !u.is_zero() {
        while u.is_even() {
            u = u.shr1();
            x1 = halve_mod(&x1, n);
        }
        while v.is_even() {
            v = v.shr1();
            x2 = halve_mod(&x2, n);
        }
        if u >= v {
            u = u.wrapping_sub(&v);
            x1 = sub_mod(&x1, &x2, n);
        } else {
            v = v.wrapping_sub(&u);
            x2 = sub_mod(&x2, &x1, n);
        }
    }
    if v == Uint::ONE {
        Some(x2)
    } else {
        None
    }
}

/// `(x / 2) mod n` for odd `n` and reduced `x`.
fn halve_mod<const L: usize>(x: &Uint<L>, n: &Uint<L>) -> Uint<L> {
    if x.is_even() {
        x.shr1()
    } else {
        // (x + n) is even; the sum may carry one bit past the width, which
        // must be shifted back in at the top.
        let (sum, carry) = x.overflowing_add(n);
        let mut half = sum.shr1();
        if carry {
            let mut limbs = *half.limbs();
            limbs[L - 1] |= 1u64 << 63;
            half = Uint::from_limbs(limbs);
        }
        half
    }
}

/// `(a - b) mod n` for reduced operands.
fn sub_mod<const L: usize>(a: &Uint<L>, b: &Uint<L>, n: &Uint<L>) -> Uint<L> {
    let (diff, borrow) = a.overflowing_sub(b);
    if borrow {
        diff.wrapping_add(n)
    } else {
        diff
    }
}

/// Jacobi symbol `(a / n)` for odd `n > 0`; returns `-1`, `0` or `1`.
///
/// For prime `n` this is the Legendre symbol: `1` iff `a` is a nonzero
/// quadratic residue.
///
/// # Panics
///
/// Panics if `n` is even or zero.
pub fn jacobi<const L: usize>(a: &Uint<L>, n: &Uint<L>) -> i32 {
    assert!(n.is_odd(), "jacobi: n must be odd");
    let mut a = crate::div::reduce(a, n);
    let mut n = *n;
    let mut result = 1i32;
    while !a.is_zero() {
        while a.is_even() {
            a = a.shr1();
            let n_mod_8 = n.low_u64() & 7;
            if n_mod_8 == 3 || n_mod_8 == 5 {
                result = -result;
            }
        }
        std::mem::swap(&mut a, &mut n);
        if a.low_u64() & 3 == 3 && n.low_u64() & 3 == 3 {
            result = -result;
        }
        a = crate::div::reduce(&a, &n);
    }
    if n == Uint::ONE {
        result
    } else {
        0
    }
}

/// Square root modulo a prime `p ≡ 3 (mod 4)`: returns `x` with
/// `x² ≡ a (mod p)` if one exists, via the identity `x = a^((p+1)/4)`.
///
/// `ctx` must be a Montgomery context for a prime `p ≡ 3 (mod 4)`; `a` is a
/// canonical residue.
///
/// # Panics
///
/// Panics if the modulus is not `3 (mod 4)`.
pub fn sqrt_3mod4<const L: usize>(ctx: &MontCtx<L>, a: &Uint<L>) -> Option<Uint<L>> {
    let p = ctx.modulus();
    assert_eq!(p.low_u64() & 3, 3, "sqrt_3mod4: modulus must be 3 mod 4");
    if a.is_zero() {
        return Some(Uint::ZERO);
    }
    let exp = p.wrapping_add(&Uint::ONE).shr(2); // (p+1)/4; p+1 never carries since p < 2^(64L)-1 here
    let am = ctx.to_mont(a);
    let root_m = ctx.pow(&am, &exp);
    // Verify, since a may be a non-residue.
    if ctx.mul(&root_m, &root_m) == am {
        Some(ctx.from_mont(&root_m))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    type U4 = Uint<4>;

    #[test]
    fn inverse_small() {
        let n = U4::from_u64(101);
        let inv = mod_inv(&U4::from_u64(7), &n).unwrap();
        assert_eq!(inv.low_u64() * 7 % 101, 1);
    }

    #[test]
    fn inverse_of_zero_and_noncoprime() {
        let n = U4::from_u64(15);
        assert!(mod_inv(&U4::ZERO, &n).is_none());
        assert!(mod_inv(&U4::from_u64(5), &n).is_none());
        assert!(mod_inv(&U4::from_u64(3), &n).is_none());
        assert!(mod_inv(&U4::from_u64(7), &n).is_some());
    }

    #[test]
    fn inverse_unreduced_operand() {
        let n = U4::from_u64(101);
        let inv = mod_inv(&U4::from_u64(7 + 101 * 5), &n).unwrap();
        assert_eq!(inv.low_u64() * 7 % 101, 1);
    }

    #[test]
    fn inverse_randomized_against_mul() {
        let p = U4::from_hex("ffffffff00000001000000000000000000000000ffffffffffffffffffffffff")
            .unwrap();
        let ctx = MontCtx::new(p).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..30 {
            let a = U4::random_below(&mut rng, &p);
            if a.is_zero() {
                continue;
            }
            let inv = mod_inv(&a, &p).unwrap();
            let am = ctx.to_mont(&a);
            let im = ctx.to_mont(&inv);
            assert_eq!(ctx.from_mont(&ctx.mul(&am, &im)), U4::ONE);
        }
    }

    #[test]
    fn inverse_of_one_and_pm1() {
        let p = U4::from_u64(103);
        assert_eq!(mod_inv(&U4::ONE, &p).unwrap(), U4::ONE);
        let pm1 = p.wrapping_sub(&U4::ONE);
        assert_eq!(mod_inv(&pm1, &p).unwrap(), pm1); // (-1)^{-1} = -1
    }

    #[test]
    fn jacobi_small_table() {
        // Legendre symbols mod 7: QRs are {1, 2, 4}.
        let n = U4::from_u64(7);
        let expected = [0, 1, 1, -1, 1, -1, -1];
        for (a, &e) in expected.iter().enumerate() {
            assert_eq!(jacobi(&U4::from_u64(a as u64), &n), e, "a = {a}");
        }
    }

    #[test]
    fn jacobi_composite() {
        // (2/15) = (2/3)(2/5) = (-1)(-1) = 1
        assert_eq!(jacobi(&U4::from_u64(2), &U4::from_u64(15)), 1);
        // gcd(3,15) != 1 -> 0
        assert_eq!(jacobi(&U4::from_u64(3), &U4::from_u64(15)), 0);
    }

    #[test]
    fn jacobi_matches_euler_criterion() {
        let p = U4::from_u64(1_000_003);
        let ctx = MontCtx::new(p).unwrap();
        let exp = p.wrapping_sub(&U4::ONE).shr1(); // (p-1)/2
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..40 {
            let a = U4::random_below(&mut rng, &p);
            if a.is_zero() {
                continue;
            }
            let euler = ctx.pow_canonical(&a, &exp);
            let sym = jacobi(&a, &p);
            if euler == U4::ONE {
                assert_eq!(sym, 1);
            } else {
                assert_eq!(euler, p.wrapping_sub(&U4::ONE));
                assert_eq!(sym, -1);
            }
        }
    }

    #[test]
    fn sqrt_3mod4_roundtrip() {
        // p = 1_000_003 ≡ 3 mod 4.
        let p = U4::from_u64(1_000_003);
        let ctx = MontCtx::new(p).unwrap();
        let mut rng = StdRng::seed_from_u64(31);
        let mut found_root = 0;
        let mut found_nonresidue = 0;
        for _ in 0..40 {
            let a = U4::random_below(&mut rng, &p);
            match sqrt_3mod4(&ctx, &a) {
                Some(root) => {
                    let rm = ctx.to_mont(&root);
                    assert_eq!(ctx.from_mont(&ctx.mul(&rm, &rm)), a);
                    found_root += 1;
                }
                None => {
                    assert_eq!(jacobi(&a, &p), -1);
                    found_nonresidue += 1;
                }
            }
        }
        assert!(found_root > 0 && found_nonresidue > 0);
    }

    #[test]
    fn sqrt_of_zero() {
        let p = U4::from_u64(7);
        let ctx = MontCtx::new(p).unwrap();
        assert_eq!(sqrt_3mod4(&ctx, &U4::ZERO), Some(U4::ZERO));
    }

    #[test]
    #[should_panic(expected = "3 mod 4")]
    fn sqrt_rejects_1mod4() {
        let p = U4::from_u64(13);
        let ctx = MontCtx::new(p).unwrap();
        let _ = sqrt_3mod4(&ctx, &U4::from_u64(4));
    }
}
