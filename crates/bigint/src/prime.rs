//! Primality testing and prime generation.
//!
//! Includes the *Type-A* pairing-parameter generation procedure from the
//! PBC library (used by the CP-ABE toolkit the paper's second prototype is
//! built on): a Solinas trinomial group order `r` and a base-field prime
//! `q = h·r − 1 ≡ 3 (mod 4)`.

use rand::Rng;

use crate::mont::MontCtx;
use crate::uint::Uint;

/// The first few hundred primes, for cheap trial division.
const SMALL_PRIMES: [u64; 168] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293, 307,
    311, 313, 317, 331, 337, 347, 349, 353, 359, 367, 373, 379, 383, 389, 397, 401, 409, 419, 421,
    431, 433, 439, 443, 449, 457, 461, 463, 467, 479, 487, 491, 499, 503, 509, 521, 523, 541, 547,
    557, 563, 569, 571, 577, 587, 593, 599, 601, 607, 613, 617, 619, 631, 641, 643, 647, 653, 659,
    661, 673, 677, 683, 691, 701, 709, 719, 727, 733, 739, 743, 751, 757, 761, 769, 773, 787, 797,
    809, 811, 821, 823, 827, 829, 839, 853, 857, 859, 863, 877, 881, 883, 887, 907, 911, 919, 929,
    937, 941, 947, 953, 967, 971, 977, 983, 991, 997,
];

/// Default number of Miller–Rabin rounds used by [`is_prime`].
pub const DEFAULT_MR_ROUNDS: u32 = 30;

/// Miller–Rabin probabilistic primality test with `rounds` random bases.
///
/// Returns `false` for `n < 2` and for even `n > 2`. The error probability
/// is at most `4^-rounds` for composite `n`.
pub fn miller_rabin<const L: usize, R: Rng + ?Sized>(
    n: &Uint<L>,
    rounds: u32,
    rng: &mut R,
) -> bool {
    let two = Uint::<L>::from_u64(2);
    let three = Uint::<L>::from_u64(3);
    if *n < two {
        return false;
    }
    if *n == two || *n == three {
        return true;
    }
    if n.is_even() {
        return false;
    }
    let ctx = match MontCtx::new(*n) {
        Ok(c) => c,
        Err(_) => return false,
    };
    let n_m1 = n.wrapping_sub(&Uint::ONE);
    let s = n_m1.trailing_zeros();
    let d = n_m1.shr(s);
    let one_m = *ctx.one();
    let neg_one_m = ctx.neg(&one_m);

    'witness: for _ in 0..rounds {
        // Base in [2, n-2].
        let span = n.wrapping_sub(&three); // n - 3
        let a = Uint::random_below(rng, &span).wrapping_add(&two);
        let am = ctx.to_mont(&a);
        let mut x = ctx.pow(&am, &d);
        if x == one_m || x == neg_one_m {
            continue 'witness;
        }
        for _ in 0..s - 1 {
            x = ctx.square(&x);
            if x == neg_one_m {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Deterministic small-prime screening; `None` means "undecided".
fn trial_division<const L: usize>(n: &Uint<L>) -> Option<bool> {
    for &p in &SMALL_PRIMES {
        if *n == Uint::from_u64(p) {
            return Some(true);
        }
        if n.rem_u64(p) == 0 {
            return Some(false);
        }
    }
    None
}

/// Primality test: trial division by small primes, then
/// [`DEFAULT_MR_ROUNDS`] rounds of Miller–Rabin.
pub fn is_prime<const L: usize, R: Rng + ?Sized>(n: &Uint<L>, rng: &mut R) -> bool {
    if *n < Uint::from_u64(2) {
        return false;
    }
    match trial_division(n) {
        Some(verdict) => verdict,
        None => miller_rabin(n, DEFAULT_MR_ROUNDS, rng),
    }
}

/// Generates a random prime with exactly `bits` bits.
///
/// # Panics
///
/// Panics if `bits < 2` or `bits` exceeds the width of `Uint<L>`.
pub fn random_prime<const L: usize, R: Rng + ?Sized>(bits: u32, rng: &mut R) -> Uint<L> {
    assert!(bits >= 2 && bits <= Uint::<L>::BITS, "random_prime: bad bit count");
    loop {
        let mut candidate = Uint::<L>::random_bits(rng, bits);
        // Force odd (except the sole even prime, reachable only at bits=2).
        if bits > 2 {
            let mut limbs = *candidate.limbs();
            limbs[0] |= 1;
            candidate = Uint::from_limbs(limbs);
        }
        if is_prime(&candidate, rng) {
            return candidate;
        }
    }
}

/// The 160-bit Solinas prime `2^159 + 2^107 + 1`, the default group order
/// of PBC *Type-A* pairing parameters.
pub fn solinas_159_107<const L: usize>() -> Uint<L> {
    assert!(Uint::<L>::BITS >= 160, "solinas prime needs at least 160 bits");
    Uint::ONE.shl(159).wrapping_add(&Uint::ONE.shl(107)).wrapping_add(&Uint::ONE)
}

/// Parameters produced by [`generate_type_a`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TypeAPrimes<const L: usize> {
    /// The base-field prime, `q = h·r − 1`, with `q ≡ 3 (mod 4)`.
    pub q: Uint<L>,
    /// The prime group order `r` (divides `q + 1`).
    pub r: Uint<L>,
    /// The cofactor `h` (a multiple of 4).
    pub h: Uint<L>,
}

/// Generates PBC Type-A style pairing primes: a supersingular curve
/// `y² = x³ + x` over `F_q` has `q + 1 = h·r` points, with `r` the prime
/// subgroup order.
///
/// `q_bits` is the target size of `q`; `r` is the fixed Solinas prime
/// `2^159 + 2^107 + 1`. The search picks random cofactors `h ≡ 0 (mod 4)`
/// until `q = h·r − 1` is prime (which also forces `q ≡ 3 (mod 4)`).
///
/// # Panics
///
/// Panics if `q_bits` is not comfortably larger than 160 or exceeds the
/// width of `Uint<L>`.
pub fn generate_type_a<const L: usize, R: Rng + ?Sized>(
    q_bits: u32,
    rng: &mut R,
) -> TypeAPrimes<L> {
    assert!(q_bits > 200 && q_bits <= Uint::<L>::BITS, "generate_type_a: bad q size");
    let r = solinas_159_107::<L>();
    debug_assert!({
        let mut check_rng = rand::rngs::mock::StepRng::new(0x9e3779b97f4a7c15, 0x2545f4914f6cdd1d);
        miller_rabin(&r, 8, &mut check_rng)
    });
    let h_bits = q_bits - r.bit_len() + 1;
    loop {
        // h: random with top bit set and low two bits clear (multiple of 4).
        let mut h = Uint::<L>::random_bits(rng, h_bits);
        let mut limbs = *h.limbs();
        limbs[0] &= !3u64;
        h = Uint::from_limbs(limbs);
        if h.is_zero() {
            continue;
        }
        let (q_plus_1, hi) = h.widening_mul(&r);
        if !hi.is_zero() || q_plus_1.bit_len() != q_bits {
            continue;
        }
        let q = q_plus_1.wrapping_sub(&Uint::ONE);
        debug_assert_eq!(q.low_u64() & 3, 3);
        if is_prime(&q, rng) {
            return TypeAPrimes { q, r, h };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    type U4 = Uint<4>;

    #[test]
    fn small_primes_classified() {
        let mut rng = StdRng::seed_from_u64(1);
        for p in [2u64, 3, 5, 7, 97, 997, 65_537, 1_000_003] {
            assert!(is_prime(&U4::from_u64(p), &mut rng), "{p} should be prime");
        }
        for c in [0u64, 1, 4, 9, 15, 1_000_001, 65_535] {
            assert!(!is_prime(&U4::from_u64(c), &mut rng), "{c} should be composite");
        }
    }

    #[test]
    fn known_large_primes() {
        let mut rng = StdRng::seed_from_u64(2);
        // 2^255 - 19
        let p = U4::from_hex("7fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffed")
            .unwrap();
        assert!(is_prime(&p, &mut rng));
        // p + 2 is composite
        assert!(!is_prime(&p.wrapping_add(&U4::from_u64(2)), &mut rng));
    }

    #[test]
    fn carmichael_numbers_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        // Fermat pseudoprimes that Miller-Rabin must reject.
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825_265] {
            assert!(!is_prime(&U4::from_u64(c), &mut rng), "Carmichael {c}");
        }
    }

    #[test]
    fn solinas_prime_value_and_primality() {
        let r: U4 = solinas_159_107();
        assert_eq!(r, U4::from_dec("730750818665451621361119245571504901405976559617").unwrap());
        assert_eq!(r.bit_len(), 160);
        let mut rng = StdRng::seed_from_u64(4);
        assert!(is_prime(&r, &mut rng));
    }

    #[test]
    fn random_prime_has_requested_size() {
        let mut rng = StdRng::seed_from_u64(5);
        for bits in [32u32, 64, 128] {
            let p: U4 = random_prime(bits, &mut rng);
            assert_eq!(p.bit_len(), bits);
            assert!(is_prime(&p, &mut rng));
        }
    }

    #[test]
    fn type_a_generation_properties() {
        let mut rng = StdRng::seed_from_u64(6);
        let params: TypeAPrimes<8> = generate_type_a(256, &mut rng);
        assert_eq!(params.q.bit_len(), 256);
        assert_eq!(params.q.low_u64() & 3, 3, "q ≡ 3 mod 4");
        assert!(is_prime(&params.q, &mut rng));
        // q + 1 = h * r
        let (prod, hi) = params.h.widening_mul(&params.r);
        assert!(hi.is_zero());
        assert_eq!(prod, params.q.wrapping_add(&Uint::ONE));
        // h multiple of 4
        assert_eq!(params.h.low_u64() & 3, 0);
    }

    #[test]
    fn miller_rabin_edge_inputs() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(!miller_rabin(&U4::ZERO, 10, &mut rng));
        assert!(!miller_rabin(&U4::ONE, 10, &mut rng));
        assert!(miller_rabin(&U4::from_u64(2), 10, &mut rng));
        assert!(miller_rabin(&U4::from_u64(3), 10, &mut rng));
        assert!(!miller_rabin(&U4::from_u64(4), 10, &mut rng));
    }
}
