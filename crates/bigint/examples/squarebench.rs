//! Quick timing harness for the Montgomery kernels:
//! `cargo run -q --release -p sp-bigint --example squarebench`

use std::time::Instant;

use sp_bigint::{MontCtx, Uint};

fn time(label: &str, mut f: impl FnMut() -> Uint<8>) {
    // warm-up
    for _ in 0..1000 {
        std::hint::black_box(f());
    }
    let iters = 2_000_000u32;
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let ns = start.elapsed().as_nanos() as f64 / f64::from(iters);
    println!("{label:<28} {ns:8.1} ns/op");
}

fn run(label: &str, n: Uint<8>) {
    println!("== {label} ({} significant bits) ==", n.bit_len());
    let ctx = MontCtx::new(n).expect("odd modulus");
    let mut a = Uint::from_limbs([0x1234_5678_9ABC_DEF0u64; 8]);
    let mut b = Uint::from_limbs([0x0FED_CBA9_8765_4321u64; 8]);
    while a >= n {
        a = a.shr1();
    }
    while b >= n {
        b = b.shr1();
    }
    let a = ctx.to_mont(&a);
    let b = ctx.to_mont(&b);

    time("cios_mul(a,b)", || ctx.mul(&a, &b));
    time("cios_mul(a,a)", || ctx.mul(&a, &a));
    time("sos_square(a)", || ctx.square(&a));
    time("wide_mul+reduce", || {
        let (lo, hi) = ctx.wide_mul(&a, &b);
        ctx.montgomery_reduce(&lo, &hi)
    });
    time("wide_square only", || ctx.wide_square(&a).0);
    time("wide_mul only", || ctx.wide_mul(&a, &b).0);
    let (lo, hi) = ctx.wide_mul(&a, &b);
    time("reduce only", || ctx.montgomery_reduce(&lo, &hi));
}

fn main() {
    // A 512-bit odd modulus (top bit set, low bit set).
    let mut limbs = [0xDEAD_BEEF_CAFE_F00Du64; 8];
    limbs[7] |= 1 << 63;
    limbs[0] |= 1;
    run("512-bit (full width)", Uint::from_limbs(limbs));
    // A 264-bit odd modulus: 5 significant limbs in the 8-limb
    // container, the shape of the test-parameter pairing field.
    let mut limbs = [0u64; 8];
    limbs[..4].copy_from_slice(&[0xDEAD_BEEF_CAFE_F00D | 1; 4]);
    limbs[4] = 0xFF;
    run("264-bit (truncated)", Uint::from_limbs(limbs));
}
