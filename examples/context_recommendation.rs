//! §VIII future-work features, implemented: automated client-side context
//! recommendation, and periodic puzzle refresh (§VI-C's collusion
//! countermeasure).
//!
//! ```text
//! cargo run --example context_recommendation
//! ```

use rand::SeedableRng;
use social_puzzles::core::construction1::Construction1;
use social_puzzles::core::protocol::SocialPuzzleApp;
use social_puzzles::core::recommend::{self, AnswerStrength, ObjectMetadata};
use social_puzzles::osn::DeviceProfile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(88);

    // 1. The client drafts a context from the photo's own metadata.
    let metadata = ObjectMetadata::new()
        .field("location", "gravel beach below the lighthouse steps")
        .field("date", "2014-07-04")
        .field("host", "marisol")
        .field("food", "smoked trout and flatbread")
        .caption("We stayed until the tide chased us off the rocks");

    let recs = recommend::recommend(&metadata);
    println!("recommended context (ranked by guessing resistance):");
    for r in &recs {
        println!("  [{:8}] {} -> {}", format!("{:?}", r.strength), r.question, r.answer);
    }

    // Weak answers (the date) sink to the bottom; build the context from
    // the strongest three.
    let context = recommend::to_context(&recs, 3)?;
    assert!(recs[..3].iter().all(|r| r.strength >= AnswerStrength::Moderate));

    // 2. Share with the drafted context.
    let mut app = SocialPuzzleApp::new();
    let sharer = app.add_user("marisol");
    let friend = app.add_user("beachgoer");
    app.befriend(sharer, friend)?;
    let c1 = Construction1::new();
    let share = app.share_c1(
        &c1,
        sharer,
        b"beach_photo_raw_bytes",
        &context,
        2,
        &DeviceProfile::pc(),
        None,
        &mut rng,
    )?;
    let ctx_clone = context.clone();
    let recv = app.receive_c1(
        &c1,
        friend,
        &share,
        move |q| ctx_clone.answer_for(q).map(str::to_owned),
        &DeviceProfile::pc(),
        &mut rng,
    )?;
    assert_eq!(recv.object, b"beach_photo_raw_bytes");
    println!("\nfriend with the context: access granted");

    // 3. Periodic refresh (§VI-C): the sharer suspects a leaked verify
    //    transcript and re-keys the object in place. Same post, same
    //    puzzle id — old transcripts are dead, honest friends unaffected.
    let refreshed = app.refresh_c1(
        &c1,
        &share,
        b"beach_photo_raw_bytes",
        &context,
        &DeviceProfile::pc(),
        None,
        &mut rng,
    )?;
    println!("puzzle refreshed in place ({})", refreshed.delays);

    let ctx_clone = context.clone();
    let recv2 = app.receive_c1(
        &c1,
        friend,
        &share,
        move |q| ctx_clone.answer_for(q).map(str::to_owned),
        &DeviceProfile::pc(),
        &mut rng,
    )?;
    assert_eq!(recv2.object, b"beach_photo_raw_bytes");
    println!("friend re-solves the refreshed puzzle: access granted");
    Ok(())
}
