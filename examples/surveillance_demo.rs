//! Surveillance resistance, demonstrated from the adversary's chair
//! (§VI): what the service provider and storage host actually see, what a
//! dictionary attack yields, and where the paper's conceded attacks
//! (threshold-reaching coalitions, malicious-SP leak) really do break
//! through.
//!
//! ```text
//! cargo run --example surveillance_demo
//! ```

use rand::SeedableRng;
use social_puzzles::core::adversary;
use social_puzzles::core::construction1::Construction1;
use social_puzzles::core::construction2::Construction2;
use social_puzzles::core::context::Context;
use social_puzzles::core::sign::SigningKey;
use social_puzzles::osn::Url;
use social_puzzles::pairing::Pairing;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(31337);
    let c1 = Construction1::new();

    let context = Context::builder()
        .pair("Where did the reading group meet?", "the basement of Holyoke annex")
        .pair("Which novel did we abandon?", "the glass bead game")
        .pair("Who brought the terrible coffee?", "me, every single week")
        .build()?;
    let secret = b"group photo with everyone asleep";
    let up = c1.upload(secret, &context, 2, &mut rng)?;

    println!("=== What the service provider sees (Construction 1) ===");
    let dictionary = ["password", "123456", "coffee", "starbucks", "harry potter", "library"];
    let report = adversary::semi_honest_sp_attack_c1(&c1, &up.puzzle, &dictionary);
    println!("questions (public): {:#?}", report.questions_learned);
    println!("answers cracked by dictionary: {:?}", report.answers_cracked);
    println!("object key recovered: {}", report.object_key_recovered);
    assert!(!report.object_key_recovered);

    println!("\n=== What the storage host sees ===");
    let leaked = adversary::dh_surveillance_c1(&up.encrypted_object, secret);
    println!("plaintext visible in stored blob: {leaked}");
    assert!(!leaked);

    println!("\n=== Coalition below the threshold (2 needed, union = 1) ===");
    let weak_coalition = vec![(1usize, "the glass bead game".to_string())];
    let outcome = adversary::colluding_users_attack_c1(
        &c1,
        &up.puzzle,
        &up.encrypted_object,
        &weak_coalition,
        &mut rng,
    );
    println!("coalition success: {}", outcome.is_ok());
    assert!(outcome.is_err());

    println!("\n=== The conceded break: malicious SP leaks verify results ===");
    // Two members each below threshold; the SP confirms their correct
    // answers individually, the coalition pools the confirmations.
    let members = vec![
        vec![(0usize, "the basement of Holyoke annex".to_string())],
        vec![(1usize, "the glass bead game".to_string())],
    ];
    let mut broke = false;
    for _ in 0..20 {
        if adversary::malicious_sp_collusion_c1(
            &c1,
            &up.puzzle,
            &up.encrypted_object,
            &members,
            &mut rng,
        ) {
            broke = true;
            break;
        }
    }
    println!("coalition + malicious SP success: {broke} (the paper concedes this)");
    assert!(broke);

    println!("\n=== DOS protection: signed URL detects SP tampering ===");
    let pairing = Pairing::insecure_test_params();
    let signer = SigningKey::generate(&pairing, &mut rng);
    let signed = c1.upload_to(
        secret,
        &context,
        2,
        Url::from("https://dh.example/objects/42"),
        Some(&signer),
        &mut rng,
    )?;
    signed.puzzle.check_signature(&pairing, &signer.verifying_key())?;
    println!("honest puzzle signature: ok");
    // SP swaps the URL — detected before any download happens.
    let tampered_bytes = {
        let mut puzzle2 = signed.puzzle.clone();
        // Simulate the swap by re-serializing with a different URL via the
        // wire format (a real SP edits the stored record).
        let mut raw = puzzle2.to_bytes();
        let needle = b"dh.example";
        if let Some(pos) = raw.windows(needle.len()).position(|w| w == needle) {
            raw[pos..pos + needle.len()].copy_from_slice(b"evil.examp");
        }
        puzzle2 = social_puzzles::core::construction1::Puzzle::from_bytes(&raw)?;
        puzzle2
    };
    let verdict = tampered_bytes.check_signature(&pairing, &signer.verifying_key());
    println!("tampered puzzle signature: {verdict:?}");
    assert!(verdict.is_err());

    println!("\n=== Construction 2: perturbed tree hides answers from SP/DH ===");
    let c2 = Construction2::insecure_test_params();
    let up2 = c2.upload(secret, &context, 2, &mut rng)?;
    let ct = social_puzzles::abe::hybrid::decode(c2.abe(), &up2.ciphertext)?;
    let tree_text = ct.abe().tree().leaves().join(" | ");
    println!("tree leaves stored at the DH:\n  {tree_text}");
    assert!(!tree_text.contains("glass bead"), "answers are hashed out");
    println!("clear answers present: false");

    Ok(())
}
