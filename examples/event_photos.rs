//! The paper's motivating scenario (§IV-A): sharing photos of a private
//! event with exactly the people who were there (or were invited), using
//! both constructions — and showing that professional contacts who lack
//! the context never get in, without the sharer maintaining any ACL.
//!
//! ```text
//! cargo run --example event_photos
//! ```

use rand::SeedableRng;
use social_puzzles::core::construction1::Construction1;
use social_puzzles::core::construction2::Construction2;
use social_puzzles::core::context::Context;
use social_puzzles::core::protocol::SocialPuzzleApp;
use social_puzzles::osn::DeviceProfile;

struct Friend {
    name: &'static str,
    /// Which context questions this friend can answer (what they actually
    /// remember about the event).
    knows: fn(&str) -> Option<String>,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut app = SocialPuzzleApp::new();
    let sharer = app.add_user("dana");

    let friends = [
        Friend {
            name: "attendee-ravi", // was at the party: knows everything
            knows: |q| match q {
                q if q.contains("venue") => Some("rooftop of the old mill".into()),
                q if q.contains("band") => Some("the paper lanterns".into()),
                q if q.contains("toast") => Some("to the graduating class".into()),
                _ => None,
            },
        },
        Friend {
            name: "invited-but-missed-mei", // invited: knows venue + band from the invite
            knows: |q| match q {
                q if q.contains("venue") => Some("rooftop of the old mill".into()),
                q if q.contains("band") => Some("the paper lanterns".into()),
                _ => None,
            },
        },
        Friend {
            name: "coworker-pat", // professional contact: knows nothing
            knows: |_| None,
        },
        Friend {
            name: "guessing-gus", // tries wrong answers
            knows: |q| Some(format!("wild guess about {q}")),
        },
    ];

    let ids: Vec<_> = friends.iter().map(|f| app.add_user(f.name)).collect();
    for &id in &ids {
        app.befriend(sharer, id)?;
    }

    let context = Context::builder()
        .pair("Which venue hosted the party?", "rooftop of the old mill")
        .pair("Which band played?", "the paper lanterns")
        .pair("What was the toast for?", "to the graduating class")
        .build()?;

    println!("=== Construction 1 (Shamir), k = 2 of 3 ===");
    let c1 = Construction1::new();
    let share1 = app.share_c1(
        &c1,
        sharer,
        b"party_album_001.zip",
        &context,
        2,
        &DeviceProfile::pc(),
        None,
        &mut rng,
    )?;
    for (friend, &id) in friends.iter().zip(&ids) {
        // Everyone sees the post in their feed...
        let feed = app.sp().feed(id, |a| app.graph().are_friends(id, a));
        assert_eq!(feed.len(), 1);
        // ...but only context-knowers get the album. The SP shows a random
        // question subset, so a partially-knowing friend may need to retry
        // (refresh), exactly like the prototype.
        let mut got = None;
        for _ in 0..10 {
            match app.receive_c1(&c1, id, &share1, friend.knows, &DeviceProfile::pc(), &mut rng) {
                Ok(r) => {
                    got = Some(r);
                    break;
                }
                Err(_) => continue,
            }
        }
        match got {
            Some(r) => {
                assert_eq!(r.object, b"party_album_001.zip");
                println!("  {:<22} -> access granted  ({})", friend.name, r.delays);
            }
            None => println!("  {:<22} -> denied", friend.name),
        }
    }

    println!("\n=== Construction 2 (CP-ABE), k = 2 of 3 ===");
    let c2 = Construction2::insecure_test_params();
    let share2 = app.share_c2(
        &c2,
        sharer,
        b"party_album_001.zip",
        &context,
        2,
        &DeviceProfile::pc(),
        &mut rng,
    )?;
    for (friend, &id) in friends.iter().zip(&ids) {
        match app.receive_c2(&c2, id, &share2, friend.knows, &DeviceProfile::pc(), &mut rng) {
            Ok(r) => {
                assert_eq!(r.object, b"party_album_001.zip");
                println!("  {:<22} -> access granted  ({})", friend.name, r.delays);
            }
            Err(_) => println!("  {:<22} -> denied", friend.name),
        }
    }

    // The two who should get in got in; the two who should not, did not —
    // with zero ACL maintenance by dana.
    println!("\nno access-control list was created or maintained ✓");
    Ok(())
}
