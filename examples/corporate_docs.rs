//! The paper's §I corporate scenario: "data management in a corporate
//! network, where only employees knowing certain work-related context can
//! get access to certain confidential documents."
//!
//! This example goes beyond the paper's height-1 context tree and uses
//! the full CP-ABE machinery for a *nested* policy:
//!
//! ```text
//!   (project-codename AND build-server-name) OR 2-of-(launch facts)
//! ```
//!
//! Veterans of the project know the codename+server pair; people who
//! attended the launch review know at least two launch facts. Both paths
//! open the document; outsiders open nothing.
//!
//! ```text
//! cargo run --example corporate_docs
//! ```

use rand::SeedableRng;
use social_puzzles::abe::{hybrid, AccessTree, CpAbe};

fn attr(q: &str, a: &str) -> String {
    social_puzzles::abe::encode_qa_attribute(q, a)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let abe = CpAbe::insecure_test_params();
    let (pk, mk) = abe.setup(&mut rng);

    // The context facts, phrased as question-answer attributes.
    let codename = ("What is the project codename?", "heliotrope");
    let server = ("Which machine runs nightly builds?", "bx-09");
    let launch = [
        ("Which quarter is launch?", "q3"),
        ("Who signs off security review?", "imani"),
        ("What is the rollout region?", "emea-first"),
    ];

    let policy = AccessTree::or(vec![
        AccessTree::and(vec![
            AccessTree::leaf(attr(codename.0, codename.1)),
            AccessTree::leaf(attr(server.0, server.1)),
        ])?,
        AccessTree::threshold(
            2,
            launch.iter().map(|(q, a)| AccessTree::leaf(attr(q, a))).collect(),
        )?,
    ])?;

    let document = b"CONFIDENTIAL: heliotrope rollout playbook v7";
    let ct = hybrid::encrypt(&abe, &pk, &policy, document, &mut rng)?;
    println!("policy: {:?}", ct.abe().tree());
    println!("ciphertext: {} bytes\n", hybrid::encode(&abe, &ct).len());

    // Employee A: project veteran (codename + build server).
    let veteran =
        abe.keygen(&mk, &[attr(codename.0, codename.1), attr(server.0, server.1)], &mut rng);
    let doc = hybrid::decrypt(&abe, &ct, &veteran)?;
    assert_eq!(doc, document);
    println!("project veteran        -> access granted");

    // Employee B: attended the launch review (2 launch facts).
    let reviewer = abe.keygen(
        &mk,
        &[attr(launch[0].0, launch[0].1), attr(launch[1].0, launch[1].1)],
        &mut rng,
    );
    assert_eq!(hybrid::decrypt(&abe, &ct, &reviewer)?, document);
    println!("launch reviewer        -> access granted");

    // Employee C: knows one launch fact and the codename — neither branch
    // is satisfied.
    let partial =
        abe.keygen(&mk, &[attr(codename.0, codename.1), attr(launch[2].0, launch[2].1)], &mut rng);
    assert!(hybrid::decrypt(&abe, &ct, &partial).is_err());
    println!("partial knowledge      -> denied");

    // Contractor D: delegated a *restricted* key (veteran delegates only
    // the codename attribute — not enough alone).
    let contractor = abe.delegate(&pk, &veteran, &[attr(codename.0, codename.1)], &mut rng)?;
    assert!(hybrid::decrypt(&abe, &ct, &contractor).is_err());
    println!("delegated single attr  -> denied");

    // And two partial employees cannot collude by mixing key components:
    // keys are bound by per-key randomness (tested in sp-abe); here we
    // simply confirm that neither alone suffices while together-at-keygen
    // they would.
    let combined = abe.keygen(
        &mk,
        &[attr(launch[0].0, launch[0].1), attr(launch[2].0, launch[2].1)],
        &mut rng,
    );
    assert_eq!(hybrid::decrypt(&abe, &ct, &combined)?, document);
    println!("two launch facts       -> access granted");

    Ok(())
}
