//! Album sharing: one puzzle protecting many pictures of one event.
//!
//! The paper's motivating scenario shares pictures (plural) of a
//! gathering; uploading a puzzle per picture would multiply SP state and
//! make receivers solve the same questions over and over. The batch
//! extension shares the secret once and derives a key per item — solve
//! once, open everything.
//!
//! ```text
//! cargo run --example album
//! ```

use rand::SeedableRng;
use social_puzzles::core::construction1::Construction1;
use social_puzzles::core::context::Context;
use social_puzzles::core::protocol::SocialPuzzleApp;
use social_puzzles::osn::DeviceProfile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(4242);
    let mut app = SocialPuzzleApp::new();
    let sharer = app.add_user("noor");
    let friend = app.add_user("sam");
    app.befriend(sharer, friend)?;

    let context = Context::builder()
        .pair("Whose graduation was it?", "leila's")
        .pair("Which restaurant afterwards?", "the tin lantern")
        .pair("What did the cake say?", "onwards and upwards")
        .build()?;

    let album: Vec<&[u8]> = vec![
        b"IMG_2041.jpg: the cap toss",
        b"IMG_2042.jpg: family photo on the steps",
        b"IMG_2043.jpg: the cake before",
        b"IMG_2044.jpg: the cake after",
        b"VID_0007.mp4: the speech (12MB, simulated small)",
    ];

    let c1 = Construction1::new();
    let (share, urls) =
        app.share_album_c1(&c1, sharer, &album, &context, 2, &DeviceProfile::pc(), &mut rng)?;
    println!(
        "shared {} items behind ONE puzzle ({} bytes uploaded, {})",
        urls.len(),
        share.bytes_uploaded,
        share.delays
    );
    println!("SP stores exactly 1 puzzle record; DH stores {} blobs", urls.len());

    // Sam was at the dinner: knows the restaurant and the cake.
    let (items, delays) = app.receive_album_c1(
        &c1,
        friend,
        &share,
        &urls,
        |q| match q {
            q if q.contains("restaurant") => Some("the tin lantern".into()),
            q if q.contains("cake") => Some("onwards and upwards".into()),
            _ => None,
        },
        &DeviceProfile::pc(),
        &mut rng,
    )?;
    println!("\nsam solved once and received {} items ({delays}):", items.len());
    for item in &items {
        println!("  - {}", String::from_utf8_lossy(item));
    }
    assert_eq!(items.len(), album.len());

    // Someone who can't solve gets nothing — not even one item.
    let denied = app.receive_album_c1(
        &c1,
        friend,
        &share,
        &urls,
        |_| Some("wrong".into()),
        &DeviceProfile::pc(),
        &mut rng,
    );
    assert!(denied.is_err());
    println!("\nwrong answers: entire album denied ✓");
    Ok(())
}
