//! Quickstart: share a message behind a context puzzle and retrieve it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use rand::SeedableRng;
use social_puzzles::core::construction1::Construction1;
use social_puzzles::core::context::Context;
use social_puzzles::core::protocol::SocialPuzzleApp;
use social_puzzles::osn::DeviceProfile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2014);

    // A simulated OSN: one sharer, one friend.
    let mut app = SocialPuzzleApp::new();
    let sharer = app.add_user("alice");
    let friend = app.add_user("bob");
    app.befriend(sharer, friend)?;

    // The context of the thing being shared: 3 question–answer pairs.
    // Bob was at the party, so he knows at least 2 of them.
    let context = Context::builder()
        .pair("Where did we celebrate?", "lakeside cabin")
        .pair("Who organized the party?", "priya")
        .pair("What dessert ran out first?", "tiramisu")
        .normalize_answers()
        .build()?;

    // Alice shares a photo caption requiring k = 2 known context facts.
    let c1 = Construction1::new();
    let share = app.share_c1(
        &c1,
        sharer,
        b"photo-of-the-lake.jpg (simulated bytes)",
        &context,
        2,
        &DeviceProfile::pc(),
        None,
        &mut rng,
    )?;
    println!("shared puzzle {} (post {})", share.puzzle, share.post);
    println!("sharer delays: {}", share.delays);

    // Bob sees the post in his feed and solves the puzzle.
    let feed = app.sp().feed(friend, |a| app.graph().are_friends(friend, a));
    assert_eq!(feed.len(), 1, "the hyperlink reached bob's feed");

    let recv = app.receive_c1(
        &c1,
        friend,
        &share,
        |question| match question {
            q if q.contains("Where") => Some("Lakeside Cabin".to_string().to_lowercase()),
            q if q.contains("organized") => Some("priya".to_string()),
            _ => None, // bob forgot the dessert
        },
        &DeviceProfile::pc(),
        &mut rng,
    )?;
    println!("receiver delays: {}", recv.delays);
    println!("bob recovered: {}", String::from_utf8_lossy(&recv.object));
    assert_eq!(recv.object, b"photo-of-the-lake.jpg (simulated bytes)");

    // A stranger who knows nothing is denied by the service provider.
    let stranger = friend; // any identified user; knows nothing relevant
    let denied = app.receive_c1(&c1, stranger, &share, |_| None, &DeviceProfile::pc(), &mut rng);
    assert!(denied.is_err());
    println!("stranger without context: denied ✓");
    Ok(())
}
