//! The §I content-relevance claim, measured: "our context-based access
//! control mechanism will inevitably enforce relevant content being
//! read, because users cannot access contents with unfamiliar contexts."
//!
//! Simulates communities of users and posts, runs every access attempt
//! through real Construction-1 puzzles, and compares feed precision with
//! and without puzzle gating.
//!
//! ```text
//! cargo run --release --example content_relevance
//! ```

use rand::SeedableRng;
use social_puzzles::core::relevance::{simulate, RelevanceConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);

    println!(
        "{:>24} | {:>16} | {:>16} | {:>12}",
        "scenario", "precision gated", "precision bcast", "recall gated"
    );
    println!("{}", "-".repeat(80));

    for (label, p_in, p_out) in [
        ("tight communities", 0.95, 0.05),
        ("default", 0.90, 0.10),
        ("leaky contexts", 0.80, 0.30),
        ("public knowledge", 1.00, 1.00),
    ] {
        let cfg =
            RelevanceConfig { p_know_in: p_in, p_know_out: p_out, ..RelevanceConfig::default() };
        let report = simulate(&cfg, &mut rng)?;
        println!(
            "{label:>24} | {:>15.1}% | {:>15.1}% | {:>11.1}%",
            report.precision_gated * 100.0,
            report.precision_broadcast * 100.0,
            report.recall_gated * 100.0
        );
    }

    println!(
        "\npuzzle gating lifts feed precision far above the broadcast base rate\n\
         whenever context knowledge actually tracks community membership;\n\
         when context is public knowledge, gating (correctly) filters nothing."
    );
    Ok(())
}
